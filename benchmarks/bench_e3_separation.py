"""E3 — Theorem 1(3) / Theorem 12: the uCFG separation for ``L_n``.

Rows: the exact size of the corrected Example 4 uCFG (upper bound, grows
like ``3^n``), the certified lower bound from the discrepancy chain
(grows like ``2^{0.063 n}``), and — for machine-sized ``n`` — the actual
disjoint rectangle cover extracted by Proposition 7 from the constructed
uCFG, sandwiched between the two.
"""

from __future__ import annotations

from repro.core.cover import balanced_rectangle_cover
from repro.core.lower_bound import certificate
from repro.languages.small_grammar import small_ln_grammar
from repro.languages.unambiguous_grammar import example4_size, example4_ucfg
from repro.util.tables import Table, approx_log2, format_int


def _sweep() -> Table:
    table = Table(
        [
            "n",
            "CFG size",
            "uCFG constr. size",
            "log2(constr)/n",
            "cover lower bd",
            "uCFG lower bd",
        ],
        title="E3 (Theorems 1(3)/12): double-exponential separation for L_n",
    )
    for exponent in range(2, 15):
        n = 2**exponent
        cert = certificate(n)
        constr = example4_size(n)
        table.add_row(
            [
                n,
                small_ln_grammar(n).size,
                format_int(constr),
                f"{approx_log2(constr) / n:.3f}",
                format_int(cert.cover_bound),
                format_int(cert.ucfg_bound),
            ]
        )
    return table


def test_e3_separation_table(benchmark, report):
    table = benchmark(_sweep)
    note = (
        "CFG size is Θ(log n) while every uCFG needs 2^Ω(n) (lower-bound\n"
        "column) — since the CFG is logarithmic in n, the uCFG is doubly\n"
        "exponential in the CFG size: the conjecture of [20], Theorem 1.\n"
        "The construction column is the upper bound; 'who wins' and the\n"
        "exponential shape match the paper, with the lower-bound constant\n"
        "(≈ 2^{0.063 n}) smaller than the construction's ≈ 2^{1.585 n}."
    )
    report(table, note)
    cert = certificate(2**14)
    assert cert.ucfg_bound > small_ln_grammar(2**14).size


def test_e3_extracted_cover_within_bounds(benchmark, report):
    def extract() -> Table:
        table = Table(
            ["n", "lower bd", "extracted disjoint cover", "Prop.7 bound"],
            title="E3b: actual disjoint covers from the constructed uCFG",
        )
        for n in (2, 3, 4):
            cert = certificate(n)
            cover = balanced_rectangle_cover(example4_ucfg(n))
            assert cover.disjoint
            assert cert.cover_bound <= cover.n_rectangles <= cover.proposition7_bound
            table.add_row(
                [n, cert.cover_bound, cover.n_rectangles, cover.proposition7_bound]
            )
        return table

    table = benchmark.pedantic(extract, rounds=1, iterations=1)
    report(table)


def test_e3_certificate_speed(benchmark):
    cert = benchmark(certificate, 4096)
    assert cert.ucfg_bound > 1
