"""E2 — Theorem 1(2): ``L_n`` and nondeterministic finite automata.

Rows: the ``Θ(n)`` guess-and-verify NFA (states/transitions, exactness on
length-``2n`` inputs verified exhaustively for small ``n``), the exact
automaton (``O(n²)``), and the ``n²`` fooling-set lower bound that this
reproduction adds as a correction to the informal ``Θ(n)`` remark (see
EXPERIMENTS.md, finding F2).
"""

from __future__ import annotations

from repro.languages.ln import is_in_ln
from repro.languages.nfa_ln import exact_ln_fooling_set, ln_match_nfa, ln_nfa_exact
from repro.util.tables import Table
from repro.words.alphabet import AB
from repro.words.ops import all_words


def _verify_promise(n: int) -> bool:
    nfa = ln_match_nfa(n)
    return all(nfa.accepts(w) == is_in_ln(w, n) for w in all_words(AB, 2 * n))


def _sweep() -> Table:
    table = Table(
        [
            "n",
            "match-NFA states",
            "transitions",
            "exact-NFA states",
            "fooling bound n^2",
            "verified",
        ],
        title="E2 (Theorem 1(2)): NFA sizes for L_n",
    )
    for n in (1, 2, 3, 4, 6, 8, 16, 32, 64, 128):
        match_nfa = ln_match_nfa(n)
        exact_states = ln_nfa_exact(n).n_states if n <= 32 else None
        verified = "exhaustive" if n <= 6 else "-"
        if n <= 6:
            assert _verify_promise(n)
        table.add_row(
            [
                n,
                match_nfa.n_states,
                match_nfa.n_transitions,
                exact_states if exact_states is not None else "-",
                n * n,
                verified,
            ]
        )
    return table


def test_e2_nfa_size_table(benchmark, report):
    table = benchmark(_sweep)
    note = (
        "The guess-and-verify automaton is exactly n + 2 states (Θ(n)); the\n"
        "length-exact automaton needs Θ(n²) states, and the fooling set of\n"
        "size n² proves that is optimal — the Θ(n) remark in the paper holds\n"
        "for the promise/variable-length reading.  Either way the NFA stays\n"
        "exponentially below the 2^Ω(n) uCFG bound of Theorem 1(3)."
    )
    report(table, note)


def test_e2_fooling_set_verified(benchmark):
    def check(n: int = 6) -> int:
        pairs = exact_ln_fooling_set(n)
        for u, v in pairs:
            assert is_in_ln(u + v, n)
        for i, (u, _) in enumerate(pairs):
            for j, (_, v) in enumerate(pairs):
                if i != j:
                    assert not is_in_ln(u + v, n)
        return len(pairs)

    assert benchmark(check) == 36


def test_e2_membership_throughput(benchmark):
    nfa = ln_match_nfa(32)
    words = ["ab" * 32, "a" + "b" * 62 + "a", "b" * 64]

    def run() -> list[bool]:
        return [nfa.accepts(w) for w in words]

    assert benchmark(run) == [True, False, False]
