"""Shared helpers for the benchmark/experiment harness.

Every experiment module regenerates one of the paper's quantitative
claims as a table; the rows printed here are the ones recorded in
EXPERIMENTS.md.  Run the whole harness with::

    pytest benchmarks/ --benchmark-only

Each module benchmarks its computational core via the ``benchmark``
fixture and prints its table through :func:`report` (bypassing pytest's
capture so the rows always reach the terminal).
"""

from __future__ import annotations

import pytest

from repro.util.tables import Table


@pytest.fixture
def report(capsys):
    """Print an experiment table regardless of pytest capture settings."""

    def _print(table: Table, note: str | None = None) -> None:
        with capsys.disabled():
            print()
            table.print()
            if note:
                print(note)
                print()

    return _print
