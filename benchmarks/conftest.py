"""Shared helpers for the benchmark/experiment harness.

Every experiment module regenerates one of the paper's quantitative
claims as a table; the rows printed here are the ones recorded in
EXPERIMENTS.md.  Run the whole harness with::

    pytest benchmarks/ --benchmark-only

Each module benchmarks its computational core via the ``benchmark``
fixture and prints its table through :func:`report` (bypassing pytest's
capture so the rows always reach the terminal).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.util.tables import Table


@pytest.fixture
def report(capsys):
    """Print an experiment table regardless of pytest capture settings."""

    def _print(table: Table, note: str | None = None) -> None:
        with capsys.disabled():
            print()
            table.print()
            if note:
                print(note)
                print()

    return _print


# ----------------------------------------------------------------------
# BENCH_engine.json: a machine-readable timing summary of the harness run
# ----------------------------------------------------------------------
#
# Every benchmark session appends wall-clock numbers per test to a JSON
# artifact (same family as the engine's runs.jsonl; BENCH_* trajectories
# consume it).  Override the location with $REPRO_BENCH_JSON; set it to
# the empty string to disable.

_DURATIONS: dict[str, float] = {}


def _bench_json_path() -> Path | None:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override is not None:
        return Path(override) if override else None
    return Path(__file__).resolve().parent / "BENCH_engine.json"


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        _DURATIONS[report.nodeid] = round(report.duration, 6)


def pytest_sessionfinish(session, exitstatus):
    path = _bench_json_path()
    if path is None or not _DURATIONS:
        return
    summary = {
        "kind": "bench_summary",
        "generated_at": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "exit_status": int(exitstatus),
        "n_tests": len(_DURATIONS),
        "total_s": round(sum(_DURATIONS.values()), 6),
        "tests": dict(sorted(_DURATIONS.items())),
    }
    try:
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass  # a benchmark run must never fail on an unwritable artifact dir
