"""E1 — Theorem 1(1): the Appendix A CFG for ``L_n`` has size ``Θ(log n)``.

Rows: ``n``, exact grammar size, ``size / log2(n)`` (bounded ⇔ the claim),
and exhaustive language verification for every ``n ≤ 9``.
"""

from __future__ import annotations

import math

from repro.grammars.language import language
from repro.languages.ln import ln_words
from repro.languages.small_grammar import small_ln_grammar
from repro.util.tables import Table


def _sweep() -> Table:
    table = Table(
        ["n", "CFG size", "size/log2(n)", "language verified"],
        title="E1 (Theorem 1(1)): Appendix A grammar size is Θ(log n)",
    )
    for exponent in range(1, 21, 2):
        n = 2**exponent
        grammar = small_ln_grammar(n)
        verified = "exhaustive" if n <= 9 else "-"
        if n <= 9:
            assert language(grammar) == ln_words(n)
        table.add_row([n, grammar.size, f"{grammar.size / math.log2(n):.1f}", verified])
    # A few non-powers of two: the binary decomposition is what varies.
    for n in (5, 9, 100, 1000, 999_999):
        grammar = small_ln_grammar(n)
        verified = "exhaustive" if n <= 9 else "-"
        if n <= 9:
            assert language(grammar) == ln_words(n)
        table.add_row([n, grammar.size, f"{grammar.size / math.log2(n):.1f}", verified])
    return table


def test_e1_cfg_size_table(benchmark, report):
    table = benchmark(_sweep)
    ratios = [
        small_ln_grammar(2**e).size / e for e in range(4, 21, 4)
    ]
    note = (
        f"size/log2(n) stays within [{min(ratios):.1f}, {max(ratios):.1f}] across "
        "four decades -> Θ(log n), matching Theorem 1(1)."
    )
    report(table, note)
    assert max(ratios) < 20


def test_e1_construction_speed_n_million(benchmark):
    grammar = benchmark(small_ln_grammar, 10**6)
    assert grammar.size < 500
