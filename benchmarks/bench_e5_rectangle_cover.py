"""E5 — Proposition 7: balanced rectangle covers from grammars.

Rows, per grammar of the corpus plus the paper's constructions: the
extracted cover size ``ℓ``, the bound ``n·|G_CNF|``, balancedness, and
disjointness (which must hold exactly for the unambiguous grammars).
"""

from __future__ import annotations

from repro.core.cover import balanced_rectangle_cover
from repro.core.rectangles import is_rectangle_decomposition
from repro.grammars.ambiguity import is_unambiguous
from repro.grammars.cfg import grammar_from_mapping
from repro.grammars.language import language
from repro.languages.example3 import example3_grammar
from repro.languages.small_grammar import small_ln_grammar
from repro.languages.unambiguous_grammar import example4_ucfg
from repro.util.tables import Table


def _cases():
    return {
        "two-words": grammar_from_mapping("ab", {"S": ["ab", "ba"]}, "S"),
        "single-word": grammar_from_mapping("ab", {"S": ["abba"]}, "S"),
        "uniform-ucfg": grammar_from_mapping(
            "ab", {"S": ["aX", "bY"], "X": ["ab", "bb"], "Y": ["aa", "ba"]}, "S"
        ),
        "uniform-ambiguous": grammar_from_mapping(
            "ab", {"S": ["aX", "Ya"], "X": ["aa", "ab"], "Y": ["aa", "ba"]}, "S"
        ),
        "deep-chain": grammar_from_mapping(
            "ab",
            {"S": ["AB"], "A": ["aa", "ab"], "B": ["CD"], "C": ["a", "b"], "D": ["b"]},
            "S",
        ),
        "example3-k1 (L_3)": example3_grammar(1),
        "smallgrammar (L_4)": small_ln_grammar(4),
        "example4 uCFG (L_2)": example4_ucfg(2),
        "example4 uCFG (L_3)": example4_ucfg(3),
    }


def _sweep() -> Table:
    table = Table(
        ["grammar", "|L|", "cover size", "bound n*|G|", "disjoint", "unambiguous"],
        title="E5 (Proposition 7): balanced rectangle covers",
    )
    for name, grammar in _cases().items():
        cover = balanced_rectangle_cover(grammar)
        unambiguous = is_unambiguous(grammar)
        assert is_rectangle_decomposition(
            cover.rectangles, language(grammar), require_balanced=True
        )
        assert cover.n_rectangles <= cover.proposition7_bound
        if unambiguous:
            assert cover.disjoint
        table.add_row(
            [
                name,
                len(language(grammar)),
                cover.n_rectangles,
                cover.proposition7_bound,
                cover.disjoint,
                unambiguous,
            ]
        )
    return table


def test_e5_cover_table(benchmark, report):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    note = (
        "Every cover is balanced, unions exactly to L(G), and respects the\n"
        "ℓ ≤ n·|G| bound; the unambiguous grammars produce *disjoint* covers\n"
        "— the structural fact the Section 4 lower bound consumes."
    )
    report(table, note)


def test_e5_extraction_speed(benchmark):
    cover = benchmark(balanced_rectangle_cover, example4_ucfg(2))
    assert cover.disjoint
