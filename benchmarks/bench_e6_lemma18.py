"""E6 — Lemma 18: the exact cardinalities of ``𝓛``, ``A``, ``B``.

Rows: for each ``m``, the four Lemma 18 quantities — exhaustively
enumerated for ``m ≤ 5`` and by closed formula beyond — plus the
``margin > 2^{7m/2}`` threshold check, which pins the paper's
"sufficiently big n" to ``m ≥ 4`` (n ≥ 16).
"""

from __future__ import annotations

from repro.core.discrepancy import (
    lemma18_margin,
    size_a,
    size_b,
    size_b_minus_ln,
    size_script_l,
    verify_lemma18,
)
from repro.util.tables import Table, format_int


def _threshold(m: int) -> bool:
    margin = lemma18_margin(m)
    return margin > 0 and margin**2 > 2 ** (7 * m)


def _sweep() -> Table:
    table = Table(
        ["m", "|L|=2^{4m}", "|A|", "|B|", "|B\\L_n|=12^m", "margin", ">2^{7m/2}", "mode"],
        title="E6 (Lemma 18): exact set cardinalities",
    )
    for m in (1, 2, 3, 4, 5):
        verify_lemma18(m)  # raises on any mismatch
        table.add_row(
            [
                m,
                size_script_l(m),
                size_a(m),
                size_b(m),
                size_b_minus_ln(m),
                lemma18_margin(m),
                _threshold(m),
                "enumerated",
            ]
        )
    for m in (8, 16, 64, 256):
        table.add_row(
            [
                m,
                format_int(size_script_l(m)),
                format_int(size_a(m)),
                format_int(size_b(m)),
                format_int(size_b_minus_ln(m)),
                format_int(lemma18_margin(m)),
                _threshold(m),
                "formula",
            ]
        )
    return table


def test_e6_lemma18_table(benchmark, report):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    note = (
        "Every enumerated row matches the closed formulas |A| = (16^m-8^m)/2,\n"
        "|B| = (16^m+8^m)/2, |B \\ L_n| = 12^m, margin = 12^m - 2^{3m}; the\n"
        "paper's 'n sufficiently big' threshold is exactly m >= 4."
    )
    report(table, note)
    assert not _threshold(3) and _threshold(4)


def test_e6_exhaustive_verification_speed(benchmark):
    results = benchmark(verify_lemma18, 4)  # 65,536 members of 𝓛
    assert results["|L|"] == (65536, 65536)
