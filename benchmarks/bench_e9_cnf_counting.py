"""E9 — Section 2 machinery: CNF blow-up and the two counting notions.

Part A measures the CNF conversion against the paper's quadratic bound
``|G'| ≤ |G|²`` on the repository's grammar corpus.

Part B contrasts counting *derivations* (polynomial, exact for uCFGs)
with counting *words* (requires enumeration for ambiguous CFGs — the
#P-completeness the introduction recalls) on the Example 3 grammars.
"""

from __future__ import annotations

from repro.grammars.ambiguity import is_unambiguous
from repro.grammars.cfg import grammar_from_mapping
from repro.grammars.cnf import to_cnf
from repro.grammars.language import count_derivations, count_words, language
from repro.languages.example3 import example3_grammar
from repro.languages.ln import count_ln
from repro.languages.small_grammar import small_ln_grammar
from repro.languages.unambiguous_grammar import example4_ucfg
from repro.util.tables import Table, format_int


def _corpus():
    return {
        "two-words": grammar_from_mapping("ab", {"S": ["ab", "ba"]}, "S"),
        "nested": grammar_from_mapping("ab", {"S": ["aXb"], "X": ["ab", "ba", ""]}, "S"),
        "deep-chain": grammar_from_mapping(
            "ab",
            {"S": ["AB"], "A": ["aa", "ab"], "B": ["CD"], "C": ["a", "b"], "D": ["b"]},
            "S",
        ),
        "example3-k1": example3_grammar(1),
        "example3-k3": example3_grammar(3),
        "smallgrammar-n7": small_ln_grammar(7),
        "smallgrammar-n100": small_ln_grammar(100),
        "example4-n3": example4_ucfg(3),
    }


def _cnf_sweep() -> Table:
    table = Table(
        ["grammar", "|G|", "|CNF(G)|", "ratio", "quadratic bound", "within"],
        title="E9a (Section 2): CNF conversion blow-up vs |G|^2",
    )
    for name, grammar in _corpus().items():
        converted = to_cnf(grammar)
        bound = grammar.size**2 + 4 * grammar.size + 8
        table.add_row(
            [
                name,
                grammar.size,
                converted.size,
                f"{converted.size / grammar.size:.2f}",
                bound,
                converted.size <= bound,
            ]
        )
    return table


def test_e9_cnf_table(benchmark, report):
    table = benchmark.pedantic(_cnf_sweep, rounds=1, iterations=1)
    note = (
        "Every conversion lands far below the quadratic ceiling (the ratio\n"
        "column is the actual blow-up; the additive slack accounts for the\n"
        "fresh start rule and terminal proxies of the standard pipeline)."
    )
    report(table, note)


def _counting_sweep() -> Table:
    table = Table(
        ["grammar", "unambig.", "#derivations (poly)", "#words (exact)", "equal"],
        title="E9b: derivation counting vs word counting",
    )
    cases = {
        "example3-k1 (L_3)": (example3_grammar(1), count_ln(3)),
        "example3-k2 (L_5)": (example3_grammar(2), count_ln(5)),
        "example4-n3 (L_3)": (example4_ucfg(3), count_ln(3)),
        "smallgrammar-n4 (L_4)": (small_ln_grammar(4), count_ln(4)),
    }
    for name, (grammar, expected_words) in cases.items():
        derivations = count_derivations(grammar)
        words = count_words(grammar)
        assert words == expected_words
        table.add_row(
            [
                name,
                is_unambiguous(grammar),
                format_int(derivations),
                format_int(words),
                derivations == words,
            ]
        )
    return table


def test_e9_counting_table(benchmark, report):
    table = benchmark.pedantic(_counting_sweep, rounds=1, iterations=1)
    note = (
        "For the unambiguous grammar the polynomial derivation count *is*\n"
        "|L|; for the ambiguous ones it overshoots — the whole algorithmic\n"
        "motivation for unambiguity (counting for CFGs is #P-complete)."
    )
    report(table, note)


def test_e9_derivation_count_scales(benchmark):
    # Polynomial counting on a grammar whose language has ~10^18 words.
    grammar = example3_grammar(5)  # L_33, |L| = 4^33 - 3^33
    derivations = benchmark(count_derivations, grammar)
    assert derivations >= count_ln(33)


def test_e9_cnf_speed(benchmark):
    converted = benchmark(to_cnf, example4_ucfg(3))
    assert converted.is_in_cnf()


def test_e9_word_count_by_enumeration(benchmark):
    grammar = example3_grammar(2)
    assert benchmark(count_words, grammar) == count_ln(5)


def test_e9_language_extraction_speed(benchmark):
    grammar = small_ln_grammar(6)
    words = benchmark(language, grammar)
    assert len(words) == count_ln(6)
