"""E14 — the representation zoo: every size for ``L_n`` side by side.

A synthesis table beyond the paper's three representations: for each
small ``n``, the exact sizes of the CFG (Appendix A), the promise NFA,
the exact NFA, the minimal DFA (exact and variable-length), the actual
disambiguated uCFG, the Example 4 construction, the d-representation,
and the certified lower bound.  The orderings the theory predicts —
``CFG ≪ NFA ≪ DFA ≈ uCFG`` — are all visible and asserted.
"""

from __future__ import annotations

from repro.factorized.convert import cfg_to_drep
from repro.core.lower_bound import ucfg_size_lower_bound
from repro.grammars.disambiguate import disambiguate
from repro.languages.dfa_ln import ln_match_minimal_dfa, ln_minimal_dfa
from repro.languages.ln import count_ln
from repro.languages.nfa_ln import ln_match_nfa, ln_nfa_exact
from repro.languages.small_grammar import small_ln_grammar
from repro.languages.unambiguous_grammar import example4_size
from repro.util.tables import Table


def _sweep() -> Table:
    table = Table(
        [
            "n",
            "|L_n|",
            "CFG",
            "d-rep",
            "NFA",
            "exact NFA",
            "DFA(match)",
            "DFA(exact)",
            "uCFG (min DFA)",
            "Ex.4 uCFG",
        ],
        title="E14: every representation of L_n, exact sizes",
    )
    for n in (2, 3, 4, 5):
        grammar = small_ln_grammar(n)
        drep = cfg_to_drep(grammar)
        ucfg, _report = disambiguate(grammar, verify=False)
        table.add_row(
            [
                n,
                count_ln(n),
                grammar.size,
                drep.size,
                ln_match_nfa(n).n_states,
                ln_nfa_exact(n).n_states,
                ln_match_minimal_dfa(n).n_states,
                ln_minimal_dfa(n).n_states,
                ucfg.size,
                example4_size(n),
            ]
        )
    return table


def test_e14_zoo_table(benchmark, report):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    note = (
        "Already at n = 5 the deterministic/unambiguous representations\n"
        "(DFA, uCFG) have left the nondeterministic/ambiguous ones (CFG,\n"
        "NFA) behind — the theory's hierarchy CFG Θ(log n) < NFA Θ(n) <\n"
        "exact-NFA Θ(n²) < DFA/uCFG 2^Θ(n), with exact counts."
    )
    report(table, note)
    # Spot-check the orderings at n = 5.
    n = 5
    assert small_ln_grammar(n).size < ln_nfa_exact(n).n_states
    assert ln_match_nfa(n).n_states < ln_minimal_dfa(n).n_states
    ucfg, _ = disambiguate(small_ln_grammar(n), verify=False)
    assert ucfg.size > small_ln_grammar(n).size


def test_e14_lower_bound_consistency(benchmark):
    def check() -> bool:
        # The certified bound never exceeds any actual uCFG we can build.
        for n in (2, 3, 4, 5):
            ucfg, _ = disambiguate(small_ln_grammar(n), verify=False)
            assert ucfg_size_lower_bound(n) <= ucfg.size
            assert ucfg_size_lower_bound(n) <= example4_size(n)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_e14_dfa_build_speed(benchmark):
    dfa = benchmark(ln_match_minimal_dfa, 8)
    assert dfa.n_states > 100
