"""E8 — Theorem 17 via the classical route: rank bounds and exact covers.

Rows: the exact rank over ℚ of the intersection matrix (``2^p - 1``),
fooling-set bounds, greedy disjoint covers, and — for the tiny instances
where exhaustive search is feasible — the exact minimum disjoint cover,
sandwiched between the rank lower bound and the greedy upper bound.
"""

from __future__ import annotations

from repro.comm import (
    disjointness_matrix,
    equality_matrix,
    fooling_set_bound,
    greedy_disjoint_cover,
    intersection_matrix,
    minimum_disjoint_cover,
    rank_over_gf2,
    rank_over_q,
    verify_disjoint_cover,
)
from repro.util.tables import Table


def _sweep() -> Table:
    table = Table(
        [
            "p",
            "rank_Q(INTERSECT)",
            "2^p - 1",
            "rank_GF2",
            "fooling bd",
            "greedy cover",
            "min cover",
        ],
        title="E8 (Theorem 17 route): rank and cover numbers of INTERSECT_p",
    )
    for p in range(1, 7):
        matrix = intersection_matrix(p)
        rank_q = rank_over_q(matrix)
        assert rank_q == 2**p - 1
        greedy = greedy_disjoint_cover(matrix)
        assert verify_disjoint_cover(matrix, greedy)
        minimum = len(minimum_disjoint_cover(matrix)) if p <= 2 else None
        table.add_row(
            [
                p,
                rank_q,
                2**p - 1,
                rank_over_gf2(matrix) if p <= 5 else "-",
                fooling_set_bound(matrix) if p <= 5 else "-",
                len(greedy),
                minimum if minimum is not None else "-",
            ]
        )
    return table


def test_e8_rank_table(benchmark, report):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    note = (
        "rank_Q(INTERSECT_p) = 2^p - 1 exactly, so any disjoint rectangle\n"
        "cover of the 1s has >= 2^p - 1 rectangles — the 'immediate' proof of\n"
        "Theorem 17 the paper mentions; its discrepancy proof replaces this\n"
        "because rank does not survive per-rectangle partitions.  For p <= 2\n"
        "the exact minimum cover meets the rank bound."
    )
    report(table, note)


def test_e8_other_matrices(benchmark, report):
    def build() -> Table:
        table = Table(
            ["p", "rank EQ = 2^p", "rank DISJ = 2^p"],
            title="E8b: neighbouring classical matrices",
        )
        for p in (1, 2, 3, 4, 5):
            table.add_row(
                [p, rank_over_q(equality_matrix(p)), rank_over_q(disjointness_matrix(p))]
            )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    report(table)


def test_e8_rank_speed(benchmark):
    matrix = intersection_matrix(6)  # 64 x 64 exact fractions
    assert benchmark(rank_over_q, matrix) == 63


def test_e8_min_cover_speed(benchmark):
    matrix = intersection_matrix(2)
    cover = benchmark(minimum_disjoint_cover, matrix)
    assert len(cover) == 3


def test_e8_theorem17_bridge(benchmark, report):
    """The executable reduction: [1, n]-covers of L_n ARE matrix 1-covers."""

    def run() -> Table:
        from repro.core.matrix_bridge import (
            ln_cover_to_matrix_cover,
            matrix_rectangle_to_set_rectangle,
            rank_bound_for_split_covers,
        )

        table = Table(
            ["n", "rank bound 2^n - 1", "min [1,n]-cover of L_n"],
            title="E8c: Theorem 17 through the matrix bridge",
        )
        for n in (1, 2):
            matrix = intersection_matrix(n)
            matrix_cover = minimum_disjoint_cover(matrix)
            set_cover = [
                matrix_rectangle_to_set_rectangle(r, matrix, n)
                for r in matrix_cover
            ]
            # Round-trip: the set cover translates back and verifies.
            ln_cover_to_matrix_cover(set_cover, n)
            table.add_row([n, rank_bound_for_split_covers(n), len(matrix_cover)])
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    note = (
        "A disjoint [1, n]-rectangle cover of L_n is literally a disjoint\n"
        "1-cover of INTERSECT_n, so rank_Q = 2^n - 1 lower-bounds it — and\n"
        "the exact minima meet the bound.  This is the 'immediate' Theorem\n"
        "17; the paper's discrepancy proof exists because rank does not\n"
        "survive per-rectangle partitions (Proposition 16)."
    )
    report(table, note)


def test_e8_overlap_vs_disjoint(benchmark, report):
    """Example 8's phenomenon on the matrix side: p overlapping rectangles
    versus 2^p - 1 disjoint ones."""

    def run() -> Table:
        from repro.comm.nondeterministic import (
            element_cover_for_intersection,
            verify_overlapping_cover,
        )

        table = Table(
            ["p", "overlapping cover", "disjoint cover >= rank", "gap"],
            title="E8d: nondeterminism vs unambiguity on INTERSECT_p",
        )
        for p in (2, 3, 4, 5, 6):
            matrix, cover = element_cover_for_intersection(p)
            assert verify_overlapping_cover(matrix, cover)
            disjoint_bound = 2**p - 1
            table.add_row([p, len(cover), disjoint_bound, f"{disjoint_bound / p:.1f}x"])
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    note = (
        "p overlapping rectangles always suffice (one per element — the\n"
        "matrix twin of Example 8's n overlapping rectangles for L_n) while\n"
        "disjoint covers need 2^p - 1 (rank).  Cheap nondeterminism, costly\n"
        "unambiguity: the same asymmetry the paper proves for grammars."
    )
    report(table, note)
