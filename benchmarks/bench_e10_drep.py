"""E10 — [20]'s isomorphism: CFGs ↔ d-representations, sizes preserved.

Rows: per grammar, the grammar size, the d-rep size under the matched
measure, round-trip language equality, and determinism preservation for
the unambiguous cases.
"""

from __future__ import annotations

from repro.factorized import cfg_to_drep, drep_to_cfg, product_drep
from repro.grammars.ambiguity import is_unambiguous
from repro.grammars.analysis import trim
from repro.grammars.cfg import grammar_from_mapping
from repro.grammars.language import language
from repro.languages.example3 import example3_grammar
from repro.languages.small_grammar import small_ln_grammar
from repro.languages.unambiguous_grammar import example4_ucfg
from repro.util.tables import Table


def _corpus():
    return {
        "two-words": grammar_from_mapping("ab", {"S": ["ab", "ba"]}, "S"),
        "nested": grammar_from_mapping("ab", {"S": ["aXb"], "X": ["ab", "ba", ""]}, "S"),
        "example3-k1": example3_grammar(1),
        "example3-k4": example3_grammar(4),
        "smallgrammar-n4": small_ln_grammar(4),
        "smallgrammar-n1000": small_ln_grammar(1000),
        "example4-n2": example4_ucfg(2),
        "example4-n3": example4_ucfg(3),
    }


def _sweep() -> Table:
    table = Table(
        ["grammar", "|G| (trim)", "drep size", "nodes", "roundtrip", "determinism"],
        title="E10 ([20]): the CFG <-> d-representation isomorphism",
    )
    for name, grammar in _corpus().items():
        drep = cfg_to_drep(grammar)
        trimmed = trim(grammar)
        # Round-trip only when the language is small enough to materialise.
        from repro.grammars.language import count_derivations

        small_language = count_derivations(trimmed) <= 100_000
        if small_language:
            roundtrip = language(drep_to_cfg(drep, grammar.alphabet)) == language(grammar)
            determinism = (
                "preserved"
                if not is_unambiguous(grammar) or drep.is_unambiguous()
                else "LOST"
            )
        else:
            roundtrip, determinism = "-", "-"
        table.add_row(
            [name, trimmed.size, drep.size, drep.n_nodes, roundtrip, determinism]
        )
    return table


def test_e10_isomorphism_table(benchmark, report):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    note = (
        "Sizes agree under the matched measure (union gates pay per rule,\n"
        "concatenation gates per body symbol), languages round-trip exactly,\n"
        "and unambiguous grammars map to deterministic d-representations —\n"
        "so the paper's uCFG lower bound is verbatim a lower bound on\n"
        "deterministic factorised representations."
    )
    report(table, note)


def test_e10_product_relation_factorisation(benchmark, report):
    def build() -> Table:
        table = Table(
            ["columns", "tuples", "drep size"],
            title="E10b: product relations factorise exponentially",
        )
        for k in (4, 8, 12, 16):
            drep = product_drep([["a", "b"]] * k)
            table.add_row([k, 2**k, drep.size])
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    report(table)


def test_e10_forward_speed(benchmark):
    grammar = small_ln_grammar(10**5)
    drep = benchmark(cfg_to_drep, grammar)
    assert drep.size >= grammar.size // 2


def test_e10_roundtrip_speed(benchmark):
    drep = cfg_to_drep(example4_ucfg(3))

    def roundtrip():
        return drep_to_cfg(drep, "ab")

    grammar = benchmark(roundtrip)
    assert language(grammar) == drep.language()
