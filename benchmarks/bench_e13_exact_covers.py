"""E13 — ground truth at tiny scale: exact multi-partition covers of ``L_n``.

Proposition 16 is about the *multi-partition* disjoint cover number of
``L_n`` — a quantity no general algorithm computes.  At machine scale it
can be found directly: rows give, per ``n``, the complete-search optimum
(``n ≤ 2``), the restricted branch-and-bound value, the Proposition 7
extraction from the constructed uCFG (an upper bound), and the certified
Theorem 12 lower bound — all mutually sandwiching correctly.
"""

from __future__ import annotations

from repro.core.cover import balanced_rectangle_cover
from repro.core.lower_bound import multipartition_cover_lower_bound
from repro.core.multipartition import (
    exhaustive_minimum_balanced_cover,
    minimum_balanced_cover_of_ln,
    verify_balanced_cover,
)
from repro.core.setview import word_to_zset
from repro.languages.ln import ln_words
from repro.languages.unambiguous_grammar import example4_ucfg
from repro.util.tables import Table


def _target(n: int):
    return frozenset(word_to_zset(w) for w in ln_words(n))


def _sweep() -> Table:
    table = Table(
        [
            "n",
            "|L_n|",
            "lower bd (Thm 12)",
            "exact optimum",
            "restricted B&B",
            "Prop.7 from uCFG",
        ],
        title="E13: the multi-partition disjoint cover number of L_n, measured",
    )
    for n in (1, 2, 3):
        target = _target(n)
        lower = multipartition_cover_lower_bound(n)
        exact = len(exhaustive_minimum_balanced_cover(target, n)) if n <= 2 else None
        bnb_cover = minimum_balanced_cover_of_ln(n, node_budget=2_000_000)
        assert verify_balanced_cover(bnb_cover, target)
        extracted = balanced_rectangle_cover(example4_ucfg(n))
        assert extracted.disjoint
        if exact is not None:
            assert lower <= exact <= len(bnb_cover) <= extracted.n_rectangles
        table.add_row(
            [
                n,
                len(target),
                lower,
                exact if exact is not None else "-",
                len(bnb_cover),
                extracted.n_rectangles,
            ]
        )
    return table


def test_e13_exact_cover_table(benchmark, report):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    note = (
        "For n = 2 the true optimum is 3 (complete search over all 25\n"
        "rectangle member-sets): L_2 genuinely cannot be written as a\n"
        "disjoint union of two balanced ordered rectangles, even choosing a\n"
        "different partition per rectangle.  The certified bound (column 3)\n"
        "is far below at tiny n — its constants only bite for large n —\n"
        "while the Prop. 7 extraction gives the constructive upper bound."
    )
    report(table, note)


def test_e13_exhaustive_speed(benchmark):
    target = _target(2)
    cover = benchmark(exhaustive_minimum_balanced_cover, target, 2)
    assert len(cover) == 3


def test_e13_bnb_speed(benchmark):
    cover = benchmark.pedantic(
        minimum_balanced_cover_of_ln, args=(3,), kwargs={"node_budget": 2_000_000},
        rounds=1, iterations=1,
    )
    assert verify_balanced_cover(cover, _target(3))
