"""E11 — the introduction's CSV extraction scenario.

Rows: the column-match CFG size as the selected column set ``S`` grows
(linear), brute-force language verification at small scale, the ``L_n``
reduction checked exhaustively, and the transferred uCFG lower bound
(exponential in ``|S|``).

Membership checks route through the streaming extraction pipeline's
compiled packed scanner (docs/EXTRACT.md) when ``E11_EXTRACT_PIPELINE=1``
is set; the legacy per-document ``is_column_match`` stays as the parity
check either way, and ``test_e11_streaming_pipeline_parity`` asserts the
chunked pipeline agrees with it on a randomized stream unconditionally.
"""

from __future__ import annotations

import os

from repro.extract import StreamSpec, compile_scanner, scan_stream
from repro.extract.spec import relation_pairs
from repro.grammars.ambiguity import is_unambiguous
from repro.grammars.language import language
from repro.languages.ln import is_in_ln
from repro.spanners import (
    column_match_cfg,
    encode_ln_word,
    is_column_match,
    transferred_ucfg_lower_bound,
)
from repro.util.tables import Table, format_int
from repro.words.alphabet import AB
from repro.words.ops import all_words

USE_PIPELINE = os.environ.get("E11_EXTRACT_PIPELINE") == "1"


def _match_checker(c: int, w: int, cols: list[int]):
    """Membership in M(c, w, S): compiled scanner or legacy brute force."""
    if USE_PIPELINE:
        scanner = compile_scanner(c, w, cols, relation_pairs("match", w))

        def check(word: str) -> bool:
            member = scanner.accepts(word)
            # Legacy parity: the brute-force path must agree word by word.
            assert member == is_column_match(word, c, w, cols)
            return member

        return check
    return lambda word: is_column_match(word, c, w, cols)


def _size_sweep() -> Table:
    table = Table(
        ["columns c", "|S|", "width w", "CFG size", "verified"],
        title="E11a: column-match CFG size is linear in |S|",
    )
    for s_count in (1, 2, 4, 8, 16, 32, 64):
        grammar = column_match_cfg(64, 2, list(range(1, s_count + 1)))
        table.add_row([64, s_count, 2, grammar.size, "-"])
    for c, w, cols in ((2, 1, [1, 2]), (3, 1, [1, 3]), (2, 2, [1, 2])):
        grammar = column_match_cfg(c, w, cols)
        check = _match_checker(c, w, cols)
        expected = {word for word in all_words(AB, 2 * c * w) if check(word)}
        assert language(grammar) == expected
        table.add_row([c, len(cols), w, grammar.size, "exhaustive"])
    return table


def test_e11_size_table(benchmark, report):
    table = benchmark.pedantic(_size_sweep, rounds=1, iterations=1)
    sizes = [
        column_match_cfg(64, 2, list(range(1, s + 1))).size for s in (16, 32, 64)
    ]
    increments = [b - a for a, b in zip(sizes, sizes[1:])]
    per_column = [inc / 16 for inc in increments]  # 16 and 32 new columns
    per_column[1] /= 2
    note = (
        f"Per-column cost {per_column} stays bounded (fillers contribute a\n"
        "fluctuating popcount term): the grammar is linear in |S| plus a\n"
        "log-size filler core."
    )
    report(table, note)
    # Linear growth: doubling the new columns roughly doubles the increment.
    assert 1.5 <= increments[1] / increments[0] <= 2.5
    assert max(per_column) <= 30


def test_e11_ambiguity(benchmark):
    def check() -> tuple[bool, bool]:
        single = is_unambiguous(column_match_cfg(2, 1, [1]))
        double = is_unambiguous(column_match_cfg(2, 1, [1, 2]))
        return single, double

    single, double = benchmark.pedantic(check, rounds=1, iterations=1)
    assert single and not double


def test_e11_reduction_table(benchmark, report):
    def build() -> Table:
        table = Table(
            ["n = |S|", "reduction verified", "uCFG lower bound (match lang.)"],
            title="E11b: the L_n reduction and the transferred bound",
        )
        for n in (1, 2, 3):
            check = _match_checker(n, 2, list(range(1, n + 1)))
            agree = all(
                is_in_ln(w, n) == check(encode_ln_word(w, n))
                for w in all_words(AB, 2 * n)
            )
            assert agree
            table.add_row([n, "exhaustive", format_int(transferred_ucfg_lower_bound(n))])
        for n in (256, 1024, 4096, 16384):
            table.add_row([n, "-", format_int(transferred_ucfg_lower_bound(n))])
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    note = (
        "Any unambiguous grammar for 'rows agree on a column of S' is\n"
        "exponentially large in |S| — the introduction's claim, with the\n"
        "constants inherited from Theorem 12 via the width-2 encoding."
    )
    report(table, note)


def test_e11_grammar_build_speed(benchmark):
    grammar = benchmark(column_match_cfg, 256, 2, list(range(1, 65)))
    assert grammar.size > 0


def test_e11_streaming_pipeline_parity(benchmark):
    """The chunked pipeline's match set equals the legacy per-doc check."""
    spec = StreamSpec(
        c=4, w=2, columns=(1, 2, 3), n_docs=400, seed=11, match_bias=0.3
    )
    result = benchmark.pedantic(
        lambda: scan_stream(spec, chunk_chars=97, collect_ids=True),
        rounds=1,
        iterations=1,
    )
    legacy = [
        index
        for index, doc in enumerate(spec.iter_documents())
        if is_column_match(doc, spec.c, spec.w, spec.columns)
    ]
    assert result["match_ids"] == legacy
    assert result["matches"] == len(legacy)
