"""E7 — Lemmas 19/23: rectangle discrepancy bounds, measured exactly.

Part A measures, for each neat balanced partition, the exact maximum of
``||R∩A| - |R∩B||`` over *all* rectangles of that partition (via the
Gray-code bilinear maximiser) and compares it to the Lemma 19/23 caps.

Part B is the design ablation DESIGN.md calls out: rebuild the Section
4.2 machinery with interval width ``w ∈ {2, 3, 4, 5}`` instead of 4 and
measure the per-block margin base ``(w²-w) - (w²-2w) = w`` against the
per-block maximum discrepancy base.  Width 4 is the smallest for which
the margin base strictly exceeds the discrepancy base — i.e. the
smallest width for which the paper's argument yields an exponential
bound.
"""

from __future__ import annotations

import itertools

from repro.core.discrepancy import (
    lemma19_bound,
    lemma23_bound,
    max_bilinear_form,
    max_discrepancy_over_partition,
)
from repro.core.partitions import iter_neat_balanced_partitions
from repro.util.tables import Table


def _neat_partition_sweep() -> Table:
    table = Table(
        ["m", "partition [lo,hi]", "max |disc| (exact)", "Lemma19 2^{3m}", "Lemma23 cap"],
        title="E7a: exact maximum discrepancy per neat balanced partition",
    )
    for m in (1, 2):
        for partition in iter_neat_balanced_partitions(m):
            value, exact = max_discrepancy_over_partition(partition, m)
            assert exact
            assert value <= lemma23_bound(m)
            table.add_row(
                [
                    m,
                    f"[{partition.lo},{partition.hi}]",
                    value,
                    lemma19_bound(m),
                    lemma23_bound(m),
                ]
            )
    return table


def test_e7_neat_partition_table(benchmark, report):
    table = benchmark.pedantic(_neat_partition_sweep, rounds=1, iterations=1)
    note = (
        "Every measured maximum respects the caps; for the X/Y split\n"
        "partition the Lemma 19 bound 2^{3m} is exactly tight (the all-of-𝓛\n"
        "rectangle attains it)."
    )
    report(table, note)


def _width_sign_matrix(w: int, m: int) -> list[list[int]]:
    """Tensor power of the w×w base matrix ((-1) on the diagonal)."""
    rows = []
    for u in itertools.product(range(w), repeat=m):
        row = []
        for v in itertools.product(range(w), repeat=m):
            matches = sum(1 for a, b in zip(u, v) if a == b)
            row.append(-1 if matches % 2 == 0 else 1)
        rows.append(row)
    return rows


def _width_margin(w: int, m: int) -> int:
    """The Lemma 18 margin for interval width w: (w²-w)^m - (w²-2w)^m."""
    return (w * w - w) ** m - (w * w - 2 * w) ** m


def _width_disc(w: int, m: int) -> tuple[int, bool]:
    matrix = _width_sign_matrix(w, m)
    value, exact = max_bilinear_form(matrix, exact_limit=16)
    if not exact:
        value, exact = max_bilinear_form(matrix, exact_limit=0)
    return value, exact


def _ablation() -> Table:
    table = Table(
        [
            "width w",
            "margin m=1/m=2",
            "disc m=1/m=2",
            "margin growth",
            "disc growth",
            "exp. gap",
        ],
        title="E7b (ablation): interval width vs the margin/discrepancy race",
    )
    for w in (2, 3, 4, 5):
        margin1, margin2 = _width_margin(w, 1), _width_margin(w, 2)
        disc1, _ = _width_disc(w, 1)
        disc2, exact2 = _width_disc(w, 2)
        margin_growth = margin2 / margin1
        disc_growth = disc2 / disc1
        table.add_row(
            [
                w,
                f"{margin1}/{margin2}",
                f"{disc1}/{disc2}" + ("" if exact2 else "~"),
                f"{margin_growth:.2f}x",
                f"{disc_growth:.2f}x",
                margin_growth > disc_growth,
            ]
        )
    return table


def test_e7_width_ablation_table(benchmark, report):
    table = benchmark.pedantic(_ablation, rounds=1, iterations=1)
    note = (
        "The cover lower bound is margin / max-disc, so an exponential gap\n"
        "needs the margin to *grow* strictly faster per block than the\n"
        "maximum discrepancy.  Width 2 fails (discrepancy keeps pace).\n"
        "Width 3 already shows a measured gap (9x vs 4x), but only width 4 —\n"
        "the paper's choice — makes the two-value flip probability\n"
        "P(C_i) = 2/w exactly 1/2, so the expectation argument of Lemma 19\n"
        "cancels exactly and yields a *provable* per-block cap (2^{3m});\n"
        "for other widths the cap would need a different proof.  '~' marks\n"
        "heuristic (lower-bound) discrepancy values."
    )
    report(table, note)
    # Width 4: margin grows strictly faster than the measured discrepancy.
    m1 = _width_margin(4, 1), _width_disc(4, 1)[0]
    m2 = _width_margin(4, 2), _width_disc(4, 2)[0]
    assert m2[0] / m1[0] > m2[1] / m1[1]
    # Width 2: no gap — margin and discrepancy both exactly double.
    assert _width_margin(2, 2) / _width_margin(2, 1) == 2.0
    assert _width_disc(2, 2)[0] / _width_disc(2, 1)[0] >= 2.0


def test_e7_maximiser_speed(benchmark):
    matrix = _width_sign_matrix(4, 2)  # 16 x 16, exact Gray-code sweep
    value, exact = benchmark(max_bilinear_form, matrix)
    assert exact and value == 64


def _corollary20_sweep() -> Table:
    import random

    from repro.core.discrepancy import max_discrepancy_any_partition
    from repro.core.setview import OrderedPartition

    table = Table(
        ["m", "interval [i, i+n-1]", "block-aligned", "max |disc|", "2^{3m} cap", "within"],
        title="E7c (finding F5): Corollary 20 on shifted full-split intervals",
    )
    for m in (1, 2):
        n = 4 * m
        for i in range(1, n + 2):
            partition = OrderedPartition(n=n, lo=i, hi=i + n - 1)
            aligned = (i - 1) % 4 == 0
            value, exact = max_discrepancy_any_partition(
                partition, m, rng=random.Random(0)
            )
            table.add_row(
                [
                    m,
                    f"[{i},{i + n - 1}]",
                    aligned,
                    f"{value}" + ("" if exact else "~"),
                    lemma19_bound(m),
                    value <= lemma19_bound(m),
                ]
            )
    return table


def test_e7_corollary20_shifted_intervals(benchmark, report):
    table = benchmark.pedantic(_corollary20_sweep, rounds=1, iterations=1)
    note = (
        "Corollary 20 as *stated* covers every interval with j - i = n - 1,\n"
        "but off block boundaries the measured maxima (9, 10 at m = 1 —\n"
        "exact; >= 69, 80 at m = 2) exceed the stated 2^{3m} cap: the\n"
        "Lemma 19 proof needs each size-4 interval on one side of the\n"
        "partition.  The corollary is only ever *applied* (inside Lemma 23,\n"
        "after the neat restriction) in block-aligned form, where the cap\n"
        "holds and is tight — and the observed ~10^m worst case still sits\n"
        "below Lemma 23's 2^{10m/3} ≈ 10.08^m, so Theorem 12 is unharmed.\n"
        "('~' marks heuristic lower bounds.)"
    )
    report(table, note)
    # The m = 1 violations are exact and specific.
    from repro.core.discrepancy import max_discrepancy_any_partition
    from repro.core.setview import OrderedPartition

    value, exact = max_discrepancy_any_partition(OrderedPartition(n=4, lo=3, hi=6), 1)
    assert exact and value == 10 > lemma19_bound(1)
