"""E12 — the constructive converse: finite-language CFG → uCFG.

The Related Work recalls [20]'s upper bound: any finite-language CFG has
an equivalent uCFG at most doubly exponentially larger, and Theorem 1
shows this is tight.  Rows: the pipeline sizes (source grammar →
enumerated language → minimal DFA → right-linear uCFG) on the corpus and
the ``L_n`` grammars, where the blow-up trend is visible directly.
"""

from __future__ import annotations

from repro.grammars.ambiguity import is_unambiguous
from repro.grammars.cfg import grammar_from_mapping
from repro.grammars.disambiguate import disambiguate
from repro.grammars.language import same_language
from repro.languages.example3 import example3_grammar
from repro.languages.small_grammar import small_ln_grammar
from repro.util.tables import Table


def _cases():
    return {
        "two-words": grammar_from_mapping("ab", {"S": ["ab", "ba"]}, "S"),
        "nested": grammar_from_mapping("ab", {"S": ["aXb"], "X": ["ab", "ba", ""]}, "S"),
        "smallgrammar (L_3)": small_ln_grammar(3),
        "smallgrammar (L_5)": small_ln_grammar(5),
        "smallgrammar (L_7)": small_ln_grammar(7),
        "example3-k1 (L_3)": example3_grammar(1),
        "example3-k2 (L_5)": example3_grammar(2),
    }


def _sweep() -> Table:
    table = Table(
        ["grammar", "|G|", "|L(G)|", "DFA states", "|uCFG|", "blow-up"],
        title="E12 ([20] upper bound): disambiguation pipeline sizes",
    )
    for name, grammar in _cases().items():
        result, rep = disambiguate(grammar, verify=False)
        assert same_language(result, grammar)
        assert is_unambiguous(result)
        table.add_row(
            [
                name,
                rep.source_size,
                rep.language_size,
                rep.dfa_states,
                rep.result_size,
                f"{rep.blow_up:.1f}x",
            ]
        )
    return table


def test_e12_disambiguation_table(benchmark, report):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    note = (
        "The blow-up column grows with n on the L_n grammars while the\n"
        "source size stays Θ(log n): the constructive upper bound marches\n"
        "towards the double exponential that Theorem 1 proves unavoidable."
    )
    report(table, note)


def test_e12_blowup_grows_with_n(benchmark):
    def ratios() -> list[float]:
        values = []
        for n in (3, 5, 7):
            _res, rep = disambiguate(small_ln_grammar(n), verify=False)
            values.append(rep.blow_up)
        return values

    values = benchmark.pedantic(ratios, rounds=1, iterations=1)
    assert values == sorted(values)


def test_e12_pipeline_speed(benchmark):
    grammar = small_ln_grammar(5)

    def run():
        return disambiguate(grammar, verify=False)

    _result, rep = benchmark(run)
    assert rep.language_size == 4**5 - 3**5
