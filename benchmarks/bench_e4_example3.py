"""E4 — Example 3: the ``Θ(k)`` grammar ``G_k`` for ``L_{2^k+1}``.

Rows: ``k``, exact size (formula ``6k + 10`` vs constructed), the language
parameter ``n = 2^k + 1``, exhaustive language verification for ``k ≤ 2``,
and the ambiguity statistics (Figure 1's two parse trees of ``aaaaaa``
regenerated programmatically).
"""

from __future__ import annotations

from repro.grammars.ambiguity import ambiguity_witness, max_ambiguity
from repro.grammars.generic import GenericParser
from repro.grammars.language import count_derivations, language
from repro.languages.example3 import (
    example3_grammar,
    example3_language_parameter,
    example3_size,
)
from repro.languages.ln import count_ln, ln_words
from repro.util.tables import Table, format_int


def _sweep() -> Table:
    table = Table(
        ["k", "size", "formula 6k+10", "n = 2^k+1", "|L_n|", "derivations", "verified"],
        title="E4 (Example 3): linear grammars for exponentially long L_n",
    )
    for k in range(1, 11):
        grammar = example3_grammar(k)
        n = example3_language_parameter(k)
        verified = "-"
        if k <= 2:
            assert language(grammar) == ln_words(n)
            verified = "exhaustive"
        derivations = count_derivations(grammar) if k <= 6 else None
        table.add_row(
            [
                k,
                grammar.size,
                example3_size(k),
                n,
                format_int(count_ln(n)),
                format_int(derivations) if derivations is not None else "-",
                verified,
            ]
        )
    return table


def test_e4_example3_table(benchmark, report):
    table = benchmark(_sweep)
    note = (
        "Size grows as 6k + 10 = Θ(k) = Θ(log n) while |L_n| = 4^n - 3^n is\n"
        "doubly exponential in k.  The derivation count exceeding |L_n| is\n"
        "the ambiguity the paper's Figure 1 illustrates."
    )
    report(table, note)


def test_e4_figure1_witness(benchmark, report):
    def witness():
        return ambiguity_witness(example3_grammar(1))

    result = benchmark.pedantic(witness, rounds=1, iterations=1)
    assert result is not None
    word, tree1, tree2 = result
    assert word == "aaaaaa" or len(word) == 6
    assert tree1 != tree2
    parser = GenericParser(example3_grammar(1))
    assert parser.count("aaaaaa") >= 2


def test_e4_max_ambiguity(benchmark):
    value = benchmark.pedantic(
        max_ambiguity, args=(example3_grammar(1),), rounds=1, iterations=1
    )
    assert value >= 2


def test_e4_parse_count_speed(benchmark):
    grammar = example3_grammar(4)  # words of length 2 * 17 = 34
    word = "a" * 34
    parser = GenericParser(grammar)
    count = benchmark(parser.count, word)
    assert count >= 1
