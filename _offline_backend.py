"""In-tree PEP 517 build backend for offline environments.

This execution environment has no network access, so pip's build
isolation cannot download `setuptools`/`wheel`.  This shim re-exposes the
interpreter's globally installed setuptools backend inside the isolated
build environment by appending the global site-packages to sys.path.
It changes nothing else about the build.
"""

import site
import sys

for _path in site.getsitepackages():
    if _path not in sys.path:
        sys.path.append(_path)

from setuptools.build_meta import *  # noqa: F401,F403
from setuptools.build_meta import (  # noqa: F401
    build_editable,
    get_requires_for_build_editable,
    prepare_metadata_for_build_editable,
)


def get_requires_for_build_wheel(config_settings=None):  # noqa: D103
    return []


def get_requires_for_build_editable(config_settings=None):  # noqa: D103
    return []


def get_requires_for_build_sdist(config_settings=None):  # noqa: D103
    return []
