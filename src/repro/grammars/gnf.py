"""Greibach normal form for finite-language grammars.

In GNF every rule is ``A → a B_1 ... B_k`` (a terminal followed by
non-terminals); derivations then consume one input symbol per step,
which gives top-down parsers without lookahead pathologies and makes the
derivation length equal the word length.  General GNF conversion fights
left recursion, but the paper's world is finite languages — whose
trimmed grammars are *acyclic* — so conversion is a clean topological
substitution: expand each rule's leading non-terminals until a terminal
surfaces.

The size can blow up exponentially (the leading-prefix expansion
multiplies out alternatives), which tests document; for the paper's
log-size `L_n` grammars the growth stays modest at small `n`.
"""

from __future__ import annotations

from repro.errors import GrammarError
from repro.grammars.analysis import require_finite_language, trim
from repro.grammars.cfg import CFG, NonTerminal, Rule, Symbol
from repro.grammars.cnf import to_cnf
from repro.grammars.language import _topological_nonterminals

__all__ = ["to_gnf", "is_in_gnf"]


def is_in_gnf(grammar: CFG) -> bool:
    """Whether every rule has the shape ``A → a B_1 ... B_k`` (``k ≥ 0``).

    The start symbol may carry an ε-rule iff it never occurs on a
    right-hand side (same relaxation as for CNF).

    >>> from repro.grammars.cfg import CFG
    >>> g = CFG("ab", ["S", "B"], [("S", ("a", "B")), ("B", ("b",))], "S")
    >>> is_in_gnf(g)
    True
    """
    start_on_rhs = any(grammar.start in rule.rhs for rule in grammar.rules)
    for rule in grammar.rules:
        if len(rule.rhs) == 0:
            if rule.lhs == grammar.start and not start_on_rhs:
                continue
            return False
        head, *tail = rule.rhs
        if not grammar.is_terminal(head):
            return False
        if any(not grammar.is_nonterminal(s) for s in tail):
            return False
    return True


def to_gnf(grammar: CFG, max_rules: int = 200_000) -> CFG:
    """Convert a finite-language grammar to Greibach normal form.

    Pipeline: CNF first (handles ε and unit rules), then expand leading
    non-terminals bottom-up in topological order — sound because trimmed
    finite-language grammars are acyclic.  ``max_rules`` guards the
    exponential prefix expansion.

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> from repro.grammars.language import language
    >>> g = grammar_from_mapping("ab", {"S": ["Xb"], "X": ["ab", "b"]}, "S")
    >>> gnf = to_gnf(g)
    >>> is_in_gnf(gnf), sorted(language(gnf))
    (True, ['abb', 'bb'])
    """
    require_finite_language(grammar, "to_gnf")
    cnf = to_cnf(grammar)
    if not cnf.rules:
        return cnf

    # GNF-ise per non-terminal, children before parents: when we reach A,
    # every non-terminal that can appear in leading position below A is
    # already in GNF, so one substitution round suffices.
    gnf_rules: dict[NonTerminal, list[tuple[Symbol, ...]]] = {}
    for nt in _topological_nonterminals(cnf):
        bodies: list[tuple[Symbol, ...]] = []
        for rule in cnf.rules_for(nt):
            if len(rule.rhs) == 0:
                bodies.append(())  # start ε-rule, handled below
                continue
            head = rule.rhs[0]
            if cnf.is_terminal(head):
                bodies.append(rule.rhs)
            else:
                for expansion in gnf_rules[head]:
                    if not expansion:
                        raise GrammarError(
                            "ε reached leading position during GNF conversion; "
                            "CNF should have prevented this"
                        )
                    bodies.append(expansion + rule.rhs[1:])
                    if len(bodies) > max_rules:
                        raise GrammarError(
                            f"GNF expansion of {nt!r} exceeds max_rules={max_rules}"
                        )
        gnf_rules[nt] = bodies

    rules = [
        Rule(nt, body)
        for nt, bodies in gnf_rules.items()
        for body in bodies
    ]
    result = trim(CFG(cnf.alphabet, cnf.nonterminals, rules, cnf.start))
    if not is_in_gnf(result):  # pragma: no cover - construction guarantees it
        raise GrammarError("GNF conversion produced a non-GNF grammar")
    return result
