"""Deciding (un)ambiguity of finite-language grammars.

Ambiguity of general CFGs is undecidable, but the paper works exclusively
with finite languages, where it is decidable by brute force: enumerate the
language and count the parse trees of every word.  A grammar is
*unambiguous* iff every word of its language has exactly one parse tree
(Section 2).

The counting runs on the original grammar (no normal-form conversion), so
witnesses like Figure 1's two parse trees of ``aaaaaa`` under the
Example 3 grammar come out verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NotUnambiguousError
from repro.grammars.generic import GenericParser
from repro.grammars.language import language
from repro.grammars.cfg import CFG
from repro.grammars.trees import ParseTree

__all__ = [
    "ambiguity_profile",
    "is_unambiguous",
    "require_unambiguous",
    "find_ambiguous_word",
    "ambiguity_witness",
    "max_ambiguity",
]


def ambiguity_profile(grammar: CFG) -> dict[str, int]:
    """Return ``{word: number of parse trees}`` over the whole language.

    Every count is ≥ 1 by construction; a count ≥ 2 witnesses ambiguity.
    """
    parser = GenericParser(grammar)
    return {word: parser.count(word) for word in language(grammar)}


def is_unambiguous(grammar: CFG) -> bool:
    """Decide whether the finite-language grammar is unambiguous.

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> ambiguous = grammar_from_mapping("ab", {"S": ["ab", "aX"], "X": ["b"]}, "S")
    >>> is_unambiguous(ambiguous)
    False
    """
    parser = GenericParser(grammar)
    return all(parser.count(word) == 1 for word in language(grammar))


def require_unambiguous(grammar: CFG, operation: str) -> None:
    """Raise :class:`NotUnambiguousError` unless the grammar is unambiguous."""
    witness = find_ambiguous_word(grammar)
    if witness is not None:
        raise NotUnambiguousError(
            f"{operation} requires an unambiguous grammar, but {witness!r} has "
            "more than one parse tree"
        )


def find_ambiguous_word(grammar: CFG) -> str | None:
    """Return some word with ≥ 2 parse trees, or ``None`` if unambiguous.

    Words are tried shortest-first, so the returned witness is one of the
    shortest ambiguous words.
    """
    parser = GenericParser(grammar)
    for word in sorted(language(grammar), key=lambda w: (len(w), w)):
        if parser.count(word) >= 2:
            return word
    return None


def ambiguity_witness(grammar: CFG) -> tuple[str, ParseTree, ParseTree] | None:
    """Return ``(word, tree1, tree2)`` with two distinct parse trees.

    This reproduces Figure 1 of the paper programmatically: applied to the
    Example 3 grammar it yields a word together with two structurally
    different parse trees.  Returns ``None`` for unambiguous grammars.
    """
    word = find_ambiguous_word(grammar)
    if word is None:
        return None
    trees = GenericParser(grammar).iter_trees(word)
    first = next(trees)
    second = next(trees)
    return word, first, second


def max_ambiguity(grammar: CFG) -> int:
    """Return the largest parse-tree count over all words of the language.

    ``1`` for unambiguous grammars, ``0`` for the empty language.
    """
    profile = ambiguity_profile(grammar)
    return max(profile.values(), default=0)
