"""Deciding (un)ambiguity of finite-language grammars.

Ambiguity of general CFGs is undecidable, but the paper works exclusively
with finite languages, where it is decidable by brute force: enumerate the
language and count the parse trees of every word.  A grammar is
*unambiguous* iff every word of its language has exactly one parse tree
(Section 2).

The counting runs on the original grammar (no normal-form conversion), so
witnesses like Figure 1's two parse trees of ``aaaaaa`` under the
Example 3 grammar come out verbatim.  Each word is parsed exactly once:
the packed-forest chart built to count trees is the same chart the
witness trees are enumerated from.
"""

from __future__ import annotations

from repro.errors import NotUnambiguousError
from repro.grammars.generic import GenericParser
from repro.grammars.language import language
from repro.grammars.cfg import CFG
from repro.grammars.trees import ParseTree
from repro.kernel.forest import FOREST
from repro.kernel.semiring import COUNTING

__all__ = [
    "ambiguity_profile",
    "is_unambiguous",
    "require_unambiguous",
    "find_ambiguous_word",
    "ambiguity_witness",
    "max_ambiguity",
]


def ambiguity_profile(grammar: CFG) -> dict[str, int]:
    """Return ``{word: number of parse trees}`` over the whole language.

    Every count is ≥ 1 by construction; a count ≥ 2 witnesses ambiguity.
    One counting chart is built per word and serves its single count query.
    """
    parser = GenericParser(grammar)
    return {word: parser.chart(word, COUNTING).value() for word in language(grammar)}


def is_unambiguous(grammar: CFG) -> bool:
    """Decide whether the finite-language grammar is unambiguous.

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> ambiguous = grammar_from_mapping("ab", {"S": ["ab", "aX"], "X": ["b"]}, "S")
    >>> is_unambiguous(ambiguous)
    False
    """
    parser = GenericParser(grammar)
    return all(parser.chart(word, COUNTING).value() == 1 for word in language(grammar))


def require_unambiguous(grammar: CFG, operation: str) -> None:
    """Raise :class:`NotUnambiguousError` unless the grammar is unambiguous."""
    witness = find_ambiguous_word(grammar)
    if witness is not None:
        raise NotUnambiguousError(
            f"{operation} requires an unambiguous grammar, but {witness!r} has "
            "more than one parse tree"
        )


def _first_ambiguous_forest(grammar: CFG):
    """``(word, forest)`` for the first ambiguous word, or ``None``.

    One forest chart per word answers both the count and — for the
    witness — the tree enumeration, so no word is ever parsed twice.
    """
    parser = GenericParser(grammar)
    for word in sorted(language(grammar), key=lambda w: (len(w), w)):
        forest = parser.chart(word, FOREST).value()
        if forest.count() >= 2:
            return word, forest
    return None


def find_ambiguous_word(grammar: CFG) -> str | None:
    """Return some word with ≥ 2 parse trees, or ``None`` if unambiguous.

    Words are tried shortest-first (then lexicographically), so the
    returned witness is the length-lex least ambiguous word.  The search
    is exhaustive and terminates because the grammar has a finite
    language: it is bounded by the longest derivable word — equivalently
    ``max(derivable_lengths(grammar))`` — after which no witness can
    exist, so ``None`` is a proof of unambiguity, not a timeout.
    """
    found = _first_ambiguous_forest(grammar)
    return None if found is None else found[0]


def ambiguity_witness(grammar: CFG) -> tuple[str, ParseTree, ParseTree] | None:
    """Return ``(word, tree1, tree2)`` with two distinct parse trees.

    This reproduces Figure 1 of the paper programmatically: applied to the
    Example 3 grammar it yields a word together with two structurally
    different parse trees.  Returns ``None`` for unambiguous grammars.
    The two trees come from the same packed forest that established the
    count, so the witness word is parsed exactly once.
    """
    found = _first_ambiguous_forest(grammar)
    if found is None:
        return None
    word, forest = found
    trees = forest.trees()
    first = next(trees)
    second = next(trees)
    return word, first, second


def max_ambiguity(grammar: CFG) -> int:
    """Return the largest parse-tree count over all words of the language.

    ``1`` for unambiguous grammars, ``0`` for the empty language.  Like
    :func:`find_ambiguous_word`, the scan covers the whole (finite)
    language — every word up to the longest derivable length — with one
    chart per word.
    """
    profile = ambiguity_profile(grammar)
    return max(profile.values(), default=0)
