"""The context-free-grammar toolchain (Section 2 substrate).

Public surface:

* :class:`~repro.grammars.cfg.CFG`, :class:`~repro.grammars.cfg.Rule` —
  grammars with the paper's size measure ``|G| = Σ |rhs|``;
* :mod:`~repro.grammars.analysis` — trimming, finiteness, Observation 9;
* :mod:`~repro.grammars.cnf` — Chomsky normal form;
* :mod:`~repro.grammars.cyk` / :mod:`~repro.grammars.generic` — parsing,
  parse-tree counting and enumeration (CNF and general form);
* :mod:`~repro.grammars.ambiguity` — deciding unambiguity of finite
  languages, ambiguity witnesses (Figure 1);
* :mod:`~repro.grammars.language` — language extraction and the two
  counting notions (derivations vs words);
* :mod:`~repro.grammars.indexing` — the Lemma 10 position-indexing
  transform;
* :class:`~repro.grammars.ranking.RankedLanguage` — count / rank / unrank
  / sample for unambiguous grammars;
* :mod:`~repro.grammars.disambiguate` — finite-language CFG → uCFG.
"""

from repro.grammars.cfg import CFG, NonTerminal, Rule, Symbol, grammar_from_mapping
from repro.grammars.analysis import (
    derivable_lengths,
    has_finite_language,
    is_empty,
    is_trim,
    productive_nonterminals,
    reachable_nonterminals,
    trim,
    uniform_lengths,
    useful_nonterminals,
)
from repro.grammars.ambiguity import (
    ambiguity_profile,
    ambiguity_witness,
    find_ambiguous_word,
    is_unambiguous,
    max_ambiguity,
)
from repro.grammars.cnf import to_cnf
from repro.grammars.derivation import (
    derivation_steps,
    format_derivation,
    leftmost_derivation,
    replay_derivation,
)
from repro.grammars.cyk import (
    CYKChart,
    count_parse_trees,
    cyk_chart,
    iter_parse_trees,
    one_parse_tree,
    recognises,
)
from repro.grammars.gnf import is_in_gnf, to_gnf
from repro.grammars.generic import (
    GenericParser,
    count_parse_trees_generic,
    iter_parse_trees_generic,
    recognises_generic,
)
from repro.grammars.earley import EarleyChart, earley_parse_positions, earley_recognises
from repro.grammars.indexing import IndexedGrammar, index_by_position
from repro.grammars.language import (
    accepts_language,
    count_derivations,
    count_words,
    derivations_by_length,
    iter_language,
    language,
    languages_by_nonterminal,
    same_language,
    words_by_length,
)
from repro.grammars.lexorder import LexRankedLanguage
from repro.grammars.random_grammars import GrammarShape, random_finite_grammar
from repro.grammars.ranking import RankedLanguage
from repro.grammars.trees import ParseTree, leaf, node

__all__ = [
    "CFG",
    "Rule",
    "NonTerminal",
    "Symbol",
    "grammar_from_mapping",
    "ParseTree",
    "leaf",
    "node",
    # analysis
    "trim",
    "is_trim",
    "is_empty",
    "productive_nonterminals",
    "reachable_nonterminals",
    "useful_nonterminals",
    "has_finite_language",
    "derivable_lengths",
    "uniform_lengths",
    # parsing
    "CYKChart",
    "cyk_chart",
    "recognises",
    "count_parse_trees",
    "iter_parse_trees",
    "one_parse_tree",
    "GenericParser",
    "EarleyChart",
    "earley_recognises",
    "earley_parse_positions",
    "recognises_generic",
    "count_parse_trees_generic",
    "iter_parse_trees_generic",
    # language & counting
    "language",
    "iter_language",
    "languages_by_nonterminal",
    "count_words",
    "count_derivations",
    "derivations_by_length",
    "words_by_length",
    "accepts_language",
    "same_language",
    # ambiguity
    "is_unambiguous",
    "ambiguity_profile",
    "find_ambiguous_word",
    "ambiguity_witness",
    "max_ambiguity",
    # derivations
    "leftmost_derivation",
    "derivation_steps",
    "replay_derivation",
    "format_derivation",
    # transforms
    "to_cnf",
    "to_gnf",
    "is_in_gnf",
    "IndexedGrammar",
    "index_by_position",
    "RankedLanguage",
    "LexRankedLanguage",
    "GrammarShape",
    "random_finite_grammar",
]
