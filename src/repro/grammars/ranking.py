"""Ranked access to the language of an unambiguous grammar.

This is the factorised-database side of the paper made concrete: a uCFG
(equivalently, an unambiguous d-representation) supports *counting*,
*direct access* (fetch the ``r``-th answer), *inverse rank*, *uniform
sampling*, and *enumeration* — all without ever materialising the
language.  None of this works for ambiguous CFGs, where even counting is
#P-complete; that asymmetry is the motivation for studying how small
unambiguous representations can be (Section 1).

The order used is the *derivation order*: words are ordered by their
unique parse tree, comparing rule declaration order at every node, left
to right.  It is a total order on the language of an unambiguous grammar.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.errors import NotUnambiguousError
from repro.grammars.ambiguity import require_unambiguous
from repro.grammars.analysis import require_finite_language, trim
from repro.grammars.cfg import CFG, NonTerminal, Rule
from repro.grammars.generic import GenericParser
from repro.grammars.trees import ParseTree
from repro.kernel.fold import fold_grammar
from repro.kernel.semiring import COUNTING

__all__ = ["RankedLanguage"]


class RankedLanguage:
    """Count / rank / unrank / sample the language of a finite uCFG.

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> g = grammar_from_mapping("ab", {"S": ["aX", "bX"], "X": ["a", "b"]}, "S")
    >>> ranked = RankedLanguage(g)
    >>> ranked.count
    4
    >>> [ranked.unrank(r) for r in range(4)]
    ['aa', 'ab', 'ba', 'bb']
    >>> ranked.rank("ba")
    2
    """

    def __init__(self, grammar: CFG, check_unambiguous: bool = True) -> None:
        require_finite_language(grammar, "RankedLanguage")
        if check_unambiguous:
            require_unambiguous(grammar, "RankedLanguage")
        self.grammar = trim(grammar)
        self._parser = GenericParser(self.grammar)
        # One kernel fold over the counting semiring gives |L(A)| per
        # non-terminal (= derivation counts, since the grammar is uCFG).
        self._counts: dict[NonTerminal, int] = fold_grammar(self.grammar, COUNTING)

    def _rule_count(self, rule: Rule) -> int:
        prod = 1
        for sym in rule.rhs:
            if self.grammar.is_nonterminal(sym):
                prod *= self._counts[sym]
        return prod

    @property
    def count(self) -> int:
        """``|L(G)|`` — exact, computed in time polynomial in ``|G|``."""
        return self._counts.get(self.grammar.start, 0)

    # ------------------------------------------------------------------
    # Direct access
    # ------------------------------------------------------------------

    def unrank(self, index: int, symbol: NonTerminal | None = None) -> str:
        """Return the ``index``-th word (0-based) in derivation order."""
        symbol = symbol if symbol is not None else self.grammar.start
        total = self._counts.get(symbol, 0)
        if not 0 <= index < total:
            raise IndexError(f"rank {index} out of range for a language of size {total}")
        return self._unrank_symbol(symbol, index)

    def _unrank_symbol(self, nt: NonTerminal, index: int) -> str:
        for rule in self.grammar.rules_for(nt):
            rule_total = self._rule_count(rule)
            if index < rule_total:
                return self._unrank_rule(rule, index)
            index -= rule_total
        raise AssertionError("unrank: index exceeded total count")  # pragma: no cover

    def _unrank_rule(self, rule: Rule, index: int) -> str:
        # Mixed-radix decomposition: the leftmost component is the most
        # significant digit, matching the derivation order.
        radices = [
            self._counts[sym] if self.grammar.is_nonterminal(sym) else 1
            for sym in rule.rhs
        ]
        digits: list[int] = [0] * len(radices)
        for pos in range(len(radices) - 1, -1, -1):
            digits[pos] = index % radices[pos]
            index //= radices[pos]
        pieces: list[str] = []
        for sym, digit in zip(rule.rhs, digits):
            if self.grammar.is_terminal(sym):
                pieces.append(sym)
            else:
                pieces.append(self._unrank_symbol(sym, digit))
        return "".join(pieces)

    # ------------------------------------------------------------------
    # Inverse rank
    # ------------------------------------------------------------------

    def rank(self, word: str) -> int:
        """Return the derivation-order rank of ``word`` in ``L(G)``."""
        tree = self._parser.one_tree(word)
        return self._rank_tree(tree)

    def _rank_tree(self, tree: ParseTree) -> int:
        nt = tree.symbol
        applied = tree.rule()
        offset = 0
        for rule in self.grammar.rules_for(nt):
            if rule == applied:
                break
            offset += self._rule_count(rule)
        else:  # pragma: no cover - tree validated against this grammar
            raise NotUnambiguousError(f"tree applies unknown rule {applied}")
        index = 0
        assert tree.children is not None
        for sym, child in zip(applied.rhs, tree.children):
            if self.grammar.is_terminal(sym):
                continue
            index = index * self._counts[sym] + self._rank_tree(child)
        # Re-multiply terminal positions contribute radix 1 (no-op), so the
        # accumulated index is already the mixed-radix value.
        return offset + index

    # ------------------------------------------------------------------
    # Sampling & enumeration
    # ------------------------------------------------------------------

    def sample(self, rng: random.Random | None = None) -> str:
        """Return a uniformly random word of the language."""
        rng = rng if rng is not None else random.Random()
        if self.count == 0:
            raise IndexError("cannot sample from an empty language")
        return self.unrank(rng.randrange(self.count))

    def __iter__(self) -> Iterator[str]:
        """Enumerate the language in derivation order."""
        for index in range(self.count):
            yield self.unrank(index)

    def __len__(self) -> int:
        return self.count
