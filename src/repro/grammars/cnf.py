"""Conversion to Chomsky normal form (Section 2 of the paper).

"It is well-known that any CFG ``G`` can be transformed into an
equivalent one ``G'`` in Chomsky normal form, such that
``|G'| ≤ |G|²``."  This module implements the standard START → TERM →
BIN → DEL → UNIT pipeline (binarising *before* epsilon-elimination, which
keeps DEL linear instead of exponential) followed by trimming, and the
benchmark ``bench_e9`` measures the actual blow-up against the quadratic
bound.

If the source language contains the empty word, the resulting grammar
carries the single relaxed rule ``S₀ → ε`` on a start symbol that never
occurs on a right-hand side; all of the paper's languages are ε-free, in
which case the result is pure CNF.
"""

from __future__ import annotations

from repro.grammars.analysis import nullable_nonterminals, trim
from repro.grammars.cfg import CFG, NonTerminal, Rule, Symbol

__all__ = ["to_cnf"]


class _FreshNamer:
    """Deterministic fresh non-terminal names that never collide."""

    def __init__(self, taken: set[NonTerminal]) -> None:
        self._taken = set(taken)

    def fresh(self, base: str) -> NonTerminal:
        name: NonTerminal = base
        while name in self._taken:
            name = name + "'"
        self._taken.add(name)
        return name


def _start_step(grammar: CFG, namer: _FreshNamer) -> CFG:
    """Introduce a fresh start symbol that never occurs on a right-hand side."""
    new_start = namer.fresh("S0")
    rules = list(grammar.rules)
    rules.append(Rule(new_start, (grammar.start,)))
    return CFG(grammar.alphabet, [new_start, *grammar.nonterminals], rules, new_start)


def _term_step(grammar: CFG, namer: _FreshNamer) -> CFG:
    """Replace terminals inside length-≥2 bodies by proxy non-terminals."""
    proxies: dict[str, NonTerminal] = {}
    new_rules: list[Rule] = []
    new_nts = list(grammar.nonterminals)

    def proxy(terminal: str) -> NonTerminal:
        if terminal not in proxies:
            nt = namer.fresh(f"T_{terminal}")
            proxies[terminal] = nt
            new_nts.append(nt)
            new_rules.append(Rule(nt, (terminal,)))
        return proxies[terminal]

    for rule in grammar.rules:
        if len(rule.rhs) >= 2:
            body = tuple(
                proxy(sym) if grammar.is_terminal(sym) else sym for sym in rule.rhs
            )
            new_rules.append(Rule(rule.lhs, body))
        else:
            new_rules.append(rule)
    return CFG(grammar.alphabet, new_nts, new_rules, grammar.start)


def _bin_step(grammar: CFG, namer: _FreshNamer) -> CFG:
    """Binarise bodies of length ≥ 3 with chains of fresh non-terminals."""
    new_rules: list[Rule] = []
    new_nts = list(grammar.nonterminals)
    for index, rule in enumerate(grammar.rules):
        body = rule.rhs
        if len(body) <= 2:
            new_rules.append(rule)
            continue
        previous: NonTerminal = rule.lhs
        for pos in range(len(body) - 2):
            link = namer.fresh(f"B_{index}_{pos}")
            new_nts.append(link)
            new_rules.append(Rule(previous, (body[pos], link)))
            previous = link
        new_rules.append(Rule(previous, (body[-2], body[-1])))
    return CFG(grammar.alphabet, new_nts, new_rules, grammar.start)


def _del_step(grammar: CFG) -> CFG:
    """Eliminate ε-rules; keep ``S → ε`` iff ε is in the language.

    Bodies have length ≤ 2 at this point, so each rule contributes at most
    three nullable-omission variants.
    """
    nullable = nullable_nonterminals(grammar)
    keeps_epsilon = grammar.start in nullable
    new_rules: set[Rule] = set()
    for rule in grammar.rules:
        # All subsets of nullable occurrences may be omitted.
        variants: set[tuple[Symbol, ...]] = {()}
        for sym in rule.rhs:
            extended = {v + (sym,) for v in variants}
            if grammar.is_nonterminal(sym) and sym in nullable:
                extended |= variants  # omit this occurrence
            variants = extended
        for body in variants:
            if body:
                new_rules.add(Rule(rule.lhs, body))
    if keeps_epsilon:
        new_rules.add(Rule(grammar.start, ()))
    ordered = [r for r in grammar.rules if r in new_rules]
    extra = sorted(new_rules - set(ordered), key=str)
    return CFG(grammar.alphabet, grammar.nonterminals, ordered + extra, grammar.start)


def _unit_step(grammar: CFG) -> CFG:
    """Eliminate unit rules ``A → B`` via unit-pair closure."""
    nts = set(grammar.nonterminals)
    unit_successors: dict[NonTerminal, set[NonTerminal]] = {nt: {nt} for nt in nts}
    changed = True
    while changed:
        changed = False
        for rule in grammar.rules:
            if len(rule.rhs) == 1 and grammar.is_nonterminal(rule.rhs[0]):
                target = rule.rhs[0]
                fresh = unit_successors[target] - unit_successors[rule.lhs]
                if fresh:
                    unit_successors[rule.lhs] |= fresh
                    changed = True
    new_rules: list[Rule] = []
    seen: set[Rule] = set()
    for nt in grammar.nonterminals:
        for successor in sorted(unit_successors[nt], key=str):
            for rule in grammar.rules_for(successor):
                if len(rule.rhs) == 1 and grammar.is_nonterminal(rule.rhs[0]):
                    continue
                lifted = Rule(nt, rule.rhs)
                if lifted not in seen:
                    seen.add(lifted)
                    new_rules.append(lifted)
    return CFG(grammar.alphabet, grammar.nonterminals, new_rules, grammar.start)


def to_cnf(grammar: CFG) -> CFG:
    """Return an equivalent trimmed grammar in Chomsky normal form.

    The result generates exactly ``L(G)`` and satisfies
    :meth:`~repro.grammars.cfg.CFG.is_in_cnf`.  Unambiguity is preserved:
    every parse tree of the result unfolds to at least one parse tree of
    the source, and distinct result trees for a word unfold to distinct
    source trees (tested exhaustively on the repository's grammar corpus).

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> from repro.grammars.language import language
    >>> g = grammar_from_mapping("ab", {"S": ["aXb"], "X": ["ab", ""]}, "S")
    >>> g2 = to_cnf(g)
    >>> g2.is_in_cnf(), sorted(language(g2))
    (True, ['aabb', 'ab'])
    """
    namer = _FreshNamer(set(grammar.nonterminals))
    staged = _start_step(grammar, namer)
    staged = _term_step(staged, namer)
    staged = _bin_step(staged, namer)
    staged = _del_step(staged)
    staged = _unit_step(staged)
    return trim(staged)
