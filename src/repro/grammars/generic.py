"""Parse-tree counting and enumeration for grammars in *any* form.

The paper's concrete grammars (Example 3, Example 4, Appendix A) are not
in Chomsky normal form, and converting them first would obscure statements
like "Figure 1: two different parse trees for the word ``aaaaaa`` for the
grammar of Example 3".  This module therefore counts and enumerates parse
trees directly on the original grammar with a memoised span recursion.

A word can have infinitely many parse trees only if the grammar has a
derivation cycle ``A ⇒+ A`` through useful non-terminals; this is detected
up front (see :func:`repro.grammars.analysis.has_unit_or_epsilon_cycle`)
and reported as :class:`~repro.errors.InfiniteAmbiguityError`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import InfiniteAmbiguityError, NotInLanguageError
from repro.grammars.analysis import has_unit_or_epsilon_cycle, trim
from repro.grammars.cfg import CFG, NonTerminal, Symbol
from repro.grammars.trees import ParseTree, leaf, node

__all__ = ["GenericParser", "count_parse_trees_generic", "iter_parse_trees_generic", "recognises_generic"]


def _min_lengths(grammar: CFG) -> dict[NonTerminal, int | None]:
    """Shortest derivable word length per non-terminal (None = unproductive)."""
    best: dict[NonTerminal, int | None] = {nt: None for nt in grammar.nonterminals}
    changed = True
    while changed:
        changed = False
        for rule in grammar.rules:
            total = 0
            feasible = True
            for sym in rule.rhs:
                if grammar.is_terminal(sym):
                    total += 1
                else:
                    sub = best[sym]
                    if sub is None:
                        feasible = False
                        break
                    total += sub
            if not feasible:
                continue
            current = best[rule.lhs]
            if current is None or total < current:
                best[rule.lhs] = total
                changed = True
    return best


class GenericParser:
    """Memoised span parser for one grammar (any rule shapes, ε included).

    Construction performs the infinite-ambiguity check once; the parser
    can then be reused across many words.
    """

    def __init__(self, grammar: CFG) -> None:
        if has_unit_or_epsilon_cycle(trim(grammar)):
            raise InfiniteAmbiguityError(
                "the grammar has a useful derivation cycle A =>+ A, so some word "
                "has infinitely many parse trees; parse-tree counting refuses to run"
            )
        self.grammar = grammar
        self._min_len = _min_lengths(grammar)

    def _sym_min(self, symbol: Symbol) -> int | None:
        if self.grammar.is_terminal(symbol):
            return 1
        return self._min_len[symbol]

    def _seq_min(self, seq: tuple[Symbol, ...]) -> int | None:
        total = 0
        for sym in seq:
            m = self._sym_min(sym)
            if m is None:
                return None
            total += m
        return total

    def count(self, word: str, symbol: NonTerminal | None = None) -> int:
        """Exact number of parse trees of ``word`` from ``symbol`` (default: start)."""
        symbol = symbol if symbol is not None else self.grammar.start
        memo_sym: dict[tuple[NonTerminal, int, int], int] = {}
        memo_seq: dict[tuple[tuple[Symbol, ...], int, int], int] = {}
        in_progress: set[tuple[NonTerminal, int, int]] = set()

        def count_sym(nt: NonTerminal, i: int, j: int) -> int:
            key = (nt, i, j)
            if key in memo_sym:
                return memo_sym[key]
            if key in in_progress:  # pragma: no cover - excluded by the cycle check
                raise InfiniteAmbiguityError(f"unexpected derivation cycle at {key!r}")
            in_progress.add(key)
            total = 0
            for rule in self.grammar.rules_for(nt):
                total += count_seq(rule.rhs, i, j)
            in_progress.discard(key)
            memo_sym[key] = total
            return total

        def count_seq(seq: tuple[Symbol, ...], i: int, j: int) -> int:
            if not seq:
                return 1 if i == j else 0
            key = (seq, i, j)
            if key in memo_seq:
                return memo_seq[key]
            head, rest = seq[0], seq[1:]
            rest_min = self._seq_min(rest)
            total = 0
            if rest_min is not None:
                if self.grammar.is_terminal(head):
                    if i < j and word[i] == head:
                        total = count_seq(rest, i + 1, j)
                else:
                    head_min = self._sym_min(head)
                    if head_min is not None:
                        # head derives word[i:k]; prune to feasible k only —
                        # this is what keeps same-span recursion on the
                        # acyclic nullable-unit graph (see module docstring).
                        for k in range(i + head_min, j - rest_min + 1):
                            c_head = count_sym(head, i, k)
                            if c_head:
                                total += c_head * count_seq(rest, k, j)
            memo_seq[key] = total
            return total

        return count_sym(symbol, 0, len(word))

    def recognises(self, word: str, symbol: NonTerminal | None = None) -> bool:
        """Whether ``word`` is derivable from ``symbol`` (default: start)."""
        return self.count(word, symbol) > 0

    def iter_trees(self, word: str, symbol: NonTerminal | None = None) -> Iterator[ParseTree]:
        """Lazily yield every parse tree of ``word`` from ``symbol``.

        The yield order is deterministic: rule declaration order, then
        split positions left to right.
        """
        symbol = symbol if symbol is not None else self.grammar.start

        def trees_sym(nt: NonTerminal, i: int, j: int) -> Iterator[ParseTree]:
            for rule in self.grammar.rules_for(nt):
                for children in trees_seq(rule.rhs, i, j):
                    yield node(nt, children)

        def trees_seq(seq: tuple[Symbol, ...], i: int, j: int) -> Iterator[tuple[ParseTree, ...]]:
            if not seq:
                if i == j:
                    yield ()
                return
            head, rest = seq[0], seq[1:]
            rest_min = self._seq_min(rest)
            if rest_min is None:
                return
            if self.grammar.is_terminal(head):
                if i < j and word[i] == head:
                    for tail in trees_seq(rest, i + 1, j):
                        yield (leaf(head), *tail)
                return
            head_min = self._sym_min(head)
            if head_min is None:
                return
            for k in range(i + head_min, j - rest_min + 1):
                for head_tree in trees_sym(head, i, k):
                    for tail in trees_seq(rest, k, j):
                        yield (head_tree, *tail)

        return trees_sym(symbol, 0, len(word))

    def one_tree(self, word: str, symbol: NonTerminal | None = None) -> ParseTree:
        """Return some parse tree of ``word``; raise if not in the language."""
        for tree in self.iter_trees(word, symbol):
            return tree
        raise NotInLanguageError(f"{word!r} is not derivable")


def count_parse_trees_generic(grammar: CFG, word: str) -> int:
    """Count parse trees of ``word`` under a grammar in any form.

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> g = grammar_from_mapping("ab", {"S": ["ab", "aXb"], "X": [""]}, "S")
    >>> count_parse_trees_generic(g, "ab")
    2
    """
    return GenericParser(grammar).count(word)


def iter_parse_trees_generic(grammar: CFG, word: str) -> Iterator[ParseTree]:
    """Enumerate parse trees of ``word`` under a grammar in any form."""
    return GenericParser(grammar).iter_trees(word)


def recognises_generic(grammar: CFG, word: str) -> bool:
    """Membership test for a grammar in any form (no CNF required)."""
    return GenericParser(grammar).recognises(word)
