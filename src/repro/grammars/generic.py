"""Parse-tree counting and enumeration for grammars in *any* form.

The paper's concrete grammars (Example 3, Example 4, Appendix A) are not
in Chomsky normal form, and converting them first would obscure statements
like "Figure 1: two different parse trees for the word ``aaaaaa`` for the
grammar of Example 3".  This module therefore counts and enumerates parse
trees directly on the original grammar.

A word can have infinitely many parse trees only if the grammar has a
derivation cycle ``A ⇒+ A`` through useful non-terminals; this is detected
up front (see :func:`repro.grammars.analysis.has_unit_or_epsilon_cycle`)
and reported as :class:`~repro.errors.InfiniteAmbiguityError`.

The span recursion itself lives in :class:`repro.kernel.generic.GenericChart`;
this module instantiates it over the counting semiring for counts, the
boolean semiring (with absorbing early exit) for membership, and the
forest semiring for tree enumeration.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import InfiniteAmbiguityError, NotInLanguageError
from repro.grammars.analysis import has_unit_or_epsilon_cycle, trim
from repro.grammars.cfg import CFG, NonTerminal
from repro.grammars.trees import ParseTree
from repro.kernel.forest import FOREST
from repro.kernel.generic import GenericChart, symbol_min_lengths
from repro.kernel.semiring import BOOLEAN, COUNTING, Semiring

__all__ = ["GenericParser", "count_parse_trees_generic", "iter_parse_trees_generic", "recognises_generic"]


class GenericParser:
    """Memoised span parser for one grammar (any rule shapes, ε included).

    Construction performs the infinite-ambiguity check and the min-length
    pruning analysis once; the parser can then be reused across many
    words, each query building a kernel chart that shares those tables.
    """

    def __init__(self, grammar: CFG) -> None:
        if has_unit_or_epsilon_cycle(trim(grammar)):
            raise InfiniteAmbiguityError(
                "the grammar has a useful derivation cycle A =>+ A, so some word "
                "has infinitely many parse trees; parse-tree counting refuses to run"
            )
        self.grammar = grammar
        self._min_len = symbol_min_lengths(grammar)

    def chart(self, word: str, semiring: Semiring) -> GenericChart:
        """A kernel chart for ``word`` sharing this parser's pruning tables.

        Build one chart per word and reuse it across queries — the memo is
        per chart, so repeated questions about the same word are free.
        """
        return GenericChart(self.grammar, word, semiring, min_lengths=self._min_len)

    def count(self, word: str, symbol: NonTerminal | None = None) -> int:
        """Exact number of parse trees of ``word`` from ``symbol`` (default: start)."""
        return self.chart(word, COUNTING).value(symbol)

    def recognises(self, word: str, symbol: NonTerminal | None = None) -> bool:
        """Whether ``word`` is derivable from ``symbol`` (default: start).

        Runs over the boolean semiring, which stops exploring splits as
        soon as a derivation is found — no counting work is done.
        """
        return self.chart(word, BOOLEAN).value(symbol)

    def iter_trees(self, word: str, symbol: NonTerminal | None = None) -> Iterator[ParseTree]:
        """Lazily yield every parse tree of ``word`` from ``symbol``.

        The yield order is deterministic: rule declaration order, then
        split positions left to right.
        """
        return self.chart(word, FOREST).value(symbol).trees()

    def one_tree(self, word: str, symbol: NonTerminal | None = None) -> ParseTree:
        """Return some parse tree of ``word``; raise if not in the language."""
        for tree in self.iter_trees(word, symbol):
            return tree
        raise NotInLanguageError(f"{word!r} is not derivable")


def count_parse_trees_generic(grammar: CFG, word: str) -> int:
    """Count parse trees of ``word`` under a grammar in any form.

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> g = grammar_from_mapping("ab", {"S": ["ab", "aXb"], "X": [""]}, "S")
    >>> count_parse_trees_generic(g, "ab")
    2
    """
    return GenericParser(grammar).count(word)


def iter_parse_trees_generic(grammar: CFG, word: str) -> Iterator[ParseTree]:
    """Enumerate parse trees of ``word`` under a grammar in any form."""
    return GenericParser(grammar).iter_trees(word)


def recognises_generic(grammar: CFG, word: str) -> bool:
    """Membership test for a grammar in any form (no CNF required)."""
    return GenericParser(grammar).recognises(word)
