"""Seeded random finite-language grammar generation.

Property-based tests need a source of structurally diverse grammars whose
languages are guaranteed finite.  The generator builds a layered DAG of
non-terminals (rules only reference strictly lower layers, so recursion —
and hence infinite languages and derivation cycles — is impossible by
construction) with a tunable mix of body lengths, ε-rules, and sharing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.grammars.cfg import CFG, NonTerminal, Rule, Symbol
from repro.words.alphabet import AB, Alphabet

__all__ = ["GrammarShape", "random_finite_grammar"]


@dataclass(frozen=True, slots=True)
class GrammarShape:
    """Tuning knobs for :func:`random_finite_grammar`."""

    n_layers: int = 3
    nts_per_layer: int = 2
    rules_per_nt: int = 2
    max_body: int = 3
    epsilon_probability: float = 0.15
    terminal_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.n_layers < 1 or self.nts_per_layer < 1 or self.rules_per_nt < 1:
            raise ValueError("layers, non-terminals and rules must all be >= 1")
        if self.max_body < 1:
            raise ValueError("max_body must be >= 1")


def random_finite_grammar(
    seed: int,
    shape: GrammarShape = GrammarShape(),
    alphabet: Alphabet = AB,
) -> CFG:
    """Generate a random finite-language CFG, deterministically per seed.

    The language is finite and every word has finitely many parse trees
    (the layered construction admits no derivation cycles), so the full
    toolchain — enumeration, counting, CNF, covers, d-reps — applies.

    >>> from repro.grammars.analysis import has_finite_language
    >>> g = random_finite_grammar(7)
    >>> has_finite_language(g)
    True
    """
    rng = random.Random(seed)
    layers: list[list[NonTerminal]] = [
        [("N", layer, index) for index in range(shape.nts_per_layer)]
        for layer in range(shape.n_layers)
    ]
    rules: list[Rule] = []
    for layer_index, layer in enumerate(layers):
        lower: list[NonTerminal] = [
            nt for deeper in layers[layer_index + 1 :] for nt in deeper
        ]
        for nt in layer:
            for _ in range(shape.rules_per_nt):
                if rng.random() < shape.epsilon_probability:
                    rules.append(Rule(nt, ()))
                    continue
                body_length = rng.randint(1, shape.max_body)
                body: list[Symbol] = []
                for _pos in range(body_length):
                    use_terminal = not lower or rng.random() < shape.terminal_probability
                    if use_terminal:
                        body.append(rng.choice(alphabet.symbols))
                    else:
                        body.append(rng.choice(lower))
                rules.append(Rule(nt, tuple(body)))
    all_nts = [nt for layer in layers for nt in layer]
    start = layers[0][0]
    return CFG(alphabet, all_nts, rules, start)
