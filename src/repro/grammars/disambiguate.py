"""Disambiguation: finite-language CFG → equivalent uCFG (benchmark E12).

The paper's Related Work recalls that "every CFG accepting a finite
language can be transformed into an equivalent uCFG with at most a
double-exponential blow-up" [20], and Theorem 1 shows the blow-up is
unavoidable.  This module implements the constructive direction via the
canonical unambiguous representation of a finite language — its minimal
acyclic DFA — rendered as a right-linear grammar.  Right-linear grammars
over a DFA are unambiguous because runs are deterministic.

The pipeline is: enumerate ``L(G)`` (first exponential), build the minimal
DFA, emit the grammar (worst case another exponential in the DFA size vs
the original grammar, matching the double-exponential ceiling overall).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.ops import minimal_dfa_of_finite_language
from repro.grammars.ambiguity import is_unambiguous
from repro.grammars.analysis import trim
from repro.grammars.cfg import CFG, NonTerminal, Rule
from repro.grammars.language import language, same_language
from repro.words.alphabet import Alphabet

__all__ = ["DisambiguationReport", "disambiguate", "ucfg_of_finite_language"]


@dataclass(frozen=True, slots=True)
class DisambiguationReport:
    """Sizes along the CFG → uCFG pipeline."""

    source_size: int
    language_size: int
    dfa_states: int
    result_size: int

    @property
    def blow_up(self) -> float:
        """``result_size / source_size`` (∞-safe: source is never size 0 here)."""
        return self.result_size / self.source_size


def ucfg_of_finite_language(words: frozenset[str] | set[str], alphabet: Alphabet) -> CFG:
    """Return an unambiguous right-linear CFG for a finite set of words.

    The grammar is built on the minimal complete DFA of the language and
    then trimmed (the completion sink disappears again).  The empty word,
    if present, is handled by a relaxed start ε-rule.

    >>> from repro.words import AB
    >>> from repro.grammars.ambiguity import is_unambiguous
    >>> g = ucfg_of_finite_language({"ab", "aa"}, AB)
    >>> is_unambiguous(g)
    True
    """
    dfa = minimal_dfa_of_finite_language(words, alphabet)
    # A fresh start symbol (never on a right-hand side) keeps the grammar
    # unambiguous even when the DFA's initial state is accepting or has
    # incoming transitions.
    start: NonTerminal = ("u-start",)
    nts: list[NonTerminal] = [start] + [("u", q) for q in sorted(dfa.states, key=str)]
    rules: list[Rule] = []
    for (src, sym), dst in sorted(dfa.transitions().items(), key=lambda kv: (str(kv[0][0]), kv[0][1])):
        rules.append(Rule(("u", src), (sym, ("u", dst))))
        if dst in dfa.accepting:
            rules.append(Rule(("u", src), (sym,)))
    for rule in [r for r in rules if r.lhs == ("u", dfa.initial)]:
        rules.append(Rule(start, rule.rhs))
    if dfa.initial in dfa.accepting:
        rules.append(Rule(start, ()))
    return trim(CFG(alphabet, nts, rules, start))


def disambiguate(grammar: CFG, verify: bool = True) -> tuple[CFG, DisambiguationReport]:
    """Convert a finite-language CFG into an equivalent uCFG.

    Returns the uCFG and a :class:`DisambiguationReport` with the sizes at
    every pipeline stage.  With ``verify=True`` (default) the result is
    checked for language equality and unambiguity — expensive but exact.
    """
    words = language(grammar)
    dfa = minimal_dfa_of_finite_language(words, grammar.alphabet)
    result = ucfg_of_finite_language(words, grammar.alphabet)
    if verify:
        if not same_language(grammar, result):
            raise AssertionError("disambiguate produced a non-equivalent grammar")
        if not is_unambiguous(result):
            raise AssertionError("disambiguate produced an ambiguous grammar")
    report = DisambiguationReport(
        source_size=grammar.size,
        language_size=len(words),
        dfa_states=dfa.n_states,
        result_size=result.size,
    )
    return result, report
