"""Lexicographic ranked access to the language of a finite uCFG.

:class:`~repro.grammars.ranking.RankedLanguage` orders words by their
derivations — cheap, but the order is grammar-dependent.  Database-style
enumeration ([4]'s "aggregation and ordering in factorised databases",
[24]-style direct access) wants a *data* order: length-lexicographic.
This module provides it for finite unambiguous grammars: exact counting
of words with a given prefix (the sentential-form DP of
:class:`repro.kernel.prefix.PrefixDP`, over the counting semiring), and
on top of it rank / unrank / ordered iteration — without materialising
the language.

Order used throughout: first by word length, then lexicographically in
the grammar's alphabet order.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import NotInLanguageError
from repro.grammars.ambiguity import require_unambiguous
from repro.grammars.analysis import require_finite_language, trim
from repro.grammars.cfg import CFG
from repro.kernel.prefix import PrefixDP

__all__ = ["LexRankedLanguage"]


class LexRankedLanguage:
    """Count / rank / unrank a finite uCFG's language in length-lex order.

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> g = grammar_from_mapping("ab", {"S": ["bX", "aX"], "X": ["b", "a"]}, "S")
    >>> lex = LexRankedLanguage(g)
    >>> [lex.unrank(r) for r in range(lex.count)]
    ['aa', 'ab', 'ba', 'bb']
    >>> lex.rank("ba")
    2
    """

    def __init__(self, grammar: CFG, check_unambiguous: bool = True) -> None:
        require_finite_language(grammar, "LexRankedLanguage")
        if check_unambiguous:
            require_unambiguous(grammar, "LexRankedLanguage")
        self.grammar = trim(grammar)
        # The kernel DP holds the (form, prefix, length) memo, shared by
        # every rank/unrank call against this language.
        self._prefix_dp = PrefixDP(self.grammar)
        self._lengths = sorted(self._length_spectrum())

    def _length_spectrum(self) -> dict[int, int]:
        from repro.grammars.language import derivations_by_length

        return dict(derivations_by_length(self.grammar))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """``|L(G)|`` in time polynomial in ``|G|``."""
        return sum(self._length_spectrum().values())

    def count_with_prefix(self, prefix: str, length: int) -> int:
        """Words of the given length starting with ``prefix`` — exact.

        (A derivation count from the kernel's sentential-form prefix DP —
        equal to the word count because the grammar is unambiguous.)
        """
        return self._prefix_dp.value((self.grammar.start,), prefix, length)

    def unrank(self, index: int) -> str:
        """The ``index``-th word (0-based) in length-lex order."""
        if index < 0:
            raise IndexError(f"rank {index} out of range")
        spectrum = self._length_spectrum()
        remaining = index
        for length in self._lengths:
            if remaining < spectrum[length]:
                return self._unrank_at_length(remaining, length)
            remaining -= spectrum[length]
        raise IndexError(f"rank {index} out of range for a language of size {self.count}")

    def _unrank_at_length(self, index: int, length: int) -> str:
        prefix = ""
        while len(prefix) < length:
            for symbol in self.grammar.alphabet:
                bucket = self.count_with_prefix(prefix + symbol, length)
                if index < bucket:
                    prefix += symbol
                    break
                index -= bucket
            else:  # pragma: no cover - counts always cover the index
                raise AssertionError("lex unrank lost its index")
        return prefix

    def rank(self, word: str) -> int:
        """The length-lex rank of ``word``; raises if not in the language."""
        length = len(word)
        if self.count_with_prefix(word, length) != 1:
            raise NotInLanguageError(f"{word!r} is not in the language")
        spectrum = self._length_spectrum()
        rank = sum(spectrum[l] for l in self._lengths if l < length)
        prefix = ""
        for ch in word:
            for symbol in self.grammar.alphabet:
                if symbol == ch:
                    break
                rank += self.count_with_prefix(prefix + symbol, length)
            prefix += ch
        return rank

    def __iter__(self) -> Iterator[str]:
        """Enumerate the language in length-lex order."""
        for index in range(self.count):
            yield self.unrank(index)

    def __len__(self) -> int:
        return self.count
