"""Parse trees (Section 2, Figure 1 of the paper).

Each derivation of a context-free grammar is associated with a parse tree
in the natural way; a grammar is *unambiguous* when every word of its
language has a unique parse tree.  Trees here are immutable and compare
structurally, so "two different parse trees for the same word" (Figure 1)
is literally ``t1 != t2 and t1.word == t2.word``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grammars.cfg import CFG, NonTerminal, Rule, Symbol, _symbol_str

__all__ = ["ParseTree", "leaf", "node"]


@dataclass(frozen=True, slots=True)
class ParseTree:
    """A parse tree: an inner node labelled by a non-terminal, or a leaf.

    Leaves carry a terminal symbol and no children.  Inner nodes carry the
    non-terminal and the tuple of sub-trees corresponding to a rule
    ``symbol -> children-roots``.  An inner node with zero children
    represents an application of an epsilon rule.
    """

    symbol: Symbol
    children: tuple["ParseTree", ...] | None = None

    @property
    def is_leaf(self) -> bool:
        """Whether this is a terminal leaf."""
        return self.children is None

    @property
    def word(self) -> str:
        """The yield of the tree: the terminal word at its leaves."""
        if self.children is None:
            return str(self.symbol)
        return "".join(child.word for child in self.children)

    @property
    def n_nodes(self) -> int:
        """Total number of nodes (leaves included)."""
        if self.children is None:
            return 1
        return 1 + sum(child.n_nodes for child in self.children)

    @property
    def n_leaves(self) -> int:
        """Number of terminal leaves — equals ``len(self.word)``."""
        if self.children is None:
            return 1
        return sum(child.n_leaves for child in self.children)

    @property
    def height(self) -> int:
        """Height of the tree; a leaf has height 0."""
        if self.children is None or not self.children:
            return 0
        return 1 + max(child.height for child in self.children)

    def rule(self) -> Rule:
        """Return the rule applied at the root (inner nodes only)."""
        if self.children is None:
            raise ValueError("a leaf does not correspond to a rule application")
        return Rule(self.symbol, tuple(child.symbol for child in self.children))

    def nonterminals_used(self) -> frozenset[NonTerminal]:
        """Return every non-terminal labelling some inner node."""
        acc: set[NonTerminal] = set()
        stack: list[ParseTree] = [self]
        while stack:
            tree = stack.pop()
            if tree.children is None:
                continue
            acc.add(tree.symbol)
            stack.extend(tree.children)
        return frozenset(acc)

    def validate(self, grammar: CFG) -> None:
        """Check that this tree is a parse tree of ``grammar``.

        Every inner node must apply a rule of the grammar and every leaf
        must be a terminal.  Raises ``ValueError`` on the first violation.
        """
        rules = set(grammar.rules)
        stack: list[ParseTree] = [self]
        while stack:
            tree = stack.pop()
            if tree.children is None:
                if not grammar.is_terminal(tree.symbol):
                    raise ValueError(f"leaf {tree.symbol!r} is not a terminal")
                continue
            applied = tree.rule()
            if applied not in rules:
                raise ValueError(f"rule {applied} is not in the grammar")
            stack.extend(tree.children)

    def pretty(self, indent: str = "") -> str:
        """Render the tree as an indented outline."""
        label = _symbol_str(self.symbol)
        if self.children is None:
            return f"{indent}{label!s}"
        if not self.children:
            return f"{indent}{label!s} -> ε"
        lines = [f"{indent}{label!s}"]
        for child in self.children:
            lines.append(child.pretty(indent + "  "))
        return "\n".join(lines)


def leaf(terminal: str) -> ParseTree:
    """Construct a terminal leaf."""
    return ParseTree(terminal, None)


def node(symbol: Symbol, children: tuple[ParseTree, ...] | list[ParseTree]) -> ParseTree:
    """Construct an inner node applying ``symbol -> children``."""
    return ParseTree(symbol, tuple(children))
