"""An Earley parser: cubic-time recognition for grammars in any form.

The CYK engine (:mod:`repro.grammars.cyk`) needs Chomsky normal form and
the generic engine (:mod:`repro.grammars.generic`) is exponential in the
worst case; Earley's algorithm recognises directly on the original rules
in ``O(|G|² · n³)`` and, for unambiguous grammars, ``O(n²)`` — the right
tool for the long words the ``Θ(log n)`` grammars of Appendix A produce.
This implementation supports ε-rules via the standard nullable-advance
fix (Aycock & Horspool) and exposes per-position completion sets so
tests can cross-validate against the other two engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grammars.analysis import nullable_nonterminals
from repro.grammars.cfg import CFG, NonTerminal, Rule

__all__ = ["EarleyItem", "EarleyChart", "earley_recognises", "earley_parse_positions"]


@dataclass(frozen=True, slots=True)
class EarleyItem:
    """A dotted rule ``A -> α • β`` started at input position ``origin``."""

    rule: Rule
    dot: int
    origin: int

    @property
    def is_complete(self) -> bool:
        return self.dot == len(self.rule.rhs)

    @property
    def next_symbol(self):
        if self.is_complete:
            return None
        return self.rule.rhs[self.dot]

    def advanced(self) -> "EarleyItem":
        return EarleyItem(self.rule, self.dot + 1, self.origin)

    def __str__(self) -> str:
        body = list(map(str, self.rule.rhs))
        body.insert(self.dot, "•")
        return f"[{self.rule.lhs} -> {' '.join(body)}, {self.origin}]"


class EarleyChart:
    """The item sets ``S_0 ... S_n`` for one grammar/word pair."""

    def __init__(self, grammar: CFG, word: str) -> None:
        self.grammar = grammar
        self.word = word
        self.nullable = nullable_nonterminals(grammar)
        n = len(word)
        self.sets: list[set[EarleyItem]] = [set() for _ in range(n + 1)]
        self._run()

    def _predict(self, position: int, symbol: NonTerminal, agenda: list[EarleyItem]) -> None:
        for rule in self.grammar.rules_for(symbol):
            item = EarleyItem(rule, 0, position)
            if item not in self.sets[position]:
                self.sets[position].add(item)
                agenda.append(item)

    def _run(self) -> None:
        n = len(self.word)
        agenda: list[EarleyItem] = []
        self._predict(0, self.grammar.start, agenda)
        for position in range(n + 1):
            if position > 0:
                # Scan from the previous set.
                ch = self.word[position - 1]
                for item in self.sets[position - 1]:
                    if item.next_symbol == ch:
                        advanced = item.advanced()
                        if advanced not in self.sets[position]:
                            self.sets[position].add(advanced)
                            agenda.append(advanced)
            # Exhaust predictions/completions at this position.
            agenda = [i for i in self.sets[position]]
            while agenda:
                item = agenda.pop()
                symbol = item.next_symbol
                if symbol is None:
                    # Complete: advance everything waiting on item.rule.lhs.
                    for waiting in list(self.sets[item.origin]):
                        if waiting.next_symbol == item.rule.lhs:
                            advanced = waiting.advanced()
                            if advanced not in self.sets[position]:
                                self.sets[position].add(advanced)
                                agenda.append(advanced)
                elif self.grammar.is_nonterminal(symbol):
                    self._predict(position, symbol, agenda)
                    # Nullable advance (Aycock-Horspool): skip over ε.
                    if symbol in self.nullable:
                        advanced = item.advanced()
                        if advanced not in self.sets[position]:
                            self.sets[position].add(advanced)
                            agenda.append(advanced)
                # Terminals are handled by the scan of the next set.

    def accepts(self) -> bool:
        """Whether the full word derives from the start symbol."""
        return any(
            item.is_complete
            and item.rule.lhs == self.grammar.start
            and item.origin == 0
            for item in self.sets[len(self.word)]
        )

    def completed_spans(self) -> set[tuple[NonTerminal, int, int]]:
        """All ``(A, i, j)`` with ``A ⇒* word[i:j]`` recognised by the run.

        (Earley only materialises spans reachable in context, so this is a
        subset of the CYK table's content but always contains every span
        of every actual parse.)
        """
        spans: set[tuple[NonTerminal, int, int]] = set()
        for j, items in enumerate(self.sets):
            for item in items:
                if item.is_complete:
                    spans.add((item.rule.lhs, item.origin, j))
        return spans


def earley_recognises(grammar: CFG, word: str) -> bool:
    """Membership test on the original grammar (no normal form needed).

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> g = grammar_from_mapping("ab", {"S": ["aSb", ""]}, "S")
    >>> earley_recognises(g, "aabb"), earley_recognises(g, "aab")
    (True, False)
    """
    return EarleyChart(grammar, word).accepts()


def earley_parse_positions(grammar: CFG, word: str) -> set[tuple[NonTerminal, int, int]]:
    """The completed spans of the Earley run (for cross-validation)."""
    return EarleyChart(grammar, word).completed_spans()
