"""An Earley parser: cubic-time recognition for grammars in any form.

The CYK engine (:mod:`repro.grammars.cyk`) needs Chomsky normal form and
the generic engine (:mod:`repro.grammars.generic`) is exponential in the
worst case; Earley's algorithm recognises directly on the original rules
in ``O(|G|² · n³)`` and, for unambiguous grammars, ``O(n²)`` — the right
tool for the long words the ``Θ(log n)`` grammars of Appendix A produce.

The item-set machinery now lives in :mod:`repro.kernel.earley` (where it
also powers the Earley-style semiring chart); this module re-exports it
under its historical names and keeps the function-level entry points.
"""

from __future__ import annotations

from repro.grammars.cfg import CFG, NonTerminal
from repro.kernel.earley import EarleyChart, EarleyItem

__all__ = ["EarleyItem", "EarleyChart", "earley_recognises", "earley_parse_positions"]


def earley_recognises(grammar: CFG, word: str) -> bool:
    """Membership test on the original grammar (no normal form needed).

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> g = grammar_from_mapping("ab", {"S": ["aSb", ""]}, "S")
    >>> earley_recognises(g, "aabb"), earley_recognises(g, "aab")
    (True, False)
    """
    return EarleyChart(grammar, word).accepts()


def earley_parse_positions(grammar: CFG, word: str) -> set[tuple[NonTerminal, int, int]]:
    """The completed spans of the Earley run (for cross-validation)."""
    return EarleyChart(grammar, word).completed_spans()
