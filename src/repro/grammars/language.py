"""Finite-language extraction and exact counting.

For a finite language (the only kind the paper considers) the trimmed
grammar's non-terminal dependency graph is acyclic, so the language of
every non-terminal can be computed bottom-up in topological order.  This
module also exposes the two counting notions whose divergence is the
algorithmic heart of the CFG/uCFG contrast:

* :func:`count_derivations` — the number of parse trees from the start
  symbol, computable in time polynomial in the grammar size;
* :func:`count_words` — the number of *distinct* words, which coincides
  with the former exactly for unambiguous grammars (counting for general
  CFGs is #P-complete, so here it falls back to enumeration).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import InfiniteLanguageError
from repro.grammars.analysis import require_finite_language, trim
from repro.grammars.cfg import CFG, NonTerminal
from repro.kernel.fold import fold_grammar, topological_nonterminals
from repro.kernel.semiring import COUNTING, SPECTRUM

__all__ = [
    "languages_by_nonterminal",
    "language",
    "iter_language",
    "count_words",
    "count_derivations",
    "derivations_by_length",
    "words_by_length",
    "accepts_language",
    "same_language",
]

#: Guard against accidentally materialising astronomically large languages.
DEFAULT_MAX_WORDS = 5_000_000


def _topological_nonterminals(grammar: CFG) -> list[NonTerminal]:
    """Non-terminals of a trimmed finite-language grammar, dependencies first."""
    return topological_nonterminals(grammar)


def languages_by_nonterminal(
    grammar: CFG, max_words: int = DEFAULT_MAX_WORDS
) -> dict[NonTerminal, frozenset[str]]:
    """Return ``{A: L(A)}`` for every useful non-terminal.

    The grammar is trimmed internally; non-terminals that appear in no
    parse tree are omitted.  Raises :class:`InfiniteLanguageError` if the
    language is infinite or if an intermediate language exceeds
    ``max_words`` (a safety valve — Example 4 grammars explode quickly).
    """
    require_finite_language(grammar, "languages_by_nonterminal")
    g = trim(grammar)
    langs: dict[NonTerminal, frozenset[str]] = {}
    for nt in _topological_nonterminals(g):
        words: set[str] = set()
        for rule in g.rules_for(nt):
            partial: set[str] = {""}
            for sym in rule.rhs:
                pieces = (sym,) if g.is_terminal(sym) else langs[sym]
                partial = {w + p for w in partial for p in pieces}
                if len(partial) > max_words:
                    raise InfiniteLanguageError(
                        f"language of {nt!r} exceeds max_words={max_words}"
                    )
            words |= partial
            if len(words) > max_words:
                raise InfiniteLanguageError(f"language of {nt!r} exceeds max_words={max_words}")
        langs[nt] = frozenset(words)
    return langs


def language(grammar: CFG, max_words: int = DEFAULT_MAX_WORDS) -> frozenset[str]:
    """Return ``L(G)`` as a frozenset of words.

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> g = grammar_from_mapping("ab", {"S": ["ab", "ba"]}, "S")
    >>> sorted(language(g))
    ['ab', 'ba']
    """
    langs = languages_by_nonterminal(grammar, max_words)
    return langs.get(grammar.start, frozenset())


def iter_language(grammar: CFG, max_words: int = DEFAULT_MAX_WORDS) -> Iterator[str]:
    """Yield the words of ``L(G)`` sorted by length, then lexicographically."""
    yield from sorted(language(grammar, max_words), key=lambda w: (len(w), w))


def count_words(grammar: CFG, max_words: int = DEFAULT_MAX_WORDS) -> int:
    """Return ``|L(G)|`` exactly, by enumeration.

    For unambiguous grammars prefer :func:`count_derivations`, which gives
    the same number in polynomial time.
    """
    return len(language(grammar, max_words))


def count_derivations(grammar: CFG) -> int:
    """Return the number of parse trees from the start symbol.

    Computed by the classic product-sum dynamic program
    ``t(A) = Σ_{A→W} Π_{B ∈ W} t(B)`` over the trimmed grammar — the
    kernel fold over the counting semiring — in time polynomial in
    ``|G|``.  For an unambiguous grammar this equals ``|L(G)|``; in
    general it over-counts words by their ambiguity multiplicity
    (counting words exactly for general CFGs is #P-complete, as recalled
    in the paper's introduction).
    """
    require_finite_language(grammar, "count_derivations")
    g = trim(grammar)
    return fold_grammar(g, COUNTING).get(g.start, 0)


def derivations_by_length(grammar: CFG) -> dict[int, int]:
    """Return ``{length: #parse trees of words of that length}``.

    The kernel fold over the length-spectrum semiring (a length-indexed
    polynomial per non-terminal); for unambiguous grammars this is the
    exact word-count spectrum of the language.
    """
    require_finite_language(grammar, "derivations_by_length")
    g = trim(grammar)
    return dict(fold_grammar(g, SPECTRUM).get(g.start, {}))


def words_by_length(grammar: CFG, max_words: int = DEFAULT_MAX_WORDS) -> dict[int, int]:
    """Return ``{length: #distinct words of that length}`` by enumeration."""
    spectrum: dict[int, int] = {}
    for word in language(grammar, max_words):
        spectrum[len(word)] = spectrum.get(len(word), 0) + 1
    return spectrum


def accepts_language(grammar: CFG, expected: frozenset[str] | set[str]) -> bool:
    """Return whether ``L(G)`` equals ``expected`` exactly."""
    return language(grammar) == frozenset(expected)


def same_language(grammar_a: CFG, grammar_b: CFG) -> bool:
    """Return whether two finite-language grammars are equivalent."""
    return language(grammar_a) == language(grammar_b)
