"""Derivations as sequences of sentential forms (Definition 2's ``⇒*``).

The paper defines acceptance through derivations and then works with
parse trees; this module makes the correspondence executable: a parse
tree unfolds into its unique *leftmost* derivation, a claimed derivation
can be replayed and validated step by step, and the equivalence "one
parse tree ⇔ one leftmost derivation" (used implicitly when the paper
says unambiguity means a unique derivation) is testable.
"""

from __future__ import annotations

from repro.errors import GrammarError
from repro.grammars.cfg import CFG, Rule, Symbol
from repro.grammars.trees import ParseTree

__all__ = [
    "leftmost_derivation",
    "derivation_steps",
    "replay_derivation",
    "format_derivation",
]

SententialForm = tuple[Symbol, ...]


def leftmost_derivation(tree: ParseTree) -> list[SententialForm]:
    """The leftmost derivation corresponding to a parse tree.

    Returns the sequence of sentential forms from the root symbol to the
    terminal word; consecutive forms differ by one application of the
    tree's rule at the leftmost non-terminal.

    >>> from repro.grammars.trees import leaf, node
    >>> t = node("S", (leaf("a"), node("X", (leaf("b"),))))
    >>> leftmost_derivation(t)
    [('S',), ('a', 'X'), ('a', 'b')]
    """
    if tree.children is None:
        raise GrammarError("a bare terminal leaf is not a derivation root")
    forms: list[SententialForm] = [(tree.symbol,)]
    # `pending[i]` is the subtree whose root is the i-th symbol of the
    # current sentential form (None for terminals already emitted).
    pending: list[ParseTree | None] = [tree]
    while True:
        # Find the leftmost expandable (inner-node) position.
        position = next(
            (i for i, sub in enumerate(pending) if sub is not None and sub.children is not None),
            None,
        )
        if position is None:
            break
        subtree = pending[position]
        assert subtree is not None and subtree.children is not None
        replacement_symbols: list[Symbol] = [child.symbol for child in subtree.children]
        replacement_trees: list[ParseTree | None] = [
            child if child.children is not None else None for child in subtree.children
        ]
        current = forms[-1]
        new_form = current[:position] + tuple(replacement_symbols) + current[position + 1 :]
        forms.append(new_form)
        pending = pending[:position] + replacement_trees + pending[position + 1 :]
    return forms


def derivation_steps(tree: ParseTree) -> list[Rule]:
    """The rules applied along the leftmost derivation, in order."""
    if tree.children is None:
        raise GrammarError("a bare terminal leaf is not a derivation root")
    rules: list[Rule] = []

    def visit(node: ParseTree) -> None:
        if node.children is None:
            return
        rules.append(node.rule())
        for child in node.children:
            visit(child)

    visit(tree)
    return rules


def replay_derivation(
    grammar: CFG, forms: list[SententialForm]
) -> bool:
    """Validate a claimed leftmost derivation against a grammar.

    Checks every consecutive pair: the leftmost non-terminal of the
    earlier form is rewritten by some rule of the grammar, everything
    else unchanged.  The final form must be all-terminal.
    """
    if not forms:
        return False
    for current, following in zip(forms, forms[1:]):
        position = next(
            (i for i, s in enumerate(current) if grammar.is_nonterminal(s)), None
        )
        if position is None:
            return False  # nothing left to rewrite but derivation continues
        head = current[:position]
        if following[:position] != head:
            return False
        tail = current[position + 1 :]
        if tail and following[len(following) - len(tail) :] != tail:
            return False
        body = following[position : len(following) - len(tail)] if tail else following[position:]
        if Rule(current[position], tuple(body)) not in set(grammar.rules):
            return False
    return all(grammar.is_terminal(s) for s in forms[-1])


def format_derivation(forms: list[SententialForm]) -> str:
    """Render a derivation as ``S ⇒ aX ⇒ ab``."""

    def render(form: SententialForm) -> str:
        if not form:
            return "ε"
        return "".join(s if isinstance(s, str) and len(s) == 1 else f"⟨{s}⟩" for s in form)

    return " ⇒ ".join(render(form) for form in forms)
