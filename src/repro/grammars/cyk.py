"""CYK parsing for grammars in Chomsky normal form.

Membership, exact parse-tree counting (with arbitrary-precision integers —
grammar ambiguity can make counts astronomically large), and lazy
enumeration of all parse trees.  These are the workhorses behind the
ambiguity checks of Example 4 and the parse-tree descent of
Proposition 7.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import NotInChomskyNormalFormError
from repro.grammars.cfg import CFG, NonTerminal
from repro.grammars.trees import ParseTree, leaf, node

__all__ = ["CYKChart", "cyk_chart", "recognises", "count_parse_trees", "iter_parse_trees", "one_parse_tree"]


def _require_cnf(grammar: CFG) -> None:
    if not grammar.is_in_cnf():
        raise NotInChomskyNormalFormError(
            "CYK requires a grammar in Chomsky normal form; use repro.grammars.cnf.to_cnf"
        )


class CYKChart:
    """The CYK dynamic-programming chart for one grammar/word pair.

    ``counts[(i, j)][A]`` is the exact number of parse trees deriving the
    factor ``word[i:j]`` from non-terminal ``A``.  The chart is computed
    once and then shared by membership tests, counting, and enumeration.
    """

    def __init__(self, grammar: CFG, word: str) -> None:
        _require_cnf(grammar)
        self.grammar = grammar
        self.word = word
        n = len(word)
        counts: dict[tuple[int, int], dict[NonTerminal, int]] = {}
        binary_rules = [r for r in grammar.rules if len(r.rhs) == 2]
        unary_rules = [r for r in grammar.rules if len(r.rhs) == 1]
        # Length-1 spans.
        for i in range(n):
            cell: dict[NonTerminal, int] = {}
            for rule in unary_rules:
                if rule.rhs[0] == word[i]:
                    cell[rule.lhs] = cell.get(rule.lhs, 0) + 1
            counts[(i, i + 1)] = cell
        # Longer spans.
        for width in range(2, n + 1):
            for i in range(0, n - width + 1):
                j = i + width
                cell = {}
                for split in range(i + 1, j):
                    left = counts[(i, split)]
                    right = counts[(split, j)]
                    if not left or not right:
                        continue
                    for rule in binary_rules:
                        b, c = rule.rhs
                        lb = left.get(b)
                        if not lb:
                            continue
                        rc = right.get(c)
                        if not rc:
                            continue
                        cell[rule.lhs] = cell.get(rule.lhs, 0) + lb * rc
                counts[(i, j)] = cell
        self._counts = counts

    def count(self, symbol: NonTerminal | None = None, span: tuple[int, int] | None = None) -> int:
        """Number of parse trees for ``word[span]`` rooted at ``symbol``.

        Defaults: the start symbol over the whole word — i.e. the number
        of parse trees of the word, which is 1 for every word of an
        unambiguous grammar.  The empty word has a tree only via an
        epsilon start rule, handled specially.
        """
        symbol = symbol if symbol is not None else self.grammar.start
        span = span if span is not None else (0, len(self.word))
        if span[0] == span[1]:
            # Only the CNF-relaxed `S -> ε` rule can derive the empty span.
            has_eps = any(
                r.lhs == symbol and len(r.rhs) == 0 for r in self.grammar.rules_for(symbol)
            )
            return 1 if has_eps else 0
        return self._counts[span].get(symbol, 0)

    def symbols_at(self, span: tuple[int, int]) -> frozenset[NonTerminal]:
        """The non-terminals deriving ``word[span]``."""
        return frozenset(self._counts[span])

    def iter_trees(
        self, symbol: NonTerminal | None = None, span: tuple[int, int] | None = None
    ) -> Iterator[ParseTree]:
        """Lazily yield every parse tree of ``word[span]`` from ``symbol``.

        Trees are produced in a deterministic order (split position, then
        rule order).  The number of trees yielded always equals
        :meth:`count` for the same arguments.
        """
        symbol = symbol if symbol is not None else self.grammar.start
        span = span if span is not None else (0, len(self.word))
        i, j = span
        if i == j:
            if self.count(symbol, span):
                yield node(symbol, ())
            return
        if j == i + 1:
            ch = self.word[i]
            for rule in self.grammar.rules_for(symbol):
                if len(rule.rhs) == 1 and rule.rhs[0] == ch:
                    yield node(symbol, (leaf(ch),))
            return
        for split in range(i + 1, j):
            left_cell = self._counts[(i, split)]
            right_cell = self._counts[(split, j)]
            if not left_cell or not right_cell:
                continue
            for rule in self.grammar.rules_for(symbol):
                if len(rule.rhs) != 2:
                    continue
                b, c = rule.rhs
                if b not in left_cell or c not in right_cell:
                    continue
                for left_tree in self.iter_trees(b, (i, split)):
                    for right_tree in self.iter_trees(c, (split, j)):
                        yield node(symbol, (left_tree, right_tree))


def cyk_chart(grammar: CFG, word: str) -> CYKChart:
    """Build and return the CYK chart for ``word`` under ``grammar``."""
    return CYKChart(grammar, word)


def recognises(grammar: CFG, word: str) -> bool:
    """Return whether the CNF grammar derives ``word``.

    >>> from repro.grammars.cfg import CFG
    >>> g = CFG("ab", ["S", "A"], [("S", ("A", "A")), ("A", ("a",))], "S")
    >>> recognises(g, "aa"), recognises(g, "ab")
    (True, False)
    """
    return CYKChart(grammar, word).count() > 0


def count_parse_trees(grammar: CFG, word: str) -> int:
    """Return the exact number of parse trees of ``word``.

    ``0`` means the word is not in the language; ``>= 2`` is a witness of
    ambiguity (Figure 1 of the paper shows such a witness for the
    Example 3 grammar).
    """
    return CYKChart(grammar, word).count()


def iter_parse_trees(grammar: CFG, word: str) -> Iterator[ParseTree]:
    """Lazily yield all parse trees of ``word`` under the CNF grammar."""
    return CYKChart(grammar, word).iter_trees()


def one_parse_tree(grammar: CFG, word: str) -> ParseTree:
    """Return some parse tree of ``word``; raise if the word is rejected."""
    from repro.errors import NotInLanguageError

    for tree in CYKChart(grammar, word).iter_trees():
        return tree
    raise NotInLanguageError(f"{word!r} is not generated by the grammar")
