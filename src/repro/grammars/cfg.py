"""Context-free grammars with the paper's size measure (Definition 2).

A grammar is a four-tuple ``G = (Σ, N, R, S)``.  Terminals are
single-character strings; non-terminals are arbitrary hashable objects
(strings like ``"A"`` or tuples like ``("A", 3)`` — the latter is what the
length-indexing transform of Lemma 10 produces).  The *size* of a grammar
is ``|G| = Σ_{(A → W) ∈ R} |W|``, the sum of the lengths of all right-hand
sides; this is the measure under which all of the paper's bounds are
stated (it corresponds to the size of factorised representations).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.errors import GrammarError
from repro.words.alphabet import Alphabet

__all__ = ["NonTerminal", "Symbol", "Rule", "CFG"]

#: A non-terminal symbol: any hashable object that is not a terminal.
NonTerminal = Hashable
#: A sentential symbol: either a terminal (single-char str) or a non-terminal.
Symbol = Hashable


@dataclass(frozen=True, slots=True)
class Rule:
    """A production ``lhs -> rhs`` where ``rhs`` is a tuple of symbols.

    The empty tuple encodes an epsilon rule ``A -> ε``.  Rules compare and
    hash structurally, so a rule set cannot contain duplicates — matching
    the paper's convention that ``A -> W | W'`` denotes *two* rules.
    """

    lhs: NonTerminal
    rhs: tuple[Symbol, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.rhs, tuple):
            raise GrammarError(
                f"rule right-hand side must be a tuple of symbols, got {type(self.rhs).__name__}"
            )

    @property
    def size(self) -> int:
        """The contribution ``|W|`` of this rule to the grammar size."""
        return len(self.rhs)

    def __str__(self) -> str:
        rhs = " ".join(_symbol_str(s) for s in self.rhs) if self.rhs else "ε"
        return f"{_symbol_str(self.lhs)} -> {rhs}"


def _symbol_str(symbol: Symbol) -> str:
    """Render a symbol compactly for diagnostics."""
    if isinstance(symbol, str):
        return symbol
    if isinstance(symbol, tuple):
        return "⟨" + ",".join(_symbol_str(s) for s in symbol) + "⟩"
    return repr(symbol)


class CFG:
    """A context-free grammar ``(Σ, N, R, S)`` — Definition 2 of the paper.

    Instances are immutable once constructed and validate their structure
    eagerly: every rule's left-hand side must be a declared non-terminal,
    every right-hand-side symbol must be a declared terminal or
    non-terminal, and the terminal and non-terminal sets must be disjoint.

    >>> g = CFG(terminals="ab", nonterminals=["S"],
    ...         rules=[("S", ("a", "S", "b")), ("S", ())], start="S")
    >>> g.size
    3
    >>> len(g.rules)
    2
    """

    __slots__ = ("_alphabet", "_nonterminals", "_rules", "_start", "_by_lhs")

    def __init__(
        self,
        terminals: Alphabet | Iterable[str],
        nonterminals: Iterable[NonTerminal],
        rules: Iterable[Rule | tuple[NonTerminal, tuple[Symbol, ...]]],
        start: NonTerminal,
    ) -> None:
        alphabet = terminals if isinstance(terminals, Alphabet) else Alphabet(terminals)
        nts = list(nonterminals)
        nt_set = set(nts)
        if len(nt_set) != len(nts):
            raise GrammarError("duplicate non-terminals in declaration")
        overlap = {t for t in alphabet if t in nt_set}
        if overlap:
            raise GrammarError(f"symbols declared both terminal and non-terminal: {overlap!r}")
        if start not in nt_set:
            raise GrammarError(f"start symbol {start!r} is not a declared non-terminal")

        normalised: list[Rule] = []
        seen: set[Rule] = set()
        for item in rules:
            rule = item if isinstance(item, Rule) else Rule(item[0], tuple(item[1]))
            if rule.lhs not in nt_set:
                raise GrammarError(f"rule {rule} has undeclared left-hand side")
            for sym in rule.rhs:
                if sym not in nt_set and not (isinstance(sym, str) and sym in alphabet):
                    raise GrammarError(f"rule {rule} mentions undeclared symbol {sym!r}")
            if rule in seen:
                continue  # rule sets are sets; silently deduplicate
            seen.add(rule)
            normalised.append(rule)

        self._alphabet = alphabet
        self._nonterminals: tuple[NonTerminal, ...] = tuple(nts)
        self._rules: tuple[Rule, ...] = tuple(normalised)
        self._start = start
        by_lhs: dict[NonTerminal, list[Rule]] = {nt: [] for nt in nts}
        for rule in normalised:
            by_lhs[rule.lhs].append(rule)
        self._by_lhs: dict[NonTerminal, tuple[Rule, ...]] = {
            nt: tuple(rs) for nt, rs in by_lhs.items()
        }

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        """The terminal alphabet ``Σ``."""
        return self._alphabet

    @property
    def terminals(self) -> tuple[str, ...]:
        """The terminal symbols in alphabet order."""
        return self._alphabet.symbols

    @property
    def nonterminals(self) -> tuple[NonTerminal, ...]:
        """The non-terminals ``N`` in declaration order."""
        return self._nonterminals

    @property
    def rules(self) -> tuple[Rule, ...]:
        """The rule set ``R`` in declaration order (duplicates removed)."""
        return self._rules

    @property
    def start(self) -> NonTerminal:
        """The start symbol ``S``."""
        return self._start

    def rules_for(self, nonterminal: NonTerminal) -> tuple[Rule, ...]:
        """Return the rules whose left-hand side is ``nonterminal``."""
        try:
            return self._by_lhs[nonterminal]
        except KeyError:
            raise GrammarError(f"{nonterminal!r} is not a non-terminal of this grammar") from None

    def is_terminal(self, symbol: Symbol) -> bool:
        """Return whether ``symbol`` is a terminal of this grammar."""
        return isinstance(symbol, str) and symbol in self._alphabet

    def is_nonterminal(self, symbol: Symbol) -> bool:
        """Return whether ``symbol`` is a non-terminal of this grammar."""
        return symbol in self._by_lhs

    # ------------------------------------------------------------------
    # The paper's size measure
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """``|G| = Σ_{(A → W) ∈ R} |W|`` — the paper's size measure.

        This is *not* the rule count of [Bucher et al. 1981]; see the
        Related Work discussion in Section 1 of the paper.
        """
        return sum(rule.size for rule in self._rules)

    @property
    def n_rules(self) -> int:
        """The number of rules (the alternative measure of [7])."""
        return len(self._rules)

    # ------------------------------------------------------------------
    # Normal-form predicates
    # ------------------------------------------------------------------

    def is_in_cnf(self) -> bool:
        """Return whether every rule has the Chomsky-normal-form shape.

        Allowed shapes are ``A -> B C`` (two non-terminals) and ``A -> a``
        (one terminal), exactly as in Section 2 of the paper.  An epsilon
        rule is permitted only on the start symbol, and only if the start
        symbol never occurs on a right-hand side (the standard relaxation
        needed when ``ε ∈ L``).
        """
        start_on_rhs = any(self._start in rule.rhs for rule in self._rules)
        for rule in self._rules:
            if len(rule.rhs) == 2:
                if all(self.is_nonterminal(s) for s in rule.rhs):
                    continue
                return False
            if len(rule.rhs) == 1:
                if self.is_terminal(rule.rhs[0]):
                    continue
                return False
            if len(rule.rhs) == 0:
                if rule.lhs == self._start and not start_on_rhs:
                    continue
                return False
            return False
        return True

    # ------------------------------------------------------------------
    # Derived grammars
    # ------------------------------------------------------------------

    def restricted_to(self, keep: Iterable[NonTerminal]) -> CFG:
        """Return the grammar using only non-terminals in ``keep``.

        Rules mentioning any dropped non-terminal (on either side) are
        removed.  The start symbol must be kept.
        """
        keep_set = set(keep)
        if self._start not in keep_set:
            raise GrammarError("restricted_to: cannot drop the start symbol")
        unknown = keep_set - set(self._nonterminals)
        if unknown:
            raise GrammarError(f"restricted_to: unknown non-terminals {unknown!r}")
        new_rules = [
            rule
            for rule in self._rules
            if rule.lhs in keep_set
            and all(self.is_terminal(s) or s in keep_set for s in rule.rhs)
        ]
        new_nts = [nt for nt in self._nonterminals if nt in keep_set]
        return CFG(self._alphabet, new_nts, new_rules, self._start)

    def with_start(self, start: NonTerminal) -> CFG:
        """Return the same grammar with a different start symbol."""
        return CFG(self._alphabet, self._nonterminals, self._rules, start)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CFG):
            return NotImplemented
        return (
            self._alphabet == other._alphabet
            and set(self._nonterminals) == set(other._nonterminals)
            and set(self._rules) == set(other._rules)
            and self._start == other._start
        )

    def __hash__(self) -> int:
        return hash((self._alphabet, frozenset(self._nonterminals), frozenset(self._rules), self._start))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def to_key(self) -> str:
        """A canonical, process-stable serialization of this grammar.

        Two grammars have equal keys exactly when they are ``==``: the
        encoding sorts the non-terminal and rule sets by their canonical
        encodings rather than relying on declaration or hash iteration
        order, so keys agree across processes and ``PYTHONHASHSEED``
        values.  Used by :mod:`repro.engine` to build disk-cache keys.

        >>> g = CFG("ab", ["S"], [("S", ("a", "S", "b")), ("S", ())], "S")
        >>> h = CFG("ab", ["S"], [("S", ()), ("S", ("a", "S", "b"))], "S")
        >>> g.to_key() == h.to_key()
        True
        """
        from repro.util.canonical import canonical_encode

        return canonical_encode(
            (
                "CFG",
                self._alphabet.symbols,
                frozenset(canonical_encode(nt) for nt in self._nonterminals),
                frozenset(
                    canonical_encode((rule.lhs, rule.rhs)) for rule in self._rules
                ),
                canonical_encode(self._start),
            )
        )

    def __repr__(self) -> str:
        return (
            f"CFG(|Σ|={len(self._alphabet)}, |N|={len(self._nonterminals)}, "
            f"|R|={len(self._rules)}, size={self.size}, start={_symbol_str(self._start)})"
        )

    def pretty(self) -> str:
        """Render all rules, one per line, grouped by left-hand side."""
        lines = []
        for nt in self._nonterminals:
            for rule in self._by_lhs[nt]:
                lines.append(str(rule))
        return "\n".join(lines)


def grammar_from_mapping(
    terminals: Alphabet | Iterable[str],
    productions: Mapping[NonTerminal, Iterable[Iterable[Symbol] | str]],
    start: NonTerminal,
) -> CFG:
    """Build a :class:`CFG` from a ``{lhs: [rhs, ...]}`` mapping.

    Each right-hand side may be given as an iterable of symbols or, as a
    convenience, a plain string which is split into its characters (all of
    which must then be terminals or single-character non-terminals).

    >>> g = grammar_from_mapping("ab", {"S": ["aSb", ""]}, "S")
    >>> g.size
    3
    """
    alphabet = terminals if isinstance(terminals, Alphabet) else Alphabet(terminals)
    nts = list(productions.keys())
    rules: list[Rule] = []
    for lhs, bodies in productions.items():
        for body in bodies:
            rhs = tuple(body) if not isinstance(body, str) else tuple(body)
            rules.append(Rule(lhs, rhs))
    return CFG(alphabet, nts, rules, start)
