"""Alphabets and word utilities (Section 2 of the paper).

Words are plain Python ``str`` objects whose characters are the symbols; an
:class:`Alphabet` is an ordered, duplicate-free collection of
single-character symbols.  The binary alphabet ``{a, b}`` of the paper is
exported as :data:`AB`.
"""

from repro.words.alphabet import AB, Alphabet
from repro.words.ops import (
    all_words,
    complement_word,
    count_words,
    is_word_over,
    random_word,
    words_of_lengths,
)

__all__ = [
    "Alphabet",
    "AB",
    "all_words",
    "complement_word",
    "count_words",
    "is_word_over",
    "random_word",
    "words_of_lengths",
]
