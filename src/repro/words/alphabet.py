"""Alphabets: ordered, duplicate-free sets of single-character symbols."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["Alphabet", "AB"]


class Alphabet:
    """A finite, ordered alphabet of single-character symbols.

    The order matters: language enumeration (and therefore lexicographic
    rank/unrank on unambiguous grammars) follows the declared symbol order.

    >>> sigma = Alphabet("ab")
    >>> list(sigma)
    ['a', 'b']
    >>> "a" in sigma
    True
    """

    __slots__ = ("_symbols", "_index")

    def __init__(self, symbols: Iterable[str]) -> None:
        syms = list(symbols)
        if not syms:
            raise ValueError("an alphabet must contain at least one symbol")
        for s in syms:
            if not isinstance(s, str) or len(s) != 1:
                raise ValueError(f"alphabet symbols must be single characters, got {s!r}")
        if len(set(syms)) != len(syms):
            raise ValueError(f"alphabet contains duplicate symbols: {syms!r}")
        self._symbols: tuple[str, ...] = tuple(syms)
        self._index: dict[str, int] = {s: i for i, s in enumerate(syms)}

    @property
    def symbols(self) -> tuple[str, ...]:
        """The symbols in declaration order."""
        return self._symbols

    def index(self, symbol: str) -> int:
        """Return the 0-based position of ``symbol`` in the alphabet order."""
        try:
            return self._index[symbol]
        except KeyError:
            raise ValueError(f"{symbol!r} is not a symbol of {self!r}") from None

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[str]:
        return iter(self._symbols)

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        return f"Alphabet({''.join(self._symbols)!r})"


#: The binary alphabet ``{a, b}`` used by every concrete language in the paper.
AB = Alphabet("ab")
