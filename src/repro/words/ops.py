"""Word-level operations: enumeration, complementation, validation.

The paper's Example 4 uses the *complement* ``w̄`` of a word ``w`` over
``{a, b}`` — the word obtained by flipping every ``a`` to ``b`` and
vice-versa; :func:`complement_word` generalises this to any two-symbol
alphabet.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Iterator

from repro.words.alphabet import Alphabet

__all__ = [
    "all_words",
    "complement_word",
    "count_words",
    "is_word_over",
    "random_word",
    "words_of_lengths",
]


def is_word_over(word: str, alphabet: Alphabet) -> bool:
    """Return whether every character of ``word`` is a symbol of ``alphabet``.

    >>> from repro.words import AB
    >>> is_word_over("abba", AB), is_word_over("abc", AB)
    (True, False)
    """
    return all(ch in alphabet for ch in word)


def all_words(alphabet: Alphabet, length: int) -> Iterator[str]:
    """Yield every word of exactly ``length`` in lexicographic order.

    Lexicographic means: with respect to the alphabet's declared symbol
    order, so ``all_words(AB, 2)`` yields ``aa, ab, ba, bb``.

    >>> from repro.words import AB
    >>> list(all_words(AB, 2))
    ['aa', 'ab', 'ba', 'bb']
    """
    if length < 0:
        raise ValueError(f"all_words: length must be non-negative, got {length}")
    for tup in itertools.product(alphabet.symbols, repeat=length):
        yield "".join(tup)


def words_of_lengths(alphabet: Alphabet, lengths: Iterable[int]) -> Iterator[str]:
    """Yield all words whose length is in ``lengths``, shortest first.

    ``lengths`` is deduplicated and sorted, so the output order is
    deterministic regardless of the input order.
    """
    for length in sorted(set(lengths)):
        yield from all_words(alphabet, length)


def count_words(alphabet: Alphabet, length: int) -> int:
    """Return ``|Σ|**length``, the number of words of a given length."""
    if length < 0:
        raise ValueError(f"count_words: length must be non-negative, got {length}")
    return len(alphabet) ** length


def complement_word(word: str, alphabet: Alphabet) -> str:
    """Return ``w̄``: the word with the two symbols of ``alphabet`` swapped.

    Only defined for two-symbol alphabets (Example 4 of the paper uses it
    over ``{a, b}``).

    >>> from repro.words import AB
    >>> complement_word("aab", AB)
    'bba'
    """
    if len(alphabet) != 2:
        raise ValueError(
            f"complement_word is only defined over two-symbol alphabets, got {alphabet!r}"
        )
    first, second = alphabet.symbols
    table = str.maketrans({first: second, second: first})
    if not is_word_over(word, alphabet):
        raise ValueError(f"{word!r} is not a word over {alphabet!r}")
    return word.translate(table)


def random_word(alphabet: Alphabet, length: int, rng: random.Random | None = None) -> str:
    """Return a uniformly random word of the given length.

    Pass an explicit ``rng`` for reproducibility; tests and benchmarks in
    this repository always do.
    """
    if length < 0:
        raise ValueError(f"random_word: length must be non-negative, got {length}")
    rng = rng if rng is not None else random.Random()
    return "".join(rng.choice(alphabet.symbols) for _ in range(length))
