"""Bit-parallel communication matrices: rows and columns as big-int masks.

The hot algorithms of this package — rectangle growth, disjoint covers,
fooling sets, rank — all reduce to intersecting row sets with column
sets.  :class:`PackedMatrix` stores each row and each column of a 0/1
communication matrix as one Python big integer, so those intersections
become single ``&`` operations on machine words instead of Python-level
loops over cells.  A whole sub-board of cells (the "uncovered" state of
a cover search) packs into one integer of ``rows·cols`` bits, making
disjointness checks, progress accounting and memoization keys ``O(1)``
objects.

Bit conventions, used consistently by every consumer:

* ``row_masks[i]`` has bit ``j`` set iff entry ``(i, j)`` is 1;
* ``col_masks[j]`` has bit ``i`` set iff entry ``(i, j)`` is 1;
* a *cell mask* addresses cell ``(i, j)`` at bit ``i * n_cols + j``
  (row-major), so the slice for row ``i`` is
  ``(cells >> (i * n_cols)) & ((1 << n_cols) - 1)``.

Conversion to and from the label-carrying :class:`~repro.comm.matrix.CommMatrix`
is lossless; ``to_key`` gives a canonical serialization of the 0/1
content for the :mod:`repro.engine` disk cache.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Iterator, Sequence

from repro.backend import get_backend
from repro.comm.matrix import CommMatrix

__all__ = [
    "PackedMatrix",
    "as_packed",
    "iter_bits",
    "mask_of",
    "cells_of_rect",
]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, ascending.

    >>> list(iter_bits(0b1101))
    [0, 2, 3]
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(indices: Iterable[int]) -> int:
    """The bitmask with exactly the given bit indices set.

    >>> bin(mask_of([0, 3]))
    '0b1001'
    """
    value = 0
    for index in indices:
        value |= 1 << index
    return value


def cells_of_rect(rows_mask: int, cols_mask: int, n_cols: int) -> int:
    """The row-major cell mask of the rectangle ``rows × cols``.

    >>> bin(cells_of_rect(0b11, 0b10, 2))  # cells (0,1) and (1,1)
    '0b1010'
    """
    return get_backend().cells_of_rect(rows_mask, cols_mask, n_cols)


class PackedMatrix:
    """A 0/1 matrix with rows *and* columns stored as big-int bitmasks.

    Both orientations are materialised because the cover/fooling
    algorithms alternate between "which columns does this row hit"
    (``row_masks``) and "which rows does this column hit"
    (``col_masks``); keeping the redundant copy costs ``O(rows·cols)``
    bits once and saves a transpose in every inner loop.

    >>> pm = PackedMatrix.from_entries([[1, 0], [1, 1]])
    >>> pm.shape, bin(pm.row_masks[0]), bin(pm.col_masks[0])
    ((2, 2), '0b1', '0b11')
    >>> pm[1, 0]
    1
    """

    __slots__ = ("n_rows", "n_cols", "row_masks", "col_masks", "row_labels", "col_labels")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        row_masks: Sequence[int],
        row_labels: Sequence[Hashable] | None = None,
        col_labels: Sequence[Hashable] | None = None,
    ) -> None:
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"negative shape ({n_rows}, {n_cols})")
        masks = list(row_masks)
        if len(masks) != n_rows:
            raise ValueError(f"{len(masks)} row masks but n_rows={n_rows}")
        limit = 1 << n_cols
        for i, mask in enumerate(masks):
            if not 0 <= mask < limit:
                raise ValueError(
                    f"row mask {i} = {mask:#x} does not fit in {n_cols} columns"
                )
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.row_masks = masks
        self.col_masks = self._transpose_masks(masks, n_rows, n_cols)
        self.row_labels = list(row_labels) if row_labels is not None else list(range(n_rows))
        self.col_labels = list(col_labels) if col_labels is not None else list(range(n_cols))
        if len(self.row_labels) != n_rows or len(self.col_labels) != n_cols:
            raise ValueError("label counts do not match the shape")

    @staticmethod
    def _transpose_masks(row_masks: Sequence[int], n_rows: int, n_cols: int) -> list[int]:
        return get_backend().transpose_masks(row_masks, n_cols)

    # -- constructors --------------------------------------------------

    @classmethod
    def from_entries(
        cls,
        entries: Sequence[Sequence[int]],
        row_labels: Sequence[Hashable] | None = None,
        col_labels: Sequence[Hashable] | None = None,
    ) -> "PackedMatrix":
        """Pack a list-of-lists 0/1 matrix."""
        rows = [list(r) for r in entries]
        n_cols = len(rows[0]) if rows else 0
        masks = []
        for r in rows:
            if len(r) != n_cols:
                raise ValueError("ragged entry rows")
            mask = 0
            for j, v in enumerate(r):
                if v not in (0, 1):
                    raise ValueError(f"entries must be 0/1, got {v!r}")
                if v:
                    mask |= 1 << j
            masks.append(mask)
        return cls(len(rows), n_cols, masks, row_labels, col_labels)

    @classmethod
    def from_comm(cls, matrix: CommMatrix) -> "PackedMatrix":
        """Pack a :class:`CommMatrix`, keeping its labels.

        >>> from repro.comm.matrix import intersection_matrix
        >>> PackedMatrix.from_comm(intersection_matrix(2)).count_ones()
        7
        """
        n_rows, n_cols = matrix.shape
        masks = []
        for row in matrix.entries:
            mask = 0
            for j, v in enumerate(row):
                if v:
                    mask |= 1 << j
            masks.append(mask)
        return cls(n_rows, n_cols, masks, matrix.row_labels, matrix.col_labels)

    @classmethod
    def from_function(
        cls,
        xs: Sequence[Hashable],
        ys: Sequence[Hashable],
        f: Callable[[Hashable, Hashable], bool],
    ) -> "PackedMatrix":
        """Materialise the packed matrix of ``f`` on ``xs × ys`` directly."""
        masks = [mask_of(j for j, y in enumerate(ys) if f(x, y)) for x in xs]
        return cls(len(xs), len(ys), masks, xs, ys)

    def to_comm(self) -> CommMatrix:
        """Unpack into a :class:`CommMatrix` (trusted fast path, no re-validation)."""
        return CommMatrix.from_bitrows(self.row_labels, self.col_labels, self.row_masks)

    # -- views ---------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.n_rows, self.n_cols

    def __getitem__(self, index: tuple[int, int]) -> int:
        i, j = index
        if not (0 <= i < self.n_rows and 0 <= j < self.n_cols):
            raise IndexError(f"cell {index} outside {self.shape}")
        return (self.row_masks[i] >> j) & 1

    def ones(self) -> list[tuple[int, int]]:
        """Index pairs of all 1-entries, row-major."""
        return [
            (i, j) for i in range(self.n_rows) for j in iter_bits(self.row_masks[i])
        ]

    def count_ones(self) -> int:
        return get_backend().popcount_rows(self.row_masks)

    def cells_mask(self) -> int:
        """All 1-entries as one row-major cell mask."""
        cells = 0
        for i, mask in enumerate(self.row_masks):
            cells |= mask << (i * self.n_cols)
        return cells

    def is_all_ones_rect(self, rows_mask: int, cols_mask: int) -> bool:
        """Whether ``rows × cols`` (as bitmasks) is an all-ones rectangle.

        >>> pm = PackedMatrix.from_entries([[1, 1], [1, 0]])
        >>> pm.is_all_ones_rect(0b11, 0b01), pm.is_all_ones_rect(0b11, 0b11)
        (True, False)
        """
        for i in iter_bits(rows_mask):
            if self.row_masks[i] & cols_mask != cols_mask:
                return False
        return True

    def transpose(self) -> "PackedMatrix":
        out = self.__class__.__new__(self.__class__)
        out.n_rows = self.n_cols
        out.n_cols = self.n_rows
        out.row_masks = list(self.col_masks)
        out.col_masks = list(self.row_masks)
        out.row_labels = list(self.col_labels)
        out.col_labels = list(self.row_labels)
        return out

    def to_key(self) -> str:
        """A canonical serialization of the 0/1 content (engine cache keys).

        Labels are deliberately excluded: two matrices with the same
        entries answer every packed algorithm identically.

        >>> a = PackedMatrix.from_entries([[1, 0]])
        >>> b = PackedMatrix(1, 2, [1], row_labels=["x"], col_labels=["u", "v"])
        >>> a.to_key() == b.to_key()
        True
        """
        from repro.util.canonical import canonical_encode

        return canonical_encode(
            ("PackedMatrix", self.n_rows, self.n_cols, tuple(self.row_masks))
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.row_masks == other.row_masks
            and self.row_labels == other.row_labels
            and self.col_labels == other.col_labels
        )

    def __repr__(self) -> str:
        return f"PackedMatrix({self.n_rows}x{self.n_cols}, ones={self.count_ones()})"


def as_packed(matrix: "CommMatrix | PackedMatrix") -> PackedMatrix:
    """Coerce either matrix representation to packed form.

    The bridge every rewritten algorithm calls first: public signatures
    keep accepting :class:`CommMatrix`, the inner loops only ever see
    masks.
    """
    if isinstance(matrix, PackedMatrix):
        return matrix
    return PackedMatrix.from_comm(matrix)
