"""Legacy-vs-packed benchmark cores for the communication substrate.

Each timing row pits the bit-parallel implementations (packed matrices,
Bareiss rank, mask-based covers) against the implementations they
replaced — Fraction Gaussian elimination and frozenset rectangle search,
preserved below as module-level baselines so engine workers can import
them.  The baselines duplicate the test oracles in
``tests/legacy_comm.py`` on purpose: the test suite is not importable
from worker processes, and the oracles must not depend on benchmark
code.  Results are plain JSON, produced by the ``comm.bench.row`` /
``comm.bench`` jobs and the ``python -m repro bench comm`` front end.
"""

from __future__ import annotations

from collections.abc import Iterable
from fractions import Fraction
from time import perf_counter
from typing import Any

from repro.comm.matrix import CommMatrix, intersection_matrix
from repro.comm.packed import PackedMatrix

__all__ = [
    "OPS",
    "bench_comm_row",
    "bench_cover_row",
    "bench_disc_row",
    "summarise_rows",
    "summarise_cover_rows",
    "legacy_rank_over_q",
    "legacy_greedy_disjoint_cover",
    "legacy_minimum_disjoint_cover",
    "legacy_greedy_fooling_set",
    "legacy_max_bilinear_form_exact",
    "frozen_packed_minimum_cover",
]

_Rect = tuple[frozenset[int], frozenset[int]]


# ----------------------------------------------------------------------
# Frozen baselines (the pre-packed algorithms, verbatim)
# ----------------------------------------------------------------------


def legacy_rank_over_q(matrix: CommMatrix) -> int:
    """Gaussian elimination over ``Fraction`` (pre-Bareiss ``rank_over_q``)."""
    work = [[Fraction(v) for v in row] for row in matrix.entries]
    if not work:
        return 0
    n_cols = len(work[0])
    rank = 0
    pivot_row = 0
    for col in range(n_cols):
        pivot = next((r for r in range(pivot_row, len(work)) if work[r][col] != 0), None)
        if pivot is None:
            continue
        work[pivot_row], work[pivot] = work[pivot], work[pivot_row]
        head = work[pivot_row][col]
        for r in range(pivot_row + 1, len(work)):
            if work[r][col] != 0:
                factor = work[r][col] / head
                row_r, row_p = work[r], work[pivot_row]
                for c in range(col, n_cols):
                    row_r[c] -= factor * row_p[c]
        pivot_row += 1
        rank += 1
        if pivot_row == len(work):
            break
    return rank


def _legacy_rect_cells(rect: _Rect) -> frozenset[tuple[int, int]]:
    rows, cols = rect
    return frozenset((i, j) for i in rows for j in cols)


def _legacy_grow_rectangle(
    matrix: CommMatrix,
    seed: tuple[int, int],
    allowed: frozenset[tuple[int, int]],
    column_first: bool,
) -> _Rect:
    i0, j0 = seed
    n_rows, n_cols = matrix.shape

    def row_ok(i: int, cols: Iterable[int]) -> bool:
        return all(matrix[i, j] == 1 and (i, j) in allowed for j in cols)

    def col_ok(j: int, rows: Iterable[int]) -> bool:
        return all(matrix[i, j] == 1 and (i, j) in allowed for i in rows)

    rows = {i0}
    cols = {j0}
    if column_first:
        cols |= {j for j in range(n_cols) if j != j0 and col_ok(j, rows)}
        rows |= {i for i in range(n_rows) if i != i0 and row_ok(i, cols)}
    else:
        rows |= {i for i in range(n_rows) if i != i0 and row_ok(i, cols)}
        cols |= {j for j in range(n_cols) if j != j0 and col_ok(j, rows)}
    return frozenset(rows), frozenset(cols)


def _legacy_maximal_rectangles_at(
    matrix: CommMatrix,
    seed: tuple[int, int],
    allowed: frozenset[tuple[int, int]],
) -> list[_Rect]:
    i0, j0 = seed
    n_rows, n_cols = matrix.shape
    candidate_cols = [
        j for j in range(n_cols) if matrix[i0, j] == 1 and (i0, j) in allowed
    ]
    seen: set[_Rect] = set()
    results: list[_Rect] = []
    for mask in range(1 << len(candidate_cols)):
        cols = {j0} | {
            candidate_cols[b] for b in range(len(candidate_cols)) if mask >> b & 1
        }
        rows = frozenset(
            i
            for i in range(n_rows)
            if all(matrix[i, j] == 1 and (i, j) in allowed for j in cols)
        )
        if not rows:
            continue
        closed_cols = frozenset(
            j
            for j in range(n_cols)
            if all(matrix[i, j] == 1 and (i, j) in allowed for i in rows)
        )
        rect = (rows, closed_cols)
        if rect not in seen:
            seen.add(rect)
            results.append(rect)
    return results


def legacy_greedy_disjoint_cover(matrix: CommMatrix) -> list[_Rect]:
    """The frozenset-based greedy disjoint cover (pre-packed)."""
    uncovered = set(matrix.ones())
    cover: list[_Rect] = []
    while uncovered:
        seed = min(uncovered)
        allowed = frozenset(uncovered)
        best = max(
            (
                _legacy_grow_rectangle(matrix, seed, allowed, column_first)
                for column_first in (False, True)
            ),
            key=lambda r: len(r[0]) * len(r[1]),
        )
        cover.append(best)
        uncovered -= _legacy_rect_cells(best)
    return cover


def legacy_minimum_disjoint_cover(
    matrix: CommMatrix, node_budget: int = 2_000_000
) -> list[_Rect]:
    """The frozenset branch-and-bound (pre-packed; no memoization)."""
    ones = frozenset(matrix.ones())
    if not ones:
        return []
    best_cover = legacy_greedy_disjoint_cover(matrix)
    nodes = 0

    def search(uncovered: frozenset[tuple[int, int]], chosen: list[_Rect]) -> None:
        nonlocal best_cover, nodes
        nodes += 1
        if nodes > node_budget:
            raise RuntimeError("minimum_disjoint_cover: node budget exhausted")
        if not uncovered:
            if len(chosen) < len(best_cover):
                best_cover = list(chosen)
            return
        if len(chosen) + 1 >= len(best_cover):
            return
        seed = min(uncovered)
        for rect in _legacy_maximal_rectangles_at(matrix, seed, uncovered):
            chosen.append(rect)
            search(uncovered - _legacy_rect_cells(rect), chosen)
            chosen.pop()

    search(ones, [])
    return best_cover


def legacy_greedy_fooling_set(matrix: CommMatrix) -> list[tuple[int, int]]:
    """The entry-by-entry greedy fooling scan (pre-packed)."""
    chosen: list[tuple[int, int]] = []
    for i, j in matrix.ones():
        if all(matrix[i, j2] == 0 or matrix[i2, j] == 0 for (i2, j2) in chosen):
            chosen.append((i, j))
    return chosen


def legacy_max_bilinear_form_exact(matrix: list[list[int]]) -> int:
    """The pre-SWAR exact Gray-code sweep with per-column Python sums."""
    if not matrix or not matrix[0]:
        return 0
    n_rows, n_cols = len(matrix), len(matrix[0])
    base = (
        matrix
        if n_rows <= n_cols
        else [[matrix[i][j] for i in range(n_rows)] for j in range(n_cols)]
    )
    dim = len(base)
    width = len(base[0])
    column_sums = [0] * width
    in_set = [False] * dim
    best = 0
    for step in range(1, 1 << dim):
        flip = (step & -step).bit_length() - 1
        sign = -1 if in_set[flip] else 1
        in_set[flip] = not in_set[flip]
        row = base[flip]
        for j in range(width):
            column_sums[j] += sign * row[j]
        positive = sum(s for s in column_sums if s > 0)
        negative = sum(s for s in column_sums if s < 0)
        best = max(best, positive, -negative)
    return best


# ----------------------------------------------------------------------
# Frozen packed branch-and-bound (the pre-solver exact cover, verbatim)
# ----------------------------------------------------------------------


def _frozen_cells_of_rect(rows_mask: int, cols_mask: int, n_cols: int) -> int:
    cells = 0
    scan = rows_mask
    while scan:
        low = scan & -scan
        cells |= cols_mask << ((low.bit_length() - 1) * n_cols)
        scan ^= low
    return cells


def _frozen_superset_rows(allow: list[int], cols: int) -> int:
    rows = 0
    for i, mask in enumerate(allow):
        if mask & cols == cols:
            rows |= 1 << i
    return rows


def _frozen_and_reduce(allow: list[int], rows: int) -> int:
    inter = -1
    scan = rows
    while scan:
        low = scan & -scan
        inter &= allow[low.bit_length() - 1]
        scan ^= low
    return inter


def _frozen_maximal_masks(allow: list[int], i0: int, j0: int) -> list[tuple[int, int]]:
    candidates = []
    scan = allow[i0]
    while scan:
        low = scan & -scan
        candidates.append(low.bit_length() - 1)
        scan ^= low
    seed_col = 1 << j0
    seen: set[tuple[int, int]] = set()
    results: list[tuple[int, int]] = []
    for subset in range(1 << len(candidates)):
        cols = seed_col
        bits = subset
        while bits:
            low = bits & -bits
            cols |= 1 << candidates[low.bit_length() - 1]
            bits ^= low
        rows = _frozen_superset_rows(allow, cols)
        if not rows:
            continue
        rect = (rows, _frozen_and_reduce(allow, rows))
        if rect not in seen:
            seen.add(rect)
            results.append(rect)
    return results


def _frozen_grow(allow: list[int], i0: int, j0: int, column_first: bool) -> tuple[int, int]:
    seed_row, seed_col = 1 << i0, 1 << j0
    if column_first:
        cols = allow[i0] | seed_col
        rows = seed_row | _frozen_superset_rows(allow, cols)
    else:
        rows = seed_row | _frozen_superset_rows(allow, seed_col)
        cols = seed_col | _frozen_and_reduce(allow, rows)
    return rows, cols


def _frozen_greedy_masks(pm: PackedMatrix) -> list[tuple[int, int]]:
    allow = list(pm.row_masks)
    cover: list[tuple[int, int]] = []
    while True:
        i0 = next((i for i in range(pm.n_rows) if allow[i]), None)
        if i0 is None:
            break
        j0 = (allow[i0] & -allow[i0]).bit_length() - 1
        best = _frozen_grow(allow, i0, j0, False)
        other = _frozen_grow(allow, i0, j0, True)
        if other[0].bit_count() * other[1].bit_count() > best[0].bit_count() * best[1].bit_count():
            best = other
        cover.append(best)
        not_cols = ~best[1]
        scan = best[0]
        while scan:
            low = scan & -scan
            allow[low.bit_length() - 1] &= not_cols
            scan ^= low
    return cover


def frozen_packed_minimum_cover(
    packed: PackedMatrix, node_budget: int = 2_000_000
) -> list[tuple[int, int]]:
    """The pre-solver packed branch-and-bound, frozen as a baseline.

    This is the exact algorithm :func:`repro.comm.covers.minimum_disjoint_cover`
    ran before it was swapped onto the branch-and-price core: greedy
    incumbent, area-only lower bound, smallest-uncovered-cell branching,
    visited-state memoization — reproduced self-contained (no backend
    calls) so the cover-solver bench rows measure the new core against
    precisely what it replaced, and the oracle stays immutable.  Raises
    ``RuntimeError`` on budget exhaustion.
    """
    n_rows, n_cols = packed.shape
    full_cols = (1 << n_cols) - 1
    ones_cells = 0
    for i, mask in enumerate(packed.row_masks):
        ones_cells |= mask << (i * n_cols)
    if not ones_cells:
        return []
    best = _frozen_greedy_masks(packed)
    max_row = max((m.bit_count() for m in packed.row_masks), default=0)
    max_col = max((m.bit_count() for m in packed.col_masks), default=0)
    area_cap = max(1, max_row * max_col)
    nodes = 0
    visited: dict[int, int] = {}

    def search(uncovered: int, chosen: list[tuple[int, int]]) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > node_budget:
            raise RuntimeError("frozen_packed_minimum_cover: node budget exhausted")
        if not uncovered:
            if len(chosen) < len(best):
                best = list(chosen)
            return
        depth = len(chosen)
        previous = visited.get(uncovered)
        if previous is not None and previous <= depth:
            return
        visited[uncovered] = depth
        needed = -(-uncovered.bit_count() // area_cap)
        if depth + max(1, needed) >= len(best):
            return
        low_bit = (uncovered & -uncovered).bit_length() - 1
        i0, j0 = divmod(low_bit, n_cols)
        allow = [(uncovered >> (i * n_cols)) & full_cols for i in range(n_rows)]
        for rows, cols in _frozen_maximal_masks(allow, i0, j0):
            cells = _frozen_cells_of_rect(rows, cols, n_cols)
            chosen.append((rows, cols))
            search(uncovered & ~cells, chosen)
            chosen.pop()

    search(ones_cells, [])
    return best


# ----------------------------------------------------------------------
# The timed operations
# ----------------------------------------------------------------------


def _timed(fn, *args) -> tuple[float, Any]:
    start = perf_counter()
    result = fn(*args)
    return perf_counter() - start, result


def _run_rank(matrix: CommMatrix, packed: PackedMatrix, node_budget: int) -> dict:
    from repro.comm.rank import rank_over_q

    legacy_s, legacy_rank = _timed(legacy_rank_over_q, matrix)
    packed_s, packed_rank = _timed(rank_over_q, packed)
    return {
        "legacy": {"seconds": legacy_s, "value": legacy_rank},
        "packed": {"seconds": packed_s, "value": packed_rank},
        "agree": legacy_rank == packed_rank,
    }


def _run_greedy_cover(matrix: CommMatrix, packed: PackedMatrix, node_budget: int) -> dict:
    from repro.comm.covers import greedy_disjoint_cover

    legacy_s, legacy_cover = _timed(legacy_greedy_disjoint_cover, matrix)
    packed_s, packed_cover = _timed(greedy_disjoint_cover, packed)
    return {
        "legacy": {"seconds": legacy_s, "value": len(legacy_cover)},
        "packed": {"seconds": packed_s, "value": len(packed_cover)},
        "agree": legacy_cover == packed_cover,
    }


def _run_min_cover(matrix: CommMatrix, packed: PackedMatrix, node_budget: int) -> dict:
    from repro.comm.covers import minimum_disjoint_cover
    from repro.errors import CoverBudgetExceeded

    start = perf_counter()
    try:
        legacy_value: int | None = len(legacy_minimum_disjoint_cover(matrix, node_budget))
    except RuntimeError:
        legacy_value = None
    legacy_s = perf_counter() - start

    start = perf_counter()
    try:
        packed_value: int | None = len(minimum_disjoint_cover(packed, node_budget))
    except CoverBudgetExceeded:
        packed_value = None
    packed_s = perf_counter() - start

    return {
        "legacy": {"seconds": legacy_s, "value": legacy_value},
        "packed": {"seconds": packed_s, "value": packed_value},
        "agree": legacy_value is None or packed_value is None or legacy_value == packed_value,
    }


def _run_fooling(matrix: CommMatrix, packed: PackedMatrix, node_budget: int) -> dict:
    from repro.comm.fooling import greedy_fooling_set

    legacy_s, legacy_set = _timed(legacy_greedy_fooling_set, matrix)
    packed_s, packed_set = _timed(greedy_fooling_set, packed)
    return {
        "legacy": {"seconds": legacy_s, "value": len(legacy_set)},
        "packed": {"seconds": packed_s, "value": len(packed_set)},
        "agree": legacy_set == packed_set,
    }


#: op name -> (runner, max p at which the op stays feasible for *both*
#: implementations).  The exact cover is exponential; past its cap both
#: sides only burn the node budget without producing a comparison.
OPS: dict[str, tuple[Any, int]] = {
    "rank_q": (_run_rank, 99),
    "greedy_cover": (_run_greedy_cover, 99),
    "min_cover": (_run_min_cover, 4),
    "fooling": (_run_fooling, 99),
}


def bench_comm_row(p: int, node_budget: int = 2_000_000) -> dict[str, Any]:
    """Time every operation pair on ``INTERSECT_p``; all values cross-checked.

    A ``None`` value means the implementation exhausted the node budget
    (exact cover only); the recorded seconds are then the time burnt
    discovering that, and the op does not count as completed.
    """
    matrix = intersection_matrix(p)
    packed = PackedMatrix.from_comm(matrix)
    ops: dict[str, Any] = {}
    for name, (runner, max_p) in OPS.items():
        if p > max_p:
            ops[name] = {"skipped": True}
            continue
        result = runner(matrix, packed, node_budget)
        if not result["agree"]:
            raise ValueError(f"comm bench: legacy and packed disagree on {name} at p={p}")
        for side in ("legacy", "packed"):
            result[side]["seconds"] = round(result[side]["seconds"], 6)
        legacy_s, packed_s = result["legacy"]["seconds"], result["packed"]["seconds"]
        if (
            packed_s > 0
            and result["legacy"]["value"] is not None
            and result["packed"]["value"] is not None
        ):
            result["speedup"] = round(legacy_s / packed_s, 2)
        ops[name] = result
    return {"p": p, "matrix_side": 2**p, "node_budget": node_budget, "ops": ops}


def bench_disc_row(m: int) -> dict[str, Any]:
    """Time the exact discrepancy sweep on the paper's split sign matrix.

    Pits the SWAR :func:`~repro.core.discrepancy.max_bilinear_form`
    against the pre-SWAR per-column sweep on the ``±1`` sign matrix of
    the ``[1, n] | [n+1, 2n]`` partition (Lemma 19's object).  Exact only
    for ``m ≤ 2`` (a ``4^m × 4^m`` matrix; beyond that the exact branch
    is out of reach for both implementations).
    """
    from repro.core.discrepancy import (
        max_bilinear_form,
        sign_matrix_for_partition,
        split_partition,
    )

    if m > 2:
        raise ValueError("bench_disc_row: the exact sweep is feasible only for m <= 2")
    matrix, _side0, _side1 = sign_matrix_for_partition(split_partition(m), m)
    legacy_s, legacy_value = _timed(legacy_max_bilinear_form_exact, matrix)
    packed_s, (packed_value, exact) = _timed(max_bilinear_form, matrix)
    if not exact or legacy_value != packed_value:
        raise ValueError(f"comm bench: discrepancy sweeps disagree at m={m}")
    result = {
        "m": m,
        "matrix_side": 4**m,
        "max_disc": packed_value,
        "legacy": {"seconds": round(legacy_s, 6), "value": legacy_value},
        "packed": {"seconds": round(packed_s, 6), "value": packed_value},
        "agree": True,
    }
    if packed_s > 0:
        result["speedup"] = round(legacy_s / packed_s, 2)
    return result


#: Largest ``p`` at which the frozen branch-and-bound oracle is still
#: feasible — the old "exact-cover wall" the solver rows measure against.
ORACLE_MAX_P = 4


def bench_cover_row(
    p: int, node_budget: int = 2_000_000, oracle_max_p: int = ORACLE_MAX_P
) -> dict[str, Any]:
    """Time the branch-and-price solver on ``INTERSECT_p``, both modes.

    The ``disjoint`` leg is cross-checked against the frozen pre-solver
    branch-and-bound wherever that oracle still terminates
    (``p ≤ oracle_max_p``); beyond the wall the solver's own certificate
    (``optimal`` — a matching exact lower bound) is the correctness
    witness recorded in the row.
    """
    from repro.comm.cover import solve_cover
    from repro.errors import CoverBudgetExceeded

    matrix = intersection_matrix(p)
    packed = PackedMatrix.from_comm(matrix)
    solver: dict[str, Any] = {}
    for mode in ("disjoint", "cover"):
        start = perf_counter()
        try:
            result = solve_cover(packed, mode=mode, node_budget=node_budget)
            cell = {
                "seconds": round(perf_counter() - start, 6),
                "value": result.size,
                "optimal": result.optimal,
                "lower_bound": result.lower_bound,
                "nodes": result.nodes_expanded,
                "bounds": result.bounds,
            }
        except CoverBudgetExceeded as err:
            cell = {
                "seconds": round(perf_counter() - start, 6),
                "value": None,
                "optimal": False,
                "best_found": len(err.best_cover),
                "nodes": err.nodes_expanded,
            }
        solver[mode] = cell
    row: dict[str, Any] = {
        "p": p,
        "matrix_side": 2**p,
        "node_budget": node_budget,
        "solver": solver,
    }
    if p <= oracle_max_p:
        start = perf_counter()
        try:
            oracle_value: int | None = len(frozen_packed_minimum_cover(packed, node_budget))
        except RuntimeError:
            oracle_value = None
        oracle_s = round(perf_counter() - start, 6)
        agree = (
            oracle_value is None
            or solver["disjoint"]["value"] is None
            or oracle_value == solver["disjoint"]["value"]
        )
        if not agree:
            raise ValueError(
                f"cover bench: solver and frozen oracle disagree at p={p} "
                f"({solver['disjoint']['value']} vs {oracle_value})"
            )
        row["oracle"] = {"seconds": oracle_s, "value": oracle_value, "agree": True}
        if (
            solver["disjoint"]["seconds"] > 0
            and oracle_value is not None
            and solver["disjoint"]["value"] is not None
        ):
            row["speedup"] = round(oracle_s / solver["disjoint"]["seconds"], 2)
    else:
        row["oracle"] = {"skipped": True}
    return row


def summarise_cover_rows(rows: list[dict], budget_s: float) -> dict[str, Any]:
    """The exact-cover frontier: how far past the wall the solver reaches.

    ``largest_certified_p`` is the largest ``p`` whose *disjoint*
    optimum the solver certified within ``budget_s`` seconds;
    ``largest_oracle_p`` the frozen branch-and-bound's frontier under
    the same budget.  Their difference is the headline of this bench.
    """

    def certified(row: dict) -> bool:
        cell = row["solver"]["disjoint"]
        return cell["value"] is not None and cell["optimal"] and cell["seconds"] <= budget_s

    def oracle_done(row: dict) -> bool:
        cell = row["oracle"]
        return (
            not cell.get("skipped")
            and cell["value"] is not None
            and cell["seconds"] <= budget_s
        )

    certified_ps = [row["p"] for row in rows if certified(row)]
    oracle_ps = [row["p"] for row in rows if oracle_done(row)]
    root_certified = [
        row["p"]
        for row in rows
        if certified(row) and row["solver"]["disjoint"]["nodes"] == 0
    ]
    return {
        "budget_s": budget_s,
        "largest_certified_p": max(certified_ps, default=None),
        "largest_oracle_p": max(oracle_ps, default=None),
        "root_certified_ps": root_certified,
    }


def _completed(op_result: dict, side: str) -> bool:
    return not op_result.get("skipped") and op_result[side]["value"] is not None


def summarise_rows(rows: list[dict], budget_s: float) -> dict[str, Any]:
    """Per-op frontier summary over a sweep of :func:`bench_comm_row` rows.

    * ``largest_common_p`` — largest ``p`` where *both* implementations
      completed, and the speedup measured there;
    * ``largest_p_within_budget`` — per side, largest ``p`` completed in
      at most ``budget_s`` seconds: the "how far can you push it"
      frontier, whose difference is the parameter gain of the packed
      engine.
    """
    ops_summary: dict[str, Any] = {}
    op_names = sorted({name for row in rows for name in row["ops"]})
    for name in op_names:
        common = [r for r in rows if _completed(r["ops"][name], "legacy") and _completed(r["ops"][name], "packed")]
        in_budget = {
            side: [
                r["p"]
                for r in rows
                if _completed(r["ops"][name], side)
                and r["ops"][name][side]["seconds"] <= budget_s
            ]
            for side in ("legacy", "packed")
        }
        summary: dict[str, Any] = {
            "largest_p_within_budget": {
                side: max(ps, default=None) for side, ps in in_budget.items()
            },
        }
        if common:
            at = max(common, key=lambda r: r["p"])
            summary["largest_common_p"] = at["p"]
            summary["speedup_at_largest_common"] = at["ops"][name].get("speedup")
        ops_summary[name] = summary
    return {"budget_s": budget_s, "ops": ops_summary}
