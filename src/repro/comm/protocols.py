"""Deterministic communication protocols as trees.

The textbook object behind Section 3's rectangles: a deterministic
protocol for ``f : X × Y → {0,1}`` is a binary tree whose inner nodes are
owned by Alice (split on a subset of ``X``) or Bob (split on a subset of
``Y``); every leaf induces a combinatorial rectangle on which the
protocol's output is constant, so a ``c``-bit protocol yields a partition
of the matrix into at most ``2^c`` monochromatic rectangles — the
classical source of the "rectangles ⇒ lower bounds" method the paper
adapts to grammars.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass

from repro.comm.matrix import CommMatrix

__all__ = ["Leaf", "Node", "Protocol", "balanced_partition_protocol", "protocol_for_equality"]


@dataclass(frozen=True, slots=True)
class Leaf:
    """A protocol leaf announcing the output bit."""

    output: int


@dataclass(frozen=True, slots=True)
class Node:
    """An inner node: ``owner`` ∈ {"alice", "bob"} sends one bit.

    ``predicate`` maps the owner's input to the bit sent; 0 descends into
    ``zero``, 1 into ``one``.
    """

    owner: str
    predicate: Callable[[Hashable], int]
    zero: "Node | Leaf"
    one: "Node | Leaf"

    def __post_init__(self) -> None:
        if self.owner not in ("alice", "bob"):
            raise ValueError(f"owner must be 'alice' or 'bob', got {self.owner!r}")


class Protocol:
    """A deterministic protocol over explicit input universes.

    >>> root = Node("alice", lambda x: x % 2, Leaf(0), Leaf(1))
    >>> p = Protocol(root, xs=[0, 1], ys=[0])
    >>> p.evaluate(1, 0)
    1
    """

    def __init__(self, root: Node | Leaf, xs: Sequence[Hashable], ys: Sequence[Hashable]) -> None:
        self.root = root
        self.xs = list(xs)
        self.ys = list(ys)

    def evaluate(self, x: Hashable, y: Hashable) -> int:
        """Run the protocol on one input pair."""
        node: Node | Leaf = self.root
        while isinstance(node, Node):
            bit = node.predicate(x if node.owner == "alice" else y)
            if bit not in (0, 1):
                raise ValueError(f"predicate returned {bit!r}, expected a bit")
            node = node.one if bit else node.zero
        return node.output

    @property
    def depth(self) -> int:
        """The communication cost: the longest root-leaf path in bits."""

        def rec(node: Node | Leaf) -> int:
            if isinstance(node, Leaf):
                return 0
            return 1 + max(rec(node.zero), rec(node.one))

        return rec(self.root)

    @property
    def n_leaves(self) -> int:
        def rec(node: Node | Leaf) -> int:
            if isinstance(node, Leaf):
                return 1
            return rec(node.zero) + rec(node.one)

        return rec(self.root)

    def computes(self, f: Callable[[Hashable, Hashable], bool]) -> bool:
        """Exhaustively check correctness against ``f``."""
        return all(
            self.evaluate(x, y) == (1 if f(x, y) else 0)
            for x in self.xs
            for y in self.ys
        )

    def leaf_rectangles(self) -> list[tuple[frozenset, frozenset, int]]:
        """The rectangle partition induced by the leaves.

        Returns ``(X-part, Y-part, output)`` triples; the parts over all
        leaves partition ``X × Y`` (checked by tests), and each part is
        monochromatic whenever the protocol is correct.
        """
        results: list[tuple[frozenset, frozenset, int]] = []

        def rec(node: Node | Leaf, xs: frozenset, ys: frozenset) -> None:
            if isinstance(node, Leaf):
                results.append((xs, ys, node.output))
                return
            if node.owner == "alice":
                ones = frozenset(x for x in xs if node.predicate(x))
                rec(node.zero, xs - ones, ys)
                rec(node.one, ones, ys)
            else:
                ones = frozenset(y for y in ys if node.predicate(y))
                rec(node.zero, xs, ys - ones)
                rec(node.one, xs, ones)

        rec(self.root, frozenset(self.xs), frozenset(self.ys))
        return results

    def induced_partition_is_valid(self, matrix: CommMatrix) -> bool:
        """Check the leaf rectangles partition the matrix monochromatically."""
        x_index = {x: i for i, x in enumerate(matrix.row_labels)}
        y_index = {y: j for j, y in enumerate(matrix.col_labels)}
        covered: set[tuple[int, int]] = set()
        for xs, ys, output in self.leaf_rectangles():
            for x in xs:
                for y in ys:
                    cell = (x_index[x], y_index[y])
                    if cell in covered:
                        return False
                    covered.add(cell)
                    if matrix[cell] != output:
                        return False
        total = len(matrix.row_labels) * len(matrix.col_labels)
        return len(covered) == total


def protocol_for_equality(bits: int) -> Protocol:
    """The trivial ``2·bits``-bit protocol for EQ on ``bits``-bit strings.

    Alice announces her input bit by bit; Bob announces the verdict.
    Cost ``bits + 1`` — and the fooling-set bound shows ``bits`` is
    necessary, so this is optimal up to one bit.
    """
    if bits < 1:
        raise ValueError(f"need bits >= 1, got {bits}")
    universe = list(range(1 << bits))

    def build(prefix_fixed: int, position: int) -> Node | Leaf:
        if position == bits:
            # Bob announces whether his input equals Alice's announced one.
            return Node(
                "bob",
                lambda y, fixed=prefix_fixed: 1 if y == fixed else 0,
                Leaf(0),
                Leaf(1),
            )
        return Node(
            "alice",
            lambda x, pos=position: (x >> pos) & 1,
            build(prefix_fixed, position + 1),
            build(prefix_fixed | (1 << position), position + 1),
        )

    return Protocol(build(0, 0), universe, universe)


def balanced_partition_protocol(
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
    f: Callable[[Hashable, Hashable], bool],
) -> Protocol:
    """The trivial protocol: Alice sends her whole input (``⌈log|X|⌉`` bits).

    Always correct; its leaf count ``2^⌈log|X|⌉ · 2`` upper-bounds the
    partition number of the matrix — the baseline every lower bound is
    measured against.
    """
    indexed = list(xs)
    bits = max(1, (len(indexed) - 1).bit_length())
    x_rank = {x: i for i, x in enumerate(indexed)}

    def build(prefix_fixed: int, position: int) -> Node | Leaf:
        if position == bits:
            if prefix_fixed >= len(indexed):
                return Leaf(0)
            x_value = indexed[prefix_fixed]
            return Node(
                "bob",
                lambda y, xv=x_value: 1 if f(xv, y) else 0,
                Leaf(0),
                Leaf(1),
            )
        return Node(
            "alice",
            lambda x, pos=position: (x_rank[x] >> pos) & 1,
            build(prefix_fixed, position + 1),
            build(prefix_fixed | (1 << position), position + 1),
        )

    return Protocol(build(0, 0), indexed, list(ys))
