"""Communication matrices (the classical, fixed-partition setting).

Section 3 of the paper situates its rectangle bound next to standard
communication complexity: Theorem 17 "is an immediate consequence of the
so-called rank bound pioneered in [Mehlhorn & Schmidt 1982]".  This module
provides the classical objects — the 0/1 matrix of a two-party function,
combinatorial rectangles as row-set × column-set blocks, and the concrete
set-(non)disjointness matrices the paper's ``L_n`` corresponds to.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Sequence

from repro.util.combinatorics import iter_subsets

__all__ = [
    "CommMatrix",
    "matrix_from_function",
    "intersection_matrix",
    "disjointness_matrix",
    "equality_matrix",
]


class CommMatrix:
    """The 0/1 matrix of a function ``f : X × Y → {0, 1}``.

    Rows and columns carry explicit labels so rectangles and fooling sets
    can be reported in terms of the original inputs.
    """

    __slots__ = ("row_labels", "col_labels", "entries")

    def __init__(
        self,
        row_labels: Sequence[Hashable],
        col_labels: Sequence[Hashable],
        entries: Sequence[Sequence[int]],
    ) -> None:
        rows = [list(r) for r in entries]
        if len(rows) != len(row_labels):
            raise ValueError(f"{len(rows)} entry rows but {len(row_labels)} row labels")
        for r in rows:
            if len(r) != len(col_labels):
                raise ValueError("ragged entry rows")
            for v in r:
                if v not in (0, 1):
                    raise ValueError(f"entries must be 0/1, got {v!r}")
        self.row_labels = list(row_labels)
        self.col_labels = list(col_labels)
        self.entries = rows

    @classmethod
    def _from_validated(
        cls,
        row_labels: list[Hashable],
        col_labels: list[Hashable],
        entries: list[list[int]],
    ) -> "CommMatrix":
        """Trusted constructor: adopt the arguments without re-validation.

        ``__init__`` costs ``O(rows · cols)`` per call; internal callers
        that build entries 0/1 by construction (:func:`matrix_from_function`,
        :meth:`transpose`, the packed converters) skip that sweep.  The
        lists are adopted, not copied — callers must hand over ownership.
        """
        matrix = cls.__new__(cls)
        matrix.row_labels = row_labels
        matrix.col_labels = col_labels
        matrix.entries = entries
        return matrix

    @classmethod
    def from_bitrows(
        cls,
        row_labels: Sequence[Hashable],
        col_labels: Sequence[Hashable],
        bitrows: Sequence[int],
    ) -> "CommMatrix":
        """Build from per-row bitmasks (bit ``j`` of ``bitrows[i]`` = entry ``(i, j)``).

        The unpacking direction of :class:`repro.comm.packed.PackedMatrix`;
        masks are validated to fit the column count, entries need no scan.

        >>> CommMatrix.from_bitrows(["r0", "r1"], ["c0", "c1"], [0b01, 0b11]).entries
        [[1, 0], [1, 1]]
        """
        if len(bitrows) != len(row_labels):
            raise ValueError(f"{len(bitrows)} bitrows but {len(row_labels)} row labels")
        n_cols = len(col_labels)
        limit = 1 << n_cols
        for i, mask in enumerate(bitrows):
            if not 0 <= mask < limit:
                raise ValueError(f"bitrow {i} = {mask:#x} does not fit in {n_cols} columns")
        entries = [[(mask >> j) & 1 for j in range(n_cols)] for mask in bitrows]
        return cls._from_validated(list(row_labels), list(col_labels), entries)

    @property
    def shape(self) -> tuple[int, int]:
        return len(self.row_labels), len(self.col_labels)

    def __getitem__(self, index: tuple[int, int]) -> int:
        i, j = index
        return self.entries[i][j]

    def ones(self) -> list[tuple[int, int]]:
        """Index pairs of all 1-entries."""
        return [
            (i, j)
            for i, row in enumerate(self.entries)
            for j, v in enumerate(row)
            if v
        ]

    def count_ones(self) -> int:
        return sum(sum(row) for row in self.entries)

    def is_monochromatic_rectangle(self, rows: Iterable[int], cols: Iterable[int]) -> bool:
        """Whether the block ``rows × cols`` is constant."""
        row_list, col_list = list(rows), list(cols)
        if not row_list or not col_list:
            return True
        first = self.entries[row_list[0]][col_list[0]]
        return all(self.entries[i][j] == first for i in row_list for j in col_list)

    def transpose(self) -> "CommMatrix":
        rows, cols = self.shape
        return CommMatrix._from_validated(
            list(self.col_labels),
            list(self.row_labels),
            [[self.entries[i][j] for i in range(rows)] for j in range(cols)],
        )

    def __repr__(self) -> str:
        rows, cols = self.shape
        return f"CommMatrix({rows}x{cols}, ones={self.count_ones()})"


def matrix_from_function(
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
    f: Callable[[Hashable, Hashable], bool],
) -> CommMatrix:
    """Materialise the communication matrix of ``f`` on ``xs × ys``.

    >>> m = matrix_from_function([0, 1], [0, 1], lambda x, y: x == y)
    >>> m.entries
    [[1, 0], [0, 1]]
    """
    entries = [[1 if f(x, y) else 0 for y in ys] for x in xs]
    return CommMatrix._from_validated(list(xs), list(ys), entries)


def _subsets(p: int) -> list[frozenset[int]]:
    return sorted(iter_subsets(range(1, p + 1)), key=lambda s: (len(s), sorted(s)))


def intersection_matrix(p: int) -> CommMatrix:
    """The matrix of INTERSECT ``(X, Y) ↦ [X ∩ Y ≠ ∅]`` over ``𝒫([p])²``.

    This is the set-theoretic heart of ``L_n`` (Section 4.1): "``L_n``
    consists of intersecting pairs of sets, so ``L_n`` is essentially the
    complement of the famous set disjointness problem".  Its rank over ℚ
    is ``2^p - 1``, which the rank bound turns into a ``2^Ω(p)`` bound on
    disjoint covers.
    """
    subs = _subsets(p)
    return matrix_from_function(subs, subs, lambda x, y: bool(x & y))


def disjointness_matrix(p: int) -> CommMatrix:
    """The matrix of DISJ ``(X, Y) ↦ [X ∩ Y = ∅]`` over ``𝒫([p])²``."""
    subs = _subsets(p)
    return matrix_from_function(subs, subs, lambda x, y: not (x & y))


def equality_matrix(p: int) -> CommMatrix:
    """The matrix of EQ over ``𝒫([p])²`` — the identity, rank ``2^p``."""
    subs = _subsets(p)
    return matrix_from_function(subs, subs, lambda x, y: x == y)
