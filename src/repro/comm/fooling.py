"""Fooling sets: the other classical rectangle lower bound.

A *fooling set* for a matrix ``M`` is a set of 1-entries such that no two
of them fit into a common all-ones rectangle: for any two entries
``(x, y)`` and ``(x', y')`` in the set, ``M[x, y'] = 0`` or
``M[x', y] = 0``.  Any 1-cover (disjoint or not) then needs at least one
rectangle per fooling entry.  The same argument applied to the
prefix/suffix matrix of a regular language gives the NFA state bound used
by :func:`repro.languages.nfa_ln.exact_ln_fooling_set`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.comm.matrix import CommMatrix

__all__ = ["is_fooling_set", "greedy_fooling_set", "fooling_set_bound"]


def is_fooling_set(matrix: CommMatrix, entries: Iterable[tuple[int, int]]) -> bool:
    """Verify the fooling property for a set of index pairs.

    >>> from repro.comm.matrix import equality_matrix
    >>> m = equality_matrix(2)
    >>> is_fooling_set(m, [(i, i) for i in range(4)])
    True
    """
    pairs = list(entries)
    for i, j in pairs:
        if matrix[i, j] != 1:
            return False
    for idx, (i, j) in enumerate(pairs):
        for i2, j2 in pairs[idx + 1 :]:
            if matrix[i, j2] == 1 and matrix[i2, j] == 1:
                return False
    return True


def greedy_fooling_set(matrix: CommMatrix) -> list[tuple[int, int]]:
    """Build a (maximal, not necessarily maximum) fooling set greedily.

    Scans the 1-entries in row-major order and keeps an entry whenever it
    stays compatible with everything kept so far.  The result is verified
    before being returned.
    """
    chosen: list[tuple[int, int]] = []
    for i, j in matrix.ones():
        if all(
            matrix[i, j2] == 0 or matrix[i2, j] == 0 for (i2, j2) in chosen
        ):
            chosen.append((i, j))
    if not is_fooling_set(matrix, chosen):  # pragma: no cover - greedy is sound
        raise AssertionError("greedy produced a non-fooling set")
    return chosen


def fooling_set_bound(matrix: CommMatrix) -> int:
    """A lower bound on the 1-cover number via the greedy fooling set."""
    return len(greedy_fooling_set(matrix))
