"""Fooling sets: the other classical rectangle lower bound.

A *fooling set* for a matrix ``M`` is a set of 1-entries such that no two
of them fit into a common all-ones rectangle: for any two entries
``(x, y)`` and ``(x', y')`` in the set, ``M[x, y'] = 0`` or
``M[x', y] = 0``.  Any 1-cover (disjoint or not) then needs at least one
rectangle per fooling entry.  The same argument applied to the
prefix/suffix matrix of a regular language gives the NFA state bound used
by :func:`repro.languages.nfa_ln.exact_ln_fooling_set`.

Membership tests run on the packed representation: entry ``(i, j')`` is a
single shift-and-mask of row ``i``'s bitmask, and the greedy scan checks
a candidate against all chosen entries with one row-mask intersection per
chosen-occupied row of the candidate's column.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.comm.matrix import CommMatrix
from repro.comm.packed import PackedMatrix, as_packed, iter_bits

__all__ = ["is_fooling_set", "greedy_fooling_set", "fooling_set_bound"]


def is_fooling_set(
    matrix: CommMatrix | PackedMatrix, entries: Iterable[tuple[int, int]]
) -> bool:
    """Verify the fooling property for a set of index pairs.

    >>> from repro.comm.matrix import equality_matrix
    >>> m = equality_matrix(2)
    >>> is_fooling_set(m, [(i, i) for i in range(4)])
    True
    """
    pm = as_packed(matrix)
    rows = pm.row_masks
    pairs = list(entries)
    for i, j in pairs:
        if not (rows[i] >> j) & 1:
            return False
    for idx, (i, j) in enumerate(pairs):
        row_i = rows[i]
        for i2, j2 in pairs[idx + 1 :]:
            if (row_i >> j2) & 1 and (rows[i2] >> j) & 1:
                return False
    return True


def greedy_fooling_set(matrix: CommMatrix | PackedMatrix) -> list[tuple[int, int]]:
    """Build a (maximal, not necessarily maximum) fooling set greedily.

    Scans the 1-entries in row-major order and keeps an entry whenever it
    stays compatible with everything kept so far.  A candidate ``(i, j)``
    conflicts with a chosen ``(i', j')`` iff ``M[i', j] = 1`` and
    ``M[i, j'] = 1`` — i.e. iff some row ``i'`` of column ``j``'s mask
    holds a chosen entry whose column mask intersects row ``i`` — so the
    check is one AND per chosen-occupied row of column ``j``.  The result
    is verified before being returned.
    """
    pm = as_packed(matrix)
    chosen: list[tuple[int, int]] = []
    chosen_in_row = [0] * pm.n_rows  # columns of chosen entries, per row
    chosen_rows = 0  # rows holding at least one chosen entry
    for i in range(pm.n_rows):
        row_i = pm.row_masks[i]
        for j in iter_bits(row_i):
            conflict = False
            for i2 in iter_bits(pm.col_masks[j] & chosen_rows):
                if chosen_in_row[i2] & row_i:
                    conflict = True
                    break
            if not conflict:
                chosen.append((i, j))
                chosen_in_row[i] |= 1 << j
                chosen_rows |= 1 << i
    if not is_fooling_set(pm, chosen):  # pragma: no cover - greedy is sound
        raise AssertionError("greedy produced a non-fooling set")
    return chosen


def fooling_set_bound(matrix: CommMatrix | PackedMatrix) -> int:
    """A lower bound on the 1-cover number via the greedy fooling set."""
    return len(greedy_fooling_set(matrix))
