"""Exact and greedy rectangle covers of the 1-entries of a matrix.

The *partition number* (minimum number of pairwise disjoint all-ones
rectangles covering all 1-entries) is the fixed-partition analogue of the
quantity Proposition 16 bounds for ``L_n``.  Exact computation is
NP-hard: :func:`minimum_disjoint_cover` delegates to the bound-certified
branch-and-price core of :mod:`repro.comm.cover`; the greedy variant
scales further and upper-bounds the truth.

All algorithms here run on the bit-parallel representation of
:mod:`repro.comm.packed`: the uncovered 1-entries are one row-major cell
bitmask, rectangle growth is an AND-chain over row masks, disjointness is
``cells & ~remaining``, and the branch-and-bound memoises visited
uncovered-states by their (hashable, O(1)) cell mask.  Public signatures
are unchanged from the list-of-lists era and accept :class:`CommMatrix`
and :class:`PackedMatrix` alike; the frozen pre-packed implementations
survive as test oracles in ``tests/legacy_comm.py``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.backend import get_backend
from repro.comm.matrix import CommMatrix
from repro.comm.packed import PackedMatrix, as_packed, cells_of_rect, iter_bits, mask_of

__all__ = [
    "Rect",
    "rect_cells",
    "maximal_rectangles_at",
    "greedy_disjoint_cover",
    "minimum_disjoint_cover",
    "verify_disjoint_cover",
]

#: A rectangle as (row-index frozenset, column-index frozenset).
Rect = tuple[frozenset[int], frozenset[int]]

#: A rectangle as (row bitmask, column bitmask) — the internal currency.
MaskRect = tuple[int, int]


def rect_cells(rect: Rect) -> frozenset[tuple[int, int]]:
    """All cells of a rectangle."""
    rows, cols = rect
    return frozenset((i, j) for i in rows for j in cols)


def _rect_from_masks(rows_mask: int, cols_mask: int) -> Rect:
    return frozenset(iter_bits(rows_mask)), frozenset(iter_bits(cols_mask))


def _allow_rows(matrix: PackedMatrix, allowed: Iterable[tuple[int, int]]) -> list[int]:
    """Per-row masks of cells that are both 1-entries and in ``allowed``.

    Every ``allowed`` cell must lie inside the matrix: out-of-range
    indices raise a ``ValueError`` naming the offending cell instead of
    being silently dropped (rows) or corrupting the mask arithmetic
    (negative columns).
    """
    n_rows, n_cols = matrix.shape
    by_row = [0] * n_rows
    for i, j in allowed:
        if not (0 <= i < n_rows and 0 <= j < n_cols):
            raise ValueError(
                f"allowed cell ({i}, {j}) outside the {n_rows}x{n_cols} matrix"
            )
        by_row[i] |= 1 << j
    return [by_row[i] & matrix.row_masks[i] for i in range(n_rows)]


def _grow_masks(
    allow: list[int], i0: int, j0: int, column_first: bool
) -> MaskRect:
    """Grow a maximal all-ones rectangle around the seed within ``allow``.

    ``allow[i]`` must already be intersected with the 1-entries of row
    ``i``; growth is then pure mask arithmetic: a column joins when its
    bit survives the AND of every member row, a row joins when it
    contains every member column.
    """
    backend = get_backend()
    seed_row = 1 << i0
    seed_col = 1 << j0
    if column_first:
        cols = allow[i0] | seed_col
        rows = seed_row | backend.superset_rows(allow, cols)
    else:
        rows = seed_row | backend.superset_rows(allow, seed_col)
        cols = seed_col | backend.and_reduce(allow, rows)
    return rows, cols


def _grow_rectangle(
    matrix: CommMatrix | PackedMatrix,
    seed: tuple[int, int],
    allowed: frozenset[tuple[int, int]],
    column_first: bool,
) -> Rect:
    """Grow a maximal all-ones rectangle around ``seed`` within ``allowed``."""
    pm = as_packed(matrix)
    i0, j0 = seed
    rows, cols = _grow_masks(_allow_rows(pm, allowed), i0, j0, column_first)
    return _rect_from_masks(rows, cols)


def _maximal_masks(allow: list[int], i0: int, j0: int) -> list[MaskRect]:
    """All inclusion-maximal allowed rectangles through the seed, as masks.

    Column-set-first enumeration: every maximal rectangle is the row
    closure of its column set, and its column set extends the seed column
    within the seed row's allowed columns.  Exponential in the number of
    candidate columns, as the exact cover search requires.
    """
    backend = get_backend()
    candidates = list(iter_bits(allow[i0]))
    seed_col = 1 << j0
    seen: set[MaskRect] = set()
    results: list[MaskRect] = []
    for subset in range(1 << len(candidates)):
        cols = seed_col
        bits = subset
        while bits:
            low = bits & -bits
            cols |= 1 << candidates[low.bit_length() - 1]
            bits ^= low
        rows = backend.superset_rows(allow, cols)
        if not rows:
            continue
        # Close the columns against the rows for maximality.
        rect = (rows, backend.and_reduce(allow, rows))
        if rect not in seen:
            seen.add(rect)
            results.append(rect)
    return results


def maximal_rectangles_at(
    matrix: CommMatrix | PackedMatrix,
    seed: tuple[int, int],
    allowed: frozenset[tuple[int, int]],
) -> list[Rect]:
    """All inclusion-maximal all-ones rectangles through ``seed``.

    Enumerated by choosing each subset of compatible columns' closure —
    exponential in the worst case, so callers cap the matrix size.
    """
    pm = as_packed(matrix)
    i0, j0 = seed
    allow = _allow_rows(pm, allowed)
    return [
        _rect_from_masks(rows, cols) for rows, cols in _maximal_masks(allow, i0, j0)
    ]


def _greedy_masks(pm: PackedMatrix) -> list[MaskRect]:
    """The greedy disjoint cover as mask rectangles (the packed hot loop)."""
    n_rows = pm.n_rows
    allow = list(pm.row_masks)
    cover: list[MaskRect] = []
    while True:
        i0 = next((i for i in range(n_rows) if allow[i]), None)
        if i0 is None:
            break
        j0 = (allow[i0] & -allow[i0]).bit_length() - 1
        best = _grow_masks(allow, i0, j0, False)
        other = _grow_masks(allow, i0, j0, True)
        if other[0].bit_count() * other[1].bit_count() > best[0].bit_count() * best[1].bit_count():
            best = other
        cover.append(best)
        not_cols = ~best[1]
        for i in iter_bits(best[0]):
            allow[i] &= not_cols
    return cover


def greedy_disjoint_cover(matrix: CommMatrix | PackedMatrix) -> list[Rect]:
    """A disjoint cover of the 1s by repeatedly growing maximal rectangles.

    Upper-bounds the partition number; exactness is not claimed.  Seeds
    are the smallest uncovered cell in row-major order, so the result is
    deterministic (and identical to the pre-packed implementation).
    """
    return [_rect_from_masks(r, c) for r, c in _greedy_masks(as_packed(matrix))]


def minimum_disjoint_cover(
    matrix: CommMatrix | PackedMatrix, node_budget: int = 2_000_000
) -> list[Rect]:
    """Exact minimum disjoint rectangle cover of the 1-entries.

    A thin facade over :func:`repro.comm.cover.solve_cover` in
    ``disjoint`` mode — the branch-and-price core that seeds with the
    greedy cover, certifies against exact fooling-set / rank /
    fractional-LP lower bounds (often at the root, with zero search
    nodes), and otherwise branches on the least-flexible uncovered cell.
    ``node_budget`` caps the search; on exhaustion
    :class:`~repro.errors.CoverBudgetExceeded` is raised carrying the
    best valid cover found so far (verified, with explicit partial-
    coverage accounting) instead of discarding the progress.  The
    pre-solver branch-and-bound survives as the frozen oracle in
    ``tests/legacy_comm.py``.

    >>> from repro.comm.matrix import intersection_matrix
    >>> len(minimum_disjoint_cover(intersection_matrix(2)))
    3
    """
    from repro.comm.cover import solve_cover

    result = solve_cover(matrix, mode="disjoint", node_budget=node_budget)
    return list(result.cover)


def verify_disjoint_cover(
    matrix: CommMatrix | PackedMatrix, cover: Iterable[Rect]
) -> bool:
    """Check a claimed disjoint cover: all-ones blocks, disjoint, exhaustive."""
    pm = as_packed(matrix)
    remaining = pm.cells_mask()
    for rows, cols in cover:
        rows_mask, cols_mask = mask_of(rows), mask_of(cols)
        if not pm.is_all_ones_rect(rows_mask, cols_mask):
            return False
        cells = cells_of_rect(rows_mask, cols_mask, pm.n_cols)
        if cells & ~remaining:
            return False  # overlap (every stray 0-cell already failed above)
        remaining &= ~cells
    return not remaining
