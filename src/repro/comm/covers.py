"""Exact and greedy rectangle covers of the 1-entries of a matrix.

The *partition number* (minimum number of pairwise disjoint all-ones
rectangles covering all 1-entries) is the fixed-partition analogue of the
quantity Proposition 16 bounds for ``L_n``.  Exact computation is
NP-hard, so :func:`minimum_disjoint_cover` is a branch-and-bound search
for genuinely tiny matrices (used in benchmark E8 for ``p ≤ 2``); the
greedy variant scales further and upper-bounds the truth.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.comm.matrix import CommMatrix
from repro.comm.rank import rank_over_q

__all__ = [
    "Rect",
    "rect_cells",
    "maximal_rectangles_at",
    "greedy_disjoint_cover",
    "minimum_disjoint_cover",
    "verify_disjoint_cover",
]

#: A rectangle as (row-index frozenset, column-index frozenset).
Rect = tuple[frozenset[int], frozenset[int]]


def rect_cells(rect: Rect) -> frozenset[tuple[int, int]]:
    """All cells of a rectangle."""
    rows, cols = rect
    return frozenset((i, j) for i in rows for j in cols)


def _grow_rectangle(matrix: CommMatrix, seed: tuple[int, int], allowed: frozenset[tuple[int, int]], column_first: bool) -> Rect:
    """Grow a maximal all-ones rectangle around ``seed`` within ``allowed``."""
    i0, j0 = seed
    n_rows, n_cols = matrix.shape

    def row_ok(i: int, cols: Iterable[int]) -> bool:
        return all(matrix[i, j] == 1 and (i, j) in allowed for j in cols)

    def col_ok(j: int, rows: Iterable[int]) -> bool:
        return all(matrix[i, j] == 1 and (i, j) in allowed for i in rows)

    rows = {i0}
    cols = {j0}
    if column_first:
        cols |= {j for j in range(n_cols) if j != j0 and col_ok(j, rows)}
        rows |= {i for i in range(n_rows) if i != i0 and row_ok(i, cols)}
    else:
        rows |= {i for i in range(n_rows) if i != i0 and row_ok(i, cols)}
        cols |= {j for j in range(n_cols) if j != j0 and col_ok(j, rows)}
    return frozenset(rows), frozenset(cols)


def maximal_rectangles_at(
    matrix: CommMatrix,
    seed: tuple[int, int],
    allowed: frozenset[tuple[int, int]],
) -> list[Rect]:
    """All inclusion-maximal all-ones rectangles through ``seed``.

    Enumerated by choosing each subset of compatible columns' closure —
    exponential in the worst case, so callers cap the matrix size.  The
    enumeration works column-set-first: every maximal rectangle is the
    closure of its column set, and its column set is a subset of the
    columns compatible with the seed row.
    """
    i0, j0 = seed
    n_rows, n_cols = matrix.shape
    candidate_cols = [
        j
        for j in range(n_cols)
        if matrix[i0, j] == 1 and (i0, j) in allowed
    ]
    seen: set[Rect] = set()
    results: list[Rect] = []
    for mask in range(1 << len(candidate_cols)):
        cols = {j0} | {
            candidate_cols[b] for b in range(len(candidate_cols)) if mask >> b & 1
        }
        rows = frozenset(
            i
            for i in range(n_rows)
            if all(matrix[i, j] == 1 and (i, j) in allowed for j in cols)
        )
        if not rows:
            continue
        # Close the columns against the rows for maximality.
        closed_cols = frozenset(
            j
            for j in range(n_cols)
            if all(matrix[i, j] == 1 and (i, j) in allowed for i in rows)
        )
        rect = (rows, closed_cols)
        if rect not in seen:
            seen.add(rect)
            results.append(rect)
    return results


def greedy_disjoint_cover(matrix: CommMatrix) -> list[Rect]:
    """A disjoint cover of the 1s by repeatedly growing maximal rectangles.

    Upper-bounds the partition number; exactness is not claimed.
    """
    uncovered = set(matrix.ones())
    cover: list[Rect] = []
    while uncovered:
        seed = min(uncovered)
        allowed = frozenset(uncovered)
        best = max(
            (
                _grow_rectangle(matrix, seed, allowed, column_first)
                for column_first in (False, True)
            ),
            key=lambda r: len(r[0]) * len(r[1]),
        )
        cover.append(best)
        uncovered -= rect_cells(best)
    return cover


def minimum_disjoint_cover(matrix: CommMatrix, node_budget: int = 2_000_000) -> list[Rect]:
    """Exact minimum disjoint rectangle cover of the 1-entries.

    Branch and bound: branch on the smallest uncovered 1-entry over all
    maximal rectangles containing it (restricted to uncovered cells —
    disjointness makes this restriction sound), pruned by the greedy
    upper bound and the depth.  ``node_budget`` caps the search; the
    budget is generous for the ``p ≤ 2`` matrices the benchmarks use and
    a ``RuntimeError`` signals exhaustion rather than a wrong answer.
    """
    ones = frozenset(matrix.ones())
    if not ones:
        return []
    best_cover = greedy_disjoint_cover(matrix)
    nodes = 0

    def search(uncovered: frozenset[tuple[int, int]], chosen: list[Rect]) -> None:
        nonlocal best_cover, nodes
        nodes += 1
        if nodes > node_budget:
            raise RuntimeError("minimum_disjoint_cover: node budget exhausted")
        if not uncovered:
            if len(chosen) < len(best_cover):
                best_cover = list(chosen)
            return
        if len(chosen) + 1 >= len(best_cover):
            return
        seed = min(uncovered)
        for rect in maximal_rectangles_at(matrix, seed, uncovered):
            chosen.append(rect)
            search(uncovered - rect_cells(rect), chosen)
            chosen.pop()

    search(ones, [])
    return best_cover


def verify_disjoint_cover(matrix: CommMatrix, cover: Iterable[Rect]) -> bool:
    """Check a claimed disjoint cover: all-ones blocks, disjoint, exhaustive."""
    remaining = set(matrix.ones())
    for rect in cover:
        cells = rect_cells(rect)
        for i, j in cells:
            if matrix[i, j] != 1:
                return False
        if not cells <= remaining:
            return False  # overlap or stray cell
        remaining -= cells
    return not remaining
