"""Branch-and-price exact rectangle covers: certified minimum 1-covers.

The partition number — the minimum number of pairwise disjoint all-ones
rectangles covering the 1-entries of a matrix — is the quantity
Proposition 16 turns into a uCFG size lower bound, and a minimum
rectangle cover is exactly a minimum biclique cover of the matrix's
bipartite support graph.  The plain branch-and-bound of
:func:`repro.comm.covers.minimum_disjoint_cover` dies around ``p = 4``
on the ``L_n`` matrices because its only lower bound is cell count over
maximum rectangle area; this module replaces the core with a
branch-and-price-style search whose pruning machinery certifies optima
long before the tree is explored:

incumbent upper bound
    The greedy disjoint cover (both orientations) or, in ``cover`` mode,
    the greedy overlapping cover — never worse than what the caller
    could compute herself, and the fallback payload of the budget path.
exact lower bounds, staged cheap-to-expensive
    * *area*: uncovered cells over the densest-row x densest-column
      area cap;
    * *fooling sets* (independent edges of the support graph): the
      greedy set first, then a capped exact maximum via an independent-
      set branch-and-bound on the cell conflict graph — any fooling set
      lower-bounds any 1-cover, disjoint or not;
    * *rank* (disjoint mode only): ``rank_{GF(2)}`` and ``rank_ℚ`` of the
      residual matrix — a disjoint cover sums rank-1 indicators with no
      cancellation over any field (Theorem 17's bound);
    * *fractional cover LP*: the dual linear program
      ``max Σ_c x_c  s.t.  Σ_{c ∈ R} x_c ≤ 1`` per maximal rectangle
      ``R``, solved by a dense primal simplex over exact
      :class:`~fractions.Fraction` arithmetic — no float tolerance
      anywhere.  By weak duality *any* feasible iterate bounds the
      fractional (hence the integral) cover number, so a pivot cap
      costs tightness, never soundness.  Restricting constraints to
      *maximal* rectangles is complete because ``x ≥ 0`` makes every
      sub-rectangle's constraint dominated.

Each bound stage runs only while the gap is open, so easy instances
(`L_p` included: greedy = ``2^p - 1`` = rank) certify at the *root* in
milliseconds.  When the gap survives, the search branches on the
*least-flexible* uncovered cell — the one whose residual row and column
are thinnest — over all inclusion-maximal rectangles through it,
memoising visited uncovered-states by their cell bitmask.

Everything runs on the :class:`~repro.comm.packed.PackedMatrix` bitmask
currency with popcount / ``bit_indices`` / ``cells_of_rect`` routed
through the active kernel backend (:mod:`repro.backend`); results are
bit-exact across backends.  The pre-existing branch-and-bound survives
frozen in ``tests/legacy_comm.py`` as the property-test oracle for every
matrix it can still finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Sequence

from repro.backend import get_backend
from repro.comm.matrix import (
    CommMatrix,
    disjointness_matrix,
    equality_matrix,
    intersection_matrix,
)
from repro.comm.packed import PackedMatrix, as_packed, cells_of_rect, iter_bits
from repro.errors import CoverBudgetExceeded, RectangleError

__all__ = [
    "CoverResult",
    "solve_cover",
    "matrix_from_spec",
    "fractional_cover_bound",
    "maximum_fooling_bound",
    "all_maximal_rectangles",
]

#: A rectangle as (row bitmask, column bitmask) — the internal currency.
MaskRect = tuple[int, int]

#: A rectangle as (row-index frozenset, column-index frozenset).
Rect = tuple[frozenset[int], frozenset[int]]

_MODES = ("disjoint", "cover")

#: Default caps on the expensive root bounds.  Exceeding a cap skips the
#: bound (soundly — the remaining bounds still apply), it never guesses.
DEFAULT_LP_CELL_LIMIT = 72
DEFAULT_LP_RECT_LIMIT = 224
DEFAULT_LP_PIVOT_LIMIT = 400
DEFAULT_FOOLING_CELL_LIMIT = 72
DEFAULT_FOOLING_NODE_LIMIT = 20_000


@dataclass(frozen=True)
class CoverResult:
    """A (certified or budget-bounded) minimum rectangle cover.

    ``optimal`` is ``True`` exactly when ``lower_bound == size`` — the
    cover is then a *certified* minimum, with ``bounds`` recording which
    bound closed the gap.  ``nodes_expanded == 0`` means the root bounds
    alone certified the incumbent.
    """

    mode: str
    cover: tuple[Rect, ...]
    size: int
    lower_bound: int
    optimal: bool
    bounds: dict[str, int] = field(default_factory=dict)
    nodes_expanded: int = 0
    node_budget: int = 0
    shape: tuple[int, int] = (0, 0)

    def to_json(self) -> dict[str, Any]:
        """A JSON-serializable view (engine job results, artifacts)."""
        return {
            "mode": self.mode,
            "shape": list(self.shape),
            "size": self.size,
            "lower_bound": self.lower_bound,
            "optimal": self.optimal,
            "bounds": dict(self.bounds),
            "nodes_expanded": self.nodes_expanded,
            "node_budget": self.node_budget,
            "cover": [
                [sorted(rows), sorted(cols)] for rows, cols in self.cover
            ],
        }


def matrix_from_spec(
    spec: "PackedMatrix | CommMatrix | Sequence[Sequence[int]] | str",
) -> PackedMatrix:
    """Coerce any accepted matrix description to packed form.

    Accepts a :class:`PackedMatrix` / :class:`CommMatrix`, a (possibly
    nested-tuple — the engine canonicalises job params that way)
    list-of-lists of 0/1 entries, or a named-family string
    ``"intersection:P"`` / ``"disjointness:P"`` / ``"equality:P"``.

    >>> matrix_from_spec("intersection:2").shape
    (4, 4)
    >>> matrix_from_spec(((1, 0), (0, 1))).count_ones()
    2
    """
    if isinstance(spec, PackedMatrix):
        return spec
    if isinstance(spec, CommMatrix):
        return as_packed(spec)
    if isinstance(spec, str):
        builders = {
            "intersection": intersection_matrix,
            "disjointness": disjointness_matrix,
            "equality": equality_matrix,
        }
        kind, sep, arg = spec.partition(":")
        if not sep or kind not in builders:
            known = ", ".join(f"{name}:P" for name in builders)
            raise ValueError(f"unknown matrix spec {spec!r} (known: {known})")
        try:
            p = int(arg)
        except ValueError:
            raise ValueError(f"matrix spec {spec!r}: parameter is not an integer")
        return as_packed(builders[kind](p))
    return PackedMatrix.from_entries([list(row) for row in spec])


# ----------------------------------------------------------------------
# Maximal-rectangle (formal concept) enumeration — the LP's column set
# ----------------------------------------------------------------------


def _all_maximal_masks(allow: list[int], n_cols: int, limit: int) -> list[MaskRect] | None:
    """All inclusion-maximal non-empty rectangles of ``allow``, or ``None``.

    Close-by-One enumeration of the formal concepts of the allowed-cell
    relation: each concept is generated exactly once, at the recursion
    path of its lexicographically-least column generator, recognised by
    the canonicity test (no column below the branch column may join the
    closure).  Returns ``None`` when more than ``limit`` rectangles
    exist — callers must then skip bounds that need the *complete* set.
    """
    backend = get_backend()
    out: list[MaskRect] = []

    def descend(cols: int, rows: int, start: int) -> bool:
        for j in range(start, n_cols):
            bit = 1 << j
            if cols & bit:
                continue
            rows2 = backend.superset_rows(allow, cols | bit)
            if not rows2:
                continue
            cols2 = backend.and_reduce(allow, rows2)
            if (cols2 ^ cols) & (bit - 1):
                continue  # a lower column joined: generated elsewhere
            out.append((rows2, cols2))
            if len(out) > limit:
                return False
            if not descend(cols2, rows2, j + 1):
                return False
        return True

    if not descend(0, (1 << len(allow)) - 1 if allow else 0, 0):
        return None
    return out


def all_maximal_rectangles(
    matrix: "CommMatrix | PackedMatrix", limit: int = 10_000
) -> list[Rect]:
    """Every inclusion-maximal all-ones rectangle of the matrix.

    >>> sorted(len(r[0]) * len(r[1]) for r in all_maximal_rectangles([[1, 1], [1, 0]]))
    [2, 2]
    """
    pm = matrix_from_spec(matrix)
    masks = _all_maximal_masks(list(pm.row_masks), pm.n_cols, limit)
    if masks is None:
        raise RectangleError(
            f"more than {limit} maximal rectangles in a {pm.shape} matrix"
        )
    return [
        (frozenset(iter_bits(rows)), frozenset(iter_bits(cols)))
        for rows, cols in masks
    ]


# ----------------------------------------------------------------------
# The fractional-cover LP over exact rationals
# ----------------------------------------------------------------------


def _simplex_dual_bound(
    supports: list[tuple[int, ...]], n_vars: int, pivot_limit: int
) -> Fraction:
    """``max Σ x`` s.t. ``Σ_{k ∈ support} x_k ≤ 1`` per row, ``x ≥ 0``.

    Dense primal simplex on the slack basis (every right-hand side is
    ``1 ≥ 0``, so no phase one), Dantzig entering rule, exact
    :class:`Fraction` arithmetic throughout.  Every iterate is primal
    feasible, so the value returned after *any* number of pivots — the
    cap included — is a valid lower bound on the fractional cover
    number by weak duality.
    """
    m = len(supports)
    width = n_vars + m + 1
    zero, one = Fraction(0), Fraction(1)
    rows: list[list[Fraction]] = []
    for r, support in enumerate(supports):
        row = [zero] * width
        for k in support:
            row[k] = one
        row[n_vars + r] = one
        row[-1] = one
        rows.append(row)
    obj = [one] * n_vars + [zero] * (m + 1)
    for _ in range(pivot_limit):
        enter = max(range(n_vars + m), key=obj.__getitem__)
        if obj[enter] <= 0:
            break
        leave, best_ratio = -1, None
        for r in range(m):
            coeff = rows[r][enter]
            if coeff > 0:
                ratio = rows[r][-1] / coeff
                if best_ratio is None or ratio < best_ratio:
                    best_ratio, leave = ratio, r
        if leave < 0:  # pragma: no cover - every cell sits in a rectangle
            break
        pivot = rows[leave][enter]
        prow = [value / pivot for value in rows[leave]]
        rows[leave] = prow
        for r in range(m):
            factor = rows[r][enter]
            if r != leave and factor:
                rows[r] = [v - factor * p for v, p in zip(rows[r], prow)]
        factor = obj[enter]
        if factor:
            obj = [v - factor * p for v, p in zip(obj, prow)]
    return -obj[-1]


def _ceil_fraction(value: Fraction) -> int:
    return -(-value.numerator // value.denominator)


def _lp_bound(
    allow: list[int],
    n_cols: int,
    uncovered: int,
    *,
    rect_limit: int,
    pivot_limit: int,
) -> int | None:
    """The ceil'd fractional-cover dual bound, or ``None`` when capped."""
    rects = _all_maximal_masks(allow, n_cols, rect_limit)
    if rects is None:
        return None
    backend = get_backend()
    var_of = {bit: k for k, bit in enumerate(backend.bit_indices(uncovered))}
    supports: set[tuple[int, ...]] = set()
    for rows, cols in rects:
        inside = cells_of_rect(rows, cols, n_cols) & uncovered
        if inside:
            supports.add(tuple(var_of[bit] for bit in backend.bit_indices(inside)))
    if not supports:
        return None
    value = _simplex_dual_bound(sorted(supports), len(var_of), pivot_limit)
    return _ceil_fraction(value)


def fractional_cover_bound(
    matrix: "CommMatrix | PackedMatrix | Sequence[Sequence[int]] | str",
    *,
    rect_limit: int = DEFAULT_LP_RECT_LIMIT,
    pivot_limit: int = DEFAULT_LP_PIVOT_LIMIT,
) -> int | None:
    """``ceil`` of the fractional cover number, or ``None`` when capped.

    Valid as a lower bound on overlapping *and* disjoint covers alike.

    >>> fractional_cover_bound([[1, 0], [0, 1]])
    2
    >>> fractional_cover_bound([[1, 1], [1, 1]])
    1
    """
    pm = matrix_from_spec(matrix)
    uncovered = pm.cells_mask()
    if not uncovered:
        return 0
    return _lp_bound(
        list(pm.row_masks),
        pm.n_cols,
        uncovered,
        rect_limit=rect_limit,
        pivot_limit=pivot_limit,
    )


# ----------------------------------------------------------------------
# Fooling sets: greedy seed, then exact maximum independent set
# ----------------------------------------------------------------------


def _greedy_fooling_size(allow: list[int], n_cols: int, uncovered: int) -> int:
    """Greedy fooling set over the uncovered cells of ``allow``.

    Row-major scan keeping every cell compatible with all kept cells;
    two cells conflict (cannot both be kept) iff they fit in a common
    all-ones rectangle of ``allow``: ``allow[i] ∋ j'`` and
    ``allow[i'] ∋ j``.
    """
    kept_in_row = [0] * len(allow)
    kept_rows = 0
    size = 0
    for bit in iter_bits(uncovered):
        i, j = divmod(bit, n_cols)
        row_i = allow[i]
        col_rows = kept_rows
        conflict = False
        while col_rows:
            low = col_rows & -col_rows
            i2 = low.bit_length() - 1
            col_rows ^= low
            if (allow[i2] >> j) & 1 and kept_in_row[i2] & row_i:
                conflict = True
                break
        if not conflict:
            kept_in_row[i] |= 1 << j
            kept_rows |= 1 << i
            size += 1
    return size


def _max_fooling_size(
    allow: list[int],
    n_cols: int,
    uncovered: int,
    *,
    seed: int,
    node_limit: int,
) -> tuple[int, bool]:
    """Maximum fooling set among the uncovered cells, via MIS search.

    Branch-and-bound maximum independent set on the cell *compatibility*
    graph (edge = the two cells share an all-ones rectangle).  Returns
    ``(size, complete)``; when the node limit truncates the search, the
    best independent set found is still a sound lower bound.
    """
    backend = get_backend()
    cells = [divmod(bit, n_cols) for bit in backend.bit_indices(uncovered)]
    t = len(cells)
    adj = [0] * t
    for a in range(t):
        i, j = cells[a]
        for b in range(a + 1, t):
            i2, j2 = cells[b]
            if (allow[i] >> j2) & 1 and (allow[i2] >> j) & 1:
                adj[a] |= 1 << b
                adj[b] |= 1 << a
    best = seed
    nodes = 0
    complete = True

    def grab(cand: int, size: int) -> None:
        nonlocal best, nodes, complete
        if nodes >= node_limit:
            complete = False
            return
        nodes += 1
        if size + cand.bit_count() <= best:
            return
        if not cand:
            best = size
            return
        # Branch on the most-conflicted candidate cell: including it
        # clears the most conflicts, excluding it prunes fastest.
        pick, pick_deg = -1, -1
        scan = cand
        while scan:
            low = scan & -scan
            v = low.bit_length() - 1
            scan ^= low
            degree = (adj[v] & cand).bit_count()
            if degree > pick_deg:
                pick, pick_deg = v, degree
        bit = 1 << pick
        grab(cand & ~adj[pick] & ~bit, size + 1)
        grab(cand & ~bit, size)

    grab((1 << t) - 1, 0)
    return best, complete


def maximum_fooling_bound(
    matrix: "CommMatrix | PackedMatrix | Sequence[Sequence[int]] | str",
    *,
    cell_limit: int = DEFAULT_FOOLING_CELL_LIMIT,
    node_limit: int = DEFAULT_FOOLING_NODE_LIMIT,
) -> int:
    """The best fooling-set lower bound this module can certify.

    The greedy set always runs; the exact maximum-independent-set search
    runs when the matrix has at most ``cell_limit`` 1-entries.  Either
    way the result is a sound lower bound on every 1-cover.

    >>> maximum_fooling_bound([[1, 0], [0, 1]])
    2
    """
    pm = matrix_from_spec(matrix)
    allow = list(pm.row_masks)
    uncovered = pm.cells_mask()
    if not uncovered:
        return 0
    greedy = _greedy_fooling_size(allow, pm.n_cols, uncovered)
    if uncovered.bit_count() > cell_limit:
        return greedy
    exact, _ = _max_fooling_size(
        allow, pm.n_cols, uncovered, seed=greedy, node_limit=node_limit
    )
    return exact


# ----------------------------------------------------------------------
# Incumbents: the greedy covers as mask rectangles
# ----------------------------------------------------------------------


def _greedy_disjoint_incumbent(pm: PackedMatrix) -> list[MaskRect]:
    """The better of the row- and column-orientation greedy covers."""
    from repro.comm.covers import _greedy_masks

    best = _greedy_masks(pm)
    flipped = [(rows, cols) for cols, rows in _greedy_masks(pm.transpose())]
    return flipped if len(flipped) < len(best) else best


def _greedy_overlapping_incumbent(pm: PackedMatrix) -> list[MaskRect]:
    """The greedy overlapping cover, at the mask level."""
    from repro.comm.covers import _grow_masks

    n_cols = pm.n_cols
    allow = list(pm.row_masks)  # growth may reuse covered cells
    uncovered = pm.cells_mask()
    cover: list[MaskRect] = []
    while uncovered:
        low_bit = (uncovered & -uncovered).bit_length() - 1
        i0, j0 = divmod(low_bit, n_cols)
        best_rect: MaskRect = (0, 0)
        best_gain = -1
        for column_first in (False, True):
            rows, cols = _grow_masks(allow, i0, j0, column_first)
            gain = (cells_of_rect(rows, cols, n_cols) & uncovered).bit_count()
            if gain > best_gain:
                best_gain, best_rect = gain, (rows, cols)
        cover.append(best_rect)
        uncovered &= ~cells_of_rect(best_rect[0], best_rect[1], n_cols)
    return cover


# ----------------------------------------------------------------------
# The solver
# ----------------------------------------------------------------------


def _rects_out(cover: list[MaskRect]) -> tuple[Rect, ...]:
    return tuple(
        (frozenset(iter_bits(rows)), frozenset(iter_bits(cols)))
        for rows, cols in cover
    )


def solve_cover(
    matrix: "CommMatrix | PackedMatrix | Sequence[Sequence[int]] | str",
    mode: str = "disjoint",
    node_budget: int = 2_000_000,
    *,
    lp_cell_limit: int = DEFAULT_LP_CELL_LIMIT,
    lp_rect_limit: int = DEFAULT_LP_RECT_LIMIT,
    lp_pivot_limit: int = DEFAULT_LP_PIVOT_LIMIT,
    fooling_cell_limit: int = DEFAULT_FOOLING_CELL_LIMIT,
    fooling_node_limit: int = DEFAULT_FOOLING_NODE_LIMIT,
) -> CoverResult:
    """Exact minimum rectangle cover of the 1-entries, with certificates.

    ``mode="disjoint"`` computes the partition number (pairwise disjoint
    rectangles — Proposition 16's quantity); ``mode="cover"`` the
    nondeterministic 1-cover number (overlaps allowed; the rank bounds
    do *not* apply and are not used).

    The search is exact: the returned :class:`CoverResult` is a true
    minimum whenever it terminates within ``node_budget``, and
    ``optimal`` additionally records whether a matching lower bound
    *certifies* it.  On budget exhaustion
    :class:`~repro.errors.CoverBudgetExceeded` is raised carrying the
    best cover found so far, verified before it is handed out.  A
    non-positive ``node_budget`` raises immediately with the greedy
    incumbent — no search, not even root bounds.

    >>> solve_cover("intersection:2").size
    3
    >>> solve_cover("intersection:3", mode="cover").size
    3
    """
    if mode not in _MODES:
        raise ValueError(f"unknown mode {mode!r} (known: {', '.join(_MODES)})")
    pm = matrix_from_spec(matrix)
    n_rows, n_cols = pm.shape
    full_cols = (1 << n_cols) - 1
    ones_cells = pm.cells_mask()
    backend = get_backend()
    disjoint = mode == "disjoint"
    if not ones_cells:
        return CoverResult(
            mode=mode,
            cover=(),
            size=0,
            lower_bound=0,
            optimal=True,
            bounds={},
            nodes_expanded=0,
            node_budget=node_budget,
            shape=pm.shape,
        )

    incumbent = (
        _greedy_disjoint_incumbent(pm) if disjoint else _greedy_overlapping_incumbent(pm)
    )
    best = list(incumbent)
    nodes = 0

    def budget_error() -> CoverBudgetExceeded:
        from repro.comm.covers import verify_disjoint_cover

        cover_out = _rects_out(best)
        covered = 0
        for rows, cols in best:
            covered |= cells_of_rect(rows, cols, n_cols)
        uncovered_cells = (ones_cells & ~covered).bit_count()
        if disjoint:
            verified = verify_disjoint_cover(pm, cover_out)
        else:
            verified = uncovered_cells == 0 and all(
                pm.is_all_ones_rect(rows, cols) for rows, cols in best
            )
        return CoverBudgetExceeded(
            f"solve_cover[{mode}]: node budget {node_budget} exhausted "
            f"(best cover so far: {len(best)} rectangles, "
            f"{uncovered_cells} cells uncovered)",
            best_cover=list(cover_out),
            nodes_expanded=nodes,
            verified=verified,
            uncovered_cells=uncovered_cells,
        )

    if node_budget <= 0:
        raise budget_error()

    # -- root lower bounds, staged cheap-to-expensive ------------------
    ones_count = ones_cells.bit_count()
    max_row = max((m.bit_count() for m in pm.row_masks), default=0)
    max_col = max((m.bit_count() for m in pm.col_masks), default=0)
    area_cap = max(1, max_row * max_col)
    bounds: dict[str, int] = {"greedy": len(best)}
    bounds["area"] = -(-ones_count // area_cap)
    lower = bounds["area"]
    allow_full = list(pm.row_masks)

    if lower < len(best):
        bounds["fooling_greedy"] = _greedy_fooling_size(allow_full, n_cols, ones_cells)
        lower = max(lower, bounds["fooling_greedy"])
    if disjoint and lower < len(best):
        bounds["rank_gf2"] = backend.gf2_rank(pm.row_masks, n_cols)
        lower = max(lower, bounds["rank_gf2"])
    if disjoint and lower < len(best):
        from repro.comm.rank import rank_over_q

        bounds["rank_q"] = rank_over_q(pm)
        lower = max(lower, bounds["rank_q"])
    if lower < len(best) and ones_count <= fooling_cell_limit:
        exact_fooling, complete = _max_fooling_size(
            allow_full,
            n_cols,
            ones_cells,
            seed=bounds.get("fooling_greedy", 0),
            node_limit=fooling_node_limit,
        )
        bounds["fooling_max" if complete else "fooling_partial"] = exact_fooling
        lower = max(lower, exact_fooling)
    if lower < len(best) and ones_count <= lp_cell_limit:
        lp = _lp_bound(
            allow_full,
            n_cols,
            ones_cells,
            rect_limit=lp_rect_limit,
            pivot_limit=lp_pivot_limit,
        )
        if lp is not None:
            bounds["lp"] = lp
            lower = max(lower, lp)

    if lower >= len(best):
        return CoverResult(
            mode=mode,
            cover=_rects_out(best),
            size=len(best),
            lower_bound=len(best),
            optimal=True,
            bounds=bounds,
            nodes_expanded=0,
            node_budget=node_budget,
            shape=pm.shape,
        )

    # -- branch and bound on the uncovered-cell bitmask ----------------
    from repro.comm.covers import _maximal_masks

    visited: dict[int, int] = {}
    chosen: list[MaskRect] = []
    rect_cache: dict[tuple[int, int], list[tuple[MaskRect, int]]] = {}

    def branch_cell(uncovered: int, residual: list[int]) -> tuple[int, int]:
        # Least-flexible uncovered cell: thinnest residual row + column.
        col_pops = [m.bit_count() for m in backend.transpose_masks(residual, n_cols)]
        row_pops = [m.bit_count() for m in residual]
        best_cell = (-1, -1)
        best_score = None
        for bit in backend.bit_indices(uncovered):
            i, j = divmod(bit, n_cols)
            score = row_pops[i] + col_pops[j]
            if best_score is None or score < best_score:
                best_score, best_cell = score, (i, j)
        return best_cell

    def search(uncovered: int, depth: int) -> None:
        nonlocal best, nodes
        if nodes >= node_budget:
            raise budget_error()
        nodes += 1
        if not uncovered:
            if depth < len(best):
                best = list(chosen)
            return
        previous = visited.get(uncovered)
        if previous is not None and previous <= depth:
            return
        visited[uncovered] = depth
        residual = [
            (uncovered >> (i * n_cols)) & full_cols for i in range(n_rows)
        ]
        need = -(-uncovered.bit_count() // area_cap)
        if disjoint:
            need = max(need, backend.gf2_rank(residual, n_cols))
        if depth + max(1, need) >= len(best):
            return
        i0, j0 = branch_cell(uncovered, residual)
        if disjoint:
            candidates = [
                (rect, cells_of_rect(rect[0], rect[1], n_cols))
                for rect in _maximal_masks(residual, i0, j0)
            ]
        else:
            cached = rect_cache.get((i0, j0))
            if cached is None:
                cached = [
                    (rect, cells_of_rect(rect[0], rect[1], n_cols))
                    for rect in _maximal_masks(allow_full, i0, j0)
                ]
                rect_cache[(i0, j0)] = cached
            candidates = cached
        candidates = sorted(
            candidates,
            key=lambda rc: (rc[1] & uncovered).bit_count(),
            reverse=True,
        )
        for rect, cells in candidates:
            chosen.append(rect)
            search(uncovered & ~cells, depth + 1)
            chosen.pop()

    search(ones_cells, 0)
    size = len(best)
    lower = max(lower, size)  # the search proved no smaller cover exists
    return CoverResult(
        mode=mode,
        cover=_rects_out(best),
        size=size,
        lower_bound=lower,
        optimal=True,
        bounds=bounds,
        nodes_expanded=nodes,
        node_budget=node_budget,
        shape=pm.shape,
    )
