"""Classical (fixed-partition) communication complexity substrate.

Communication matrices, the exact rank bound over ℚ/GF(2) (the textbook
proof route for Theorem 17), fooling sets, and exact/greedy disjoint
rectangle covers for tiny instances.  The multi-partition setting the
paper actually needs (per-rectangle partitions) lives in
:mod:`repro.core`; this package is the baseline it generalises.
"""

from repro.comm.cover import (
    CoverResult,
    all_maximal_rectangles,
    fractional_cover_bound,
    matrix_from_spec,
    maximum_fooling_bound,
    solve_cover,
)
from repro.comm.covers import (
    Rect,
    greedy_disjoint_cover,
    maximal_rectangles_at,
    minimum_disjoint_cover,
    rect_cells,
    verify_disjoint_cover,
)
from repro.comm.fooling import fooling_set_bound, greedy_fooling_set, is_fooling_set
from repro.comm.matrix import (
    CommMatrix,
    disjointness_matrix,
    equality_matrix,
    intersection_matrix,
    matrix_from_function,
)
from repro.comm.packed import PackedMatrix, as_packed
from repro.comm.nondeterministic import (
    element_cover_for_intersection,
    greedy_overlapping_cover,
    minimum_overlapping_cover,
    nondeterministic_cc,
    verify_overlapping_cover,
)
from repro.comm.protocols import (
    Leaf,
    Node,
    Protocol,
    balanced_partition_protocol,
    protocol_for_equality,
)
from repro.comm.rank import (
    rank_lower_bound_for_disjoint_cover,
    rank_over_gf2,
    rank_over_q,
)

__all__ = [
    "CommMatrix",
    "PackedMatrix",
    "as_packed",
    "matrix_from_function",
    "intersection_matrix",
    "disjointness_matrix",
    "equality_matrix",
    "rank_over_q",
    "rank_over_gf2",
    "rank_lower_bound_for_disjoint_cover",
    "is_fooling_set",
    "greedy_fooling_set",
    "fooling_set_bound",
    "Rect",
    "rect_cells",
    "maximal_rectangles_at",
    "greedy_disjoint_cover",
    "minimum_disjoint_cover",
    "verify_disjoint_cover",
    "CoverResult",
    "solve_cover",
    "matrix_from_spec",
    "fractional_cover_bound",
    "maximum_fooling_bound",
    "all_maximal_rectangles",
    "Protocol",
    "Node",
    "Leaf",
    "protocol_for_equality",
    "balanced_partition_protocol",
    "element_cover_for_intersection",
    "greedy_overlapping_cover",
    "minimum_overlapping_cover",
    "verify_overlapping_cover",
    "nondeterministic_cc",
]
