"""Exact matrix rank over ℚ and GF(2) — the Mehlhorn–Schmidt rank bound.

For a disjoint cover of the 1-entries of a matrix ``M`` by all-ones
rectangles, ``M`` is the sum of the rectangles' rank-1 indicator
matrices, so the number of rectangles is at least ``rank_ℚ(M)``.  This is
the "rank bound from communication complexity pioneered in [23]" which
the paper cites as the short proof of Theorem 17.

Rank over ℚ is computed with :mod:`fractions` Gaussian elimination —
exact, no floating point; rank over GF(2) uses bitset elimination.
"""

from __future__ import annotations

from fractions import Fraction
from collections.abc import Sequence

from repro.comm.matrix import CommMatrix

__all__ = ["rank_over_q", "rank_over_gf2", "rank_lower_bound_for_disjoint_cover"]


def rank_over_q(matrix: CommMatrix | Sequence[Sequence[int]]) -> int:
    """The exact rank of an integer matrix over the rationals.

    >>> rank_over_q([[1, 1], [1, 1]])
    1
    >>> from repro.comm.matrix import intersection_matrix
    >>> rank_over_q(intersection_matrix(3))   # 2^3 - 1
    7
    """
    rows = matrix.entries if isinstance(matrix, CommMatrix) else [list(r) for r in matrix]
    work = [[Fraction(v) for v in row] for row in rows]
    if not work:
        return 0
    n_cols = len(work[0])
    rank = 0
    pivot_row = 0
    for col in range(n_cols):
        pivot = next(
            (r for r in range(pivot_row, len(work)) if work[r][col] != 0), None
        )
        if pivot is None:
            continue
        work[pivot_row], work[pivot] = work[pivot], work[pivot_row]
        head = work[pivot_row][col]
        for r in range(pivot_row + 1, len(work)):
            if work[r][col] != 0:
                factor = work[r][col] / head
                row_r, row_p = work[r], work[pivot_row]
                for c in range(col, n_cols):
                    row_r[c] -= factor * row_p[c]
        pivot_row += 1
        rank += 1
        if pivot_row == len(work):
            break
    return rank


def rank_over_gf2(matrix: CommMatrix | Sequence[Sequence[int]]) -> int:
    """The rank of a 0/1 matrix over GF(2), via bitset elimination.

    >>> rank_over_gf2([[1, 1], [1, 1]])
    1
    """
    rows = matrix.entries if isinstance(matrix, CommMatrix) else [list(r) for r in matrix]
    bitrows = []
    for row in rows:
        value = 0
        for j, v in enumerate(row):
            if v % 2:
                value |= 1 << j
        bitrows.append(value)
    rank = 0
    for col in range(max((len(r) for r in rows), default=0)):
        mask = 1 << col
        pivot = next((i for i, r in enumerate(bitrows) if r & mask), None)
        if pivot is None:
            continue
        pivot_value = bitrows.pop(pivot)
        bitrows = [r ^ pivot_value if r & mask else r for r in bitrows]
        rank += 1
    return rank


def rank_lower_bound_for_disjoint_cover(matrix: CommMatrix) -> int:
    """``rank_ℚ(M)`` as a lower bound on any disjoint 1-cover of ``M``.

    If ``M = Σ_i R_i`` with each ``R_i`` the indicator of an all-ones
    rectangle and the rectangles disjoint, then
    ``rank(M) ≤ Σ rank(R_i) = #rectangles``.
    """
    return rank_over_q(matrix)
