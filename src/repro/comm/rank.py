"""Exact matrix rank over ℚ and GF(2) — the Mehlhorn–Schmidt rank bound.

For a disjoint cover of the 1-entries of a matrix ``M`` by all-ones
rectangles, ``M`` is the sum of the rectangles' rank-1 indicator
matrices, so the number of rectangles is at least ``rank_ℚ(M)``.  This is
the "rank bound from communication complexity pioneered in [23]" which
the paper cites as the short proof of Theorem 17.

Rank over ℚ is computed by *Bareiss* fraction-free elimination: every
intermediate entry is an exact minor of the original integer matrix, the
single division per update is exact by Sylvester's identity, and no
:class:`~fractions.Fraction` objects (with their gcd normalisation on
every arithmetic op) appear anywhere — the inner loop is pure ``int``
multiply/subtract/divide.  The pre-Bareiss Gaussian elimination over
``Fraction`` survives verbatim as a test oracle in
``tests/legacy_comm.py``.  Rank over GF(2) uses bitset elimination and
consumes :class:`~repro.comm.packed.PackedMatrix` rows directly.

Both elimination loops live in the active kernel backend
(:mod:`repro.backend`): ``reference`` runs the loops described above
verbatim; ``words`` replaces the GF(2) column sweep with an xor basis
(~2.5x).  Every backend returns the same exact rank.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.backend import get_backend
from repro.comm.matrix import CommMatrix
from repro.comm.packed import PackedMatrix

__all__ = ["rank_over_q", "rank_over_gf2", "rank_lower_bound_for_disjoint_cover"]

MatrixLike = CommMatrix | PackedMatrix | Sequence[Sequence[int]]


def _int_rows(matrix: MatrixLike) -> list[list[int]]:
    if isinstance(matrix, CommMatrix):
        return [list(row) for row in matrix.entries]
    if isinstance(matrix, PackedMatrix):
        n_cols = matrix.n_cols
        return [[(mask >> j) & 1 for j in range(n_cols)] for mask in matrix.row_masks]
    return [list(row) for row in matrix]


def rank_over_q(matrix: MatrixLike) -> int:
    """The exact rank of an integer matrix over the rationals.

    Fraction-free Bareiss elimination: after eliminating with pivot
    ``p_k``, each entry equals a ``(k+1) × (k+1)`` minor of the input, and
    dividing the update ``(a·p - b·c)`` by the *previous* pivot is exact.
    Column skipping (for rank-deficient matrices) and row swaps preserve
    that invariant — the working entries are minors of the submatrix
    spanned by the pivot columns.

    >>> rank_over_q([[1, 1], [1, 1]])
    1
    >>> from repro.comm.matrix import intersection_matrix
    >>> rank_over_q(intersection_matrix(3))   # 2^3 - 1
    7
    >>> from repro.comm.packed import PackedMatrix
    >>> rank_over_q(PackedMatrix.from_comm(intersection_matrix(4)))
    15
    """
    return get_backend().bareiss_rank(_int_rows(matrix))


def rank_over_gf2(matrix: MatrixLike) -> int:
    """The rank of a 0/1 matrix over GF(2), via bitset elimination.

    A :class:`PackedMatrix` is consumed with zero conversion cost — its
    row masks *are* the elimination state.

    >>> rank_over_gf2([[1, 1], [1, 1]])
    1
    >>> from repro.comm.matrix import equality_matrix
    >>> from repro.comm.packed import PackedMatrix
    >>> rank_over_gf2(PackedMatrix.from_comm(equality_matrix(3)))
    8
    """
    if isinstance(matrix, PackedMatrix):
        bitrows = list(matrix.row_masks)
        n_cols = matrix.n_cols
    else:
        rows = matrix.entries if isinstance(matrix, CommMatrix) else [list(r) for r in matrix]
        bitrows = []
        for row in rows:
            value = 0
            for j, v in enumerate(row):
                if v % 2:
                    value |= 1 << j
            bitrows.append(value)
        n_cols = max((len(r) for r in rows), default=0)
    return get_backend().gf2_rank(bitrows, n_cols)


def rank_lower_bound_for_disjoint_cover(matrix: CommMatrix | PackedMatrix) -> int:
    """``rank_ℚ(M)`` as a lower bound on any disjoint 1-cover of ``M``.

    If ``M = Σ_i R_i`` with each ``R_i`` the indicator of an all-ones
    rectangle and the rectangles disjoint, then
    ``rank(M) ≤ Σ rank(R_i) = #rectangles``.
    """
    return rank_over_q(matrix)
