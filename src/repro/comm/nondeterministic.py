"""Nondeterministic communication: overlapping 1-covers.

The deep asymmetry the paper exploits has a classical mirror.  The
1-entries of ``INTERSECT_p`` are covered by just ``p`` *overlapping*
rectangles — one per element ``i``: ``{X ∋ i} × {Y ∋ i}`` — so the
nondeterministic complexity of non-disjointness is ``log p``.  This is
exactly Example 8 on the matrix side: ``L_n`` is a union of ``n``
overlapping balanced rectangles (hence small CFGs and NFAs), while
*disjoint* covers need ``2^{Ω(n)}`` (hence huge uCFGs).  Cheap
nondeterminism versus expensive unambiguity, in both languages and
matrices.
"""

from __future__ import annotations

from repro.comm.covers import Rect, rect_cells
from repro.comm.matrix import CommMatrix, intersection_matrix
from repro.util.tables import approx_log2

__all__ = [
    "element_cover_for_intersection",
    "verify_overlapping_cover",
    "greedy_overlapping_cover",
    "nondeterministic_cc",
]


def element_cover_for_intersection(p: int) -> tuple[CommMatrix, list[Rect]]:
    """The ``p``-rectangle overlapping 1-cover of ``INTERSECT_p``.

    Rectangle ``i`` is ``{X : i ∈ X} × {Y : i ∈ Y}`` — all its cells are
    1-entries (the pair intersects at ``i``), and every 1-entry lies in
    the rectangle of each common element, so the union is exact and the
    overlap is precisely the multiplicity of the intersection — the
    matrix analogue of :func:`repro.languages.ln.match_positions`.

    >>> matrix, cover = element_cover_for_intersection(3)
    >>> len(cover)
    3
    >>> verify_overlapping_cover(matrix, cover)
    True
    """
    if p < 1:
        raise ValueError(f"need p >= 1, got {p}")
    matrix = intersection_matrix(p)
    cover: list[Rect] = []
    for element in range(1, p + 1):
        rows = frozenset(
            i for i, label in enumerate(matrix.row_labels) if element in label
        )
        cols = frozenset(
            j for j, label in enumerate(matrix.col_labels) if element in label
        )
        cover.append((rows, cols))
    return matrix, cover


def verify_overlapping_cover(matrix: CommMatrix, cover: list[Rect]) -> bool:
    """Check a (possibly overlapping) 1-cover: all-ones blocks, union exact."""
    covered: set[tuple[int, int]] = set()
    for rect in cover:
        cells = rect_cells(rect)
        for i, j in cells:
            if matrix[i, j] != 1:
                return False
        covered |= cells
    return covered == set(matrix.ones())


def greedy_overlapping_cover(matrix: CommMatrix) -> list[Rect]:
    """A greedy overlapping 1-cover (no disjointness constraint).

    Repeatedly grows a maximal rectangle around the smallest uncovered
    1-entry, but — unlike the disjoint variant — may reuse already
    covered cells, which can make it much smaller.
    """
    from repro.comm.covers import _grow_rectangle

    all_ones = frozenset(matrix.ones())
    uncovered = set(all_ones)
    cover: list[Rect] = []
    while uncovered:
        seed = min(uncovered)
        best = max(
            (
                _grow_rectangle(matrix, seed, all_ones, column_first)
                for column_first in (False, True)
            ),
            key=lambda r: len(rect_cells(r) & uncovered),
        )
        cover.append(best)
        uncovered -= rect_cells(best)
    return cover


def nondeterministic_cc(cover_size: int) -> float:
    """``log2`` of a 1-cover size: the nondeterministic cost it witnesses.

    >>> nondeterministic_cc(8)
    3.0
    """
    if cover_size < 1:
        raise ValueError(f"cover_size must be >= 1, got {cover_size}")
    return approx_log2(cover_size)
