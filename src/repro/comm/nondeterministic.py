"""Nondeterministic communication: overlapping 1-covers.

The deep asymmetry the paper exploits has a classical mirror.  The
1-entries of ``INTERSECT_p`` are covered by just ``p`` *overlapping*
rectangles — one per element ``i``: ``{X ∋ i} × {Y ∋ i}`` — so the
nondeterministic complexity of non-disjointness is ``log p``.  This is
exactly Example 8 on the matrix side: ``L_n`` is a union of ``n``
overlapping balanced rectangles (hence small CFGs and NFAs), while
*disjoint* covers need ``2^{Ω(n)}`` (hence huge uCFGs).  Cheap
nondeterminism versus expensive unambiguity, in both languages and
matrices.
"""

from __future__ import annotations

from repro.comm.covers import Rect, rect_cells
from repro.comm.matrix import CommMatrix, intersection_matrix
from repro.comm.packed import PackedMatrix, as_packed
from repro.util.tables import approx_log2

__all__ = [
    "element_cover_for_intersection",
    "verify_overlapping_cover",
    "greedy_overlapping_cover",
    "minimum_overlapping_cover",
    "nondeterministic_cc",
]


def element_cover_for_intersection(p: int) -> tuple[CommMatrix, list[Rect]]:
    """The ``p``-rectangle overlapping 1-cover of ``INTERSECT_p``.

    Rectangle ``i`` is ``{X : i ∈ X} × {Y : i ∈ Y}`` — all its cells are
    1-entries (the pair intersects at ``i``), and every 1-entry lies in
    the rectangle of each common element, so the union is exact and the
    overlap is precisely the multiplicity of the intersection — the
    matrix analogue of :func:`repro.languages.ln.match_positions`.

    >>> matrix, cover = element_cover_for_intersection(3)
    >>> len(cover)
    3
    >>> verify_overlapping_cover(matrix, cover)
    True
    """
    if p < 1:
        raise ValueError(f"need p >= 1, got {p}")
    matrix = intersection_matrix(p)
    cover: list[Rect] = []
    for element in range(1, p + 1):
        rows = frozenset(
            i for i, label in enumerate(matrix.row_labels) if element in label
        )
        cols = frozenset(
            j for j, label in enumerate(matrix.col_labels) if element in label
        )
        cover.append((rows, cols))
    return matrix, cover


def verify_overlapping_cover(matrix: CommMatrix, cover: list[Rect]) -> bool:
    """Check a (possibly overlapping) 1-cover: all-ones blocks, union exact."""
    covered: set[tuple[int, int]] = set()
    for rect in cover:
        cells = rect_cells(rect)
        for i, j in cells:
            if matrix[i, j] != 1:
                return False
        covered |= cells
    return covered == set(matrix.ones())


def greedy_overlapping_cover(matrix: "CommMatrix | PackedMatrix") -> list[Rect]:
    """A greedy overlapping 1-cover (no disjointness constraint).

    Repeatedly grows a maximal rectangle around the smallest uncovered
    1-entry, but — unlike the disjoint variant — may reuse already
    covered cells, which can make it much smaller.  Runs entirely on
    bitmasks: growth is restricted to the (static) 1-entries while the
    progress metric counts freshly covered cells by popcount.
    """
    from repro.comm.covers import _grow_masks, _rect_from_masks
    from repro.comm.packed import cells_of_rect, iter_bits

    pm = as_packed(matrix)
    n_rows, n_cols = pm.shape
    allow = list(pm.row_masks)  # growth may reuse covered cells: keep static
    uncovered = pm.cells_mask()
    cover: list[Rect] = []
    while uncovered:
        low_bit = (uncovered & -uncovered).bit_length() - 1
        i0, j0 = divmod(low_bit, n_cols)
        best_rect = None
        best_gain = -1
        for column_first in (False, True):
            rows, cols = _grow_masks(allow, i0, j0, column_first)
            gain = (cells_of_rect(rows, cols, n_cols) & uncovered).bit_count()
            if gain > best_gain:
                best_gain = gain
                best_rect = (rows, cols)
        rows, cols = best_rect
        cover.append(_rect_from_masks(rows, cols))
        uncovered &= ~cells_of_rect(rows, cols, n_cols)
    return cover


def minimum_overlapping_cover(
    matrix: "CommMatrix | PackedMatrix", node_budget: int = 2_000_000
) -> list[Rect]:
    """Exact minimum (possibly overlapping) 1-cover of the matrix.

    The nondeterministic analogue of
    :func:`repro.comm.covers.minimum_disjoint_cover`: rectangles may
    overlap, so the rank bounds do not apply — the solver certifies
    against fooling sets and the fractional cover LP instead.  Its
    ``log2`` is the exact nondeterministic communication complexity the
    cover witnesses.

    >>> from repro.comm.matrix import intersection_matrix
    >>> len(minimum_overlapping_cover(intersection_matrix(3)))
    3
    """
    from repro.comm.cover import solve_cover

    result = solve_cover(matrix, mode="cover", node_budget=node_budget)
    return list(result.cover)


def nondeterministic_cc(cover_size: int) -> float:
    """``log2`` of a 1-cover size: the nondeterministic cost it witnesses.

    >>> nondeterministic_cc(8)
    3.0
    """
    if cover_size < 1:
        raise ValueError(f"cover_size must be >= 1, got {cover_size}")
    return approx_log2(cover_size)
