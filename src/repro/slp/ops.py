"""Algorithms on SLP-compressed words.

The selling point of grammar-based compression (Related Work of the
paper, [21]'s survey) is that algorithms run *on the compressed
representation*: concatenation and powering are O(1) new rules, factor
extraction and equality avoid full decompression where possible, and
statistics like symbol counts come from a linear dynamic program.
"""

from __future__ import annotations

from repro.errors import GrammarError
from repro.slp.slp import SLP, Sym

__all__ = [
    "concat_slp",
    "repeat_slp",
    "symbol_counts",
    "extract_factor",
    "slp_equal",
]


def _merge(left: SLP, right: SLP) -> dict[Sym, tuple[Sym, ...]]:
    """Disjointly merge rule sets by tagging variables with their side."""
    if left.alphabet != right.alphabet:
        raise GrammarError("SLP operations need identical alphabets")
    rules: dict[Sym, tuple[Sym, ...]] = {}
    for tag, slp in (("l", left), ("r", right)):
        for var, body in slp.rules.items():
            rules[(tag, var)] = tuple(
                (tag, s) if slp.is_variable(s) else s for s in body
            )
    return rules


def concat_slp(left: SLP, right: SLP) -> SLP:
    """The SLP for ``expand(left) + expand(right)`` — one new rule.

    >>> from repro.slp.slp import power_word_slp
    >>> s = concat_slp(power_word_slp(2), power_word_slp(1))
    >>> s.expand()
    'aaaaaa'
    """
    rules = _merge(left, right)
    rules["cat-root"] = (("l", left.start), ("r", right.start))
    return SLP(left.alphabet, rules, "cat-root")


def repeat_slp(slp: SLP, times: int) -> SLP:
    """The SLP for ``expand(slp) * times`` with ``O(log times)`` new rules.

    Binary powering: rules double the word, then the binary decomposition
    of ``times`` stitches the pieces together.

    >>> from repro.slp.slp import slp_from_word_balanced
    >>> base = slp_from_word_balanced("ab", "ab")
    >>> repeat_slp(base, 13).expand() == "ab" * 13
    True
    """
    if times < 1:
        raise GrammarError(f"repeat_slp needs times >= 1, got {times}")
    rules: dict[Sym, tuple[Sym, ...]] = {
        ("b", var): tuple(("b", s) if slp.is_variable(s) else s for s in body)
        for var, body in slp.rules.items()
    }
    doubles: list[Sym] = [("b", slp.start)]
    for level in range(1, times.bit_length()):
        var: Sym = ("dbl", level)
        rules[var] = (doubles[-1], doubles[-1])
        doubles.append(var)
    pieces = [doubles[i] for i in range(times.bit_length()) if times >> i & 1]
    rules["rep-root"] = tuple(pieces)
    return SLP(slp.alphabet, rules, "rep-root")


def symbol_counts(slp: SLP) -> dict[str, int]:
    """Occurrences of every terminal in the represented word, in O(size).

    >>> from repro.slp.slp import power_word_slp
    >>> symbol_counts(power_word_slp(10))
    {'a': 1024}
    """
    counts: dict[Sym, dict[str, int]] = {}
    rules = slp.rules
    for var in slp.variables_in_order:
        acc: dict[str, int] = {}
        for sym in rules[var]:
            if sym in rules:
                for ch, k in counts[sym].items():
                    acc[ch] = acc.get(ch, 0) + k
            else:
                acc[sym] = acc.get(sym, 0) + 1
        counts[var] = acc
    return counts[slp.start]


def extract_factor(slp: SLP, start: int, length: int) -> str:
    """The factor ``word[start : start + length]`` without full expansion.

    Cost ``O(length · depth)`` via repeated random access — linear-time
    factor extraction exists but per-character descent is all the
    repository's benchmarks need.
    """
    if length < 0:
        raise GrammarError(f"length must be non-negative, got {length}")
    if start < 0 or start + length > slp.length:
        raise GrammarError(
            f"factor [{start}, {start + length}) outside word of length {slp.length}"
        )
    return "".join(slp.access(start + offset) for offset in range(length))


def slp_equal(left: SLP, right: SLP) -> bool:
    """Whether two SLPs represent the same word.

    Length and symbol-count filters run in O(size); only on agreement is
    a (guarded) expansion comparison performed.  Polynomial-time SLP
    equality without expansion exists (Plandowski) but is far beyond what
    the reproduction needs.
    """
    if left.length != right.length:
        return False
    if symbol_counts(left) != symbol_counts(right):
        return False
    return left.expand() == right.expand()
