"""Straight-line programs (grammar-based compression; Related Work).

Single-word CFGs with random access, plus balanced and Re-Pair-style
constructions — the "compress one long document" counterpart to the
paper's "represent many strings" setting.
"""

from repro.slp.ops import (
    concat_slp,
    extract_factor,
    repeat_slp,
    slp_equal,
    symbol_counts,
)
from repro.slp.slp import SLP, power_word_slp, slp_from_word_balanced, slp_from_word_repair

__all__ = [
    "SLP",
    "slp_from_word_balanced",
    "slp_from_word_repair",
    "power_word_slp",
    "concat_slp",
    "repeat_slp",
    "symbol_counts",
    "extract_factor",
    "slp_equal",
]
