"""Straight-line programs: grammar-based compression of a single word.

The paper's Related Work distinguishes its many-strings setting from
grammar-based compression, "where one aims to find a small CFG
representing a single word w" (CFGs there are often called straight-line
programs).  This module implements that substrate: SLPs with exact
expansion, length computation, O(depth) random access, conversion to the
repository's :class:`~repro.grammars.cfg.CFG` (a singleton-language
uCFG), and two constructions (balanced splitting and a Re-Pair-style
digram compressor).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

from repro.errors import GrammarError
from repro.grammars.cfg import CFG, NonTerminal, Rule
from repro.words.alphabet import Alphabet

__all__ = ["SLP", "slp_from_word_balanced", "slp_from_word_repair", "power_word_slp"]

Sym = Hashable  # terminal (1-char str in the alphabet) or SLP variable


class SLP:
    """A straight-line program: one rule per variable, acyclic, one word.

    ``rules`` maps each variable to a tuple of symbols (variables or
    terminals); ``start`` is the axiom.  The represented word is the full
    expansion of the axiom.

    >>> s = SLP("ab", {"X": ("a", "b"), "S": ("X", "X")}, "S")
    >>> s.expand()
    'abab'
    >>> s.length, s.size
    (4, 4)
    """

    __slots__ = ("_alphabet", "_rules", "_start", "_order", "_lengths")

    def __init__(
        self,
        alphabet: Alphabet | str,
        rules: Mapping[Sym, tuple[Sym, ...]],
        start: Sym,
    ) -> None:
        sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        if start not in rules:
            raise GrammarError(f"axiom {start!r} has no rule")
        normalised: dict[Sym, tuple[Sym, ...]] = {}
        for var, body in rules.items():
            if isinstance(var, str) and var in sigma:
                raise GrammarError(f"variable {var!r} collides with a terminal")
            body_t = tuple(body)
            if not body_t:
                raise GrammarError(f"variable {var!r} has an empty body; SLPs are ε-free")
            for sym in body_t:
                is_terminal = isinstance(sym, str) and sym in sigma
                if not is_terminal and sym not in rules:
                    raise GrammarError(f"variable {var!r} references undefined symbol {sym!r}")
            normalised[var] = body_t
        self._alphabet = sigma
        self._rules = normalised
        self._start = start
        self._order = self._topological_order()
        self._lengths = self._compute_lengths()

    def _topological_order(self) -> list[Sym]:
        order: list[Sym] = []
        state: dict[Sym, int] = {}
        for root in self._rules:
            if root in state:
                continue
            stack: list[tuple[Sym, int]] = [(root, 0)]
            while stack:
                var, phase = stack.pop()
                if phase == 1:
                    state[var] = 2
                    order.append(var)
                    continue
                if state.get(var) == 1:
                    raise GrammarError("SLP rules are cyclic")
                if var in state:
                    continue
                state[var] = 1
                stack.append((var, 1))
                for sym in self._rules[var]:
                    if sym in self._rules:
                        if state.get(sym) == 1:
                            raise GrammarError("SLP rules are cyclic")
                        if sym not in state:
                            stack.append((sym, 0))
        return order

    def _compute_lengths(self) -> dict[Sym, int]:
        lengths: dict[Sym, int] = {}
        for var in self._order:
            lengths[var] = sum(
                lengths[s] if s in self._rules else 1 for s in self._rules[var]
            )
        return lengths

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """``Σ |rhs|`` — the same measure as for CFGs."""
        return sum(len(body) for body in self._rules.values())

    @property
    def n_variables(self) -> int:
        return len(self._rules)

    @property
    def length(self) -> int:
        """The length of the represented word (without expanding it)."""
        return self._lengths[self._start]

    @property
    def start(self) -> Sym:
        return self._start

    @property
    def alphabet(self) -> Alphabet:
        return self._alphabet

    @property
    def rules(self) -> dict[Sym, tuple[Sym, ...]]:
        """A copy of the rule mapping."""
        return dict(self._rules)

    @property
    def variables_in_order(self) -> list[Sym]:
        """Variables in dependency (children-first) order."""
        return list(self._order)

    def is_variable(self, symbol: Sym) -> bool:
        """Whether ``symbol`` is a variable of this SLP."""
        return symbol in self._rules

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def expand(self, max_length: int = 10_000_000) -> str:
        """The represented word (guarded against exponential blow-up)."""
        if self.length > max_length:
            raise GrammarError(
                f"expansion has length {self.length} > max_length={max_length}"
            )
        cache: dict[Sym, str] = {}
        for var in self._order:
            cache[var] = "".join(
                cache[s] if s in self._rules else s for s in self._rules[var]
            )
        return cache[self._start]

    def access(self, index: int) -> str:
        """The character at 0-based ``index``, in time O(depth · fan-out).

        This is the signature operation of SLP-compressed strings: random
        access without decompression.
        """
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range [0, {self.length})")
        var: Sym = self._start
        while True:
            body = self._rules[var]
            for sym in body:
                piece = self._lengths[sym] if sym in self._rules else 1
                if index < piece:
                    if sym in self._rules:
                        var = sym
                        break
                    return sym
                index -= piece

    def to_cfg(self) -> CFG:
        """View the SLP as a CFG (of the singleton language)."""
        nts: list[NonTerminal] = [("slp", v) for v in self._rules]
        rules = [
            Rule(
                ("slp", var),
                tuple(("slp", s) if s in self._rules else s for s in body),
            )
            for var, body in self._rules.items()
        ]
        return CFG(self._alphabet, nts, rules, ("slp", self._start))

    def __repr__(self) -> str:
        return f"SLP(|vars|={self.n_variables}, size={self.size}, length={self.length})"


def slp_from_word_balanced(word: str, alphabet: Alphabet | str) -> SLP:
    """Build an SLP by recursive balanced splitting, sharing equal factors.

    Hash-consing equal factors makes repetitive inputs compress; for a
    highly periodic word like ``(ab)^{2^k}`` the result has ``O(k)``
    variables.
    """
    sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
    if not word:
        raise GrammarError("SLPs represent nonempty words")
    rules: dict[Sym, tuple[Sym, ...]] = {}
    interned: dict[str, Sym] = {}

    def build(factor: str) -> Sym:
        if factor in interned:
            return interned[factor]
        var: Sym = ("f", factor)
        if len(factor) == 1:
            rules[var] = (factor,)
        else:
            mid = len(factor) // 2
            rules[var] = (build(factor[:mid]), build(factor[mid:]))
        interned[factor] = var
        return var

    start = build(word)
    return SLP(sigma, rules, start)


def slp_from_word_repair(word: str, alphabet: Alphabet | str) -> SLP:
    """A Re-Pair-style compressor: repeatedly replace the most frequent
    digram by a fresh variable until no digram repeats.

    Classic grammar-based compression [Kieffer & Yang; Larsson & Moffat];
    not optimal (the smallest-grammar problem is NP-hard [9]) but a solid
    baseline.
    """
    sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
    if not word:
        raise GrammarError("SLPs represent nonempty words")
    sequence: list[Sym] = list(word)
    rules: dict[Sym, tuple[Sym, ...]] = {}
    counter = 0
    while True:
        digram_counts: dict[tuple[Sym, Sym], int] = {}
        for left, right in zip(sequence, sequence[1:]):
            digram_counts[(left, right)] = digram_counts.get((left, right), 0) + 1
        best = max(digram_counts.items(), key=lambda kv: kv[1], default=None)
        if best is None or best[1] < 2:
            break
        digram = best[0]
        var: Sym = ("r", counter)
        counter += 1
        rules[var] = digram
        rewritten: list[Sym] = []
        i = 0
        while i < len(sequence):
            if i + 1 < len(sequence) and (sequence[i], sequence[i + 1]) == digram:
                rewritten.append(var)
                i += 2
            else:
                rewritten.append(sequence[i])
                i += 1
        sequence = rewritten
    start: Sym = ("r", "start")
    rules[start] = tuple(sequence)
    return SLP(sigma, rules, start)


def power_word_slp(k: int, symbol: str = "a") -> SLP:
    """The canonical SLP for ``symbol^{2^k}``: ``k + 1`` doubling rules.

    Exponential compression — the single-word analogue of the Example 3
    doubling non-terminals ``B_i``.

    >>> power_word_slp(5).length
    32
    """
    if k < 0:
        raise ValueError(f"need k >= 0, got {k}")
    rules: dict[Sym, tuple[Sym, ...]] = {("p", 0): (symbol,)}
    for i in range(1, k + 1):
        rules[("p", i)] = (("p", i - 1), ("p", i - 1))
    return SLP(Alphabet(symbol), rules, ("p", k))
