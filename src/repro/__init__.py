"""repro — an executable reproduction of
"A Lower Bound on Unambiguous Context Free Grammars via Communication
Complexity" (Mengel & Vinall-Smeeth, PODS 2025).

The package turns the paper's constructions and proofs into a library:

* :mod:`repro.grammars` — CFG toolchain (size measure, CNF, parsing,
  counting, ambiguity, indexing, ranked access, disambiguation);
* :mod:`repro.automata` — NFA/DFA substrate;
* :mod:`repro.languages` — the concrete languages ``L_n``/``L*_n`` and
  the paper's grammar/automaton constructions;
* :mod:`repro.core` — rectangles, the set perspective, the Proposition 7
  cover extraction and the Section 4 discrepancy lower bound;
* :mod:`repro.comm` — classical communication-complexity tools (matrices,
  rank bounds, fooling sets, brute-force covers);
* :mod:`repro.factorized` — d-representations and their isomorphism with
  finite-language CFGs;
* :mod:`repro.spanners` — the information-extraction scenario from the
  introduction;
* :mod:`repro.slp` — straight-line programs (grammar-based compression).

Quickstart::

    from repro.languages import small_ln_grammar, example4_ucfg, ln_words
    from repro.grammars import language, is_unambiguous
    from repro.core import certificate

    g = small_ln_grammar(6)                  # Θ(log n) CFG for L_6
    assert language(g) == ln_words(6)
    assert not is_unambiguous(g)             # smallness costs ambiguity
    print(certificate(64).ucfg_bound)        # exact uCFG size lower bound
"""

from repro.errors import (
    CertificateError,
    GrammarError,
    InfiniteAmbiguityError,
    InfiniteLanguageError,
    MixedLengthLanguageError,
    NotInChomskyNormalFormError,
    NotInLanguageError,
    NotUnambiguousError,
    PartitionError,
    RectangleError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "GrammarError",
    "NotInLanguageError",
    "InfiniteLanguageError",
    "InfiniteAmbiguityError",
    "NotUnambiguousError",
    "NotInChomskyNormalFormError",
    "MixedLengthLanguageError",
    "PartitionError",
    "RectangleError",
    "CertificateError",
]
