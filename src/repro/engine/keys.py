"""Cache keys: canonical parameters + code fingerprints.

A cached result is only valid while (a) the requested computation is the
same and (b) the code that produces it is the same.  The cache key is
therefore a SHA-256 digest over three components:

* the job name,
* the job's parameters under the injective canonical encoding of
  :mod:`repro.util.canonical` (dict order, set order and ``PYTHONHASHSEED``
  do not leak into the key),
* a *code fingerprint*: a digest of the source bytes of every module the
  job declares in ``source_modules``, plus the package version.  Editing
  any implementation module invalidates exactly the jobs that declared it.
"""

from __future__ import annotations

import hashlib
import importlib
from collections.abc import Mapping
from functools import lru_cache
from typing import Any

from repro import __version__
from repro.util.canonical import canonical_encode

__all__ = ["canonical_params", "code_fingerprint", "cache_key"]


def _hashable(value: Any) -> Any:
    """Recursively turn lists into tuples so parameter values hash.

    Sequence-valued parameters (e.g. the ``columns`` of an
    ``extract.*`` stream spec) arrive as JSON lists; a
    :class:`~repro.engine.registry.Request` must be hashable, and list
    vs. tuple is a spurious distinction for a cache key.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    return value


def canonical_params(params: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Normalise a parameter mapping to a sorted, hashable tuple of pairs.

    >>> canonical_params({"b": 1, "a": 2})
    (('a', 2), ('b', 1))
    >>> canonical_params({"columns": [1, 3]})
    (('columns', (1, 3)),)
    """
    for name in params:
        if not isinstance(name, str):
            raise TypeError(f"parameter names must be str, got {name!r}")
    return tuple(sorted((name, _hashable(value)) for name, value in params.items()))


@lru_cache(maxsize=None)
def code_fingerprint(source_modules: tuple[str, ...]) -> str:
    """Digest the source bytes of ``source_modules`` (plus the version).

    Modules are imported to resolve their files; modules without a source
    file (builtins, namespace packages) contribute their name only.

    >>> a = code_fingerprint(("repro.languages.small_grammar",))
    >>> b = code_fingerprint(("repro.languages.small_grammar",))
    >>> a == b and len(a) == 64
    True
    """
    hasher = hashlib.sha256()
    hasher.update(f"repro=={__version__}".encode())
    for name in sorted(set(source_modules)):
        hasher.update(name.encode())
        module = importlib.import_module(name)
        path = getattr(module, "__file__", None)
        if path:
            with open(path, "rb") as handle:
                hasher.update(handle.read())
    return hasher.hexdigest()


def cache_key(
    job_name: str,
    params: Mapping[str, Any],
    source_modules: tuple[str, ...] = (),
) -> str:
    """The content-addressed cache key for one job invocation.

    >>> cache_key("certificate", {"n": 16}) == cache_key("certificate", {"n": 16})
    True
    >>> cache_key("certificate", {"n": 16}) != cache_key("certificate", {"n": 32})
    True
    """
    payload = canonical_encode(
        (
            job_name,
            dict(params),
            code_fingerprint(tuple(source_modules)),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
