"""The job registry: every paper check/experiment as a declared, named job.

A *job* is a pure function from typed parameters (plus the results of its
declared dependencies) to a JSON-serializable result.  A *request* is one
invocation: a job name plus concrete parameters.  The registry maps names
to jobs and expands a request's dependency edges, giving the scheduler a
DAG to execute.

Jobs must be module-level functions (so worker processes can resolve them
by reference) and must return plain data — that restriction is what makes
results cacheable on disk and byte-identical between serial and parallel
runs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.engine.keys import cache_key, canonical_params, code_fingerprint
from repro.errors import EngineError, UnknownJobError

__all__ = ["Request", "Job", "JobRegistry"]


@dataclass(frozen=True, slots=True)
class Request:
    """One job invocation: a job name plus canonicalised parameters."""

    job: str
    params: tuple[tuple[str, Any], ...] = ()

    @staticmethod
    def make(job: str, params: Mapping[str, Any] | None = None) -> Request:
        """Build a request, canonicalising the parameter mapping.

        >>> Request.make("certificate", {"n": 16})
        Request(job='certificate', params=(('n', 16),))
        """
        return Request(job, canonical_params(params or {}))

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def label(self) -> str:
        """A compact human-readable rendering, e.g. ``certificate(n=16)``."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.job}({inner})"


@dataclass(frozen=True, slots=True)
class Job:
    """A named, typed, dependency-aware unit of verifiable work.

    ``fn(params, deps)`` receives the parameter dict and the list of
    dependency results (in the order ``deps_fn`` declared them) and must
    return JSON-serializable data.  ``param_names`` is the full set of
    accepted parameters; requests with unknown or missing names are
    rejected up front.  ``source_modules`` feeds the code fingerprint —
    list every module whose edit should invalidate cached results.
    """

    name: str
    fn: Callable[[dict[str, Any], list[Any]], Any]
    param_names: tuple[str, ...] = ()
    defaults: tuple[tuple[str, Any], ...] = ()
    deps_fn: Callable[[dict[str, Any]], Sequence[Request]] | None = None
    source_modules: tuple[str, ...] = ()
    description: str = ""

    def resolve_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Apply defaults and validate parameter names.

        Names starting with ``_`` are reserved for values the scheduler
        injects at call time (currently ``_attempt``, the 1-based retry
        counter); they are rejected here so they can never be supplied by
        a caller or leak into cache keys.
        """
        reserved = sorted(name for name in params if name.startswith("_"))
        if reserved:
            raise EngineError(
                f"job {self.name!r}: parameters starting with '_' are reserved "
                f"for the engine, got {reserved!r}"
            )
        allowed = set(self.param_names)
        unknown = set(params) - allowed
        if unknown:
            raise EngineError(
                f"job {self.name!r} does not accept parameters {sorted(unknown)!r} "
                f"(accepted: {sorted(allowed)!r})"
            )
        resolved = dict(self.defaults)
        resolved.update(params)
        missing = allowed - set(resolved)
        if missing:
            raise EngineError(
                f"job {self.name!r} is missing required parameters {sorted(missing)!r}"
            )
        return resolved

    def deps(self, params: Mapping[str, Any]) -> list[Request]:
        if self.deps_fn is None:
            return []
        return list(self.deps_fn(dict(params)))

    def key(self, params: Mapping[str, Any]) -> str:
        return cache_key(self.name, params, self.source_modules)

    def fingerprint(self) -> str:
        return code_fingerprint(self.source_modules)


class JobRegistry:
    """A name → :class:`Job` mapping with a declaration decorator.

    >>> registry = JobRegistry()
    >>> @registry.job("double", params=("x",))
    ... def _double(params, deps):
    ...     return 2 * params["x"]
    >>> registry.get("double").name
    'double'
    """

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}

    def job(
        self,
        name: str,
        *,
        params: Iterable[str] = (),
        defaults: Mapping[str, Any] | None = None,
        deps: Callable[[dict[str, Any]], Sequence[Request]] | None = None,
        source_modules: Iterable[str] = (),
        description: str = "",
    ) -> Callable[[Callable], Callable]:
        """Declare ``fn`` as the job ``name`` (decorator)."""

        def register(fn: Callable) -> Callable:
            if name in self._jobs:
                raise EngineError(f"job {name!r} is already registered")
            if any(p.startswith("_") for p in params):
                raise EngineError(
                    f"job {name!r}: parameter names starting with '_' are "
                    "reserved for the engine"
                )
            doc = (fn.__doc__ or "").strip()
            self._jobs[name] = Job(
                name=name,
                fn=fn,
                param_names=tuple(params),
                defaults=tuple(sorted((defaults or {}).items())),
                deps_fn=deps,
                source_modules=tuple(source_modules),
                description=description or (doc.splitlines()[0] if doc else ""),
            )
            return fn

        return register

    def get(self, name: str) -> Job:
        try:
            return self._jobs[name]
        except KeyError:
            raise UnknownJobError(
                f"unknown job {name!r}; known jobs: {', '.join(sorted(self._jobs))}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._jobs)

    def __contains__(self, name: object) -> bool:
        return name in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)
