"""The DAG scheduler: expand, cache-check, fan out, record.

:class:`Engine` takes a batch of :class:`~repro.engine.registry.Request`
objects, expands their dependency closure into a DAG, and executes it:

* **serial** (``jobs=1``, the default and the fallback): dependencies-first
  in a deterministic topological order, in-process;
* **parallel** (``jobs=N``): independent jobs run concurrently on a
  ``ProcessPoolExecutor``; a job is submitted the moment its last
  dependency finishes.  Worker processes resolve job functions by module
  reference, so only plain data crosses the process boundary.

Before executing any job the engine consults the content-addressed disk
cache; hits are served in the parent without touching the pool.  Every
executed or cache-served job appends a structured record to the run log
(see :mod:`repro.engine.artifacts`).

Determinism: job results are normalised through a JSON round-trip before
they are stored, returned, or handed to dependents — a result therefore
looks exactly the same whether it was computed serially, computed in a
worker, or read back from the cache, which is what makes serial and
parallel sweeps byte-identical.

Failure semantics
-----------------

* **Job errors.**  A job that raises is retried up to ``max_retries``
  times with exponential backoff (``retry_backoff * 2**(attempt - 1)``
  seconds between attempts); every execution appends its own run record
  carrying the 1-based ``attempt``.  Once the budget is exhausted the
  run aborts with :class:`~repro.errors.JobFailedError` (the original
  exception attached as ``__cause__``).  ``max_retries=0`` (the default)
  preserves fail-fast semantics.  The engine injects the reserved
  ``_attempt`` parameter into the dict a job function receives, so
  attempt-aware jobs (``debug.flaky``, ``debug.crash``) behave
  identically under serial and parallel retries; ``_attempt`` never
  participates in cache keys or run records.
* **Worker deaths** (``BrokenProcessPool``: a worker killed by a signal,
  the OOM killer, or ``os._exit``).  The broken pool is replaced with a
  fresh one and every job that was in flight is charged one attempt and
  retried under the same budget — the engine cannot attribute a worker
  death to a single job, so all of them pay.
* **Timeouts** (parallel mode only; a serial run executes in-process
  where Python offers no safe preemption).  *Every* scheduler iteration
  sweeps the running jobs against their deadlines — including
  iterations in which sibling jobs completed — so a hung job is killed
  within one tick of ``timeout`` even in a busy pool.  Under
  ``on_timeout="raise"`` (the default) the first overdue job records
  outcome ``"timeout"``, the pool is torn down, and the run aborts with
  :class:`~repro.errors.JobTimeoutError`.  Under ``on_timeout="skip"``
  only the worker running the overdue job is terminated: the job is
  recorded with outcome ``"timeout"``, its transitive dependents are
  recorded with outcome ``"skipped"``, and the run continues — in-flight
  siblings that the worker kill takes down with the pool are resubmitted
  *without* being charged an attempt, and completed siblings keep their
  results.  Skipped requests are simply absent from :meth:`Engine.run`'s
  result mapping.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import time
from collections import deque
from collections.abc import Iterable, Mapping
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from itertools import count
from queue import Empty
from typing import Any

from repro.backend import (
    _clear_context_backend,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.engine.artifacts import RunLog, RunRecord
from repro.engine.cache import DiskCache
from repro.engine.jobs import default_registry
from repro.engine.keys import canonical_params
from repro.engine.registry import Job, JobRegistry, Request
from repro.errors import EngineError, JobFailedError, JobTimeoutError

__all__ = ["Engine", "in_worker"]

#: Set by :func:`_init_worker` inside pool processes; lets fault-injection
#: jobs refuse to ``os._exit`` the user's own interpreter.
_IN_WORKER = False

#: The worker-side handle of the parent's task-event queue (``None`` when
#: the engine runs without a timeout and never needs to attribute a pid).
_TASK_EVENTS: Any = None


def _init_worker(
    path_entries: list[str], task_events: Any = None, backend: str | None = None
) -> None:
    """Make the parent's import path (and event queue) available in workers.

    ``backend`` pins the worker's kernel backend (:mod:`repro.backend`) to
    the one the parent resolved, so a job computes with exactly the
    backend its run record claims — even when the parent was selected via
    a context override that a forked worker would not otherwise see.

    The pin *re-probes* availability in the worker: a build-dependent
    tier (the ``cext`` compiled artifact, an importable numpy) can exist
    in the parent but not in a worker's environment — e.g. a spawn
    context importing from a tree whose extension was never built.  A
    worker that cannot honour the pin downgrades to the best available
    tier instead of dying in its initializer (which would brick the
    whole pool); the run records of everything it executes carry the
    backend that *actually* ran, not the one the parent asked for.
    """
    global _IN_WORKER, _TASK_EVENTS
    _IN_WORKER = True
    _TASK_EVENTS = task_events
    _reset_inherited_signals()
    if backend is not None:
        try:
            set_backend(backend)
        except ValueError:
            # Pin to a concrete available tier (not None: the inherited
            # REPRO_BACKEND could name the same unavailable backend), and
            # drop the fork-inherited use_backend context, which outranks
            # the process pin and still names the unavailable backend.
            set_backend(resolve_backend(None))
            _clear_context_backend()
    for entry in reversed(path_entries):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _reset_inherited_signals() -> None:
    """Restore default signal handling in a freshly forked worker.

    A parent running an asyncio loop (the job service) installs
    Python-level SIGTERM/SIGINT handlers plus a wakeup fd; a forked
    worker inherits both.  Left in place, ``process.terminate()`` no
    longer kills the worker (the inherited handler swallows SIGTERM) and
    — worse — the handler writes the signal byte into the wakeup pipe
    *shared with the parent*, which the parent's loop reads as "I was
    signalled" and begins shutting itself down.  Workers must die on
    SIGTERM and never touch the parent's pipe.
    """
    try:
        signal.set_wakeup_fd(-1)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
    except (ValueError, OSError):  # non-main thread or unsupported platform
        pass


def in_worker() -> bool:
    """True inside an engine worker process (used by ``debug.crash``)."""
    return _IN_WORKER


def _normalize(result: Any) -> Any:
    """Force ``result`` through a JSON round-trip (tuples → lists, sorted keys).

    Raises TypeError eagerly when a job returns non-JSON data, so the
    failure surfaces at the producing job, not at cache-write time.
    """
    return json.loads(json.dumps(result, sort_keys=True))


#: First element of the ``(stamp, backend_name, result)`` triple
#: :func:`_call_job` returns.  ``_normalize`` forces every job result
#: through a JSON round-trip, so a genuine result can never be a tuple —
#: the wrapper is unambiguous without touching the job protocol.
_BACKEND_STAMP = "__repro_backend_stamp__"


def _call_job(
    fn,
    params: dict[str, Any],
    deps: list[Any],
    attempt: int = 1,
    task_id: int | None = None,
) -> tuple[str, str, Any]:
    """Worker-side entry point: announce the pid, run the job, normalise.

    The ``(pid, task_id)`` event lets the parent terminate exactly the
    worker running an overdue job; the reserved ``_attempt`` parameter
    lets attempt-aware jobs observe which retry they are.

    Returns ``(_BACKEND_STAMP, backend_name, result)``: the name of the
    backend that *actually* computed the result travels back with it, so
    the parent's run record stays truthful even when a worker's
    initializer downgraded an unavailable pinned backend.
    """
    if task_id is not None and _TASK_EVENTS is not None:
        try:
            _TASK_EVENTS.put((os.getpid(), task_id))
        except Exception:
            pass  # pid attribution is best effort, never a job failure
    call_params = dict(params)
    call_params["_attempt"] = attempt
    return _BACKEND_STAMP, get_backend().name, _normalize(fn(call_params, deps))


def _unstamp(wrapped: Any) -> tuple[Any, str | None]:
    """Split a :func:`_call_job` triple into ``(result, backend_name)``.

    Tolerates a bare result (``backend_name = None``) so a pool worker
    running an older ``_call_job`` — e.g. across an in-place upgrade —
    degrades to the parent-side stamp rather than corrupting results.
    """
    if (
        isinstance(wrapped, tuple)
        and len(wrapped) == 3
        and wrapped[0] == _BACKEND_STAMP
    ):
        return wrapped[2], wrapped[1]
    return wrapped, None


def _abort_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a pool without waiting for in-flight jobs.

    ``cancel_futures`` only drops *queued* work; a job already running
    (e.g. one that exceeded its timeout) would otherwise block the
    executor's exit indefinitely, so the worker processes are terminated.
    """
    processes = dict(getattr(pool, "_processes", None) or {})
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes.values():
        process.terminate()


def _kill_worker(pool: ProcessPoolExecutor, pid: int) -> bool:
    """Terminate the single worker ``pid``; the survivors keep running.

    The targeted successor of :func:`_abort_pool` for ``on_timeout="skip"``:
    only the process running the overdue job is killed.  (The executor
    still marks itself broken afterwards, so the caller is responsible
    for replacing the pool and resubmitting interrupted siblings.)
    Returns False when ``pid`` is not one of the pool's workers.
    """
    process = (getattr(pool, "_processes", None) or {}).get(pid)
    if process is None:
        return False
    process.terminate()
    return True


@dataclass(slots=True)
class _InFlight:
    """Parent-side bookkeeping for one submitted job execution.

    ``deadline`` stays ``inf`` until the worker's start event arrives —
    a job queued behind a full pool must not burn its timeout budget
    while waiting for a worker.
    """

    request: Request
    key: str
    attempt: int
    task_id: int
    generation: int
    started_monotonic: float
    started_epoch: float
    deadline: float = float("inf")


class Engine:
    """Executes job requests over a DAG, a process pool, and a disk cache.

    ``backend`` optionally pins the kernel backend (:mod:`repro.backend`)
    for every job the engine runs — serial jobs execute under a
    ``use_backend`` scope and pool workers are initialised with the same
    resolved backend; each run record carries the backend that actually
    ran.  ``backend=None`` (the default) follows the ambient selection
    (``REPRO_BACKEND`` or ``set_backend``).

    >>> engine = Engine(cache=None)
    >>> engine.run_one("debug.echo", {"value": 41})
    41
    """

    def __init__(
        self,
        registry: JobRegistry | None = None,
        cache: DiskCache | None = None,
        jobs: int = 1,
        timeout: float | None = None,
        run_log: RunLog | None = None,
        on_timeout: str = "raise",
        max_retries: int = 0,
        retry_backoff: float = 0.1,
        backend: str | None = None,
    ) -> None:
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {jobs}")
        if backend is not None:
            try:
                resolve_backend(backend)
            except ValueError as exc:
                raise EngineError(str(exc)) from exc
        if on_timeout not in ("raise", "skip"):
            raise EngineError(
                f"on_timeout must be 'raise' or 'skip', got {on_timeout!r}"
            )
        if max_retries < 0:
            raise EngineError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise EngineError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.registry = registry if registry is not None else default_registry()
        self.cache = cache
        self.jobs = jobs
        self.timeout = timeout
        self.on_timeout = on_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.backend = backend
        self.run_log = run_log if run_log is not None else RunLog(path=None)
        self.last_summary: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_one(
        self,
        job: str,
        params: Mapping[str, Any] | None = None,
        *,
        run_log: RunLog | None = None,
    ) -> Any:
        """Run a single request (plus dependencies) and return its result.

        Raises :class:`~repro.errors.JobTimeoutError` when the request was
        timed out and dropped under ``on_timeout="skip"``.
        """
        request = Request.make(job, params)
        canonical = self._canonical(request)[0]
        results = self.run([request], run_log=run_log)
        if canonical not in results:
            raise JobTimeoutError(
                f"job {canonical.label()} timed out and was skipped "
                "(on_timeout='skip')"
            )
        return results[canonical]

    def run(
        self,
        requests: Iterable[Request],
        *,
        run_log: RunLog | None = None,
    ) -> dict[Request, Any]:
        """Execute all requests and their dependency closures.

        Returns a mapping from *canonicalised* request (defaults applied,
        parameters sorted) to its normalised result.  Under
        ``on_timeout="skip"`` requests that timed out (or depended on one
        that did) are absent from the mapping.

        ``run_log`` overrides the engine's log *for this run only*.  All
        other per-run state is local to the call, so one shared engine can
        serve concurrent ``run`` calls from multiple threads as long as
        each caller passes its own log (the serve broker does exactly
        that); without an override, concurrent callers interleave records
        in the engine-wide log.
        """
        log = run_log if run_log is not None else self.run_log
        started = time.monotonic()
        roots, order, dep_lists, jobs_by_request = self._expand(requests)
        results: dict[Request, Any] = {}
        with use_backend(self.backend):
            if self.jobs == 1 or not order:
                self._run_serial(order, dep_lists, jobs_by_request, results, log)
            else:
                self._run_parallel(order, dep_lists, jobs_by_request, results, log)
        wall_ms = (time.monotonic() - started) * 1000.0
        self.last_summary = log.summarize(wall_ms, self.jobs)
        return results

    def map(
        self,
        job: str,
        param_sets: Iterable[Mapping[str, Any] | None],
        *,
        run_log: RunLog | None = None,
    ) -> list[Any]:
        """Run one job over many parameter sets; results in input order.

        The stream-chunk fan-out primitive: ``extract`` (and any other
        shard-parallel workload) hands the scheduler a flat batch of
        same-job requests and gets results aligned with its inputs.
        Requests that were skipped under ``on_timeout="skip"`` come back
        as ``None``; duplicate parameter sets coalesce into one
        execution and share the result.
        """
        requests = [Request.make(job, params) for params in param_sets]
        canonical = [self._canonical(request)[0] for request in requests]
        results = self.run(requests, run_log=run_log)
        return [results.get(request) for request in canonical]

    # ------------------------------------------------------------------
    # DAG expansion
    # ------------------------------------------------------------------

    def _canonical(self, request: Request) -> tuple[Request, Job]:
        job = self.registry.get(request.job)
        resolved = job.resolve_params(request.params_dict())
        return Request(request.job, canonical_params(resolved)), job

    def _expand(
        self, requests: Iterable[Request]
    ) -> tuple[list[Request], list[Request], dict[Request, list[Request]], dict[Request, Job]]:
        """Expand the dependency closure iteratively (no recursion limit).

        Keeps the recursive version's postorder (dependencies precede
        dependents in ``order``) and its cycle-detection message, but uses
        an explicit frame stack so chains deeper than the interpreter's
        recursion limit expand fine.
        """
        dep_lists: dict[Request, list[Request]] = {}
        jobs_by_request: dict[Request, Job] = {}
        order: list[Request] = []
        roots: list[Request] = []
        visiting: list[Request] = []
        on_path: set[Request] = set()

        for top in requests:
            canonical, job = self._canonical(top)
            roots.append(canonical)
            if canonical in dep_lists:
                continue
            # One frame per open request: [request, job, declared, children, idx]
            visiting.append(canonical)
            on_path.add(canonical)
            stack: list[list[Any]] = [
                [canonical, job, job.deps(canonical.params_dict()), [], 0]
            ]
            while stack:
                frame = stack[-1]
                request, req_job, declared, children, idx = frame
                if idx < len(declared):
                    frame[4] = idx + 1
                    child, child_job = self._canonical(declared[idx])
                    if child in dep_lists:
                        children.append(child)
                        continue
                    if child in on_path:
                        cycle = (
                            " -> ".join(r.label() for r in visiting)
                            + f" -> {child.label()}"
                        )
                        raise EngineError(f"dependency cycle: {cycle}")
                    children.append(child)
                    visiting.append(child)
                    on_path.add(child)
                    stack.append(
                        [child, child_job, child_job.deps(child.params_dict()), [], 0]
                    )
                    continue
                stack.pop()
                visiting.pop()
                on_path.discard(request)
                dep_lists[request] = children
                jobs_by_request[request] = req_job
                order.append(request)  # postorder: dependencies precede dependents
        return roots, order, dep_lists, jobs_by_request

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _cache_lookup(self, job: Job, request: Request) -> tuple[str, Any | None, bool]:
        key = job.key(request.params_dict())
        if self.cache is None:
            return key, None, False
        entry = self.cache.get(job.name, key)
        if entry is None:
            return key, None, False
        return key, entry["result"], True

    def _record(
        self,
        request: Request,
        key: str,
        cache_state: str,
        outcome: str,
        wall_ms: float,
        result: Any = None,
        error: str | None = None,
        pid: int | None = None,
        started_epoch: float | None = None,
        attempt: int = 1,
        log: RunLog | None = None,
        backend: str | None = None,
    ) -> None:
        # ``backend`` is the worker-stamped name when the job ran in a
        # pool (the worker may have downgraded an unavailable pin); the
        # parent's active backend otherwise (cache hits, serial runs,
        # errors raised before a stamp could travel back).
        log = log if log is not None else self.run_log
        log.record(
            RunRecord(
                run_id=log.run_id,
                job=request.job,
                params=request.params_dict(),
                key=key,
                cache=cache_state,
                outcome=outcome,
                wall_ms=round(wall_ms, 3),
                result_bytes=RunLog.result_bytes(result) if outcome == "ok" else 0,
                started_at=started_epoch if started_epoch is not None else time.time(),
                pid=pid if pid is not None else os.getpid(),
                attempt=attempt,
                retries=self.max_retries,
                error=error,
                backend=backend if backend is not None else get_backend().name,
            )
        )

    def _store(self, job: Job, request: Request, key: str, result: Any) -> None:
        if self.cache is not None:
            self.cache.put(job.name, key, request.params_dict(), job.fingerprint(), result)

    def _backoff(self, attempt: int) -> float:
        """Seconds to wait before re-running a job that failed ``attempt``."""
        return self.retry_backoff * (2 ** (attempt - 1))

    def _run_serial(
        self,
        order: list[Request],
        dep_lists: dict[Request, list[Request]],
        jobs_by_request: dict[Request, Job],
        results: dict[Request, Any],
        log: RunLog,
    ) -> None:
        for request in order:
            job = jobs_by_request[request]
            key, cached, hit = self._cache_lookup(job, request)
            if hit:
                results[request] = cached
                self._record(request, key, "hit", "ok", 0.0, cached, log=log)
                continue
            deps = [results[dep] for dep in dep_lists[request]]
            attempt = 1
            while True:
                started = time.monotonic()
                started_epoch = time.time()
                try:
                    result, ran_backend = _unstamp(
                        _call_job(job.fn, request.params_dict(), deps, attempt)
                    )
                except Exception as exc:
                    wall_ms = (time.monotonic() - started) * 1000.0
                    self._record(
                        request,
                        key,
                        self._miss_state(),
                        "error",
                        wall_ms,
                        error=str(exc),
                        started_epoch=started_epoch,
                        attempt=attempt,
                        log=log,
                    )
                    if attempt <= self.max_retries:
                        time.sleep(self._backoff(attempt))
                        attempt += 1
                        continue
                    raise JobFailedError(
                        f"job {request.label()} failed: {exc}", attempts=attempt
                    ) from exc
                wall_ms = (time.monotonic() - started) * 1000.0
                results[request] = result
                self._store(job, request, key, result)
                self._record(
                    request,
                    key,
                    self._miss_state(),
                    "ok",
                    wall_ms,
                    result,
                    started_epoch=started_epoch,
                    attempt=attempt,
                    log=log,
                    backend=ran_backend,
                )
                break

    def _miss_state(self) -> str:
        return "miss" if self.cache is not None else "off"

    def _task_event_queue(self) -> Any:
        """The ``(pid, task_id)`` queue workers announce task starts on.

        Only needed to attribute a pid to an overdue job, so it is not
        created (and workers skip the per-task put) when no timeout is set.
        """
        if self.timeout is None:
            return None
        return multiprocessing.get_context().Queue()

    def _new_pool(self, task_events: Any) -> ProcessPoolExecutor:
        # Pin workers to the backend the parent resolved (env, engine
        # parameter, or context override) so records match reality.
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_worker,
            initargs=(list(sys.path), task_events, get_backend().name),
        )

    def _run_parallel(
        self,
        order: list[Request],
        dep_lists: dict[Request, list[Request]],
        jobs_by_request: dict[Request, Job],
        results: dict[Request, Any],
        log: RunLog,
    ) -> None:
        pending_deps: dict[Request, set[Request]] = {
            request: set(deps) for request, deps in dep_lists.items()
        }
        dependents: dict[Request, list[Request]] = {request: [] for request in order}
        for request, deps in dep_lists.items():
            for dep in set(deps):
                dependents[dep].append(request)

        ready: deque[tuple[Request, int]] = deque(
            (request, 1) for request in order if not pending_deps[request]
        )
        running: dict[Future, _InFlight] = {}
        retry_at: list[tuple[float, Request, int]] = []
        skipped: set[Request] = set()
        keys: dict[Request, str] = {}
        pid_to_task: dict[int, int] = {}
        task_to_future: dict[int, Future] = {}
        task_ids = count()
        task_events = self._task_event_queue()
        pool = self._new_pool(task_events)
        generation = 0
        # How often to wake and drain start events while a timeout is armed;
        # bounds how late a deadline can be armed or enforced.
        poll = (
            None
            if self.timeout is None
            else max(0.01, min(0.25, self.timeout / 4.0))
        )

        def settled() -> int:
            return len(results) + len(skipped)

        def drain_events() -> None:
            """Absorb worker start events: map pids and arm deadlines."""
            if task_events is None:
                return
            now = time.monotonic()
            while True:
                try:
                    pid, task_id = task_events.get_nowait()
                except Empty:
                    return
                pid_to_task[pid] = task_id
                future = task_to_future.get(task_id)
                info = running.get(future) if future is not None else None
                if info is not None and info.deadline == float("inf"):
                    info.deadline = now + self.timeout

        def replace_pool() -> None:
            nonlocal pool, generation
            pool = self._new_pool(task_events)
            generation += 1
            pid_to_task.clear()

        def mark_done(request: Request) -> None:
            for dependent in dependents[request]:
                pending_deps[dependent].discard(request)
                if not pending_deps[dependent] and dependent not in results:
                    ready.append((dependent, 1))

        def mark_skipped(origin: Request) -> None:
            """Skip ``origin`` and cascade to its transitive dependents."""
            skipped.add(origin)
            stack = list(dependents[origin])
            while stack:
                dependent = stack.pop()
                if dependent in skipped or dependent in results:
                    continue
                skipped.add(dependent)
                self._record(
                    dependent,
                    jobs_by_request[dependent].key(dependent.params_dict()),
                    self._miss_state(),
                    "skipped",
                    0.0,
                    error=f"dependency {origin.label()} timed out",
                    log=log,
                )
                stack.extend(dependents[dependent])

        def submit(request: Request, attempt: int) -> None:
            job = jobs_by_request[request]
            if attempt == 1 and request not in keys:
                key, cached, hit = self._cache_lookup(job, request)
                keys[request] = key
                if hit:
                    results[request] = cached
                    self._record(request, key, "hit", "ok", 0.0, cached, log=log)
                    mark_done(request)
                    return
            key = keys[request]
            deps = [results[dep] for dep in dep_lists[request]]
            task_id = next(task_ids)
            future = pool.submit(
                _call_job,
                job.fn,
                request.params_dict(),
                deps,
                attempt,
                task_id if task_events is not None else None,
            )
            running[future] = _InFlight(
                request=request,
                key=key,
                attempt=attempt,
                task_id=task_id,
                generation=generation,
                started_monotonic=time.monotonic(),
                started_epoch=time.time(),
            )
            task_to_future[task_id] = future

        def finish(future: Future, info: _InFlight) -> None:
            task_to_future.pop(info.task_id, None)
            job = jobs_by_request[info.request]
            wall_ms = (time.monotonic() - info.started_monotonic) * 1000.0
            try:
                result, ran_backend = _unstamp(future.result())
            except BrokenProcessPool as exc:
                self._record(
                    info.request,
                    info.key,
                    self._miss_state(),
                    "error",
                    wall_ms,
                    error=f"worker died: {exc}",
                    started_epoch=info.started_epoch,
                    attempt=info.attempt,
                    log=log,
                )
                if info.attempt > self.max_retries:
                    _abort_pool(pool)
                    raise JobFailedError(
                        f"job {info.request.label()} failed in worker after "
                        f"{info.attempt} attempt(s): worker died ({exc})",
                        attempts=info.attempt,
                    ) from exc
                if info.generation == generation:
                    _abort_pool(pool)
                    replace_pool()
                retry_at.append(
                    (
                        time.monotonic() + self._backoff(info.attempt),
                        info.request,
                        info.attempt + 1,
                    )
                )
            except Exception as exc:
                self._record(
                    info.request,
                    info.key,
                    self._miss_state(),
                    "error",
                    wall_ms,
                    error=str(exc),
                    started_epoch=info.started_epoch,
                    attempt=info.attempt,
                    log=log,
                )
                if info.attempt > self.max_retries:
                    _abort_pool(pool)
                    raise JobFailedError(
                        f"job {info.request.label()} failed in worker: {exc}",
                        attempts=info.attempt,
                    ) from exc
                retry_at.append(
                    (
                        time.monotonic() + self._backoff(info.attempt),
                        info.request,
                        info.attempt + 1,
                    )
                )
            else:
                results[info.request] = result
                self._store(job, info.request, info.key, result)
                self._record(
                    info.request,
                    info.key,
                    self._miss_state(),
                    "ok",
                    wall_ms,
                    result,
                    started_epoch=info.started_epoch,
                    attempt=info.attempt,
                    log=log,
                    backend=ran_backend,
                )
                mark_done(info.request)

        def sweep_deadlines(now: float) -> None:
            """Time out every overdue job.  Runs on *every* loop iteration.

            (The historical bug: this sweep only ran when ``wait()``
            returned an empty ``done`` set, so a hung job was never timed
            out while sibling jobs kept completing.)
            """
            overdue = [
                future
                for future, info in running.items()
                if now > info.deadline and not future.done()
            ]
            if not overdue:
                return
            if self.on_timeout == "raise":
                info = running[overdue[0]]
                self._record(
                    info.request,
                    info.key,
                    self._miss_state(),
                    "timeout",
                    (now - info.started_monotonic) * 1000.0,
                    error=f"exceeded {self.timeout}s",
                    started_epoch=info.started_epoch,
                    attempt=info.attempt,
                    log=log,
                )
                _abort_pool(pool)
                raise JobTimeoutError(
                    f"job {info.request.label()} exceeded the per-job timeout "
                    f"of {self.timeout}s"
                )
            drain_events()
            must_replace = False
            for future in overdue:
                info = running.pop(future)
                self._record(
                    info.request,
                    info.key,
                    self._miss_state(),
                    "timeout",
                    (now - info.started_monotonic) * 1000.0,
                    error=f"exceeded {self.timeout}s (worker killed, on_timeout='skip')",
                    started_epoch=info.started_epoch,
                    attempt=info.attempt,
                    log=log,
                )
                mark_skipped(info.request)
                if future.cancel():
                    continue  # still queued: nothing is running it
                pid = next(
                    (p for p, t in pid_to_task.items() if t == info.task_id), None
                )
                if pid is None or not _kill_worker(pool, pid):
                    _abort_pool(pool)  # untracked worker: replace the pool wholesale
                must_replace = True
            if not must_replace:
                return
            # Killing a worker breaks the executor, which takes the
            # in-flight siblings down with it.  Salvage the ones that
            # finished in the window; resubmit the rest with their attempt
            # unchanged — the engine interrupted them, they did not fail.
            for future in list(running):
                info = running.pop(future)
                if future.done() and not future.cancelled():
                    exc = future.exception()
                    if exc is None or not isinstance(exc, BrokenProcessPool):
                        finish(future, info)
                        continue
                ready.append((info.request, info.attempt))
            pool.shutdown(wait=False, cancel_futures=True)
            replace_pool()

        try:
            while settled() < len(order):
                while ready:
                    request, attempt = ready.popleft()
                    if request in results or request in skipped:
                        continue
                    submit(request, attempt)
                if settled() >= len(order):
                    break
                now = time.monotonic()
                due = [item for item in retry_at if item[0] <= now]
                if due:
                    retry_at[:] = [item for item in retry_at if item[0] > now]
                    for _, request, attempt in due:
                        ready.append((request, attempt))
                    continue
                if not running:
                    if retry_at:
                        time.sleep(max(0.0, min(t for t, _, _ in retry_at) - now))
                        continue
                    unfinished = [
                        r.label()
                        for r in order
                        if r not in results and r not in skipped
                    ]
                    raise EngineError(
                        f"scheduler stalled with unfinished jobs: {unfinished}"
                    )
                drain_events()
                tick = min(info.deadline for info in running.values())
                tick = min(
                    tick, min((t for t, _, _ in retry_at), default=float("inf"))
                )
                wait_for = None
                if tick != float("inf"):
                    wait_for = max(0.0, tick - now) + 0.01
                if poll is not None:
                    # Keep draining start events so deadlines get armed even
                    # while no sibling completes and no deadline is near.
                    wait_for = poll if wait_for is None else min(wait_for, poll)
                done, _ = wait(running, timeout=wait_for, return_when=FIRST_COMPLETED)
                for future in done:
                    info = running.pop(future, None)
                    if info is not None:
                        finish(future, info)
                sweep_deadlines(time.monotonic())
        except BaseException:
            _abort_pool(pool)
            raise
        else:
            pool.shutdown(wait=True, cancel_futures=True)
        finally:
            if task_events is not None:
                task_events.close()
