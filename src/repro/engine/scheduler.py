"""The DAG scheduler: expand, cache-check, fan out, record.

:class:`Engine` takes a batch of :class:`~repro.engine.registry.Request`
objects, expands their dependency closure into a DAG, and executes it:

* **serial** (``jobs=1``, the default and the fallback): dependencies-first
  in a deterministic topological order, in-process;
* **parallel** (``jobs=N``): independent jobs run concurrently on a
  ``ProcessPoolExecutor``; a job is submitted the moment its last
  dependency finishes.  Worker processes resolve job functions by module
  reference, so only plain data crosses the process boundary.

Before executing any job the engine consults the content-addressed disk
cache; hits are served in the parent without touching the pool.  Every
executed or cache-served job appends a structured record to the run log
(see :mod:`repro.engine.artifacts`).

Determinism: job results are normalised through a JSON round-trip before
they are stored, returned, or handed to dependents — a result therefore
looks exactly the same whether it was computed serially, computed in a
worker, or read back from the cache, which is what makes serial and
parallel sweeps byte-identical.

Failure semantics: the first failing job aborts the run — the engine
cancels what it can, shuts the pool down, and raises
:class:`~repro.errors.JobFailedError` (with the original exception as
``__cause__``) or :class:`~repro.errors.JobTimeoutError` for jobs that
exceed ``timeout`` seconds of wall clock.  Per-job timeouts are enforced
in parallel mode only; a serial run executes in-process where Python
offers no safe preemption.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections.abc import Iterable, Mapping
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Any

from repro.engine.artifacts import RunLog, RunRecord
from repro.engine.cache import DiskCache
from repro.engine.jobs import default_registry
from repro.engine.keys import canonical_params
from repro.engine.registry import Job, JobRegistry, Request
from repro.errors import EngineError, JobFailedError, JobTimeoutError

__all__ = ["Engine"]


def _init_worker(path_entries: list[str]) -> None:
    """Make the parent's import path available in spawned workers."""
    for entry in reversed(path_entries):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _normalize(result: Any) -> Any:
    """Force ``result`` through a JSON round-trip (tuples → lists, sorted keys).

    Raises TypeError eagerly when a job returns non-JSON data, so the
    failure surfaces at the producing job, not at cache-write time.
    """
    return json.loads(json.dumps(result, sort_keys=True))


def _call_job(fn, params: dict[str, Any], deps: list[Any]) -> Any:
    """Worker-side entry point: run the job function and normalise."""
    return _normalize(fn(params, deps))


def _abort_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a pool without waiting for in-flight jobs.

    ``cancel_futures`` only drops *queued* work; a job already running
    (e.g. one that exceeded its timeout) would otherwise block the
    executor's exit indefinitely, so the worker processes are terminated.
    """
    processes = dict(getattr(pool, "_processes", None) or {})
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes.values():
        process.terminate()


class Engine:
    """Executes job requests over a DAG, a process pool, and a disk cache.

    >>> engine = Engine(cache=None)
    >>> engine.run_one("debug.echo", {"value": 41})
    41
    """

    def __init__(
        self,
        registry: JobRegistry | None = None,
        cache: DiskCache | None = None,
        jobs: int = 1,
        timeout: float | None = None,
        run_log: RunLog | None = None,
    ) -> None:
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {jobs}")
        self.registry = registry if registry is not None else default_registry()
        self.cache = cache
        self.jobs = jobs
        self.timeout = timeout
        self.run_log = run_log if run_log is not None else RunLog(path=None)
        self.last_summary: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_one(self, job: str, params: Mapping[str, Any] | None = None) -> Any:
        """Run a single request (plus dependencies) and return its result."""
        request = Request.make(job, params)
        return self.run([request])[self._canonical(request)[0]]

    def run(self, requests: Iterable[Request]) -> dict[Request, Any]:
        """Execute all requests and their dependency closures.

        Returns a mapping from *canonicalised* request (defaults applied,
        parameters sorted) to its normalised result.
        """
        started = time.monotonic()
        roots, order, dep_lists, jobs_by_request = self._expand(requests)
        results: dict[Request, Any] = {}
        if self.jobs == 1 or not order:
            self._run_serial(order, dep_lists, jobs_by_request, results)
        else:
            self._run_parallel(order, dep_lists, jobs_by_request, results)
        wall_ms = (time.monotonic() - started) * 1000.0
        self.last_summary = self.run_log.summarize(wall_ms, self.jobs)
        return results

    # ------------------------------------------------------------------
    # DAG expansion
    # ------------------------------------------------------------------

    def _canonical(self, request: Request) -> tuple[Request, Job]:
        job = self.registry.get(request.job)
        resolved = job.resolve_params(request.params_dict())
        return Request(request.job, canonical_params(resolved)), job

    def _expand(
        self, requests: Iterable[Request]
    ) -> tuple[list[Request], list[Request], dict[Request, list[Request]], dict[Request, Job]]:
        dep_lists: dict[Request, list[Request]] = {}
        jobs_by_request: dict[Request, Job] = {}
        visiting: list[Request] = []
        order: list[Request] = []

        def visit(request: Request, job: Job) -> None:
            if request in dep_lists:
                return
            if request in visiting:
                cycle = " -> ".join(r.label() for r in visiting) + f" -> {request.label()}"
                raise EngineError(f"dependency cycle: {cycle}")
            visiting.append(request)
            children: list[Request] = []
            for declared in job.deps(request.params_dict()):
                child, child_job = self._canonical(declared)
                visit(child, child_job)
                children.append(child)
            visiting.pop()
            dep_lists[request] = children
            jobs_by_request[request] = job
            order.append(request)  # postorder: dependencies precede dependents

        roots: list[Request] = []
        for request in requests:
            canonical, job = self._canonical(request)
            visit(canonical, job)
            roots.append(canonical)
        return roots, order, dep_lists, jobs_by_request

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _cache_lookup(self, job: Job, request: Request) -> tuple[str, Any | None, bool]:
        key = job.key(request.params_dict())
        if self.cache is None:
            return key, None, False
        entry = self.cache.get(job.name, key)
        if entry is None:
            return key, None, False
        return key, entry["result"], True

    def _record(
        self,
        request: Request,
        key: str,
        cache_state: str,
        outcome: str,
        wall_ms: float,
        result: Any = None,
        error: str | None = None,
        pid: int | None = None,
    ) -> None:
        self.run_log.record(
            RunRecord(
                run_id=self.run_log.run_id,
                job=request.job,
                params=request.params_dict(),
                key=key,
                cache=cache_state,
                outcome=outcome,
                wall_ms=round(wall_ms, 3),
                result_bytes=RunLog.result_bytes(result) if outcome == "ok" else 0,
                started_at=time.time(),
                pid=pid if pid is not None else os.getpid(),
                error=error,
            )
        )

    def _store(self, job: Job, request: Request, key: str, result: Any) -> None:
        if self.cache is not None:
            self.cache.put(job.name, key, request.params_dict(), job.fingerprint(), result)

    def _run_serial(
        self,
        order: list[Request],
        dep_lists: dict[Request, list[Request]],
        jobs_by_request: dict[Request, Job],
        results: dict[Request, Any],
    ) -> None:
        for request in order:
            job = jobs_by_request[request]
            key, cached, hit = self._cache_lookup(job, request)
            if hit:
                results[request] = cached
                self._record(request, key, "hit", "ok", 0.0, cached)
                continue
            deps = [results[dep] for dep in dep_lists[request]]
            started = time.monotonic()
            try:
                result = _call_job(job.fn, request.params_dict(), deps)
            except Exception as exc:
                wall_ms = (time.monotonic() - started) * 1000.0
                self._record(
                    request, key, self._miss_state(), "error", wall_ms, error=str(exc)
                )
                raise JobFailedError(f"job {request.label()} failed: {exc}") from exc
            wall_ms = (time.monotonic() - started) * 1000.0
            results[request] = result
            self._store(job, request, key, result)
            self._record(request, key, self._miss_state(), "ok", wall_ms, result)

    def _miss_state(self) -> str:
        return "miss" if self.cache is not None else "off"

    def _run_parallel(
        self,
        order: list[Request],
        dep_lists: dict[Request, list[Request]],
        jobs_by_request: dict[Request, Job],
        results: dict[Request, Any],
    ) -> None:
        pending_deps: dict[Request, set[Request]] = {
            request: set(deps) for request, deps in dep_lists.items()
        }
        dependents: dict[Request, list[Request]] = {request: [] for request in order}
        for request, deps in dep_lists.items():
            for dep in set(deps):
                dependents[dep].append(request)

        ready = [request for request in order if not pending_deps[request]]
        running: dict[Future, tuple[Request, str, float, float]] = {}

        def mark_done(request: Request) -> None:
            for dependent in dependents[request]:
                pending_deps[dependent].discard(request)
                if not pending_deps[dependent] and dependent not in results:
                    ready.append(dependent)

        with ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_worker,
            initargs=(list(sys.path),),
        ) as pool:
            while len(results) < len(order):
                while ready:
                    request = ready.pop(0)
                    job = jobs_by_request[request]
                    key, cached, hit = self._cache_lookup(job, request)
                    if hit:
                        results[request] = cached
                        self._record(request, key, "hit", "ok", 0.0, cached)
                        mark_done(request)
                        continue
                    deps = [results[dep] for dep in dep_lists[request]]
                    started = time.monotonic()
                    future = pool.submit(
                        _call_job, job.fn, request.params_dict(), deps
                    )
                    deadline = started + self.timeout if self.timeout else float("inf")
                    running[future] = (request, key, started, deadline)
                if len(results) >= len(order):
                    break
                if not running:
                    unfinished = [r.label() for r in order if r not in results]
                    raise EngineError(
                        f"scheduler stalled with unfinished jobs: {unfinished}"
                    )
                tick = min(deadline for (_, _, _, deadline) in running.values())
                wait_for = None
                if tick != float("inf"):
                    wait_for = max(0.0, tick - time.monotonic()) + 0.01
                done, _ = wait(running, timeout=wait_for, return_when=FIRST_COMPLETED)
                now = time.monotonic()
                if not done:
                    for future, (request, key, started, deadline) in running.items():
                        if now > deadline:
                            wall_ms = (now - started) * 1000.0
                            self._record(
                                request,
                                key,
                                self._miss_state(),
                                "timeout",
                                wall_ms,
                                error=f"exceeded {self.timeout}s",
                            )
                            _abort_pool(pool)
                            raise JobTimeoutError(
                                f"job {request.label()} exceeded the per-job timeout "
                                f"of {self.timeout}s"
                            )
                    continue
                for future in done:
                    request, key, started, _deadline = running.pop(future)
                    job = jobs_by_request[request]
                    wall_ms = (now - started) * 1000.0
                    try:
                        result = future.result()
                    except Exception as exc:
                        self._record(
                            request, key, self._miss_state(), "error", wall_ms, error=str(exc)
                        )
                        _abort_pool(pool)
                        raise JobFailedError(
                            f"job {request.label()} failed in worker: {exc}"
                        ) from exc
                    results[request] = result
                    self._store(job, request, key, result)
                    self._record(request, key, self._miss_state(), "ok", wall_ms, result)
                    mark_done(request)
