"""Structured run artifacts: one JSON record per executed job.

Every engine run appends machine-readable records to a JSONL run log
(default ``<cache_dir>/runs.jsonl``), one line per job *execution* (a
retried job appends one record per attempt) plus a trailing
``run_summary`` line.  Benchmark trajectories (``BENCH_*.json``) and any
future dashboards consume this file; nothing in it is meant for humans
first.

Record schema (``kind: "job"``)::

    {
      "kind": "job",
      "run_id": "a1b2c3…",          # shared by all records of one engine run
      "job": "certificate",
      "params": {"n": 16},
      "key": "5f1d…",               # the content-addressed cache key
      "cache": "hit" | "miss" | "off",
      "outcome": "ok" | "error" | "timeout" | "skipped",
      "error": "…",                 # present only when outcome != ok
      "wall_ms": 12.3,              # execution time (0.0 for cache hits)
      "result_bytes": 418,          # size of the JSON-encoded result
      "started_at": 1754…,          # epoch seconds the execution *started*
      "pid": 1234,                  # recording process id
      "attempt": 1,                 # 1-based execution attempt of this job
      "retries": 0,                 # the engine's max_retries budget
      "backend": "words"            # the active kernel backend (repro.backend)
    }

``outcome: "timeout"`` marks a job killed at its deadline;
``outcome: "skipped"`` marks a dependent that could not run because a
dependency timed out under ``on_timeout="skip"``.  A retried job records
every failed attempt (``outcome: "error"``) before its final record.

Summary schema (``kind: "run_summary"``)::

    {"kind": "run_summary", "run_id": …, "jobs": 11, "hits": 9,
     "misses": 2, "off": 0, "errors": 0, "timeouts": 0, "skipped": 0,
     "retried": 0, "wall_ms": 1834.2, "workers": 4}

``hits + misses + off == jobs`` always holds: ``off`` counts executions
that ran with caching disabled (they are *not* misses — there was no
cache to miss).  ``retried`` counts executions with ``attempt > 1``.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["RunRecord", "RunLog"]


@dataclass(slots=True)
class RunRecord:
    """One executed (or cache-served) job attempt, as recorded in the run log."""

    run_id: str
    job: str
    params: dict[str, Any]
    key: str
    cache: str
    outcome: str
    wall_ms: float
    result_bytes: int
    started_at: float
    pid: int
    attempt: int = 1
    retries: int = 0
    error: str | None = None
    backend: str | None = None

    def to_json(self) -> dict[str, Any]:
        record = {"kind": "job", **asdict(self)}
        if record["error"] is None:
            del record["error"]
        if record["backend"] is None:
            del record["backend"]
        return record


@dataclass(slots=True)
class RunLog:
    """An append-only JSONL sink for :class:`RunRecord` entries.

    ``path=None`` disables persistence but still accumulates records in
    memory (so callers can always report a summary).
    """

    path: Path | None
    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    records: list[RunRecord] = field(default_factory=list)

    def record(self, record: RunRecord) -> None:
        self.records.append(record)
        self._append(record.to_json())

    def summarize(self, wall_ms: float, workers: int) -> dict[str, Any]:
        """Append and return the ``run_summary`` record for this run."""
        summary = {
            "kind": "run_summary",
            "run_id": self.run_id,
            "jobs": len(self.records),
            "hits": sum(1 for r in self.records if r.cache == "hit"),
            "misses": sum(1 for r in self.records if r.cache == "miss"),
            "off": sum(1 for r in self.records if r.cache == "off"),
            "errors": sum(1 for r in self.records if r.outcome == "error"),
            "timeouts": sum(1 for r in self.records if r.outcome == "timeout"),
            "skipped": sum(1 for r in self.records if r.outcome == "skipped"),
            "retried": sum(1 for r in self.records if r.attempt > 1),
            "wall_ms": round(wall_ms, 3),
            "workers": workers,
        }
        self._append(summary)
        return summary

    def _append(self, payload: dict[str, Any]) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    @staticmethod
    def result_bytes(result: Any) -> int:
        """The JSON-encoded size of a result (the ``result_bytes`` field)."""
        try:
            return len(json.dumps(result, sort_keys=True, separators=(",", ":")))
        except (TypeError, ValueError):
            return -1
