"""The content-addressed disk cache behind the engine.

Layout (one directory per job, one JSON file per key)::

    <cache_dir>/
        v1/
            certificate/
                 5f1d...c0.json     # {"job": ..., "params": ..., "result": ...}
            sizes.row/
                 ...

Every entry is self-describing: alongside the result it records the job
name, the parameters and the code fingerprint that produced it, so a
cache directory can be audited with nothing but ``jq``.  Writes are
atomic (``os.replace`` of a same-directory temp file), which makes the
cache safe under concurrent writers — the losing writer simply overwrites
with identical bytes.

The default location is ``$REPRO_CACHE_DIR`` if set, else
``~/.cache/repro``; every CLI entry point accepts ``--cache-dir``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections.abc import Mapping
from pathlib import Path
from typing import Any

__all__ = ["DiskCache", "default_cache_dir", "CACHE_FORMAT"]

#: Bumped when the on-disk entry format changes; old entries are ignored.
CACHE_FORMAT = "v1"

_MISSING = object()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


class DiskCache:
    """A content-addressed JSON store for job results.

    >>> import tempfile
    >>> cache = DiskCache(tempfile.mkdtemp())
    >>> cache.get("certificate", "0" * 64) is None
    True
    >>> cache.put("certificate", "0" * 64, {"n": 16}, "fp", {"margin": 16640})
    >>> cache.get("certificate", "0" * 64)["result"]["margin"]
    16640
    """

    def __init__(self, directory: str | os.PathLike[str] | None = None) -> None:
        self._root = Path(directory) if directory is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        # The serve broker shares one cache across executor threads; the
        # counters are read-modify-write, so they take a lock.
        self._counter_lock = threading.Lock()

    def _count(self, hit: bool) -> None:
        with self._counter_lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    @property
    def root(self) -> Path:
        """The cache directory (entries live under ``root / CACHE_FORMAT``)."""
        return self._root

    def _path(self, job_name: str, key: str) -> Path:
        safe_job = "".join(c if c.isalnum() or c in "._-" else "_" for c in job_name)
        return self._root / CACHE_FORMAT / safe_job / f"{key}.json"

    def get(self, job_name: str, key: str) -> dict[str, Any] | None:
        """Return the stored entry (with its metadata) or ``None``.

        Unreadable or corrupt entries count as misses and are ignored.
        """
        path = self._path(job_name, key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self._count(hit=False)
            return None
        if not isinstance(entry, dict) or "result" not in entry:
            self._count(hit=False)
            return None
        self._count(hit=True)
        return entry

    def put(
        self,
        job_name: str,
        key: str,
        params: Mapping[str, Any],
        fingerprint: str,
        result: Any,
    ) -> None:
        """Atomically persist ``result`` under ``key``.

        ``result`` must be JSON-serializable — the engine enforces that
        every job returns plain data, which is also what makes parallel
        and serial runs byte-identical.  Storage failures (read-only or
        full disk) are swallowed: a cache that cannot write degrades to
        recomputation, it must never fail the computation itself.
        """
        try:
            self._put(job_name, key, params, fingerprint, result)
        except OSError:
            pass

    def _put(
        self,
        job_name: str,
        key: str,
        params: Mapping[str, Any],
        fingerprint: str,
        result: Any,
    ) -> None:
        path = self._path(job_name, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "job": job_name,
            "params": dict(params),
            "fingerprint": fingerprint,
            "result": result,
        }
        payload = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def stats(self, count_only: bool = False) -> dict[str, Any]:
        """Entry counts (and total bytes) per job, plus this process's hit/miss.

        ``count_only=True`` skips the per-file ``stat()`` pass and reports
        ``bytes: None`` — one directory listing per job instead of a full
        tree walk, which is what keeps a server's ``/stats`` endpoint cheap
        under load.  The returned mapping has the same keys either way.
        """
        per_job: dict[str, dict[str, Any]] = {}
        base = self._root / CACHE_FORMAT
        if base.is_dir():
            for job_dir in sorted(base.iterdir()):
                if not job_dir.is_dir():
                    continue
                entries = [p for p in job_dir.glob("*.json")]
                per_job[job_dir.name] = {
                    "entries": len(entries),
                    "bytes": None
                    if count_only
                    else sum(p.stat().st_size for p in entries),
                }
        return {
            "dir": str(self._root),
            "jobs": per_job,
            "entries": sum(j["entries"] for j in per_job.values()),
            "bytes": None
            if count_only
            else sum(j["bytes"] for j in per_job.values()),
            "session_hits": self.hits,
            "session_misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        base = self._root / CACHE_FORMAT
        removed = 0
        if base.is_dir():
            for job_dir in base.iterdir():
                if not job_dir.is_dir():
                    continue
                for entry in job_dir.glob("*.json"):
                    entry.unlink()
                    removed += 1
                try:
                    job_dir.rmdir()
                except OSError:
                    pass
        return removed


class NullCache(DiskCache):
    """A cache that stores nothing (``--no-cache``)."""

    def __init__(self) -> None:
        super().__init__(directory=os.devnull)

    def get(self, job_name: str, key: str) -> dict[str, Any] | None:
        self._count(hit=False)
        return None

    def put(self, job_name, key, params, fingerprint, result) -> None:
        return None

    def stats(self, count_only: bool = False) -> dict[str, Any]:
        return {
            "dir": None,
            "jobs": {},
            "entries": 0,
            "bytes": None if count_only else 0,
            "session_hits": self.hits,
            "session_misses": self.misses,
        }

    def clear(self) -> int:
        return 0


__all__.append("NullCache")
