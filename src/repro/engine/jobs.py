"""The built-in job registry: every paper check as a declared job.

Each job wraps one verifiable computation from the reproduction — a
Theorem 1 size-table row, a Theorem 12 certificate, a Proposition 7
cover, an exhaustive Lemma 18 check, the E7/E8 benchmark cores — behind
typed parameters and an explicit dependency list.  All results are plain
JSON data, so they cache on disk and travel between worker processes.

Job functions are module-level (workers resolve them by reference) and
each declares the ``source_modules`` whose edits must invalidate its
cached results.
"""

from __future__ import annotations

import math
import os
import time
from typing import Any

from repro.engine.registry import JobRegistry, Request
from repro.util.tables import format_int

__all__ = ["REGISTRY", "default_registry"]

REGISTRY = JobRegistry()


def default_registry() -> JobRegistry:
    """The registry holding every built-in paper job."""
    return REGISTRY


#: The semiring chart-parsing kernel.  Every job whose computation routes
#: through parsing (covers, the zoo's disambiguation, the parsing bench)
#: lists these so kernel edits invalidate exactly their cached results.
_KERNEL_MODULES = (
    "repro.kernel.semiring",
    "repro.kernel.forest",
    "repro.kernel.chart",
    "repro.kernel.generic",
    "repro.kernel.earley",
    "repro.kernel.fold",
    "repro.kernel.batch",
    "repro.kernel.prefix",
    "repro.kernel.paths",
)


# ----------------------------------------------------------------------
# Theorem 1: the size table (E1/E2 cores)
# ----------------------------------------------------------------------

_SIZE_MODULES = (
    "repro.languages.small_grammar",
    "repro.languages.nfa_ln",
    "repro.languages.unambiguous_grammar",
    "repro.core.lower_bound",
    "repro.core.discrepancy",
)


@REGISTRY.job(
    "sizes.row",
    params=("n",),
    source_modules=_SIZE_MODULES,
    description="One row of the Theorem 1 size table for L_n",
)
def sizes_row(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.core.lower_bound import certificate
    from repro.languages.nfa_ln import ln_match_nfa
    from repro.languages.small_grammar import small_ln_grammar
    from repro.languages.unambiguous_grammar import example4_size

    n = params["n"]
    cfg_size = small_ln_grammar(n).size
    cert = certificate(n)
    return {
        "n": n,
        "cfg_size": cfg_size,
        "cfg_per_log2": f"{cfg_size / math.log2(n):.1f}",
        "nfa_states": ln_match_nfa(n).n_states,
        "ucfg_constr": format_int(example4_size(n)),
        "ucfg_bound": format_int(cert.ucfg_bound),
    }


def _sizes_table_deps(params: dict[str, Any]) -> list[Request]:
    return [
        Request.make("sizes.row", {"n": 2**exponent})
        for exponent in range(2, params["max_exp"] + 1)
    ]


@REGISTRY.job(
    "sizes.table",
    params=("max_exp",),
    defaults={"max_exp": 10},
    deps=_sizes_table_deps,
    source_modules=_SIZE_MODULES,
    description="The full Theorem 1 size table (fans out one job per n)",
)
def sizes_table(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    return {"max_exp": params["max_exp"], "rows": deps}


# ----------------------------------------------------------------------
# Theorem 12: the lower-bound certificate
# ----------------------------------------------------------------------


@REGISTRY.job(
    "certificate",
    params=("n",),
    source_modules=("repro.core.lower_bound", "repro.core.discrepancy"),
    description="The verified Theorem 12 certificate for one n",
)
def certificate_job(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.core.lower_bound import certificate

    cert = certificate(params["n"])
    cert.verify()
    return cert.to_dict()


@REGISTRY.job(
    "grammar",
    params=("n",),
    source_modules=("repro.languages.small_grammar", "repro.grammars.cfg"),
    description="The Θ(log n) Appendix A grammar for L_n",
)
def grammar_job(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.languages.small_grammar import small_ln_grammar

    grammar = small_ln_grammar(params["n"])
    return {
        "n": params["n"],
        "size": grammar.size,
        "n_rules": grammar.n_rules,
        "rules": grammar.pretty().splitlines(),
    }


# ----------------------------------------------------------------------
# Proposition 7: rectangle covers (E5 core)
# ----------------------------------------------------------------------


@REGISTRY.job(
    "cover",
    params=("n",),
    source_modules=(
        "repro.core.cover",
        "repro.core.rectangles",
        "repro.languages.unambiguous_grammar",
        "repro.grammars.cyk",
        "repro.grammars.generic",
    )
    + _KERNEL_MODULES,
    description="Proposition 7 on the Example 4 uCFG for L_n (n <= 4)",
)
def cover_job(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.core.cover import balanced_rectangle_cover
    from repro.languages.unambiguous_grammar import example4_ucfg

    n = params["n"]
    if n > 4:
        raise ValueError("cover: n > 4 is infeasible (the uCFG explodes); use n <= 4")
    cover = balanced_rectangle_cover(example4_ucfg(n))
    return {
        "n": n,
        "n_rectangles": cover.n_rectangles,
        "proposition7_bound": cover.proposition7_bound,
        "disjoint": cover.disjoint,
        "steps": [
            {
                "nonterminal": str(step.nonterminal),
                "n1": step.rectangle.n1,
                "n2": step.rectangle.n2,
                "n3": step.rectangle.n3,
                "outer": len(step.rectangle.outer),
                "inner": len(step.rectangle.inner),
                "words": step.rectangle.n_words,
            }
            for step in cover.steps
        ],
    }


# ----------------------------------------------------------------------
# Section 4: Lemma 18 / discrepancy (E6/E7 cores)
# ----------------------------------------------------------------------


@REGISTRY.job(
    "lemma18",
    params=("m",),
    source_modules=("repro.core.discrepancy",),
    description="Exhaustive Lemma 18 verification for one m (m <= 5)",
)
def lemma18_job(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.core.discrepancy import verify_lemma18

    m = params["m"]
    if m > 5:
        raise ValueError("lemma18: m > 5 enumerates over 16^m members; use m <= 5")
    results = verify_lemma18(m)
    return {
        "m": m,
        "quantities": {
            name: {"enumerated": enumerated, "formula": formula}
            for name, (enumerated, formula) in results.items()
        },
    }


_DISC_MODULES = (
    "repro.core.discrepancy",
    "repro.core.partitions",
    "repro.core.setview",
)


@REGISTRY.job(
    "discrepancy.partition",
    params=("m", "lo", "hi"),
    source_modules=_DISC_MODULES,
    description="Exact max discrepancy of one neat balanced partition",
)
def discrepancy_partition_job(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.core.discrepancy import max_discrepancy_over_partition
    from repro.core.setview import OrderedPartition

    m, lo, hi = params["m"], params["lo"], params["hi"]
    partition = OrderedPartition(n=4 * m, lo=lo, hi=hi, interval_part=0)
    value, exact = max_discrepancy_over_partition(partition, m)
    return {"lo": lo, "hi": hi, "max_disc": value, "exact": exact}


def _discrepancy_deps(params: dict[str, Any]) -> list[Request]:
    from repro.core.partitions import iter_neat_balanced_partitions

    m = params["m"]
    if m > 2:
        raise ValueError("discrepancy: exact maximisation is feasible only for m <= 2")
    return [
        Request.make("discrepancy.partition", {"m": m, "lo": p.lo, "hi": p.hi})
        for p in iter_neat_balanced_partitions(m)
    ]


@REGISTRY.job(
    "discrepancy",
    params=("m",),
    deps=_discrepancy_deps,
    source_modules=_DISC_MODULES,
    description="Exact max discrepancy per neat balanced partition (m <= 2; "
    "fans out one cacheable job per partition)",
)
def discrepancy_job(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.core.discrepancy import lemma19_bound, lemma23_bound

    m = params["m"]
    return {
        "m": m,
        "lemma19_bound": lemma19_bound(m),
        "lemma23_bound": lemma23_bound(m),
        "partitions": deps,
    }


# ----------------------------------------------------------------------
# The classical communication route (E8 core)
# ----------------------------------------------------------------------


@REGISTRY.job(
    "rank",
    params=("p",),
    source_modules=(
        "repro.comm.rank",
        "repro.comm.matrix",
        "repro.comm.packed",
        "repro.comm.covers",
        "repro.comm.fooling",
    ),
    description="Rank and cover numbers of INTERSECT_p (Theorem 17 route)",
)
def rank_job(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.comm import (
        fooling_set_bound,
        greedy_disjoint_cover,
        intersection_matrix,
        rank_over_gf2,
        rank_over_q,
        verify_disjoint_cover,
    )

    p = params["p"]
    matrix = intersection_matrix(p)
    greedy = greedy_disjoint_cover(matrix)
    if not verify_disjoint_cover(matrix, greedy):
        raise ValueError(f"greedy cover of INTERSECT_{p} failed verification")
    return {
        "p": p,
        "rank_q": rank_over_q(matrix),
        "rank_gf2": rank_over_gf2(matrix) if p <= 5 else None,
        "fooling_bound": fooling_set_bound(matrix),
        "greedy_cover": len(greedy),
    }


# ----------------------------------------------------------------------
# The exact cover solver (branch-and-price, arbitrary 0/1 matrices)
# ----------------------------------------------------------------------


@REGISTRY.job(
    "comm.cover.solve",
    params=("matrix", "mode", "node_budget"),
    defaults={"mode": "disjoint", "node_budget": 2_000_000},
    source_modules=(
        "repro.comm.cover",
        "repro.comm.covers",
        "repro.comm.matrix",
        "repro.comm.packed",
        "repro.comm.rank",
    ),
    description="Certified minimum rectangle cover of an arbitrary 0/1 matrix",
)
def comm_cover_solve(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.comm.cover import solve_cover

    # ``matrix`` is either a named family ("intersection:P") or a 0/1
    # entry grid — the engine canonicalises list params to nested tuples,
    # which matrix_from_spec accepts directly.
    result = solve_cover(
        params["matrix"], mode=params["mode"], node_budget=params["node_budget"]
    )
    return result.to_json()


# ----------------------------------------------------------------------
# Example 3 (E4 core)
# ----------------------------------------------------------------------


@REGISTRY.job(
    "example3",
    params=("k",),
    source_modules=("repro.languages.example3",),
    description="Example 3: G_k of size Θ(k) for L_{2^k+1}",
)
def example3_job(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.languages.example3 import (
        example3_grammar,
        example3_language_parameter,
        example3_size,
    )

    k = params["k"]
    grammar = example3_grammar(k)
    if grammar.size != example3_size(k):
        raise ValueError(f"example3: measured size {grammar.size} != formula")
    return {
        "k": k,
        "n": example3_language_parameter(k),
        "size": grammar.size,
        "n_rules": grammar.n_rules,
    }


# ----------------------------------------------------------------------
# The representation zoo (E14 core)
# ----------------------------------------------------------------------

_ZOO_MODULES = (
    "repro.languages.small_grammar",
    "repro.languages.nfa_ln",
    "repro.languages.dfa_ln",
    "repro.languages.ln",
    "repro.grammars.disambiguate",
) + _KERNEL_MODULES


@REGISTRY.job(
    "zoo.row",
    params=("n",),
    source_modules=_ZOO_MODULES,
    description="Exact sizes of every representation of L_n (n <= 5)",
)
def zoo_row(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.grammars.disambiguate import disambiguate
    from repro.languages.dfa_ln import ln_minimal_dfa
    from repro.languages.ln import count_ln
    from repro.languages.nfa_ln import ln_match_nfa, ln_nfa_exact
    from repro.languages.small_grammar import small_ln_grammar

    n = params["n"]
    if n > 5:
        raise ValueError("zoo.row: the disambiguated uCFG is infeasible for n > 5")
    grammar = small_ln_grammar(n)
    ucfg, _report = disambiguate(grammar, verify=False)
    return {
        "n": n,
        "count_ln": count_ln(n),
        "cfg": grammar.size,
        "nfa": ln_match_nfa(n).n_states,
        "exact_nfa": ln_nfa_exact(n).n_states,
        "min_dfa": ln_minimal_dfa(n).n_states,
        "ucfg": ucfg.size,
    }


def _zoo_table_deps(params: dict[str, Any]) -> list[Request]:
    top = min(max(params["max_n"], 2), 5)
    return [Request.make("zoo.row", {"n": n}) for n in range(2, top + 1)]


@REGISTRY.job(
    "zoo.table",
    params=("max_n",),
    defaults={"max_n": 4},
    deps=_zoo_table_deps,
    source_modules=_ZOO_MODULES,
    description="The representation zoo table (fans out one job per n)",
)
def zoo_table(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    return {"max_n": params["max_n"], "rows": deps}


# ----------------------------------------------------------------------
# The parsing kernel benchmark (cold vs. batched chart fill)
# ----------------------------------------------------------------------

_PARSING_BENCH_MODULES = _KERNEL_MODULES + (
    "repro.grammars.cnf",
    "repro.languages.small_grammar",
    "repro.languages.ln",
)


@REGISTRY.job(
    "parsing.bench.row",
    params=("n", "n_words", "seed"),
    defaults={"n_words": 24, "seed": 0},
    source_modules=_PARSING_BENCH_MODULES,
    description="Time cold vs. bitset vs. batched recognition over one L_n",
)
def parsing_bench_row(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    """Recognise the same word sample three ways and time each.

    * ``legacy`` — one full counting chart per word (what ``recognises``
      did before the kernel refactor: count the parse trees, compare > 0);
    * ``bitset`` — one bitset boolean chart per word, with early exit;
    * ``batched`` — the shared-prefix batched bitset filler.

    The sample mixes members of ``L_n`` with seeded random words of the
    right length; all three strategies must agree with the direct
    ``is_in_ln`` check or the job fails.
    """
    import itertools
    import random
    from time import perf_counter

    from repro.grammars.cnf import to_cnf
    from repro.kernel.batch import BatchedRecognizer
    from repro.kernel.chart import CNFChart, cnf_bitset_tables, recognise_cnf
    from repro.kernel.semiring import COUNTING
    from repro.languages.ln import is_in_ln, iter_ln
    from repro.languages.small_grammar import small_ln_grammar

    n, n_words, seed = params["n"], params["n_words"], params["seed"]
    grammar = to_cnf(small_ln_grammar(n))
    rng = random.Random(seed)
    members = list(itertools.islice(iter_ln(n), n_words // 2))
    randoms = {
        "".join(rng.choice("ab") for _ in range(2 * n))
        for _ in range(n_words - len(members))
    }
    words = sorted(set(members) | randoms)

    # Warm the per-grammar rule tables so no strategy pays them in-loop.
    cnf_bitset_tables(grammar)

    start = perf_counter()
    legacy = {w: CNFChart(grammar, w, COUNTING).value() > 0 for w in words}
    legacy_s = perf_counter() - start

    start = perf_counter()
    bitset = {w: recognise_cnf(grammar, w) for w in words}
    bitset_s = perf_counter() - start

    start = perf_counter()
    batched = BatchedRecognizer(grammar).recognise_many(words)
    batched_s = perf_counter() - start

    for word in words:
        expected = is_in_ln(word, n)
        if not (legacy[word] == bitset[word] == batched[word] == expected):
            raise ValueError(
                f"parsing.bench.row: strategies disagree on {word!r} "
                f"(legacy={legacy[word]}, bitset={bitset[word]}, "
                f"batched={batched[word]}, is_in_ln={expected})"
            )

    n_members = sum(1 for w in words if legacy[w])
    return {
        "n": n,
        "word_length": 2 * n,
        "n_words": len(words),
        "n_members": n_members,
        "legacy_s": round(legacy_s, 6),
        "bitset_s": round(bitset_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup_bitset": round(legacy_s / bitset_s, 2) if bitset_s else None,
        "speedup_batched": round(legacy_s / batched_s, 2) if batched_s else None,
    }


def _parsing_bench_deps(params: dict[str, Any]) -> list[Request]:
    max_n = params["max_n"]
    ns = sorted({n for n in (2, 4, 8) if n < max_n} | {max_n})
    return [
        Request.make(
            "parsing.bench.row",
            {"n": n, "n_words": params["n_words"], "seed": params["seed"]},
        )
        for n in ns
    ]


@REGISTRY.job(
    "parsing.bench",
    params=("max_n", "n_words", "seed"),
    defaults={"max_n": 12, "n_words": 24, "seed": 0},
    deps=_parsing_bench_deps,
    source_modules=_PARSING_BENCH_MODULES,
    description="The parsing-kernel benchmark sweep (fans out one row per n)",
)
def parsing_bench(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    return {
        "max_n": params["max_n"],
        "n_words": params["n_words"],
        "seed": params["seed"],
        "rows": deps,
    }


# ----------------------------------------------------------------------
# The communication benchmark (legacy vs. bit-parallel substrate)
# ----------------------------------------------------------------------

_COMM_BENCH_MODULES = (
    "repro.comm.bench",
    "repro.comm.matrix",
    "repro.comm.packed",
    "repro.comm.rank",
    "repro.comm.covers",
    "repro.comm.fooling",
)


@REGISTRY.job(
    "comm.bench.row",
    params=("p", "node_budget"),
    defaults={"node_budget": 2_000_000},
    source_modules=_COMM_BENCH_MODULES,
    description="Time legacy vs. packed rank/cover/fooling on INTERSECT_p",
)
def comm_bench_row(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.comm.bench import bench_comm_row

    return bench_comm_row(params["p"], node_budget=params["node_budget"])


@REGISTRY.job(
    "comm.bench.disc",
    params=("m",),
    source_modules=_COMM_BENCH_MODULES + ("repro.core.discrepancy",),
    description="Time legacy vs. SWAR exact discrepancy on the split sign matrix",
)
def comm_bench_disc(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.comm.bench import bench_disc_row

    return bench_disc_row(params["m"])


@REGISTRY.job(
    "comm.bench.cover",
    params=("p", "node_budget"),
    defaults={"node_budget": 2_000_000},
    source_modules=_COMM_BENCH_MODULES + ("repro.comm.cover",),
    description="Time the branch-and-price cover solver vs the frozen B&B on INTERSECT_p",
)
def comm_bench_cover(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.comm.bench import bench_cover_row

    return bench_cover_row(params["p"], node_budget=params["node_budget"])


def _comm_bench_deps(params: dict[str, Any]) -> list[Request]:
    rows = [
        Request.make("comm.bench.row", {"p": p, "node_budget": params["node_budget"]})
        for p in range(2, params["max_p"] + 1)
    ]
    covers = [
        Request.make("comm.bench.cover", {"p": p, "node_budget": params["node_budget"]})
        for p in range(2, params["max_cover_p"] + 1)
    ]
    discs = [
        Request.make("comm.bench.disc", {"m": m})
        for m in range(1, min(params["max_m"], 2) + 1)
    ]
    return rows + covers + discs


@REGISTRY.job(
    "comm.bench",
    params=("max_p", "max_cover_p", "max_m", "node_budget", "budget_s"),
    defaults={
        "max_p": 6,
        "max_cover_p": 6,
        "max_m": 2,
        "node_budget": 2_000_000,
        "budget_s": 5.0,
    },
    deps=_comm_bench_deps,
    source_modules=_COMM_BENCH_MODULES + ("repro.comm.cover", "repro.core.discrepancy"),
    description="The communication benchmark sweep (fans out one row per p / m)",
)
def comm_bench(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.comm.bench import summarise_cover_rows, summarise_rows

    rows = [row for row in deps if "ops" in row]
    cover_rows = [row for row in deps if "solver" in row]
    disc_rows = [row for row in deps if "m" in row]
    return {
        "max_p": params["max_p"],
        "max_cover_p": params["max_cover_p"],
        "max_m": params["max_m"],
        "node_budget": params["node_budget"],
        "rows": rows,
        "cover_rows": cover_rows,
        "disc_rows": disc_rows,
        "summary": summarise_rows(rows, params["budget_s"]),
        "cover_summary": summarise_cover_rows(cover_rows, params["budget_s"]),
    }


# ----------------------------------------------------------------------
# The automata engine (bit-parallel packed kernels) and its benchmark
# ----------------------------------------------------------------------

_AUTOMATA_MODULES = (
    "repro.automata.packed",
    "repro.automata.nfa",
    "repro.automata.dfa",
    "repro.automata.ops",
    "repro.automata.counting",
    "repro.languages.nfa_ln",
    "repro.languages.dfa_ln",
)


@REGISTRY.job(
    "automata.determinise",
    params=("n",),
    source_modules=_AUTOMATA_MODULES,
    description="Determinise + minimise the L_n match NFA (packed kernels)",
)
def automata_determinise(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.automata.packed import PackedNFA, packed_determinise, packed_minimise
    from repro.languages.nfa_ln import ln_match_nfa

    n = params["n"]
    nfa = ln_match_nfa(n)
    dfa = packed_determinise(PackedNFA.from_nfa(nfa))
    minimal = packed_minimise(dfa)
    return {
        "n": n,
        "nfa_states": nfa.n_states,
        "dfa_states": dfa.n_states,
        "min_dfa_states": minimal.n_states,
    }


@REGISTRY.job(
    "automata.ambiguity",
    params=("n", "exact"),
    defaults={"exact": True},
    source_modules=_AUTOMATA_MODULES,
    description="Unambiguity of the exact (or match) L_n NFA via the packed self-product",
)
def automata_ambiguity(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.automata.ops import is_unambiguous_nfa
    from repro.languages.nfa_ln import ln_match_nfa, ln_nfa_exact

    n, exact = params["n"], params["exact"]
    nfa = ln_nfa_exact(n) if exact else ln_match_nfa(n)
    return {
        "n": n,
        "exact": exact,
        "n_states": nfa.n_states,
        "unambiguous": is_unambiguous_nfa(nfa),
    }


@REGISTRY.job(
    "automata.count",
    params=("n", "length"),
    source_modules=_AUTOMATA_MODULES,
    description="Exact word counts at one length in the L_n match and unique-match DFAs",
)
def automata_count(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.automata.counting import count_dfa_words_of_length
    from repro.languages.dfa_ln import ln_match_minimal_dfa, ln_unique_match_dfa

    n, length = params["n"], params["length"]
    match_count = count_dfa_words_of_length(ln_match_minimal_dfa(n), length)
    unique_count = count_dfa_words_of_length(ln_unique_match_dfa(n), length)
    return {
        "n": n,
        "length": length,
        # Counts can exceed the int→str digit limit; record bits + checksum.
        "match_count_bits": match_count.bit_length(),
        "match_count_checksum": hex(match_count % (1 << 64)),
        "unique_count": unique_count,
    }


_AUTOMATA_BENCH_MODULES = ("repro.automata.bench",) + _AUTOMATA_MODULES


@REGISTRY.job(
    "automata.bench.row",
    params=("n",),
    source_modules=_AUTOMATA_BENCH_MODULES,
    description="Time legacy vs. packed determinise/minimise/ambiguity on L_n",
)
def automata_bench_row(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.automata.bench import bench_automata_row

    return bench_automata_row(params["n"])


@REGISTRY.job(
    "automata.bench.count",
    params=("exp", "n"),
    defaults={"n": 8},
    source_modules=_AUTOMATA_BENCH_MODULES,
    description="Time legacy sweep vs. packed matrix power counting words of length 2^exp",
)
def automata_bench_count(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.automata.bench import bench_count_row

    return bench_count_row(params["exp"], n=params["n"])


def _automata_bench_deps(params: dict[str, Any]) -> list[Request]:
    rows = [
        Request.make("automata.bench.row", {"n": n})
        for n in range(1, params["max_n"] + 1)
    ]
    counts = [
        Request.make("automata.bench.count", {"exp": exp, "n": 8})
        for exp in range(10, params["max_count_exp"] + 1, 2)
    ]
    return rows + counts


@REGISTRY.job(
    "automata.bench",
    params=("max_n", "max_count_exp", "budget_s"),
    defaults={"max_n": 48, "max_count_exp": 24, "budget_s": 5.0},
    deps=_automata_bench_deps,
    source_modules=_AUTOMATA_BENCH_MODULES,
    description="The automata benchmark sweep (fans out one row per n / exp)",
)
def automata_bench(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.automata.bench import summarise_automata_rows

    rows = [row for row in deps if "ops" in row]
    count_rows = [row for row in deps if "exp" in row]
    return {
        "max_n": params["max_n"],
        "max_count_exp": params["max_count_exp"],
        "rows": rows,
        "count_rows": count_rows,
        "summary": summarise_automata_rows(rows, count_rows, params["budget_s"]),
    }


# ----------------------------------------------------------------------
# The kernel-backend benchmark (reference vs. words vs. numpy vs. cext)
# ----------------------------------------------------------------------


@REGISTRY.job(
    "backends.bench",
    params=("repeats", "seed"),
    defaults={"repeats": 5, "seed": 0},
    source_modules=(
        "repro.backend",
        "repro.backend.limbs",
        "repro.backend.reference",
        "repro.backend.words",
        "repro.backend.numpy_backend",
        "repro.backend.cext",
        "repro.backend.bench",
    ),
    description="Time every available kernel backend on each primitive family",
)
def backends_bench(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.backend.bench import bench_backends

    return bench_backends(repeats=params["repeats"], seed=params["seed"])


# ----------------------------------------------------------------------
# Membership
# ----------------------------------------------------------------------


@REGISTRY.job(
    "member",
    params=("word", "n"),
    source_modules=("repro.languages.ln",),
    description="Membership of a word in L_n, with matching positions",
)
def member_job(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    from repro.languages.ln import is_in_ln, match_positions

    word, n = params["word"], params["n"]
    member = is_in_ln(word, n)
    return {
        "word": word,
        "n": n,
        "member": member,
        "positions": match_positions(word, n) if member else [],
    }


# ----------------------------------------------------------------------
# Streaming spanner extraction (docs/EXTRACT.md)
# ----------------------------------------------------------------------
#
# Stream specs are *generative*: a job parameter set names a seeded
# synthetic stream plus a document shard ``[lo, hi)``, never raw
# documents — so parameters stay small and plain-JSON, every worker can
# regenerate its shard independently, and the content-addressed cache
# keys results by construction.  ``hi = -1`` means "to the end of the
# stream".

_EXTRACT_MODULES = (
    "repro.extract.spec",
    "repro.extract.compile",
    "repro.extract.scan",
    "repro.spanners.csv_match",
    "repro.automata.packed",
    "repro.automata.nfa",
    "repro.backend.limbs",
    "repro.backend.reference",
    "repro.backend.words",
)

_STREAM_PARAMS = ("c", "w", "columns", "relation", "n_docs", "seed", "match_bias")

_STREAM_DEFAULTS: dict[str, Any] = {
    "relation": "match",
    "n_docs": 1000,
    "seed": 0,
    "match_bias": 0.25,
}


def _stream_params(params: dict[str, Any]) -> dict[str, Any]:
    """The spec-defining subset of a job's parameters."""
    return {name: params[name] for name in _STREAM_PARAMS}


@REGISTRY.job(
    "extract.stream",
    params=_STREAM_PARAMS + ("lo", "hi", "chunk_chars"),
    defaults={**_STREAM_DEFAULTS, "lo": 0, "hi": -1, "chunk_chars": 1 << 16},
    source_modules=("repro.extract.spec",),
    description="Generate one shard of a seeded document stream; return its digest",
)
def extract_stream(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    """Materialise a shard chunk-by-chunk and fingerprint it (sha256).

    Proves shard-independent generation: any two decompositions of the
    same range hash identically without the stream ever being held in
    memory at once.
    """
    import hashlib

    from repro.extract.spec import StreamSpec

    spec = StreamSpec.from_params(_stream_params(params))
    lo, hi = spec.resolve_range(params["lo"], params["hi"])
    digest = hashlib.sha256()
    chars = 0
    for chunk in spec.iter_chunks(params["chunk_chars"], lo, hi):
        digest.update(chunk.encode("ascii"))
        chars += len(chunk)
    return {"lo": lo, "hi": hi, "docs": hi - lo, "chars": chars, "sha256": digest.hexdigest()}


@REGISTRY.job(
    "extract.scan",
    params=_STREAM_PARAMS + ("lo", "hi", "chunk_chars", "collect_ids", "timing"),
    defaults={
        **_STREAM_DEFAULTS,
        "lo": 0,
        "hi": -1,
        "chunk_chars": 1 << 16,
        "collect_ids": False,
        "timing": False,
    },
    source_modules=_EXTRACT_MODULES,
    description="Scan one stream shard with the compiled packed scanner",
)
def extract_scan(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    """Compile (memoised per worker) and scan a shard in constant memory.

    The result — counts, an order-sensitive checksum of the match set,
    optionally the shard-relative match ids — is deterministic, so it
    caches and coalesces safely.  ``timing=True`` adds in-worker
    ``compile_s``/``scan_s`` *CPU* seconds (``time.process_time``, so
    workers contending for cores do not inflate each other's figures)
    for the benchmark's per-core throughput accounting; like
    ``debug.storm``, timed runs belong under ``--no-cache``.
    """
    from time import process_time

    from repro.extract.compile import scanner_for_spec
    from repro.extract.scan import StreamScanner, scan_stream
    from repro.extract.spec import StreamSpec

    spec = StreamSpec.from_params(_stream_params(params))
    start = process_time()
    scanner = StreamScanner(scanner_for_spec(spec), collect_ids=params["collect_ids"])
    compile_s = process_time() - start
    start = process_time()
    result = scan_stream(
        spec,
        chunk_chars=params["chunk_chars"],
        lo=params["lo"],
        hi=params["hi"],
        scanner=scanner,
    )
    if params["timing"]:
        result["compile_s"] = round(compile_s, 6)
        result["scan_s"] = round(process_time() - start, 6)
    return result


@REGISTRY.job(
    "extract.verify",
    params=_STREAM_PARAMS + ("lo", "hi", "chunk_chars"),
    defaults={**_STREAM_DEFAULTS, "lo": 0, "hi": -1, "chunk_chars": 1 << 16},
    source_modules=_EXTRACT_MODULES + _KERNEL_MODULES + ("repro.grammars.cnf",),
    description="Cross-check the packed scanner against both oracles on a shard",
)
def extract_verify(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    """Scanner vs. the semantic brute force vs. the batched CFG recogniser.

    All three must produce the identical match-id set or the job fails —
    this is the grammar-side verification path (BatchedRecognizer prefix
    sharing) wired into the fan-out, not just the test suite.
    """
    from repro.extract.scan import batched_oracle_scan, scan_stream, semantic_scan
    from repro.extract.spec import StreamSpec

    spec = StreamSpec.from_params(_stream_params(params))
    lo, hi = params["lo"], params["hi"]
    scanned = scan_stream(
        spec, chunk_chars=params["chunk_chars"], lo=lo, hi=hi, collect_ids=True
    )
    for oracle_name, oracle in (
        ("semantic", semantic_scan),
        ("cfg_batched", batched_oracle_scan),
    ):
        expected = oracle(spec, lo, hi)
        if scanned["match_ids"] != expected["match_ids"]:
            raise ValueError(
                f"extract.verify: scanner disagrees with {oracle_name} oracle on "
                f"shard [{lo}, {hi}): {len(scanned['match_ids'])} vs "
                f"{len(expected['match_ids'])} matches"
            )
    return {
        "lo": scanned["lo"],
        "hi": scanned["hi"],
        "docs": scanned["docs"],
        "matches": scanned["matches"],
        "checksum": scanned["checksum"],
        "oracles": ["semantic", "cfg_batched"],
        "agree": True,
    }


def _extract_aggregate_deps(params: dict[str, Any]) -> list[Request]:
    from repro.extract.spec import StreamSpec

    spec = StreamSpec.from_params(_stream_params(params))
    stream = _stream_params(params)
    requests = []
    verify_docs = min(params["verify_docs"], spec.n_docs)
    if verify_docs:
        requests.append(
            Request.make(
                "extract.verify",
                {**stream, "lo": 0, "hi": verify_docs, "chunk_chars": params["chunk_chars"]},
            )
        )
    for lo, hi in spec.shard_ranges(params["shards"]):
        requests.append(
            Request.make(
                "extract.scan",
                {**stream, "lo": lo, "hi": hi, "chunk_chars": params["chunk_chars"]},
            )
        )
    return requests


@REGISTRY.job(
    "extract.aggregate",
    params=_STREAM_PARAMS + ("shards", "chunk_chars", "verify_docs"),
    defaults={**_STREAM_DEFAULTS, "shards": 4, "chunk_chars": 1 << 16, "verify_docs": 0},
    deps=_extract_aggregate_deps,
    source_modules=_EXTRACT_MODULES,
    description="Fan a stream out as scan shards (plus optional verify) and combine",
)
def extract_aggregate(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    """Combine shard results into stream totals.

    Shard checksums certify shard-relative match sets; the stream-level
    checksum folds ``(lo, checksum)`` pairs in shard order, so any two
    runs over the same stream — whatever the worker count — agree.
    """
    verify_rows = [row for row in deps if row and "agree" in row]
    scan_rows = sorted(
        (row for row in deps if row and "agree" not in row), key=lambda row: row["lo"]
    )
    docs = sum(row["docs"] for row in scan_rows)
    matches = sum(row["matches"] for row in scan_rows)
    checksum = 0
    for row in scan_rows:
        checksum = (checksum * 1000003 + row["lo"] + 1) & ((1 << 64) - 1)
        checksum = (checksum * 1000003 + row["checksum"] + 1) & ((1 << 64) - 1)
    return {
        "docs": docs,
        "matches": matches,
        "density": round(matches / docs, 6) if docs else 0.0,
        "checksum": checksum,
        "verified": bool(verify_rows) and all(row["agree"] for row in verify_rows),
        "shards": [
            {
                "lo": row["lo"],
                "hi": row["hi"],
                "matches": row["matches"],
                "checksum": row["checksum"],
            }
            for row in scan_rows
        ],
    }


# ----------------------------------------------------------------------
# Debug and fault-injection jobs (engine smoke tests; the chaos suite)
# ----------------------------------------------------------------------
#
# The ``debug.flaky`` / ``debug.hang`` / ``debug.crash`` trio exists to
# prove the engine's failure semantics under load (tests/test_faults.py):
# retries with backoff, every-iteration timeout enforcement, and recovery
# from worker death.  ``debug.flaky`` and ``debug.crash`` read the
# reserved ``_attempt`` parameter the scheduler injects into every call,
# so their behaviour is identical under serial and parallel retries.


@REGISTRY.job(
    "debug.echo",
    params=("value",),
    defaults={"value": None},
    description="Return the given value unchanged",
)
def debug_echo(params: dict[str, Any], deps: list[Any]) -> Any:
    return params["value"]


@REGISTRY.job(
    "debug.fail",
    params=("message",),
    defaults={"message": "debug.fail"},
    description="Raise RuntimeError (worker-failure propagation tests)",
)
def debug_fail(params: dict[str, Any], deps: list[Any]) -> Any:
    raise RuntimeError(params["message"])


@REGISTRY.job(
    "debug.sleep",
    params=("seconds", "tag"),
    defaults={"seconds": 0.1, "tag": 0},
    description="Sleep, then return the slept duration (timeout tests)",
)
def debug_sleep(params: dict[str, Any], deps: list[Any]) -> Any:
    """Sleep and return the duration.  ``tag`` only distinguishes cache
    keys, so concurrency tests can mint distinct in-flight identities."""
    time.sleep(params["seconds"])
    return params["seconds"]


@REGISTRY.job(
    "debug.flaky",
    params=("fails", "value"),
    defaults={"fails": 1, "value": "ok"},
    description="Fail the first `fails` attempts, then return the value",
)
def debug_flaky(params: dict[str, Any], deps: list[Any]) -> Any:
    """Raise on attempts 1..``fails``; succeed from attempt ``fails + 1`` on.

    The attempt number is the engine-injected ``_attempt`` counter, so the
    job is deterministic across serial and parallel retry runs.
    """
    attempt = params.get("_attempt", 1)
    if attempt <= params["fails"]:
        raise RuntimeError(
            f"debug.flaky: injected failure on attempt {attempt}/{params['fails']}"
        )
    return {"value": params["value"], "succeeded_on_attempt": attempt}


@REGISTRY.job(
    "debug.hang",
    params=("tag",),
    defaults={"tag": 0},
    description="Sleep forever (timeout-enforcement tests)",
)
def debug_hang(params: dict[str, Any], deps: list[Any]) -> Any:
    """Never return; only a per-job timeout can end this job.

    ``tag`` only distinguishes requests (and cache keys) from each other.
    """
    while True:
        time.sleep(3600)


@REGISTRY.job(
    "debug.crash",
    params=("crashes",),
    defaults={"crashes": 1},
    description="Kill own worker via os._exit for the first `crashes` attempts",
)
def debug_crash(params: dict[str, Any], deps: list[Any]) -> Any:
    """Die without cleanup on attempts 1..``crashes``, then succeed.

    Simulates a worker lost to the OOM killer or a hard signal: the
    parent sees ``BrokenProcessPool``, replaces the pool, and retries.
    Refuses to run outside an engine worker — in-process execution would
    take the caller's interpreter down with it.
    """
    from repro.engine.scheduler import in_worker

    attempt = params.get("_attempt", 1)
    if attempt <= params["crashes"]:
        if not in_worker():
            raise RuntimeError(
                "debug.crash: refusing to os._exit outside an engine worker "
                "(serial runs execute in-process)"
            )
        os._exit(17)
    return {"survived_attempt": attempt}


@REGISTRY.job(
    "debug.storm",
    params=("requests", "concurrency", "seed", "host", "port", "faults"),
    defaults={
        "requests": 60,
        "concurrency": 8,
        "seed": 0,
        "host": "",
        "port": 0,
        "faults": True,
    },
    source_modules=(
        "repro.serve.storm",
        "repro.serve.server",
        "repro.serve.broker",
        "repro.serve.client",
    ),
    description="Replay mixed traffic (hits, sweeps, faults) against a job server",
)
def debug_storm(params: dict[str, Any], deps: list[Any]) -> dict[str, Any]:
    """Drive a live server with the seeded storm mixture (see repro.serve.storm).

    ``host=""`` (the default) boots an embedded server on an ephemeral
    port, drains it afterwards, and reports ``clean_shutdown``; a
    non-empty host targets an already-running server and leaves it up.
    Timings make the result non-deterministic — run it with ``--no-cache``.
    """
    from repro.serve.storm import run_storm

    return run_storm(
        host=params["host"] or None,
        port=params["port"],
        requests=params["requests"],
        concurrency=params["concurrency"],
        seed=params["seed"],
        faults=params["faults"],
    )
