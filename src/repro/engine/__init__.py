"""repro.engine — the parallel, disk-cached verification & experiment engine.

The reproduction verifies every finite lemma of the paper by brute-force
enumeration; this subsystem turns those checks into *jobs* that are

* **declared** once, with typed parameters and explicit dependencies
  (:mod:`repro.engine.jobs`, :mod:`repro.engine.registry`),
* **scheduled** as a DAG across worker processes
  (:mod:`repro.engine.scheduler`),
* **cached** on disk under content-addressed keys — job name, canonical
  parameters and a code fingerprint (:mod:`repro.engine.cache`,
  :mod:`repro.engine.keys`) — so no result is ever recomputed,
* **recorded** as structured JSONL run artifacts
  (:mod:`repro.engine.artifacts`).

Quickstart::

    from repro.engine import Engine, Request, DiskCache

    engine = Engine(cache=DiskCache(), jobs=4)
    rows = engine.run([Request.make("sizes.row", {"n": 2**k}) for k in range(2, 13)])
    cert = engine.run_one("certificate", {"n": 1024})

The ``run``, ``sweep`` and ``cache`` subcommands of ``python -m repro``
are thin front ends over exactly this API; see docs/ENGINE.md.
"""

from repro.engine.artifacts import RunLog, RunRecord
from repro.engine.cache import DiskCache, NullCache, default_cache_dir
from repro.engine.jobs import default_registry
from repro.engine.keys import cache_key, canonical_params, code_fingerprint
from repro.engine.registry import Job, JobRegistry, Request
from repro.engine.scheduler import Engine, in_worker

__all__ = [
    "Engine",
    "in_worker",
    "Request",
    "Job",
    "JobRegistry",
    "default_registry",
    "DiskCache",
    "NullCache",
    "default_cache_dir",
    "RunLog",
    "RunRecord",
    "cache_key",
    "canonical_params",
    "code_fingerprint",
]
