"""Combinators and query operations on d-representations.

Factorised databases are useful because algebra can run *on the
representation*: union and concatenation are constant-time node
additions, membership testing parses against the equivalent grammar
without materialising the language, and enumeration streams words with
small delay.  These operations — the [4]-style "algorithms directly on
d-representations" the introduction cites — are implemented here for the
circuit class of :mod:`repro.factorized.drep`.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.errors import ReproError
from repro.factorized.convert import drep_to_cfg
from repro.factorized.drep import Atom, Concat, DRep, Node, NodeId, Union
from repro.grammars.generic import GenericParser
from repro.words.alphabet import Alphabet

__all__ = ["union_drep", "concat_drep", "drep_contains", "enumerate_drep", "restrict_length"]


def _merged_nodes(left: DRep, right: DRep) -> dict[NodeId, Node]:
    """Disjointly merge two node maps by tagging ids with their side."""
    nodes: dict[NodeId, Node] = {}
    for tag, drep in (("l", left), ("r", right)):
        for node_id, node in drep.nodes.items():
            if isinstance(node, Atom):
                nodes[(tag, node_id)] = node
            elif isinstance(node, Union):
                nodes[(tag, node_id)] = Union(tuple((tag, c) for c in node.children))
            else:
                nodes[(tag, node_id)] = Concat(tuple((tag, c) for c in node.children))
    return nodes


def union_drep(left: DRep, right: DRep) -> DRep:
    """The d-rep of ``L(left) ∪ L(right)`` — one new union gate.

    Determinism is preserved iff the two languages are disjoint (exactly
    the uCFG union story).

    >>> from repro.factorized.drep import Atom, DRep
    >>> u = union_drep(DRep({"a": Atom("a")}, "a"), DRep({"b": Atom("b")}, "b"))
    >>> sorted(u.language())
    ['a', 'b']
    """
    nodes = _merged_nodes(left, right)
    nodes["u-root"] = Union((("l", left.root), ("r", right.root)))
    return DRep(nodes, "u-root")


def concat_drep(left: DRep, right: DRep) -> DRep:
    """The d-rep of ``L(left) · L(right)`` — one new concatenation gate."""
    nodes = _merged_nodes(left, right)
    nodes["c-root"] = Concat((("l", left.root), ("r", right.root)))
    return DRep(nodes, "c-root")


def drep_contains(drep: DRep, word: str, alphabet: Alphabet | str) -> bool:
    """Membership test without materialising the language.

    Parses against the isomorphic CFG; polynomial in the representation
    size for each query.

    >>> from repro.factorized.relations import product_drep
    >>> d = product_drep([["a", "b"]] * 4)
    >>> drep_contains(d, "abab", "ab"), drep_contains(d, "ababa", "ab")
    (True, False)
    """
    grammar = drep_to_cfg(drep, alphabet)
    return GenericParser(grammar).recognises(word)


def enumerate_drep(drep: DRep) -> Iterator[str]:
    """Stream the language in length-lexicographic order without building
    the full set up front at any single node... beyond per-node caches.

    Implementation note: each node lazily exposes a sorted stream; unions
    are heap-merged with duplicate suppression, concatenations merge the
    (sorted × sorted) grid lazily.  For deterministic d-reps no duplicate
    is ever generated twice from the same union gate.
    """

    def key(word: str) -> tuple[int, str]:
        return (len(word), word)

    streams: dict[NodeId, list[str]] = {}

    def stream(node_id: NodeId) -> list[str]:
        # Materialise per node, but share across the DAG (memoised);
        # ordering is established once per node.
        if node_id in streams:
            return streams[node_id]
        node = drep.nodes[node_id]
        if isinstance(node, Atom):
            result = [node.word]
        elif isinstance(node, Union):
            merged: list[str] = []
            heap: list[tuple[tuple[int, str], int, int]] = []
            child_streams = [stream(c) for c in node.children]
            for idx, child in enumerate(child_streams):
                if child:
                    heapq.heappush(heap, (key(child[0]), idx, 0))
            last: str | None = None
            while heap:
                (_k, idx, pos) = heapq.heappop(heap)
                word = child_streams[idx][pos]
                if word != last:
                    merged.append(word)
                    last = word
                if pos + 1 < len(child_streams[idx]):
                    heapq.heappush(heap, (key(child_streams[idx][pos + 1]), idx, pos + 1))
            result = merged
        else:
            partial = [""]
            for child in node.children:
                child_words = stream(child)
                partial = sorted(
                    {w + c for w in partial for c in child_words}, key=key
                )
            result = partial
        streams[node_id] = result
        return result

    yield from stream(drep.root)


def restrict_length(drep: DRep, length: int) -> DRep:
    """The d-rep of ``{w ∈ L : |w| = length}`` (length-annotated copies).

    Every node is split into per-length variants — the circuit analogue
    of the Lemma 10 indexing idea, and linear in ``size × length``.
    """
    if length < 0:
        raise ReproError(f"length must be non-negative, got {length}")
    lengths: dict[NodeId, set[int]] = {}

    order = drep._topological_order()
    for node_id in order:
        node = drep.nodes[node_id]
        if isinstance(node, Atom):
            lengths[node_id] = {len(node.word)}
        elif isinstance(node, Union):
            acc: set[int] = set()
            for child in node.children:
                acc |= lengths[child]
            lengths[node_id] = {l for l in acc if l <= length}
        else:
            partial = {0}
            for child in node.children:
                partial = {
                    a + b for a in partial for b in lengths[child] if a + b <= length
                }
            lengths[node_id] = partial

    nodes: dict[NodeId, Node] = {}

    def variant(node_id: NodeId, target: int) -> NodeId | None:
        if target not in lengths[node_id]:
            return None
        new_id: NodeId = ("len", node_id, target)
        if new_id in nodes:
            return new_id
        node = drep.nodes[node_id]
        if isinstance(node, Atom):
            nodes[new_id] = node
        elif isinstance(node, Union):
            children = [variant(c, target) for c in node.children]
            nodes[new_id] = Union(tuple(c for c in children if c is not None))
        else:
            alternatives: list[NodeId] = []
            # Distribute the target length over the children (DFS).
            def distribute(index: int, remaining: int, chosen: list[NodeId]) -> None:
                if index == len(node.children):
                    if remaining == 0:
                        alt_id: NodeId = ("len-alt", node_id, target, tuple(chosen))
                        nodes[alt_id] = Concat(tuple(chosen))
                        alternatives.append(alt_id)
                    return
                child = node.children[index]
                for child_len in sorted(lengths[child]):
                    if child_len > remaining:
                        continue
                    child_variant = variant(child, child_len)
                    if child_variant is not None:
                        chosen.append(child_variant)
                        distribute(index + 1, remaining - child_len, chosen)
                        chosen.pop()

            distribute(0, target, [])
            nodes[new_id] = Union(tuple(alternatives))
        return new_id

    root = variant(drep.root, length)
    if root is None:
        empty: NodeId = ("len-empty",)
        return DRep({empty: Union(())}, empty)
    return DRep(nodes, root)
