"""Relations (query results) as finite languages, and their factorisation.

The database motivation for everything in this repository: a relation of
fixed-width tuples is a finite uniform-length language, and a factorised
representation (d-rep / CFG) can be exponentially smaller than the
materialised relation [Olteanu & Závodný].  This module provides the
encoding and the canonical exponential-savings case — product relations —
plus a generic factoriser through the minimal-DFA pipeline.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ReproError
from repro.factorized.convert import cfg_to_drep
from repro.factorized.drep import Atom, Concat, DRep, Node, NodeId, Union
from repro.grammars.disambiguate import ucfg_of_finite_language
from repro.words.alphabet import Alphabet

__all__ = [
    "tuples_to_language",
    "language_to_tuples",
    "product_drep",
    "factorise_relation",
]


def tuples_to_language(
    tuples: Iterable[Sequence[str]], column_width: int
) -> frozenset[str]:
    """Encode a relation as words: tuples concatenated attribute-wise.

    Every attribute value must have exactly ``column_width`` characters,
    so decoding (:func:`language_to_tuples`) is unambiguous.

    >>> sorted(tuples_to_language([("aa", "bb"), ("ab", "ba")], 2))
    ['aabb', 'abba']
    """
    words: set[str] = set()
    arity: int | None = None
    for row in tuples:
        if arity is None:
            arity = len(row)
        elif len(row) != arity:
            raise ReproError("relation rows have mixed arity")
        for value in row:
            if len(value) != column_width:
                raise ReproError(
                    f"attribute {value!r} has width {len(value)}, expected {column_width}"
                )
        words.add("".join(row))
    return frozenset(words)


def language_to_tuples(words: Iterable[str], column_width: int) -> frozenset[tuple[str, ...]]:
    """Decode words back into fixed-width tuples."""
    rows: set[tuple[str, ...]] = set()
    for word in words:
        if len(word) % column_width:
            raise ReproError(f"word {word!r} does not split into width-{column_width} columns")
        rows.add(
            tuple(
                word[k : k + column_width] for k in range(0, len(word), column_width)
            )
        )
    return frozenset(rows)


def product_drep(columns: Sequence[Iterable[str]]) -> DRep:
    """The factorised form of a product relation ``A_1 × ... × A_k``.

    Size ``Σ_i Σ_{v ∈ A_i} |v|``-ish versus the materialised
    ``Π_i |A_i|`` tuples — the textbook exponential saving, and it is a
    *deterministic* d-rep, so counting and enumeration stay cheap.

    >>> d = product_drep([["a", "b"], ["a", "b"], ["a", "b"]])
    >>> len(d.language()), d.is_unambiguous()
    (8, True)
    """
    if not columns:
        raise ReproError("product_drep needs at least one column")
    nodes: dict[NodeId, Node] = {}
    column_ids: list[NodeId] = []
    for index, column in enumerate(columns):
        values = sorted(set(column))
        if not values:
            raise ReproError(f"column {index} is empty")
        child_ids: list[NodeId] = []
        for value in values:
            atom_id: NodeId = ("v", index, value)
            nodes[atom_id] = Atom(value)
            child_ids.append(atom_id)
        union_id: NodeId = ("col", index)
        nodes[union_id] = Union(tuple(child_ids))
        column_ids.append(union_id)
    nodes["root"] = Concat(tuple(column_ids))
    return DRep(nodes, root="root")


def factorise_relation(
    tuples: Iterable[Sequence[str]],
    column_width: int,
    alphabet: Alphabet | str,
) -> DRep:
    """Factorise an arbitrary relation through the minimal-DFA pipeline.

    Encodes the relation as a language, builds the canonical unambiguous
    right-linear grammar on its minimal DFA, and converts to a d-rep.
    The result is always deterministic; its size reflects how much
    prefix/suffix sharing the relation admits.
    """
    sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
    words = tuples_to_language(tuples, column_width)
    if not words:
        raise ReproError("cannot factorise an empty relation")
    grammar = ucfg_of_finite_language(set(words), sigma)
    return cfg_to_drep(grammar)
