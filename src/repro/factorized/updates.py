"""Factorised relations under updates.

The introduction cites the use of factorised representations for
"databases under updates" [5, 27]; this module provides the minimal
executable version: a :class:`FactorisedRelation` maintains a
deterministic d-representation of a relation across tuple insertions and
deletions, keeping counting, membership, direct access and sampling
available at every point.  Maintenance here is re-canonicalisation
through the minimal-DFA pipeline — not the incremental data structures
of the literature, but semantically exact and honest about its cost
(measured in benchmark E10's timings).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from repro.errors import ReproError
from repro.factorized.convert import cfg_to_drep
from repro.factorized.drep import DRep
from repro.factorized.relations import language_to_tuples, tuples_to_language
from repro.grammars.disambiguate import ucfg_of_finite_language
from repro.grammars.ranking import RankedLanguage
from repro.words.alphabet import Alphabet

__all__ = ["FactorisedRelation"]


class FactorisedRelation:
    """A relation maintained as a deterministic factorised representation.

    >>> rel = FactorisedRelation(2, "ab", [("aa", "bb"), ("ab", "ba")])
    >>> rel.count
    2
    >>> rel.insert(("bb", "bb"))
    True
    >>> rel.count
    3
    >>> rel.delete(("aa", "bb"))
    True
    >>> sorted(rel.tuples())
    [('ab', 'ba'), ('bb', 'bb')]
    """

    def __init__(
        self,
        column_width: int,
        alphabet: Alphabet | str,
        rows: Iterable[Sequence[str]] = (),
    ) -> None:
        if column_width < 1:
            raise ReproError(f"column_width must be >= 1, got {column_width}")
        self._width = column_width
        self._alphabet = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        self._rows: set[tuple[str, ...]] = set()
        self._ranked: RankedLanguage | None = None
        for row in rows:
            self._validate(row)
            self._rows.add(tuple(row))
        self._dirty = True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _validate(self, row: Sequence[str]) -> None:
        for value in row:
            if len(value) != self._width or any(ch not in self._alphabet for ch in value):
                raise ReproError(
                    f"attribute {value!r} is not a width-{self._width} word over "
                    f"{self._alphabet!r}"
                )
        if self._rows:
            arity = len(next(iter(self._rows)))
            if len(row) != arity:
                raise ReproError(f"row has arity {len(row)}, relation has {arity}")

    def _refresh(self) -> None:
        if not self._dirty:
            return
        if self._rows:
            words = tuples_to_language(self._rows, self._width)
            grammar = ucfg_of_finite_language(set(words), self._alphabet)
            self._ranked = RankedLanguage(grammar, check_unambiguous=False)
        else:
            self._ranked = None
        self._dirty = False

    def insert(self, row: Sequence[str]) -> bool:
        """Add a tuple; returns False if it was already present."""
        self._validate(row)
        key = tuple(row)
        if key in self._rows:
            return False
        self._rows.add(key)
        self._dirty = True
        return True

    def delete(self, row: Sequence[str]) -> bool:
        """Remove a tuple; returns False if it was absent."""
        key = tuple(row)
        if key not in self._rows:
            return False
        self._rows.discard(key)
        self._dirty = True
        return True

    # ------------------------------------------------------------------
    # Queries (all through the factorised form)
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Exact tuple count, computed on the representation."""
        self._refresh()
        return self._ranked.count if self._ranked is not None else 0

    def __contains__(self, row: object) -> bool:
        if not isinstance(row, tuple):
            return False
        return row in self._rows

    def access(self, index: int) -> tuple[str, ...]:
        """The ``index``-th tuple in the representation's derivation order."""
        self._refresh()
        if self._ranked is None:
            raise IndexError("the relation is empty")
        word = self._ranked.unrank(index)
        (row,) = language_to_tuples({word}, self._width)
        return row

    def sample(self, rng: random.Random | None = None) -> tuple[str, ...]:
        """A uniformly random tuple via the factorised form."""
        self._refresh()
        if self._ranked is None:
            raise IndexError("the relation is empty")
        word = self._ranked.sample(rng)
        (row,) = language_to_tuples({word}, self._width)
        return row

    def tuples(self) -> frozenset[tuple[str, ...]]:
        """Materialise the relation (for verification, not for use)."""
        return frozenset(self._rows)

    def representation(self) -> DRep:
        """The current deterministic d-representation."""
        self._refresh()
        if self._ranked is None:
            raise ReproError("the empty relation has no d-representation here")
        return cfg_to_drep(self._ranked.grammar)

    @property
    def representation_size(self) -> int:
        """Size of the maintained representation (0 when empty)."""
        if not self._rows:
            return 0
        return self.representation().size

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"FactorisedRelation(width={self._width}, tuples={len(self._rows)})"
        )
