"""d-representations: {∪, ×}-circuits for finite languages.

[Kimelfeld, Martens & Niewerth, ICDT 2025] — the paper this repository
reproduces builds on — observe that CFGs of finite languages are
isomorphic to *d-representations* in the unnamed perspective: DAG-shaped
circuits whose internal gates are unions and concatenations and whose
leaves are constant words.  This module implements those circuits
directly: evaluation (the represented language), the size measure
matching the grammar measure ``Σ|rhs|`` (total fan-in of union-of-
concatenation layers), exact counting, and the determinism (unambiguity)
notion under which counting is sound.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["Atom", "Concat", "Union", "DRep", "NodeId"]

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class Atom:
    """A constant-word leaf (possibly the empty word)."""

    word: str


@dataclass(frozen=True, slots=True)
class Concat:
    """A concatenation gate: the product of its children's languages."""

    children: tuple[NodeId, ...]


@dataclass(frozen=True, slots=True)
class Union:
    """A union gate: the union of its children's languages."""

    children: tuple[NodeId, ...]


Node = Atom | Concat | Union


class DRep:
    """A d-representation: a DAG of union/concatenation/atom nodes.

    The node mapping is validated eagerly: every referenced child must
    exist and the reference graph must be acyclic (finite languages only,
    exactly as in the paper's setting).

    >>> d = DRep({"x": Atom("a"), "y": Atom("b"),
    ...           "u": Union(("x", "y")), "c": Concat(("u", "u"))}, root="c")
    >>> sorted(d.language())
    ['aa', 'ab', 'ba', 'bb']
    >>> d.size
    4
    """

    __slots__ = ("nodes", "root", "_order")

    def __init__(self, nodes: Mapping[NodeId, Node], root: NodeId) -> None:
        if root not in nodes:
            raise ReproError(f"root {root!r} is not a node")
        for node_id, node in nodes.items():
            if isinstance(node, (Concat, Union)):
                for child in node.children:
                    if child not in nodes:
                        raise ReproError(f"node {node_id!r} references missing child {child!r}")
            elif not isinstance(node, Atom):
                raise ReproError(f"node {node_id!r} has unsupported type {type(node).__name__}")
        self.nodes = dict(nodes)
        self.root = root
        self._order = self._topological_order()

    def _topological_order(self) -> list[NodeId]:
        """Children-first order; raises on cycles."""
        order: list[NodeId] = []
        state: dict[NodeId, int] = {}
        for start in self.nodes:
            if start in state:
                continue
            stack: list[tuple[NodeId, int]] = [(start, 0)]
            while stack:
                node_id, phase = stack.pop()
                if phase == 1:
                    state[node_id] = 2
                    order.append(node_id)
                    continue
                if state.get(node_id) == 1:
                    raise ReproError("d-representation contains a cycle")
                if node_id in state:
                    continue
                state[node_id] = 1
                stack.append((node_id, 1))
                node = self.nodes[node_id]
                if isinstance(node, (Concat, Union)):
                    for child in node.children:
                        if state.get(child) == 1:
                            raise ReproError("d-representation contains a cycle")
                        if child not in state:
                            stack.append((child, 0))
        return order

    # ------------------------------------------------------------------
    # Size measures
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """The grammar-compatible size: total fan-in of concatenation
        gates plus, for union gates, one per *non-concatenation* child.

        Under the CFG ↔ d-rep isomorphism a union gate is a non-terminal
        and each of its children a rule body; a concatenation child of
        fan-in ``k`` contributes ``k`` (the body length), any other child
        contributes ``1`` (a singleton body).  A single-symbol atom is a
        terminal (already paid for by the referencing gate, so 0); a
        longer constant word corresponds to a spelled-out rule ``A_w → w``
        of size ``|w|``.
        """
        total = 0
        for node in self.nodes.values():
            if isinstance(node, Concat):
                total += len(node.children)
            elif isinstance(node, Union):
                total += sum(
                    0 if isinstance(self.nodes[c], Concat) else 1 for c in node.children
                )
            elif len(node.word) != 1:
                total += len(node.word)
        return total

    @property
    def n_edges(self) -> int:
        """Total number of child references."""
        return sum(
            len(node.children)
            for node in self.nodes.values()
            if isinstance(node, (Concat, Union))
        )

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def languages(self) -> dict[NodeId, frozenset[str]]:
        """The language of every node, bottom-up."""
        langs: dict[NodeId, frozenset[str]] = {}
        for node_id in self._order:
            node = self.nodes[node_id]
            if isinstance(node, Atom):
                langs[node_id] = frozenset({node.word})
            elif isinstance(node, Union):
                acc: set[str] = set()
                for child in node.children:
                    acc |= langs[child]
                langs[node_id] = frozenset(acc)
            else:
                partial: set[str] = {""}
                for child in node.children:
                    partial = {w + p for w in partial for p in langs[child]}
                langs[node_id] = frozenset(partial)
        return langs

    def language(self) -> frozenset[str]:
        """The represented language (of the root)."""
        return self.languages()[self.root]

    def count_derivations(self) -> int:
        """The derivation count: ``Σ`` over unions, ``Π`` over concats.

        Equals ``|language()|`` exactly when the representation is
        deterministic/unambiguous (see :meth:`is_unambiguous`); in
        general it over-counts — the same phenomenon as CFG parse trees
        vs words.
        """
        counts: dict[NodeId, int] = {}
        for node_id in self._order:
            node = self.nodes[node_id]
            if isinstance(node, Atom):
                counts[node_id] = 1
            elif isinstance(node, Union):
                counts[node_id] = sum(counts[c] for c in node.children)
            else:
                value = 1
                for child in node.children:
                    value *= counts[child]
                counts[node_id] = value
        return counts[self.root]

    def is_unambiguous(self) -> bool:
        """Whether every word of every node has a unique derivation.

        Checked bottom-up and exactly: union children must be pairwise
        disjoint and concatenations must split unambiguously; equivalently
        the derivation count equals the language size at every node.
        """
        langs = self.languages()
        counts: dict[NodeId, int] = {}
        for node_id in self._order:
            node = self.nodes[node_id]
            if isinstance(node, Atom):
                counts[node_id] = 1
            elif isinstance(node, Union):
                counts[node_id] = sum(counts[c] for c in node.children)
            else:
                value = 1
                for child in node.children:
                    value *= counts[child]
                counts[node_id] = value
            if counts[node_id] != len(langs[node_id]):
                return False
        return True

    def __repr__(self) -> str:
        return f"DRep(|nodes|={self.n_nodes}, size={self.size}, root={self.root!r})"
