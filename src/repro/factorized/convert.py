"""The CFG ↔ d-representation isomorphism (for finite languages).

[20] prove that CFGs accepting finite languages and d-representations in
the unnamed perspective are the same objects up to isomorphism; this
module implements both directions so the claim is executable:

* :func:`cfg_to_drep` — non-terminal ↦ union gate over one concatenation
  gate per rule body (singleton bodies are inlined);
* :func:`drep_to_cfg` — union gate ↦ non-terminal, concatenation gate ↦
  rule body.

Round-tripping preserves the language exactly and the size up to the
small constant slack the two size measures allow; the tests and benchmark
E10 measure it on the full grammar corpus of this repository.
"""

from __future__ import annotations

from repro.errors import GrammarError
from repro.factorized.drep import Atom, Concat, DRep, Node, NodeId, Union
from repro.grammars.analysis import require_finite_language, trim
from repro.grammars.cfg import CFG, NonTerminal, Rule
from repro.words.alphabet import Alphabet

__all__ = ["cfg_to_drep", "drep_to_cfg"]


def cfg_to_drep(grammar: CFG) -> DRep:
    """Convert a finite-language CFG into an equivalent d-representation.

    The grammar is trimmed first.  Unambiguous grammars map to
    deterministic d-representations (tested on the corpus).

    >>> from repro.grammars.cfg import grammar_from_mapping
    >>> g = grammar_from_mapping("ab", {"S": ["ab", "ba"]}, "S")
    >>> sorted(cfg_to_drep(g).language())
    ['ab', 'ba']
    """
    require_finite_language(grammar, "cfg_to_drep")
    g = trim(grammar)
    nodes: dict[NodeId, Node] = {}
    # One atom per terminal, plus the empty word when needed.
    for terminal in g.terminals:
        nodes[("atom", terminal)] = Atom(terminal)

    def symbol_node(symbol) -> NodeId:
        if g.is_terminal(symbol):
            return ("atom", symbol)
        return ("nt", symbol)

    for nt in g.nonterminals:
        rules = g.rules_for(nt)
        children: list[NodeId] = []
        for index, rule in enumerate(rules):
            if len(rule.rhs) == 0:
                eps: NodeId = ("atom", "")
                nodes.setdefault(eps, Atom(""))
                children.append(eps)
            elif len(rule.rhs) == 1:
                children.append(symbol_node(rule.rhs[0]))
            else:
                body_id: NodeId = ("body", nt, index)
                nodes[body_id] = Concat(tuple(symbol_node(s) for s in rule.rhs))
                children.append(body_id)
        nodes[("nt", nt)] = Union(tuple(children))
    if ("nt", g.start) not in nodes:
        nodes[("nt", g.start)] = Union(())
    drep = DRep(nodes, root=("nt", g.start))
    return drep


def drep_to_cfg(drep: DRep, alphabet: Alphabet | str) -> CFG:
    """Convert a d-representation into an equivalent CFG.

    Every node becomes a non-terminal: a union gate contributes one rule
    per child, a concatenation gate a single rule with its children as
    the body, an atom a single rule spelling out its constant word.

    >>> from repro.factorized.drep import Atom, Union, DRep
    >>> d = DRep({"x": Atom("a"), "y": Atom("b"), "u": Union(("x", "y"))}, "u")
    >>> from repro.grammars.language import language
    >>> sorted(language(drep_to_cfg(d, "ab")))
    ['a', 'b']
    """
    sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
    nts: list[NonTerminal] = [("n", node_id) for node_id in drep.nodes]
    rules: list[Rule] = []
    for node_id, node in drep.nodes.items():
        lhs: NonTerminal = ("n", node_id)
        if isinstance(node, Atom):
            for ch in node.word:
                if ch not in sigma:
                    raise GrammarError(
                        f"atom {node.word!r} uses symbol {ch!r} outside the alphabet"
                    )
            rules.append(Rule(lhs, tuple(node.word)))
        elif isinstance(node, Union):
            for child in node.children:
                rules.append(Rule(lhs, (("n", child),)))
        else:
            rules.append(Rule(lhs, tuple(("n", child) for child in node.children)))
    return CFG(sigma, nts, rules, ("n", drep.root))
