"""Factorised representations (d-representations) and the CFG isomorphism.

The database-theoretic frame of the paper: CFGs of finite languages *are*
d-representations [20], so uCFG lower bounds are lower bounds on
deterministic factorised representations.
"""

from repro.factorized.convert import cfg_to_drep, drep_to_cfg
from repro.factorized.drep import Atom, Concat, DRep, NodeId, Union
from repro.factorized.ops import (
    concat_drep,
    drep_contains,
    enumerate_drep,
    restrict_length,
    union_drep,
)
from repro.factorized.updates import FactorisedRelation
from repro.factorized.relations import (
    factorise_relation,
    language_to_tuples,
    product_drep,
    tuples_to_language,
)

__all__ = [
    "DRep",
    "Atom",
    "Concat",
    "Union",
    "NodeId",
    "cfg_to_drep",
    "drep_to_cfg",
    "tuples_to_language",
    "language_to_tuples",
    "product_drep",
    "factorise_relation",
    "union_drep",
    "concat_drep",
    "drep_contains",
    "enumerate_drep",
    "restrict_length",
    "FactorisedRelation",
]
