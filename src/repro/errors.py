"""Exception hierarchy for the :mod:`repro` package.

Every invariant violation inside the library raises a subclass of
:class:`ReproError`.  Functions never signal failure through sentinel
return values: if a grammar is malformed, a language is infinite where a
finite one is required, or a certificate does not check out, an exception
carrying a human-readable diagnosis is raised instead.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GrammarError",
    "NotInLanguageError",
    "InfiniteLanguageError",
    "InfiniteAmbiguityError",
    "NotUnambiguousError",
    "NotInChomskyNormalFormError",
    "MixedLengthLanguageError",
    "AutomatonError",
    "RectangleError",
    "CoverBudgetExceeded",
    "PartitionError",
    "CertificateError",
    "EngineError",
    "UnknownJobError",
    "JobFailedError",
    "JobTimeoutError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class GrammarError(ReproError):
    """A context-free grammar is structurally invalid.

    Raised e.g. when a rule mentions a symbol that is neither a declared
    terminal nor a declared non-terminal, when the start symbol is not a
    non-terminal, or when terminals and non-terminals overlap.
    """


class NotInLanguageError(ReproError):
    """A word was required to belong to a language but does not."""


class InfiniteLanguageError(ReproError):
    """An operation that needs a finite language met an infinite one.

    The paper (Section 2) only deals with finite languages; enumeration,
    exact counting and ambiguity checking in this library insist on
    finiteness and raise this error otherwise.
    """


class InfiniteAmbiguityError(ReproError):
    """A word has infinitely many derivations (cyclic unit/epsilon chains)."""


class NotUnambiguousError(ReproError):
    """An operation that requires an unambiguous grammar got an ambiguous one."""


class NotInChomskyNormalFormError(ReproError):
    """A grammar was required to be in Chomsky normal form but is not."""


class MixedLengthLanguageError(ReproError):
    """A language was required to have all words of one length but does not.

    Observation 9 of the paper and everything that builds on it (the
    length-indexing transform of Lemma 10, rectangle extraction of
    Proposition 7) only applies to uniform-length languages.
    """


class AutomatonError(ReproError):
    """A finite automaton is structurally invalid."""


class RectangleError(ReproError):
    """A (set of) combinatorial rectangle(s) violates a required property.

    Used when rectangle parameters are inconsistent (Definition 5), when a
    claimed cover is not a cover, or when a claimed disjoint cover overlaps.
    """


class CoverBudgetExceeded(RectangleError):
    """An exact cover search ran out of its node budget.

    Unlike a bare failure, the search progress survives: ``best_cover``
    is the best *valid* cover found before exhaustion (at worst the
    greedy cover the search started from — never ``None``) and
    ``nodes_expanded`` the number of search nodes visited.  Callers may
    use ``best_cover`` as a verified upper bound even though minimality
    was not established.

    ``verified`` reports whether the raiser re-checked ``best_cover``
    against the matrix before attaching it (covers raised by
    :func:`repro.comm.cover.solve_cover` always are), and
    ``uncovered_cells`` makes any partial coverage explicit: the number
    of 1-entries ``best_cover`` misses, ``0`` for a complete cover.
    Both default to the pessimistic values for raisers that predate the
    verification contract.
    """

    def __init__(
        self,
        message: str,
        *,
        best_cover: list,
        nodes_expanded: int,
        verified: bool = False,
        uncovered_cells: int | None = None,
    ) -> None:
        super().__init__(message)
        self.best_cover = best_cover
        self.nodes_expanded = nodes_expanded
        self.verified = verified
        self.uncovered_cells = uncovered_cells


class PartitionError(ReproError):
    """An ordered partition (Definition 13) is malformed or not applicable."""


class CertificateError(ReproError):
    """A lower-bound certificate failed verification.

    The discrepancy-based lower bound of Section 4 is assembled from exact
    integer quantities; if any of the inequalities the proof relies on does
    not hold for the given parameters, this error is raised rather than
    reporting a wrong bound.
    """


class EngineError(ReproError):
    """Base class for failures of the :mod:`repro.engine` execution layer."""


class UnknownJobError(EngineError):
    """A job name was requested that no registry declares."""


class JobFailedError(EngineError):
    """A job raised while executing and its retry budget is exhausted.

    The original exception is attached as ``__cause__``; ``attempts`` is
    the number of executions performed (1 + retries used) before the
    engine gave up.  Raised only after the engine has recorded every
    failed attempt in the run log.
    """

    def __init__(self, message: str, *, attempts: int = 1) -> None:
        super().__init__(message)
        self.attempts = attempts


class JobTimeoutError(EngineError):
    """A job exceeded its per-job wall-clock timeout.

    Raised when the scheduler's deadline sweep finds an overdue job under
    ``on_timeout="raise"`` (the run aborts), or by ``run_one`` when its
    own request was timed out and dropped under ``on_timeout="skip"``
    (sibling jobs keep their results).
    """
