"""Finite automata substrate (Theorem 1(2) and the UFA context).

NFAs and DFAs with determinisation, minimisation, boolean operations,
language equivalence, the unambiguity (UFA) test, and conversions to
right-linear CFGs and from finite languages.  The hot algorithms run on
the bit-parallel packed kernels in :mod:`repro.automata.packed`
(states renumbered to bit positions, state sets as big-int masks).
"""

from repro.automata.counting import (
    count_dfa_words_of_length,
    count_dfa_words_up_to,
    count_nfa_runs_of_length,
)
from repro.automata.dfa import DFA, determinise, minimise
from repro.automata.nfa import NFA, State
from repro.automata.packed import (
    PackedDFA,
    PackedNFA,
    as_packed_dfa,
    as_packed_nfa,
    packed_determinise,
    packed_is_unambiguous,
    packed_minimise,
)
from repro.automata.regex import (
    Regex,
    any_symbol,
    compile_regex,
    concat,
    epsilon,
    repeat,
    star,
    sym,
    union as regex_union,
)
from repro.automata.ops import (
    dfa_from_finite_language,
    equivalent,
    intersect,
    is_unambiguous_nfa,
    minimal_dfa_of_finite_language,
    nfa_to_right_linear_cfg,
    product_dfa,
    trim_nfa,
    union,
)

__all__ = [
    "NFA",
    "DFA",
    "State",
    "PackedNFA",
    "PackedDFA",
    "as_packed_nfa",
    "as_packed_dfa",
    "packed_determinise",
    "packed_minimise",
    "packed_is_unambiguous",
    "determinise",
    "count_dfa_words_of_length",
    "count_dfa_words_up_to",
    "count_nfa_runs_of_length",
    "minimise",
    "product_dfa",
    "intersect",
    "union",
    "equivalent",
    "trim_nfa",
    "is_unambiguous_nfa",
    "nfa_to_right_linear_cfg",
    "dfa_from_finite_language",
    "minimal_dfa_of_finite_language",
    "Regex",
    "sym",
    "epsilon",
    "regex_union",
    "concat",
    "star",
    "repeat",
    "any_symbol",
    "compile_regex",
]
