"""Automata operations: products, equivalence, unambiguity, conversions.

Includes the unambiguous-finite-automaton (UFA) test via the classical
self-product criterion — the paper's introduction situates uCFG lower
bounds next to the recent UFA lower-bound literature [16, 32], and the
test lets the repository's examples contrast "the ``Θ(n)`` NFA for
``L_n`` is ambiguous" with the uCFG statements.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.automata.dfa import DFA, determinise, minimise
from repro.automata.nfa import NFA, State
from repro.errors import AutomatonError
from repro.grammars.cfg import CFG, NonTerminal, Rule
from repro.words.alphabet import Alphabet

__all__ = [
    "product_dfa",
    "intersect",
    "union",
    "equivalent",
    "trim_nfa",
    "is_unambiguous_nfa",
    "nfa_to_right_linear_cfg",
    "dfa_from_finite_language",
    "minimal_dfa_of_finite_language",
]


def product_dfa(left: DFA, right: DFA, accept_both: bool) -> DFA:
    """The synchronous product; accepting = AND (intersection) or OR (union)."""
    if left.alphabet != right.alphabet:
        raise AutomatonError("product requires identical alphabets")
    a = left.completed()
    b = right.completed()
    initial = (a.initial, b.initial)
    states: set[State] = {initial}
    frontier = [initial]
    delta: dict[tuple[State, str], State] = {}
    while frontier:
        p, q = frontier.pop()
        for s in a.alphabet:
            succ = (a.successor(p, s), b.successor(q, s))
            delta[((p, q), s)] = succ
            if succ not in states:
                states.add(succ)
                frontier.append(succ)
    if accept_both:
        accepting = {(p, q) for (p, q) in states if p in a.accepting and q in b.accepting}
    else:
        accepting = {(p, q) for (p, q) in states if p in a.accepting or q in b.accepting}
    return DFA(a.alphabet, states, delta, initial, accepting)


def intersect(left: DFA, right: DFA) -> DFA:
    """DFA for ``L(left) ∩ L(right)``."""
    return product_dfa(left, right, accept_both=True)


def union(left: DFA, right: DFA) -> DFA:
    """DFA for ``L(left) ∪ L(right)``."""
    return product_dfa(left, right, accept_both=False)


def equivalent(left: DFA, right: DFA) -> bool:
    """Decide ``L(left) = L(right)`` via minimisation up to isomorphism.

    Both minimal DFAs use the canonical BFS numbering of
    :func:`~repro.automata.dfa.minimise`, so equality of languages reduces
    to equality of the (state count, transitions, accepting set) triples.
    """
    ma, mb = minimise(left), minimise(right)
    return (
        ma.n_states == mb.n_states
        and ma.transitions() == mb.transitions()
        and ma.accepting == mb.accepting
    )


def trim_nfa(nfa: NFA) -> NFA:
    """Restrict to states that are both accessible and co-accessible."""
    accessible: set[State] = set(nfa.initial)
    frontier = list(nfa.initial)
    while frontier:
        q = frontier.pop()
        for s in nfa.alphabet:
            for succ in nfa.successors(q, s):
                if succ not in accessible:
                    accessible.add(succ)
                    frontier.append(succ)
    predecessors: dict[State, set[State]] = {q: set() for q in nfa.states}
    for src, _sym, dst in nfa.transitions():
        predecessors[dst].add(src)
    coaccessible: set[State] = set(nfa.accepting)
    frontier = list(nfa.accepting)
    while frontier:
        q = frontier.pop()
        for pred in predecessors[q]:
            if pred not in coaccessible:
                coaccessible.add(pred)
                frontier.append(pred)
    keep = accessible & coaccessible
    if not keep:
        # Empty language: a single dead state keeps the structure valid.
        # Pick the canonical minimum, not an arbitrary set element — set
        # iteration order depends on the hash seed, and a seed-dependent
        # dead state would make `to_key()` of trimmed empty automata
        # differ across processes, defeating the engine's disk cache.
        from repro.util.canonical import canonical_encode

        dead = min(nfa.states, key=canonical_encode)
        return NFA(nfa.alphabet, {dead}, {}, {dead}, set())
    transitions: dict[tuple[State, str], set[State]] = {}
    for src, sym, dst in nfa.transitions():
        if src in keep and dst in keep:
            transitions.setdefault((src, sym), set()).add(dst)
    return NFA(nfa.alphabet, keep, transitions, nfa.initial & keep, nfa.accepting & keep)


def is_unambiguous_nfa(nfa: NFA) -> bool:
    """Decide whether the NFA has at most one accepting run per word.

    Classical criterion: trim the automaton, build its self-product
    restricted to pairs reachable *by the same word* from (possibly
    distinct) initial states and co-reachable to accepting pairs; the NFA
    is ambiguous iff some off-diagonal pair survives.  Runs on the
    bit-parallel kernel :func:`repro.automata.packed.packed_is_unambiguous`
    — pair states packed at bit ``p·|Q|+q`` of big-int masks, so both
    reachability passes are shift-OR fixpoints with no tuple sets.
    """
    from repro.automata.packed import PackedNFA, packed_is_unambiguous

    return packed_is_unambiguous(PackedNFA.from_nfa(nfa))


def nfa_to_right_linear_cfg(nfa: NFA) -> CFG:
    """Convert an NFA into an equivalent right-linear CFG.

    Non-terminals are ``("q", state)`` tuples plus a fresh start; rules
    follow transitions (``q → σ q'``) and acceptance (``q → ε`` is avoided
    by emitting ``q → σ`` for transitions into accepting states, plus a
    start ε-rule only when the NFA accepts the empty word).  The CFG size
    is linear in the transition count — the conversion behind the remark
    that NFAs embed into CFGs without blow-up.
    """
    start: NonTerminal = ("q0",)
    nts: list[NonTerminal] = [start]
    rules: list[Rule] = []
    for q in sorted(nfa.states, key=str):
        nts.append(("q", q))
    for src, sym, dst in nfa.transitions():
        rules.append(Rule(("q", src), (sym, ("q", dst))))
        if dst in nfa.accepting:
            rules.append(Rule(("q", src), (sym,)))
    for q in sorted(nfa.initial, key=str):
        for rule in list(rules):
            if rule.lhs == ("q", q):
                rules.append(Rule(start, rule.rhs))
    if nfa.initial & nfa.accepting:
        rules.append(Rule(start, ()))
    return CFG(nfa.alphabet, nts, rules, start)


def dfa_from_finite_language(words: Iterable[str], alphabet: Alphabet) -> DFA:
    """Build the trie-shaped (partial) DFA accepting exactly ``words``."""
    word_list = sorted(set(words))
    for word in word_list:
        for ch in word:
            if ch not in alphabet:
                raise AutomatonError(f"word {word!r} uses symbol {ch!r} outside the alphabet")
    states: set[State] = {""}
    delta: dict[tuple[State, str], State] = {}
    accepting: set[State] = set()
    for word in word_list:
        for i in range(len(word)):
            prefix, longer = word[:i], word[: i + 1]
            states.add(longer)
            delta[(prefix, word[i])] = longer
        accepting.add(word)
    return DFA(alphabet, states, delta, "", accepting)


def minimal_dfa_of_finite_language(words: Iterable[str], alphabet: Alphabet) -> DFA:
    """The minimal complete DFA of a finite language (trie + minimise)."""
    return minimise(dfa_from_finite_language(words, alphabet))
