"""Deterministic finite automata, determinisation and minimisation.

The DFA side of the automata substrate: subset construction from
:class:`~repro.automata.nfa.NFA`, Hopcroft minimisation, completion,
complement, and products.  :func:`determinise` and :func:`minimise` are
thin adapters over the bit-parallel kernels in
:mod:`repro.automata.packed` (macro-states and partition blocks as
big-int masks); their outputs are identical to the frozenset/Moore
implementations they replaced, which are frozen as test oracles in
``tests/legacy_automata.py``.  The minimal acyclic DFA of a finite
language doubles as the canonical small *unambiguous* representation
that the disambiguation pipeline (benchmark E12) converts into a
right-linear uCFG.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.automata.nfa import NFA, State
from repro.errors import AutomatonError
from repro.words.alphabet import Alphabet

__all__ = ["DFA", "determinise", "minimise"]

_SINK = "__sink__"


class DFA:
    """A complete or partial DFA: at most one successor per (state, symbol).

    >>> from repro.words import AB
    >>> dfa = DFA(AB, states={0, 1}, transitions={(0, "a"): 1},
    ...           initial=0, accepting={1})
    >>> dfa.accepts("a"), dfa.accepts("aa")
    (True, False)
    """

    __slots__ = ("_alphabet", "_states", "_delta", "_initial", "_accepting")

    def __init__(
        self,
        alphabet: Alphabet | Iterable[str],
        states: Iterable[State],
        transitions: Mapping[tuple[State, str], State],
        initial: State,
        accepting: Iterable[State],
    ) -> None:
        sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        state_set = frozenset(states)
        if initial not in state_set:
            raise AutomatonError(f"initial state {initial!r} undeclared")
        accepting_set = frozenset(accepting)
        if not accepting_set <= state_set:
            raise AutomatonError(f"accepting states {accepting_set - state_set!r} undeclared")
        delta: dict[tuple[State, str], State] = {}
        for (src, sym), dst in transitions.items():
            if src not in state_set or dst not in state_set:
                raise AutomatonError(f"transition ({src!r},{sym!r})->{dst!r} uses undeclared state")
            if sym not in sigma:
                raise AutomatonError(f"transition on undeclared symbol {sym!r}")
            delta[(src, sym)] = dst
        self._alphabet = sigma
        self._states = state_set
        self._delta = delta
        self._initial = initial
        self._accepting = accepting_set

    @classmethod
    def _from_validated(
        cls,
        alphabet: Alphabet,
        states: frozenset[State],
        transitions: dict[tuple[State, str], State],
        initial: State,
        accepting: frozenset[State],
    ) -> "DFA":
        """Trusted constructor: callers guarantee consistency.

        Skips the per-transition validation of ``__init__`` — for
        internal call sites (e.g. :meth:`PackedDFA.to_dfa`) whose output
        is consistent by construction.  Mirrors
        ``CommMatrix._from_validated``.
        """
        dfa = cls.__new__(cls)
        dfa._alphabet = alphabet
        dfa._states = states
        dfa._delta = transitions
        dfa._initial = initial
        dfa._accepting = accepting
        return dfa

    @property
    def alphabet(self) -> Alphabet:
        return self._alphabet

    @property
    def states(self) -> frozenset[State]:
        return self._states

    @property
    def initial(self) -> State:
        return self._initial

    @property
    def accepting(self) -> frozenset[State]:
        return self._accepting

    @property
    def n_states(self) -> int:
        return len(self._states)

    @property
    def n_transitions(self) -> int:
        return len(self._delta)

    def successor(self, state: State, symbol: str) -> State | None:
        """``δ(state, symbol)``, or ``None`` where undefined (partial DFA)."""
        return self._delta.get((state, symbol))

    def transitions(self) -> dict[tuple[State, str], State]:
        """A copy of the transition map."""
        return dict(self._delta)

    def accepts(self, word: str) -> bool:
        """Run the word; reject on any undefined transition."""
        current = self._initial
        for symbol in word:
            nxt = self._delta.get((current, symbol))
            if nxt is None:
                return False
            current = nxt
        return current in self._accepting

    def is_complete(self) -> bool:
        """Whether every (state, symbol) pair has a successor."""
        return all(
            (q, s) in self._delta for q in self._states for s in self._alphabet
        )

    def completed(self) -> "DFA":
        """Return an equivalent complete DFA (adds a sink if needed)."""
        if self.is_complete():
            return self
        states = set(self._states) | {_SINK}
        delta = dict(self._delta)
        for q in states:
            for s in self._alphabet:
                delta.setdefault((q, s), _SINK)
        return DFA(self._alphabet, states, delta, self._initial, self._accepting)

    def complement(self) -> "DFA":
        """Return a DFA for the complement language (over ``Σ*``)."""
        complete = self.completed()
        return DFA(
            complete._alphabet,
            complete._states,
            complete._delta,
            complete._initial,
            complete._states - complete._accepting,
        )

    def to_nfa(self) -> NFA:
        """View this DFA as an NFA."""
        transitions = {
            (src, sym): {dst} for (src, sym), dst in self._delta.items()
        }
        return NFA(self._alphabet, self._states, transitions, {self._initial}, self._accepting)

    def reachable(self) -> "DFA":
        """Restrict to the states reachable from the initial state."""
        seen: set[State] = {self._initial}
        frontier = [self._initial]
        while frontier:
            q = frontier.pop()
            for s in self._alphabet:
                nxt = self._delta.get((q, s))
                if nxt is not None and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        delta = {k: v for k, v in self._delta.items() if k[0] in seen}
        return DFA(self._alphabet, seen, delta, self._initial, self._accepting & seen)

    def __repr__(self) -> str:
        return f"DFA(|Q|={self.n_states}, |δ|={self.n_transitions}, |F|={len(self._accepting)})"


def determinise(nfa: NFA) -> DFA:
    """Subset construction: an equivalent DFA over reachable macro-states.

    Macro-states are discovered breadth-first (symbols in alphabet order)
    and numbered ``0..k-1`` in discovery order with ``0`` initial; the
    result is complete.  Runs on the bit-parallel kernel
    :func:`repro.automata.packed.packed_determinise` — one OR-fold over
    big-int masks per symbol instead of frozenset unions and hashing.
    """
    # Imported lazily: packed.py builds on the DFA class defined above.
    from repro.automata.packed import PackedNFA, packed_determinise

    return packed_determinise(PackedNFA.from_nfa(nfa)).to_dfa()


def minimise(dfa: DFA) -> DFA:
    """Return the minimal complete DFA of the same language.

    Hopcroft partition refinement on the reachable, completed automaton
    (:func:`repro.automata.packed.packed_minimise`: blocks and preimages
    as big-int masks, "process the smaller half" worklist).  States of
    the result are integers ``0..k-1``, numbered by BFS from the initial
    block with ``0`` initial — the same canonical numbering as the Moore
    refinement this replaced, so outputs are identical.
    """
    from repro.automata.packed import PackedDFA, packed_minimise

    return packed_minimise(PackedDFA.from_dfa(dfa)).to_dfa()
