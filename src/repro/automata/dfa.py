"""Deterministic finite automata, determinisation and minimisation.

The DFA side of the automata substrate: subset construction from
:class:`~repro.automata.nfa.NFA`, Hopcroft-style minimisation (implemented
as Moore's partition refinement — simpler, and entirely adequate at the
sizes this repository handles), completion, complement, and products.
The minimal acyclic DFA of a finite language doubles as the canonical
small *unambiguous* representation that the disambiguation pipeline
(benchmark E12) converts into a right-linear uCFG.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.automata.nfa import NFA, State
from repro.errors import AutomatonError
from repro.words.alphabet import Alphabet

__all__ = ["DFA", "determinise", "minimise"]

_SINK = "__sink__"


class DFA:
    """A complete or partial DFA: at most one successor per (state, symbol).

    >>> from repro.words import AB
    >>> dfa = DFA(AB, states={0, 1}, transitions={(0, "a"): 1},
    ...           initial=0, accepting={1})
    >>> dfa.accepts("a"), dfa.accepts("aa")
    (True, False)
    """

    __slots__ = ("_alphabet", "_states", "_delta", "_initial", "_accepting")

    def __init__(
        self,
        alphabet: Alphabet | Iterable[str],
        states: Iterable[State],
        transitions: Mapping[tuple[State, str], State],
        initial: State,
        accepting: Iterable[State],
    ) -> None:
        sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        state_set = frozenset(states)
        if initial not in state_set:
            raise AutomatonError(f"initial state {initial!r} undeclared")
        accepting_set = frozenset(accepting)
        if not accepting_set <= state_set:
            raise AutomatonError(f"accepting states {accepting_set - state_set!r} undeclared")
        delta: dict[tuple[State, str], State] = {}
        for (src, sym), dst in transitions.items():
            if src not in state_set or dst not in state_set:
                raise AutomatonError(f"transition ({src!r},{sym!r})->{dst!r} uses undeclared state")
            if sym not in sigma:
                raise AutomatonError(f"transition on undeclared symbol {sym!r}")
            delta[(src, sym)] = dst
        self._alphabet = sigma
        self._states = state_set
        self._delta = delta
        self._initial = initial
        self._accepting = accepting_set

    @property
    def alphabet(self) -> Alphabet:
        return self._alphabet

    @property
    def states(self) -> frozenset[State]:
        return self._states

    @property
    def initial(self) -> State:
        return self._initial

    @property
    def accepting(self) -> frozenset[State]:
        return self._accepting

    @property
    def n_states(self) -> int:
        return len(self._states)

    @property
    def n_transitions(self) -> int:
        return len(self._delta)

    def successor(self, state: State, symbol: str) -> State | None:
        """``δ(state, symbol)``, or ``None`` where undefined (partial DFA)."""
        return self._delta.get((state, symbol))

    def transitions(self) -> dict[tuple[State, str], State]:
        """A copy of the transition map."""
        return dict(self._delta)

    def accepts(self, word: str) -> bool:
        """Run the word; reject on any undefined transition."""
        current = self._initial
        for symbol in word:
            nxt = self._delta.get((current, symbol))
            if nxt is None:
                return False
            current = nxt
        return current in self._accepting

    def is_complete(self) -> bool:
        """Whether every (state, symbol) pair has a successor."""
        return all(
            (q, s) in self._delta for q in self._states for s in self._alphabet
        )

    def completed(self) -> "DFA":
        """Return an equivalent complete DFA (adds a sink if needed)."""
        if self.is_complete():
            return self
        states = set(self._states) | {_SINK}
        delta = dict(self._delta)
        for q in states:
            for s in self._alphabet:
                delta.setdefault((q, s), _SINK)
        return DFA(self._alphabet, states, delta, self._initial, self._accepting)

    def complement(self) -> "DFA":
        """Return a DFA for the complement language (over ``Σ*``)."""
        complete = self.completed()
        return DFA(
            complete._alphabet,
            complete._states,
            complete._delta,
            complete._initial,
            complete._states - complete._accepting,
        )

    def to_nfa(self) -> NFA:
        """View this DFA as an NFA."""
        transitions = {
            (src, sym): {dst} for (src, sym), dst in self._delta.items()
        }
        return NFA(self._alphabet, self._states, transitions, {self._initial}, self._accepting)

    def reachable(self) -> "DFA":
        """Restrict to the states reachable from the initial state."""
        seen: set[State] = {self._initial}
        frontier = [self._initial]
        while frontier:
            q = frontier.pop()
            for s in self._alphabet:
                nxt = self._delta.get((q, s))
                if nxt is not None and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        delta = {k: v for k, v in self._delta.items() if k[0] in seen}
        return DFA(self._alphabet, seen, delta, self._initial, self._accepting & seen)

    def __repr__(self) -> str:
        return f"DFA(|Q|={self.n_states}, |δ|={self.n_transitions}, |F|={len(self._accepting)})"


def determinise(nfa: NFA) -> DFA:
    """Subset construction: an equivalent DFA over reachable macro-states."""
    initial = nfa.initial
    macro_states: dict[frozenset[State], int] = {initial: 0}
    order: list[frozenset[State]] = [initial]
    delta: dict[tuple[State, str], State] = {}
    index = 0
    while index < len(order):
        current = order[index]
        current_id = macro_states[current]
        for symbol in nfa.alphabet:
            nxt = nfa.step(current, symbol)
            if nxt not in macro_states:
                macro_states[nxt] = len(order)
                order.append(nxt)
            delta[(current_id, symbol)] = macro_states[nxt]
        index += 1
    accepting = {
        macro_states[macro] for macro in order if macro & nfa.accepting
    }
    return DFA(nfa.alphabet, set(macro_states.values()), delta, 0, accepting)


def minimise(dfa: DFA) -> DFA:
    """Return the minimal complete DFA of the same language.

    Moore partition refinement on the reachable, completed automaton.
    States of the result are integers ``0..k-1`` with ``0`` initial.
    """
    complete = dfa.completed().reachable()
    states = sorted(complete.states, key=str)
    # Initial partition: accepting vs non-accepting.
    block_of: dict[State, int] = {
        q: (1 if q in complete.accepting else 0) for q in states
    }
    symbols = complete.alphabet.symbols
    n_blocks = len(set(block_of.values()))
    while True:
        signatures: dict[State, tuple] = {}
        for q in states:
            signatures[q] = (
                block_of[q],
                tuple(block_of[complete.successor(q, s)] for s in symbols),
            )
        distinct = sorted(set(signatures.values()), key=str)
        renumber = {sig: i for i, sig in enumerate(distinct)}
        block_of = {q: renumber[signatures[q]] for q in states}
        # Moore refinement only splits blocks, so the partition is stable
        # exactly when the block count stops growing.
        if len(distinct) == n_blocks:
            break
        n_blocks = len(distinct)
    # Canonical numbering: BFS from the initial block for determinism.
    initial_block = block_of[complete.initial]
    relabel: dict[int, int] = {initial_block: 0}
    queue = [initial_block]
    block_successor: dict[tuple[int, str], int] = {}
    representative: dict[int, State] = {}
    for q in states:
        representative.setdefault(block_of[q], q)
    while queue:
        blk = queue.pop(0)
        rep = representative[blk]
        for s in symbols:
            succ_blk = block_of[complete.successor(rep, s)]
            block_successor[(blk, s)] = succ_blk
            if succ_blk not in relabel:
                relabel[succ_blk] = len(relabel)
                queue.append(succ_blk)
    delta = {
        (relabel[blk], s): relabel[succ]
        for (blk, s), succ in block_successor.items()
        if blk in relabel
    }
    accepting = {
        relabel[block_of[q]]
        for q in states
        if q in complete.accepting and block_of[q] in relabel
    }
    return DFA(complete.alphabet, set(relabel.values()), delta, 0, accepting)
