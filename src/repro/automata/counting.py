"""Counting accepted words with automata (transfer-matrix method).

A complete DFA counts its accepted words of each length by a linear
dynamic program over states — exactly the factorised-counting idea, one
level down: determinism plays the role unambiguity plays for grammars.
For NFAs the same recurrence counts accepting *runs*, which matches the
word count precisely when the NFA is unambiguous — the UFA story again.

The counting now literally uses the transfer matrix: the kernels in
:mod:`repro.automata.packed` build the integer matrix ``M[i][j]`` =
#symbols taking state ``i`` to state ``j`` and either sweep it
(``O(length · |δ|)``) or raise it to the ``length``-th power by repeated
squaring (``O(|Q|³ log length)`` exact big-int products).  The adapters
here pick the regime: long words over small automata go through the
matrix power, so ``count_dfa_words_of_length(d, 2n)`` costs ``O(log n)``
matrix products instead of ``2n`` sweeps.  All arithmetic is exact
arbitrary-precision integers — no floats anywhere.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.backend import use_backend
from repro.automata.packed import (
    PackedDFA,
    PackedNFA,
    count_runs_by_power,
    count_runs_by_sweep,
    count_words_by_power,
    count_words_by_sweep,
    count_words_table,
)

__all__ = [
    "count_dfa_words_of_length",
    "count_dfa_words_up_to",
    "count_nfa_runs_of_length",
]

# Repeated squaring costs O(|Q|³ log L) big-int multiplications against
# the sweep's O(L · |δ|) additions, so it only wins once the length is
# comfortably past the state count.  The 4× margin keeps short-word
# calls (the common case in tests and finite-language code) on the
# cheaper sweep without measurably penalising the asymptotic regime.
_POWER_MARGIN = 4


def count_dfa_words_of_length(dfa: DFA, length: int, backend: str | None = None) -> int:
    """The exact number of accepted words of the given length.

    ``O(length · |δ|)`` for short words, ``O(|Q|³ log length)`` via
    repeated matrix squaring for long ones; works on partial DFAs
    (undefined transitions contribute nothing).  ``backend`` optionally
    pins the kernel backend for this call (every backend returns the
    same exact count).

    >>> from repro.automata.ops import dfa_from_finite_language
    >>> from repro.words.alphabet import AB
    >>> d = dfa_from_finite_language({"ab", "ba", "b"}, AB)
    >>> count_dfa_words_of_length(d, 2), count_dfa_words_of_length(d, 1)
    (2, 1)
    """
    with use_backend(backend):
        packed = PackedDFA.from_dfa(dfa)
        if length > _POWER_MARGIN * packed.n_states:
            return count_words_by_power(packed, length)
        return count_words_by_sweep(packed, length)


def count_dfa_words_up_to(
    dfa: DFA, max_length: int, backend: str | None = None
) -> dict[int, int]:
    """``{length: #accepted words}`` for every length up to the bound.

    One incremental sweep: the length-``ℓ`` vector extends to ``ℓ+1``,
    so the whole table costs the same as the single longest length.
    """
    with use_backend(backend):
        packed = PackedDFA.from_dfa(dfa)
        return count_words_table(packed, max_length)


def count_nfa_runs_of_length(nfa: NFA, length: int, backend: str | None = None) -> int:
    """The number of accepting *runs* over all words of the given length.

    Equals the number of accepted words iff the NFA is unambiguous
    (checkable with :func:`repro.automata.ops.is_unambiguous_nfa`); in
    general it over-counts by run multiplicity — the automaton analogue
    of parse-tree counting for ambiguous CFGs.
    """
    with use_backend(backend):
        packed = PackedNFA.from_nfa(nfa)
        if length > _POWER_MARGIN * packed.n_states:
            return count_runs_by_power(packed, length)
        return count_runs_by_sweep(packed, length)
