"""Counting accepted words with automata (transfer-matrix method).

A complete DFA counts its accepted words of each length by a linear
dynamic program over states — exactly the factorised-counting idea, one
level down: determinism plays the role unambiguity plays for grammars.
For NFAs the same recurrence counts accepting *runs*, which matches the
word count precisely when the NFA is unambiguous — the UFA story again.

The DP itself is :mod:`repro.kernel.paths` over the counting semiring;
this module only adapts DFA/NFA transition functions into the kernel's
``successors`` callable.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.kernel.paths import path_value, path_values_up_to

__all__ = [
    "count_dfa_words_of_length",
    "count_dfa_words_up_to",
    "count_nfa_runs_of_length",
]


def _dfa_successors(dfa: DFA):
    def successors(state):
        for symbol in dfa.alphabet:
            succ = dfa.successor(state, symbol)
            if succ is not None:
                yield succ

    return successors


def _nfa_successors(nfa: NFA):
    def successors(state):
        for symbol in nfa.alphabet:
            yield from nfa.successors(state, symbol)

    return successors


def count_dfa_words_of_length(dfa: DFA, length: int) -> int:
    """The exact number of accepted words of the given length.

    Linear in ``length × |δ|``; works on partial DFAs (undefined
    transitions contribute nothing).

    >>> from repro.automata.ops import dfa_from_finite_language
    >>> from repro.words.alphabet import AB
    >>> d = dfa_from_finite_language({"ab", "ba", "b"}, AB)
    >>> count_dfa_words_of_length(d, 2), count_dfa_words_of_length(d, 1)
    (2, 1)
    """
    return path_value(_dfa_successors(dfa), [dfa.initial], dfa.accepting, length)


def count_dfa_words_up_to(dfa: DFA, max_length: int) -> dict[int, int]:
    """``{length: #accepted words}`` for every length up to the bound."""
    return path_values_up_to(_dfa_successors(dfa), [dfa.initial], dfa.accepting, max_length)


def count_nfa_runs_of_length(nfa: NFA, length: int) -> int:
    """The number of accepting *runs* over all words of the given length.

    Equals the number of accepted words iff the NFA is unambiguous
    (checkable with :func:`repro.automata.ops.is_unambiguous_nfa`); in
    general it over-counts by run multiplicity — the automaton analogue
    of parse-tree counting for ambiguous CFGs.
    """
    return path_value(_nfa_successors(nfa), nfa.initial, nfa.accepting, length)
