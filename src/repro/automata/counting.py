"""Counting accepted words with automata (transfer-matrix method).

A complete DFA counts its accepted words of each length by a linear
dynamic program over states — exactly the factorised-counting idea, one
level down: determinism plays the role unambiguity plays for grammars.
For NFAs the same recurrence counts accepting *runs*, which matches the
word count precisely when the NFA is unambiguous — the UFA story again.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA, State

__all__ = [
    "count_dfa_words_of_length",
    "count_dfa_words_up_to",
    "count_nfa_runs_of_length",
]


def count_dfa_words_of_length(dfa: DFA, length: int) -> int:
    """The exact number of accepted words of the given length.

    Linear in ``length × |δ|``; works on partial DFAs (undefined
    transitions contribute nothing).

    >>> from repro.automata.ops import dfa_from_finite_language
    >>> from repro.words.alphabet import AB
    >>> d = dfa_from_finite_language({"ab", "ba", "b"}, AB)
    >>> count_dfa_words_of_length(d, 2), count_dfa_words_of_length(d, 1)
    (2, 1)
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    weights: dict[State, int] = {dfa.initial: 1}
    for _ in range(length):
        nxt: dict[State, int] = {}
        for state, weight in weights.items():
            for symbol in dfa.alphabet:
                succ = dfa.successor(state, symbol)
                if succ is not None:
                    nxt[succ] = nxt.get(succ, 0) + weight
        weights = nxt
    return sum(weight for state, weight in weights.items() if state in dfa.accepting)


def count_dfa_words_up_to(dfa: DFA, max_length: int) -> dict[int, int]:
    """``{length: #accepted words}`` for every length up to the bound."""
    if max_length < 0:
        raise ValueError(f"max_length must be non-negative, got {max_length}")
    counts: dict[int, int] = {}
    weights: dict[State, int] = {dfa.initial: 1}
    counts[0] = sum(w for q, w in weights.items() if q in dfa.accepting)
    for length in range(1, max_length + 1):
        nxt: dict[State, int] = {}
        for state, weight in weights.items():
            for symbol in dfa.alphabet:
                succ = dfa.successor(state, symbol)
                if succ is not None:
                    nxt[succ] = nxt.get(succ, 0) + weight
        weights = nxt
        counts[length] = sum(w for q, w in weights.items() if q in dfa.accepting)
    return counts


def count_nfa_runs_of_length(nfa: NFA, length: int) -> int:
    """The number of accepting *runs* over all words of the given length.

    Equals the number of accepted words iff the NFA is unambiguous
    (checkable with :func:`repro.automata.ops.is_unambiguous_nfa`); in
    general it over-counts by run multiplicity — the automaton analogue
    of parse-tree counting for ambiguous CFGs.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    weights: dict[State, int] = {q: 1 for q in nfa.initial}
    for _ in range(length):
        nxt: dict[State, int] = {}
        for state, weight in weights.items():
            for symbol in nfa.alphabet:
                for succ in nfa.successors(state, symbol):
                    nxt[succ] = nxt.get(succ, 0) + weight
        weights = nxt
    return sum(weight for state, weight in weights.items() if state in nfa.accepting)
