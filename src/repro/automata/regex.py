"""Regular expressions with Thompson's construction.

The paper writes languages in regex notation — ``L_n = (a+b)^k a
(a+b)^{n-1} a (a+b)^{n-1-k}`` — and this module makes that notation a
first-class object: a small AST (symbol, ε, union, concatenation, star,
bounded repetition) compiled into an ε-free NFA by Thompson's
construction followed by ε-closure elimination.  The match language of
Theorem 1(2) is literally ``any() + sym('a') + any()**(n-1) + sym('a') +
any()`` here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.nfa import NFA
from repro.errors import AutomatonError
from repro.words.alphabet import Alphabet

__all__ = ["Regex", "sym", "epsilon", "union", "concat", "star", "repeat", "any_symbol", "compile_regex"]


@dataclass(frozen=True, slots=True)
class Regex:
    """A regular-expression AST node.

    ``kind`` ∈ {"sym", "eps", "union", "concat", "star"};
    ``payload`` is the symbol for "sym", the child tuple otherwise.
    Operators: ``|`` for union, ``+`` for concatenation, ``**k`` for
    k-fold repetition, ``.star()`` for Kleene star.
    """

    kind: str
    payload: tuple["Regex", ...] | str

    def __or__(self, other: "Regex") -> "Regex":
        return union(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return concat(self, other)

    def __pow__(self, times: int) -> "Regex":
        return repeat(self, times)

    def star(self) -> "Regex":
        return Regex("star", (self,))


def sym(symbol: str) -> Regex:
    """A single-symbol expression."""
    if len(symbol) != 1:
        raise AutomatonError(f"sym needs a single character, got {symbol!r}")
    return Regex("sym", symbol)


def epsilon() -> Regex:
    """The empty-word expression."""
    return Regex("eps", ())


def union(*parts: Regex) -> Regex:
    """The union of one or more expressions."""
    if not parts:
        raise AutomatonError("union needs at least one operand")
    if len(parts) == 1:
        return parts[0]
    return Regex("union", tuple(parts))


def concat(*parts: Regex) -> Regex:
    """The concatenation of one or more expressions."""
    if not parts:
        return epsilon()
    if len(parts) == 1:
        return parts[0]
    return Regex("concat", tuple(parts))


def star(expression: Regex) -> Regex:
    """The Kleene star."""
    return Regex("star", (expression,))


def repeat(expression: Regex, times: int) -> Regex:
    """``expression`` concatenated ``times`` times (0 ⇒ ε)."""
    if times < 0:
        raise AutomatonError(f"repeat needs times >= 0, got {times}")
    if times == 0:
        return epsilon()
    return concat(*([expression] * times))


def any_symbol(alphabet: Alphabet | str) -> Regex:
    """``Σ`` as a union over the alphabet — the paper's ``(a+b)``."""
    sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
    return union(*(sym(s) for s in sigma))


def compile_regex(expression: Regex, alphabet: Alphabet | str) -> NFA:
    """Compile to an ε-free NFA (Thompson construction + ε-elimination).

    >>> from repro.words.alphabet import AB
    >>> nfa = compile_regex((sym("a") | sym("b")) + sym("a").star(), AB)
    >>> nfa.accepts("baaa"), nfa.accepts(""), nfa.accepts("ab")
    (True, False, False)
    """
    sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)

    # Thompson fragments over ε-NFA: states are integers; transitions are
    # (src, symbol-or-None, dst) triples with a single start/accept each.
    counter = 0
    triples: list[tuple[int, str | None, int]] = []

    def fresh() -> int:
        nonlocal counter
        counter += 1
        return counter - 1

    def build(node: Regex) -> tuple[int, int]:
        start, accept = fresh(), fresh()
        if node.kind == "sym":
            assert isinstance(node.payload, str)
            if node.payload not in sigma:
                raise AutomatonError(f"symbol {node.payload!r} outside the alphabet")
            triples.append((start, node.payload, accept))
        elif node.kind == "eps":
            triples.append((start, None, accept))
        elif node.kind == "union":
            assert isinstance(node.payload, tuple)
            for child in node.payload:
                c_start, c_accept = build(child)
                triples.append((start, None, c_start))
                triples.append((c_accept, None, accept))
        elif node.kind == "concat":
            assert isinstance(node.payload, tuple)
            previous = start
            for child in node.payload:
                c_start, c_accept = build(child)
                triples.append((previous, None, c_start))
                previous = c_accept
            triples.append((previous, None, accept))
        elif node.kind == "star":
            assert isinstance(node.payload, tuple)
            (child,) = node.payload
            c_start, c_accept = build(child)
            triples.append((start, None, accept))
            triples.append((start, None, c_start))
            triples.append((c_accept, None, c_start))
            triples.append((c_accept, None, accept))
        else:  # pragma: no cover - the constructors exhaust the kinds
            raise AutomatonError(f"unknown regex kind {node.kind!r}")
        return start, accept

    root_start, root_accept = build(expression)

    # ε-closure elimination.
    eps_successors: dict[int, set[int]] = {}
    for src, symbol, dst in triples:
        if symbol is None:
            eps_successors.setdefault(src, set()).add(dst)

    def closure(state: int) -> frozenset[int]:
        seen = {state}
        frontier = [state]
        while frontier:
            current = frontier.pop()
            for nxt in eps_successors.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    states = set(range(counter))
    transitions: dict[tuple[int, str], set[int]] = {}
    for state in states:
        for member in closure(state):
            for src, symbol, dst in triples:
                if src == member and symbol is not None:
                    transitions.setdefault((state, symbol), set()).add(dst)
    accepting = {state for state in states if root_accept in closure(state)}
    return NFA(sigma, states, transitions, {root_start}, accepting)
