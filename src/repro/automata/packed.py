"""Bit-parallel packed automata: states as indices, state sets as big-int masks.

The automata substrate's hot algorithms — subset construction, DFA
minimisation, the self-product unambiguity test, and transfer-matrix
counting — all reduce to operations on *sets of states*.  This module
stores those sets the same way :class:`repro.comm.packed.PackedMatrix`
stores matrix rows: one Python big integer per set, bit ``i`` set iff
state ``i`` is in the set.  A :class:`PackedNFA` renumbers the states of
an :class:`~repro.automata.nfa.NFA` to ``0..n-1`` (in canonical-encoding
order, so the numbering is process-stable) and keeps one successor-mask
table per alphabet symbol; one macro-step of the subset construction is
then an OR-fold over the set bits of the current mask instead of a
frozenset union, and the pair states ``(p, q)`` of the unambiguity
self-product are held row-wise — ``R[p]`` is the mask of all ``q`` with
``(p, q)`` reached — so even the ``O(n²)``-state product never handles
anything wider than an ``n``-bit integer.

Bit conventions, used consistently by every kernel:

* ``PackedNFA.tables[s][q]`` has bit ``r`` set iff ``r ∈ δ(q, σ_s)``
  (``σ_s`` is the ``s``-th symbol in alphabet order);
* ``PackedDFA.tables[s][q]`` is the successor *index* (or ``-1`` where
  the partial DFA is undefined);
* a list of ``n`` masks indexed by ``p`` encodes a relation on
  ``Q × Q`` (row ``p`` = the partners of ``p``), the layout of both
  passes of :func:`packed_is_unambiguous`.

Conversion to and from the label-carrying :class:`NFA`/:class:`DFA`
objects is lossless; ``to_key()`` gives a canonical serialization of the
renumbered structure for the :mod:`repro.engine` disk cache.  The public
entry points in :mod:`repro.automata.dfa`, :mod:`repro.automata.ops` and
:mod:`repro.automata.counting` are thin adapters over the kernels here
(the PR 2/3 pattern); the implementations they replaced are frozen in
``tests/legacy_automata.py`` (test oracles) and
:mod:`repro.automata.bench` (benchmark baselines).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA, State
from repro.backend import get_backend
from repro.backend.reference import fold_rows
from repro.backend.words import chunked_step_fn, chunked_step_tables, fold_chunked
from repro.comm.packed import iter_bits, mask_of
from repro.errors import AutomatonError
from repro.words.alphabet import Alphabet

__all__ = [
    "PackedNFA",
    "PackedDFA",
    "as_packed_nfa",
    "as_packed_dfa",
    "fold_rows",
    "chunked_step_tables",
    "fold_chunked",
    "chunked_step_fn",
    "packed_determinise",
    "packed_minimise",
    "packed_is_unambiguous",
    "transfer_counts",
    "nfa_transfer_counts",
    "count_words_by_power",
    "count_words_by_sweep",
    "count_words_table",
    "count_runs_by_power",
    "count_runs_by_sweep",
]


def _canonical_state_order(states: Iterable[State]) -> list[State]:
    """States sorted by canonical encoding — stable across hash seeds."""
    from repro.util.canonical import canonical_encode

    return sorted(states, key=canonical_encode)


class PackedNFA:
    """An NFA with integer states and per-symbol big-int successor rows.

    ``tables[s][q]`` is the bitmask of ``δ(q, σ_s)``; ``initial_mask``
    and ``accepting_mask`` pack ``I`` and ``F``.  ``labels[i]`` recovers
    the original state object of index ``i`` (identity for automata born
    packed).

    >>> from repro.words import AB
    >>> nfa = NFA(AB, {0, 1}, {(0, "a"): {0, 1}}, {0}, {1})
    >>> pnfa = PackedNFA.from_nfa(nfa)
    >>> bin(pnfa.tables[0][0]), pnfa.accepts("a")
    ('0b11', True)
    """

    __slots__ = ("alphabet", "n_states", "tables", "initial_mask", "accepting_mask", "labels")

    def __init__(
        self,
        alphabet: Alphabet | Iterable[str],
        n_states: int,
        tables: Sequence[Sequence[int]],
        initial_mask: int,
        accepting_mask: int,
        labels: Sequence[State] | None = None,
    ) -> None:
        sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        if n_states < 1:
            raise AutomatonError("an automaton needs at least one state")
        rows = [list(table) for table in tables]
        if len(rows) != len(sigma):
            raise AutomatonError(f"{len(rows)} tables for {len(sigma)} symbols")
        limit = 1 << n_states
        for table in rows:
            if len(table) != n_states:
                raise AutomatonError(f"table of length {len(table)} for {n_states} states")
            for row in table:
                if not 0 <= row < limit:
                    raise AutomatonError(f"successor mask {row:#x} does not fit {n_states} states")
        if not 0 <= initial_mask < limit or not 0 <= accepting_mask < limit:
            raise AutomatonError("initial/accepting mask does not fit the state count")
        self.alphabet = sigma
        self.n_states = n_states
        self.tables = rows
        self.initial_mask = initial_mask
        self.accepting_mask = accepting_mask
        self.labels = list(labels) if labels is not None else list(range(n_states))
        if len(self.labels) != n_states:
            raise AutomatonError("label count does not match the state count")

    # -- conversions ---------------------------------------------------

    @classmethod
    def from_nfa(cls, nfa: NFA) -> "PackedNFA":
        """Pack an :class:`NFA`, numbering states in canonical order.

        The numbering sorts states by their canonical encoding, not by
        hash, so the packed form (and therefore :meth:`to_key`) is
        identical across processes and ``PYTHONHASHSEED`` values.
        """
        ordered = _canonical_state_order(nfa.states)
        index = {state: i for i, state in enumerate(ordered)}
        tables = [[0] * len(ordered) for _ in nfa.alphabet]
        for s, symbol in enumerate(nfa.alphabet):
            table = tables[s]
            for state in ordered:
                successors = nfa.successors(state, symbol)
                if successors:
                    table[index[state]] = mask_of(index[t] for t in successors)
        return cls(
            nfa.alphabet,
            len(ordered),
            tables,
            mask_of(index[q] for q in nfa.initial),
            mask_of(index[q] for q in nfa.accepting),
            ordered,
        )

    def to_nfa(self) -> NFA:
        """Unpack into an :class:`NFA` carrying the original labels."""
        labels = self.labels
        transitions: dict[tuple[State, str], frozenset[State]] = {}
        for s, symbol in enumerate(self.alphabet):
            table = self.tables[s]
            for q in range(self.n_states):
                if table[q]:
                    transitions[(labels[q], symbol)] = frozenset(
                        labels[r] for r in iter_bits(table[q])
                    )
        return NFA._from_validated(
            self.alphabet,
            frozenset(labels),
            transitions,
            frozenset(labels[q] for q in iter_bits(self.initial_mask)),
            frozenset(labels[q] for q in iter_bits(self.accepting_mask)),
        )

    # -- semantics -----------------------------------------------------

    def step(self, mask: int, symbol_index: int) -> int:
        """The successor macro-state (as a mask) on one symbol."""
        return fold_rows(self.tables[symbol_index], mask)

    def accepts(self, word: str) -> bool:
        """Whether some accepting run on ``word`` exists (mask sweep)."""
        current = self.initial_mask
        for symbol in word:
            if symbol not in self.alphabet:
                return False
            current = self.step(current, self.alphabet.index(symbol))
            if not current:
                return False
        return bool(current & self.accepting_mask)

    def predecessor_tables(self) -> list[list[int]]:
        """Per symbol, ``pre[s][q]`` = mask of states ``p`` with ``q ∈ δ(p, σ_s)``."""
        pre = [[0] * self.n_states for _ in self.tables]
        for s, table in enumerate(self.tables):
            rows = pre[s]
            for p in range(self.n_states):
                bit = 1 << p
                for q in iter_bits(table[p]):
                    rows[q] |= bit
        return pre

    def to_key(self) -> str:
        """A canonical serialization of the renumbered structure.

        Labels are deliberately excluded (mirroring
        :meth:`~repro.comm.packed.PackedMatrix.to_key`): every packed
        kernel answers identically on two automata with the same
        renumbered structure.  Because :meth:`from_nfa` numbers states
        canonically, the key is process-stable — fit for the
        :mod:`repro.engine` disk cache.
        """
        from repro.util.canonical import canonical_encode

        return canonical_encode(
            (
                "PackedNFA",
                self.alphabet.symbols,
                self.n_states,
                tuple(tuple(table) for table in self.tables),
                self.initial_mask,
                self.accepting_mask,
            )
        )

    def __repr__(self) -> str:
        n_transitions = sum(row.bit_count() for table in self.tables for row in table)
        return f"PackedNFA(|Q|={self.n_states}, |δ|={n_transitions})"


class PackedDFA:
    """A DFA with integer states and per-symbol successor-index tables.

    ``tables[s][q]`` is the successor index, or ``-1`` where the partial
    DFA is undefined.

    >>> from repro.words import AB
    >>> dfa = DFA(AB, {0, 1}, {(0, "a"): 1}, 0, {1})
    >>> pdfa = PackedDFA.from_dfa(dfa)
    >>> pdfa.tables, pdfa.is_complete()
    ([[1, -1], [-1, -1]], False)
    """

    __slots__ = ("alphabet", "n_states", "tables", "initial", "accepting_mask", "labels")

    def __init__(
        self,
        alphabet: Alphabet | Iterable[str],
        n_states: int,
        tables: Sequence[Sequence[int]],
        initial: int,
        accepting_mask: int,
        labels: Sequence[State] | None = None,
    ) -> None:
        sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        if n_states < 1:
            raise AutomatonError("an automaton needs at least one state")
        rows = [list(table) for table in tables]
        if len(rows) != len(sigma):
            raise AutomatonError(f"{len(rows)} tables for {len(sigma)} symbols")
        for table in rows:
            if len(table) != n_states:
                raise AutomatonError(f"table of length {len(table)} for {n_states} states")
            for succ in table:
                if not -1 <= succ < n_states:
                    raise AutomatonError(f"successor index {succ} outside 0..{n_states - 1}")
        if not 0 <= initial < n_states:
            raise AutomatonError(f"initial index {initial} outside 0..{n_states - 1}")
        if not 0 <= accepting_mask < (1 << n_states):
            raise AutomatonError("accepting mask does not fit the state count")
        self.alphabet = sigma
        self.n_states = n_states
        self.tables = rows
        self.initial = initial
        self.accepting_mask = accepting_mask
        self.labels = list(labels) if labels is not None else list(range(n_states))
        if len(self.labels) != n_states:
            raise AutomatonError("label count does not match the state count")

    # -- conversions ---------------------------------------------------

    @classmethod
    def from_dfa(cls, dfa: DFA) -> "PackedDFA":
        """Pack a :class:`DFA`, numbering states in canonical order."""
        ordered = _canonical_state_order(dfa.states)
        index = {state: i for i, state in enumerate(ordered)}
        tables = [[-1] * len(ordered) for _ in dfa.alphabet]
        for s, symbol in enumerate(dfa.alphabet):
            table = tables[s]
            for state in ordered:
                succ = dfa.successor(state, symbol)
                if succ is not None:
                    table[index[state]] = index[succ]
        return cls(
            dfa.alphabet,
            len(ordered),
            tables,
            index[dfa.initial],
            mask_of(index[q] for q in dfa.accepting),
            ordered,
        )

    def to_dfa(self) -> DFA:
        """Unpack into a :class:`DFA` carrying the original labels."""
        labels = self.labels
        transitions: dict[tuple[State, str], State] = {}
        for s, symbol in enumerate(self.alphabet):
            table = self.tables[s]
            for q in range(self.n_states):
                succ = table[q]
                if succ >= 0:
                    transitions[(labels[q], symbol)] = labels[succ]
        return DFA._from_validated(
            self.alphabet,
            frozenset(labels),
            transitions,
            labels[self.initial],
            frozenset(labels[q] for q in iter_bits(self.accepting_mask)),
        )

    # -- semantics -----------------------------------------------------

    def successor(self, state: int, symbol_index: int) -> int:
        """The successor index, or ``-1`` where undefined."""
        return self.tables[symbol_index][state]

    def accepts(self, word: str) -> bool:
        """Run the word; reject on any undefined transition."""
        current = self.initial
        for symbol in word:
            if symbol not in self.alphabet:
                return False
            current = self.tables[self.alphabet.index(symbol)][current]
            if current < 0:
                return False
        return bool(self.accepting_mask >> current & 1)

    def is_complete(self) -> bool:
        """Whether every (state, symbol) pair has a successor."""
        return all(succ >= 0 for table in self.tables for succ in table)

    def reachable_mask(self) -> int:
        """The mask of states reachable from the initial state."""
        reached = 1 << self.initial
        frontier = [self.initial]
        while frontier:
            q = frontier.pop()
            for table in self.tables:
                succ = table[q]
                if succ >= 0 and not reached >> succ & 1:
                    reached |= 1 << succ
                    frontier.append(succ)
        return reached

    def to_key(self) -> str:
        """A canonical serialization of the renumbered structure (label-blind)."""
        from repro.util.canonical import canonical_encode

        return canonical_encode(
            (
                "PackedDFA",
                self.alphabet.symbols,
                self.n_states,
                tuple(tuple(table) for table in self.tables),
                self.initial,
                self.accepting_mask,
            )
        )

    def __repr__(self) -> str:
        n_transitions = sum(1 for table in self.tables for succ in table if succ >= 0)
        return f"PackedDFA(|Q|={self.n_states}, |δ|={n_transitions})"


def as_packed_nfa(nfa: "NFA | PackedNFA") -> PackedNFA:
    """Coerce either NFA representation to packed form (cf. ``as_packed``)."""
    if isinstance(nfa, PackedNFA):
        return nfa
    return PackedNFA.from_nfa(nfa)


def as_packed_dfa(dfa: "DFA | PackedDFA") -> PackedDFA:
    """Coerce either DFA representation to packed form."""
    if isinstance(dfa, PackedDFA):
        return dfa
    return PackedDFA.from_dfa(dfa)


# ----------------------------------------------------------------------
# Kernel 1: subset construction over int masks
# ----------------------------------------------------------------------


def packed_determinise(pnfa: PackedNFA) -> PackedDFA:
    """Subset construction with macro-states as big-int masks.

    Macro-states are discovered in the same breadth-first order as the
    frozenset-based construction this replaces (FIFO over discovery,
    symbols in alphabet order), so the resulting integer-labelled DFA is
    *identical* to the legacy output — but one macro-step is the active
    backend's fold (under ``words``/``numpy``, a handful of byte-table
    lookups via :func:`chunked_step_tables`) plus one dict probe on an
    int key, instead of a frozenset union plus a frozenset hash.
    """
    backend = get_backend()
    n_symbols = len(pnfa.alphabet)
    tables: list[list[int]] = [[] for _ in range(n_symbols)]
    steps = [
        (backend.make_step_fn(pnfa.tables[s], pnfa.n_states), tables[s].append)
        for s in range(n_symbols)
    ]
    index_of: dict[int, int] = {pnfa.initial_mask: 0}
    index_get = index_of.get
    order: list[int] = [pnfa.initial_mask]
    append_macro = order.append
    position = 0
    if n_symbols == 2:
        # Unrolled two-symbol loop: the benchmark alphabet, and the hot
        # path — per macro-state this is just two fold/probe/emit rounds
        # with no per-symbol iteration overhead.
        (step0, emit0), (step1, emit1) = steps
        while position < len(order):
            current = order[position]
            nxt = step0(current)
            macro_id = index_get(nxt)
            if macro_id is None:
                macro_id = len(order)
                index_of[nxt] = macro_id
                append_macro(nxt)
            emit0(macro_id)
            nxt = step1(current)
            macro_id = index_get(nxt)
            if macro_id is None:
                macro_id = len(order)
                index_of[nxt] = macro_id
                append_macro(nxt)
            emit1(macro_id)
            position += 1
    else:
        while position < len(order):
            current = order[position]
            for step, emit in steps:
                nxt = step(current)
                macro_id = index_get(nxt)
                if macro_id is None:
                    macro_id = len(order)
                    index_of[nxt] = macro_id
                    append_macro(nxt)
                emit(macro_id)
            position += 1
    accepting = mask_of(
        macro_id for macro_id, macro in enumerate(order) if macro & pnfa.accepting_mask
    )
    return PackedDFA(pnfa.alphabet, len(order), tables, 0, accepting)


# ----------------------------------------------------------------------
# Kernel 2: Hopcroft partition refinement over block masks
# ----------------------------------------------------------------------


def packed_minimise(pdfa: PackedDFA) -> PackedDFA:
    """The minimal complete DFA of the same language, Hopcroft-style.

    Completes and restricts to reachable states, refines the
    accepting/rejecting partition with Hopcroft's "process the smaller
    half" worklist (blocks and preimages are single big-int masks), and
    relabels the quotient canonically by BFS from the initial block —
    the same canonical numbering as the Moore implementation this
    replaces, so outputs are byte-identical.
    """
    n_symbols = len(pdfa.alphabet)
    n = pdfa.n_states
    tables = [list(table) for table in pdfa.tables]
    # Completion: route undefined transitions to a fresh sink.
    if any(succ < 0 for table in tables for succ in table):
        sink = n
        n += 1
        for table in tables:
            for q in range(len(table)):
                if table[q] < 0:
                    table[q] = sink
            table.append(sink)
    # Restrict to reachable states, renumbered in increasing index order.
    reached = 1 << pdfa.initial
    frontier = [pdfa.initial]
    while frontier:
        q = frontier.pop()
        for table in tables:
            succ = table[q]
            if not reached >> succ & 1:
                reached |= 1 << succ
                frontier.append(succ)
    kept = list(iter_bits(reached))
    m = len(kept)
    compress = {old: new for new, old in enumerate(kept)}
    ctables = [[compress[table[old]] for old in kept] for table in tables]
    initial = compress[pdfa.initial]
    accepting = mask_of(compress[q] for q in iter_bits(pdfa.accepting_mask & reached))

    # Hopcroft refinement.  Blocks are masks over the compressed states,
    # indexed by id; `block_of[q]` tracks each state's block.  The
    # worklist holds block ids, and only blocks actually intersecting a
    # splitter's preimage are touched (found by walking the preimage's
    # set bits), which is what keeps the loop out of the quadratic
    # all-blocks scan.
    backend = get_backend()
    pre = [[0] * m for _ in range(n_symbols)]
    for s in range(n_symbols):
        rows = pre[s]
        table = ctables[s]
        for q in range(m):
            rows[table[q]] |= 1 << q
    full = (1 << m) - 1
    blocks = [block for block in (accepting, full ^ accepting) if block]
    block_of = [0] * m
    for block_id, block in enumerate(blocks):
        for q in iter_bits(block):
            block_of[q] = block_id
    worklist: deque[int] = deque()
    pending: set[int] = set()
    seed = min(range(len(blocks)), key=lambda b: blocks[b].bit_count())
    worklist.append(seed)
    pending.add(seed)
    while worklist:
        splitter_id = worklist.popleft()
        pending.discard(splitter_id)
        splitter = blocks[splitter_id]
        for s in range(n_symbols):
            preimage = backend.fold_rows(pre[s], splitter)
            if not preimage:
                continue
            # Group the preimage by block, touching only affected blocks.
            inside_of = backend.hopcroft_split(preimage, block_of)
            for block_id, inside in inside_of.items():
                block = blocks[block_id]
                if inside == block:
                    continue
                outside = block ^ inside
                blocks[block_id] = outside
                new_id = len(blocks)
                blocks.append(inside)
                for q in iter_bits(inside):
                    block_of[q] = new_id
                if block_id in pending:
                    pending.add(new_id)
                    worklist.append(new_id)
                else:
                    smaller = (
                        new_id if inside.bit_count() <= outside.bit_count() else block_id
                    )
                    pending.add(smaller)
                    worklist.append(smaller)

    # Quotient + canonical BFS relabelling (same as the legacy numbering).
    block_succ = [
        [block_of[ctables[s][(block & -block).bit_length() - 1]] for s in range(n_symbols)]
        for block in blocks
    ]
    relabel = {block_of[initial]: 0}
    order = [block_of[initial]]
    position = 0
    while position < len(order):
        block_id = order[position]
        for s in range(n_symbols):
            succ = block_succ[block_id][s]
            if succ not in relabel:
                relabel[succ] = len(order)
                order.append(succ)
        position += 1
    out_tables = [[relabel[block_succ[block_id][s]] for block_id in order] for s in range(n_symbols)]
    out_accepting = mask_of(
        relabel[block_id] for block_id in order if blocks[block_id] & accepting
    )
    return PackedDFA(pdfa.alphabet, len(order), out_tables, 0, out_accepting)


# ----------------------------------------------------------------------
# Kernel 3: the self-product unambiguity test over pair masks
# ----------------------------------------------------------------------


def _compress_mask(mask: int, compress: dict[int, int]) -> int:
    return mask_of(compress[bit] for bit in iter_bits(mask))


def packed_is_unambiguous(pnfa: PackedNFA) -> bool:
    """The classical self-product UFA criterion, entirely on masks.

    Trims the automaton with two mask fixpoints (accessible and
    co-accessible), then explores the self-product row-wise: the reached
    pair set is kept as ``m`` masks, ``R[p]`` = the states ``q`` with
    ``(p, q)`` reachable from ``I × I`` by a common word.  One forward
    step from row ``p`` under symbol ``σ`` adds ``δ(p, σ) ×
    fold(δ(·, σ), R[p])`` — two OR-folds on ``m``-bit integers per
    (row, symbol), never a tuple set and never an ``m²``-bit value.
    Co-reachability to ``F × F`` runs the dual fold over predecessor
    rows, restricted to reached pairs.  The NFA is unambiguous iff no
    off-diagonal pair survives both passes.
    """
    n_symbols = len(pnfa.alphabet)
    # Trim: accessible ∩ co-accessible states, as mask fixpoints.
    accessible = pnfa.initial_mask
    while True:
        grown = 0
        for s in range(n_symbols):
            grown |= pnfa.step(accessible, s)
        grown &= ~accessible
        if not grown:
            break
        accessible |= grown
    pre = pnfa.predecessor_tables()
    coaccessible = pnfa.accepting_mask
    while True:
        grown = 0
        for s in range(n_symbols):
            grown |= fold_rows(pre[s], coaccessible)
        grown &= ~coaccessible
        if not grown:
            break
        coaccessible |= grown
    keep = accessible & coaccessible
    if not keep:
        return True  # empty language: no word has two runs

    kept = list(iter_bits(keep))
    m = len(kept)
    compress = {old: new for new, old in enumerate(kept)}
    tables = [
        [_compress_mask(pnfa.tables[s][old] & keep, compress) for old in kept]
        for s in range(n_symbols)
    ]
    pre_tables = [
        [_compress_mask(pre[s][old] & keep, compress) for old in kept] for s in range(n_symbols)
    ]
    initial = _compress_mask(pnfa.initial_mask & keep, compress)
    accepting = _compress_mask(pnfa.accepting_mask & keep, compress)

    # Forward: R[p] = {q : (p, q) reachable from I × I by a common word}.
    # Successors of row p under σ: pairs δ(p, σ) × ⋃_{q ∈ R[p]} δ(q, σ).
    reached = [initial if initial >> p & 1 else 0 for p in range(m)]
    dirty = list(iter_bits(initial))
    queued = set(dirty)
    while dirty:
        p = dirty.pop()
        queued.discard(p)
        row = reached[p]
        for s in range(n_symbols):
            targets = tables[s][p]
            if not targets:
                continue
            q_successors = fold_rows(tables[s], row)
            if not q_successors:
                continue
            for p2 in iter_bits(targets):
                if q_successors & ~reached[p2]:
                    reached[p2] |= q_successors
                    if p2 not in queued:
                        queued.add(p2)
                        dirty.append(p2)

    # Backward: C[p] = {q : (p, q) reached and co-reachable to F × F}.
    # Predecessors of rows C under σ, row p: the pairs (p, q) with
    # δ(p, σ) ∩ rows ≠ ∅ and δ(q, σ) ∩ ⋃_{p' ∈ δ(p, σ)} C[p'] ≠ ∅ —
    # i.e. fold C over δ(p, σ), then fold the predecessor table over it.
    co = [
        (accepting & reached[p]) if accepting >> p & 1 else 0 for p in range(m)
    ]
    dirty = [p for p in range(m) if co[p]]
    queued = set(dirty)
    while dirty:
        p2 = dirty.pop()
        queued.discard(p2)
        for s in range(n_symbols):
            sources = pre_tables[s][p2]
            if not sources:
                continue
            for p in iter_bits(sources):
                forward = fold_rows(co, tables[s][p])
                if not forward:
                    continue
                q_predecessors = fold_rows(pre_tables[s], forward) & reached[p]
                if q_predecessors & ~co[p]:
                    co[p] |= q_predecessors
                    if p not in queued:
                        queued.add(p)
                        dirty.append(p)

    return all(not (co[p] & ~(1 << p)) for p in range(m))


# ----------------------------------------------------------------------
# Kernel 4: exact transfer-matrix counting with repeated squaring
# ----------------------------------------------------------------------


def transfer_counts(pdfa: PackedDFA) -> list[list[int]]:
    """``M[i][j]`` = number of symbols taking state ``i`` to state ``j``."""
    n = pdfa.n_states
    matrix = [[0] * n for _ in range(n)]
    for table in pdfa.tables:
        for q in range(n):
            succ = table[q]
            if succ >= 0:
                matrix[q][succ] += 1
    return matrix


def nfa_transfer_counts(pnfa: PackedNFA) -> list[list[int]]:
    """``M[i][j]`` = number of transitions ``(i, σ, j)`` (counts runs)."""
    n = pnfa.n_states
    matrix = [[0] * n for _ in range(n)]
    for table in pnfa.tables:
        for q in range(n):
            for succ in iter_bits(table[q]):
                matrix[q][succ] += 1
    return matrix


def _mat_mul(a: list[list[int]], b: list[list[int]]) -> list[list[int]]:
    return get_backend().mat_mul(a, b)


def _vec_mat(vector: list[int], matrix: list[list[int]]) -> list[int]:
    return get_backend().vec_mat(vector, matrix)


def _accepting_sum(vector: list[int], accepting_mask: int) -> int:
    return sum(vector[j] for j in iter_bits(accepting_mask))


def _useful_restriction(
    matrix: list[list[int]], vector: list[int], accepting_mask: int
) -> tuple[list[list[int]], list[int], int]:
    """Restrict the counting problem to states on some initial→accepting path.

    A state off every such path contributes nothing to the final sum, but
    can dominate the *intermediate* entries of ``M^k`` — a completion
    sink's self-loops count all ``|Σ|^k`` dead paths, turning entries
    into ``Θ(k)``-bit integers even when the answer itself is small.
    Dropping non-useful states keeps repeated squaring honest: entry
    growth then reflects the counted language, not the completion.
    """
    n = len(vector)
    forward = {i for i, value in enumerate(vector) if value}
    stack = list(forward)
    while stack:
        i = stack.pop()
        for j, count in enumerate(matrix[i]):
            if count and j not in forward:
                forward.add(j)
                stack.append(j)
    backward = {j for j in range(n) if accepting_mask >> j & 1}
    stack = list(backward)
    while stack:
        j = stack.pop()
        for i in range(n):
            if matrix[i][j] and i not in backward:
                backward.add(i)
                stack.append(i)
    keep = sorted(forward & backward)
    if len(keep) == n:
        return matrix, vector, accepting_mask
    sub_matrix = [[matrix[i][j] for j in keep] for i in keep]
    sub_vector = [vector[i] for i in keep]
    sub_accepting = sum(1 << k for k, i in enumerate(keep) if accepting_mask >> i & 1)
    return sub_matrix, sub_vector, sub_accepting


def _count_by_power(matrix: list[list[int]], vector: list[int], accepting_mask: int, length: int) -> int:
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    matrix, vector, accepting_mask = _useful_restriction(matrix, vector, accepting_mask)
    if not vector:
        return 0
    backend = get_backend()
    remaining = length
    while remaining:
        if remaining & 1:
            vector = backend.vec_mat(vector, matrix)
        remaining >>= 1
        if remaining:
            matrix = backend.mat_mul(matrix, matrix)
    return _accepting_sum(vector, accepting_mask)


def count_words_by_power(pdfa: PackedDFA, length: int) -> int:
    """Exact accepted-word count at one length via repeated squaring.

    ``O(|Q|³ log length)`` exact integer matrix products instead of
    ``length`` state sweeps — the win for long words over small automata
    (``count_dfa_words_of_length(d, 2n)`` in ``O(log n)`` products).
    """
    vector = [0] * pdfa.n_states
    vector[pdfa.initial] = 1
    return _count_by_power(transfer_counts(pdfa), vector, pdfa.accepting_mask, length)


def count_words_by_sweep(pdfa: PackedDFA, length: int) -> int:
    """Exact accepted-word count at one length via ``length`` vector sweeps.

    ``O(length · |δ|)`` — the better regime for short words or large
    automata; exactly the legacy recurrence on integer vectors instead of
    per-state dicts.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    vector = [0] * pdfa.n_states
    vector[pdfa.initial] = 1
    adjacency = _adjacency(transfer_counts(pdfa))
    sweep = get_backend().make_sweep_fn(adjacency, pdfa.n_states)
    for _ in range(length):
        vector = sweep(vector)
    return _accepting_sum(vector, pdfa.accepting_mask)


def count_words_table(pdfa: PackedDFA, max_length: int) -> dict[int, int]:
    """``{length: #accepted words}`` for every length up to the bound.

    One incremental sweep — each length extends the previous vector, so
    the whole table costs ``O(max_length · |δ|)``.
    """
    if max_length < 0:
        raise ValueError(f"max_length must be non-negative, got {max_length}")
    vector = [0] * pdfa.n_states
    vector[pdfa.initial] = 1
    adjacency = _adjacency(transfer_counts(pdfa))
    sweep = get_backend().make_sweep_fn(adjacency, pdfa.n_states)
    table = {0: _accepting_sum(vector, pdfa.accepting_mask)}
    for length in range(1, max_length + 1):
        vector = sweep(vector)
        table[length] = _accepting_sum(vector, pdfa.accepting_mask)
    return table


def count_runs_by_power(pnfa: PackedNFA, length: int) -> int:
    """Exact accepting-run count at one length via repeated squaring."""
    vector = [1 if pnfa.initial_mask >> q & 1 else 0 for q in range(pnfa.n_states)]
    return _count_by_power(nfa_transfer_counts(pnfa), vector, pnfa.accepting_mask, length)


def count_runs_by_sweep(pnfa: PackedNFA, length: int) -> int:
    """Exact accepting-run count at one length via vector sweeps."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    vector = [1 if pnfa.initial_mask >> q & 1 else 0 for q in range(pnfa.n_states)]
    adjacency = _adjacency(nfa_transfer_counts(pnfa))
    sweep = get_backend().make_sweep_fn(adjacency, pnfa.n_states)
    for _ in range(length):
        vector = sweep(vector)
    return _accepting_sum(vector, pnfa.accepting_mask)


def _adjacency(matrix: list[list[int]]) -> list[list[tuple[int, int]]]:
    return [
        [(j, count) for j, count in enumerate(row) if count] for row in matrix
    ]


def _sweep(vector: list[int], adjacency: list[list[tuple[int, int]]], n: int) -> list[int]:
    return get_backend().make_sweep_fn(adjacency, n)(vector)
