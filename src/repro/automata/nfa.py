"""Nondeterministic finite automata (Theorem 1(2) substrate).

The paper compares uCFG sizes against NFAs: ``L_n`` has an NFA of size
``Θ(n)`` but no uCFG below ``2^Ω(n)``.  States are arbitrary hashable
objects; the size measure reported for Theorem 1 is the number of states,
and :attr:`NFA.n_transitions` is provided alongside because both measures
are linear for the paper's automaton.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.errors import AutomatonError
from repro.words.alphabet import Alphabet

__all__ = ["NFA", "State"]

#: An automaton state: any hashable object.
State = Hashable


class NFA:
    """An NFA ``(Q, Σ, δ, I, F)`` without epsilon transitions.

    ``transitions`` maps ``(state, symbol)`` to a set of successor states.
    Multiple initial states are allowed (the usual convention in the
    unambiguous-automata literature, e.g. [16] cited by the paper).

    >>> from repro.words import AB
    >>> nfa = NFA(AB, states={0, 1}, transitions={(0, "a"): {1}},
    ...           initial={0}, accepting={1})
    >>> nfa.accepts("a"), nfa.accepts("b")
    (True, False)
    """

    __slots__ = ("_alphabet", "_states", "_delta", "_initial", "_accepting")

    def __init__(
        self,
        alphabet: Alphabet | Iterable[str],
        states: Iterable[State],
        transitions: Mapping[tuple[State, str], Iterable[State]],
        initial: Iterable[State],
        accepting: Iterable[State],
    ) -> None:
        sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        state_set = frozenset(states)
        if not state_set:
            raise AutomatonError("an automaton needs at least one state")
        initial_set = frozenset(initial)
        accepting_set = frozenset(accepting)
        if not initial_set <= state_set:
            raise AutomatonError(f"initial states {initial_set - state_set!r} undeclared")
        if not accepting_set <= state_set:
            raise AutomatonError(f"accepting states {accepting_set - state_set!r} undeclared")
        delta: dict[tuple[State, str], frozenset[State]] = {}
        for (src, sym), targets in transitions.items():
            if src not in state_set:
                raise AutomatonError(f"transition from undeclared state {src!r}")
            if sym not in sigma:
                raise AutomatonError(f"transition on undeclared symbol {sym!r}")
            target_set = frozenset(targets)
            if not target_set <= state_set:
                raise AutomatonError(
                    f"transition ({src!r}, {sym!r}) targets undeclared states "
                    f"{target_set - state_set!r}"
                )
            if target_set:
                delta[(src, sym)] = target_set
        self._alphabet = sigma
        self._states = state_set
        self._delta = delta
        self._initial = initial_set
        self._accepting = accepting_set

    @classmethod
    def _from_validated(
        cls,
        alphabet: Alphabet,
        states: frozenset[State],
        transitions: dict[tuple[State, str], frozenset[State]],
        initial: frozenset[State],
        accepting: frozenset[State],
    ) -> "NFA":
        """Trusted constructor: callers guarantee consistency.

        Skips the validation of ``__init__`` (including the dropping of
        empty target sets — the caller must not pass any) for internal
        call sites whose output is consistent by construction, e.g.
        :meth:`repro.automata.packed.PackedNFA.to_nfa`.
        """
        nfa = cls.__new__(cls)
        nfa._alphabet = alphabet
        nfa._states = states
        nfa._delta = transitions
        nfa._initial = initial
        nfa._accepting = accepting
        return nfa

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        return self._alphabet

    @property
    def states(self) -> frozenset[State]:
        return self._states

    @property
    def initial(self) -> frozenset[State]:
        return self._initial

    @property
    def accepting(self) -> frozenset[State]:
        return self._accepting

    @property
    def n_states(self) -> int:
        """The state count — the size measure used in Theorem 1(2)."""
        return len(self._states)

    @property
    def n_transitions(self) -> int:
        """The number of ``(state, symbol, state)`` transition triples."""
        return sum(len(targets) for targets in self._delta.values())

    def successors(self, state: State, symbol: str) -> frozenset[State]:
        """``δ(state, symbol)`` (empty when undefined)."""
        return self._delta.get((state, symbol), frozenset())

    def transitions(self) -> Iterable[tuple[State, str, State]]:
        """Yield all transition triples deterministically."""
        for (src, sym), targets in sorted(self._delta.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])):
            for dst in sorted(targets, key=str):
                yield src, sym, dst

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def step(self, states: frozenset[State], symbol: str) -> frozenset[State]:
        """The successor macro-state of a set of states on one symbol."""
        out: set[State] = set()
        for state in states:
            out |= self._delta.get((state, symbol), frozenset())
        return frozenset(out)

    def accepts(self, word: str) -> bool:
        """Whether some run on ``word`` from an initial to an accepting state exists."""
        current = self._initial
        for symbol in word:
            if symbol not in self._alphabet:
                return False
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self._accepting)

    def count_accepting_runs(self, word: str) -> int:
        """The number of accepting runs on ``word`` — ≤ 1 iff unambiguous on it."""
        weights: dict[State, int] = {q: 1 for q in self._initial}
        for symbol in word:
            if symbol not in self._alphabet:
                return 0
            nxt: dict[State, int] = {}
            for state, weight in weights.items():
                for succ in self._delta.get((state, symbol), frozenset()):
                    nxt[succ] = nxt.get(succ, 0) + weight
            weights = nxt
        return sum(w for q, w in weights.items() if q in self._accepting)

    def language_up_to(self, max_length: int) -> frozenset[str]:
        """All accepted words of length ≤ ``max_length`` (breadth-first).

        Explores (macro-state, word) pairs level by level, extending only
        words whose macro-state is non-empty — so only viable prefixes
        are ever enumerated, not all ``|Σ|^≤L`` candidate words.
        """
        accepted: set[str] = set()
        level: dict[str, frozenset[State]] = {"": self._initial}
        for length in range(max_length + 1):
            for word, macro in level.items():
                if macro & self._accepting:
                    accepted.add(word)
            if length == max_length or not level:
                break
            nxt: dict[str, frozenset[State]] = {}
            for word, macro in level.items():
                for symbol in self._alphabet:
                    successor = self.step(macro, symbol)
                    if successor:
                        nxt[word + symbol] = successor
            level = nxt
        return frozenset(accepted)

    def to_key(self) -> str:
        """A canonical, process-stable serialization of this automaton.

        States live in ``frozenset`` containers, so their iteration order
        varies with the hash seed; the encoding here sorts every state set
        and the transition relation by canonical encoding, making the key
        identical across processes.  Used by :mod:`repro.engine` to build
        disk-cache keys.

        >>> from repro.words import AB
        >>> x = NFA(AB, {0, 1}, {(0, "a"): {1}}, {0}, {1})
        >>> y = NFA(AB, {1, 0}, {(0, "a"): {1}}, {0}, {1})
        >>> x.to_key() == y.to_key()
        True
        """
        from repro.util.canonical import canonical_encode

        return canonical_encode(
            (
                "NFA",
                self._alphabet.symbols,
                frozenset(canonical_encode(q) for q in self._states),
                frozenset(
                    canonical_encode((src, sym, dst))
                    for (src, sym), targets in self._delta.items()
                    for dst in targets
                ),
                frozenset(canonical_encode(q) for q in self._initial),
                frozenset(canonical_encode(q) for q in self._accepting),
            )
        )

    def __repr__(self) -> str:
        return (
            f"NFA(|Q|={self.n_states}, |δ|={self.n_transitions}, "
            f"|I|={len(self._initial)}, |F|={len(self._accepting)})"
        )
