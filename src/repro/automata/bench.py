"""Legacy-vs-packed benchmark cores for the automata substrate.

Each timing row pits the bit-parallel kernels of
:mod:`repro.automata.packed` against the frozenset/dict implementations
they replaced — subset construction over hashed macro-states, Moore
refinement with per-round signature sorting, the tuple-set self-product
UFA test, and the per-state dict counting DP — preserved below as
module-level baselines so engine workers can import them.  The baselines
duplicate the test oracles in ``tests/legacy_automata.py`` on purpose:
the test suite is not importable from worker processes, and the oracles
must not depend on benchmark code.  Results are plain JSON, produced by
the ``automata.bench.row`` / ``automata.bench.count`` / ``automata.bench``
jobs and the ``python -m repro bench automata`` front end.

Inputs are the paper's ``L_n`` family: determinise and minimise sweep the
``Θ(n)`` guess-and-verify NFA (whose determinisation is the ``2^Θ(n)``
sliding-window DFA), the ambiguity rows sweep the ``O(n²)``-state *exact*
``L_n`` NFA (whose self-product has ``O(n⁴)`` pairs — the harshest
workload), and the counting rows raise the transfer matrix of the
slender unique-match DFA (``b* a b^{n-1} a b*``) to the ``2^exp``-th
power — the regime where ``O(log L)`` squarings beat ``L`` sweeps.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.automata.dfa import DFA, determinise, minimise
from repro.automata.nfa import NFA, State
from repro.automata.ops import is_unambiguous_nfa
from repro.automata.counting import count_dfa_words_of_length

__all__ = [
    "OPS",
    "bench_automata_row",
    "bench_count_row",
    "summarise_automata_rows",
    "legacy_determinise",
    "legacy_minimise",
    "legacy_is_unambiguous_nfa",
    "legacy_count_dfa_words_of_length",
]


# ----------------------------------------------------------------------
# Frozen baselines (the pre-packed algorithms, verbatim)
# ----------------------------------------------------------------------


def legacy_determinise(nfa: NFA) -> DFA:
    """Subset construction over frozenset macro-states (pre-packed)."""
    initial = nfa.initial
    macro_states: dict[frozenset[State], int] = {initial: 0}
    order: list[frozenset[State]] = [initial]
    delta: dict[tuple[State, str], State] = {}
    index = 0
    while index < len(order):
        current = order[index]
        current_id = macro_states[current]
        for symbol in nfa.alphabet:
            nxt = nfa.step(current, symbol)
            if nxt not in macro_states:
                macro_states[nxt] = len(order)
                order.append(nxt)
            delta[(current_id, symbol)] = macro_states[nxt]
        index += 1
    accepting = {macro_states[macro] for macro in order if macro & nfa.accepting}
    return DFA(nfa.alphabet, set(macro_states.values()), delta, 0, accepting)


def legacy_minimise(dfa: DFA) -> DFA:
    """Moore partition refinement with per-round signature sorting (pre-packed)."""
    complete = dfa.completed().reachable()
    states = sorted(complete.states, key=str)
    block_of: dict[State, int] = {
        q: (1 if q in complete.accepting else 0) for q in states
    }
    symbols = complete.alphabet.symbols
    n_blocks = len(set(block_of.values()))
    while True:
        signatures: dict[State, tuple] = {}
        for q in states:
            signatures[q] = (
                block_of[q],
                tuple(block_of[complete.successor(q, s)] for s in symbols),
            )
        distinct = sorted(set(signatures.values()), key=str)
        renumber = {sig: i for i, sig in enumerate(distinct)}
        block_of = {q: renumber[signatures[q]] for q in states}
        if len(distinct) == n_blocks:
            break
        n_blocks = len(distinct)
    initial_block = block_of[complete.initial]
    relabel: dict[int, int] = {initial_block: 0}
    queue = [initial_block]
    block_successor: dict[tuple[int, str], int] = {}
    representative: dict[int, State] = {}
    for q in states:
        representative.setdefault(block_of[q], q)
    while queue:
        blk = queue.pop(0)
        rep = representative[blk]
        for s in symbols:
            succ_blk = block_of[complete.successor(rep, s)]
            block_successor[(blk, s)] = succ_blk
            if succ_blk not in relabel:
                relabel[succ_blk] = len(relabel)
                queue.append(succ_blk)
    delta = {
        (relabel[blk], s): relabel[succ]
        for (blk, s), succ in block_successor.items()
        if blk in relabel
    }
    accepting = {
        relabel[block_of[q]]
        for q in states
        if q in complete.accepting and block_of[q] in relabel
    }
    return DFA(complete.alphabet, set(relabel.values()), delta, 0, accepting)


def _legacy_trim_nfa(nfa: NFA) -> NFA:
    accessible: set[State] = set(nfa.initial)
    frontier = list(nfa.initial)
    while frontier:
        q = frontier.pop()
        for s in nfa.alphabet:
            for succ in nfa.successors(q, s):
                if succ not in accessible:
                    accessible.add(succ)
                    frontier.append(succ)
    predecessors: dict[State, set[State]] = {q: set() for q in nfa.states}
    for src, _sym, dst in nfa.transitions():
        predecessors[dst].add(src)
    coaccessible: set[State] = set(nfa.accepting)
    frontier = list(nfa.accepting)
    while frontier:
        q = frontier.pop()
        for pred in predecessors[q]:
            if pred not in coaccessible:
                coaccessible.add(pred)
                frontier.append(pred)
    keep = accessible & coaccessible
    if not keep:
        dead = next(iter(nfa.states))
        return NFA(nfa.alphabet, {dead}, {}, {dead}, set())
    transitions: dict[tuple[State, str], set[State]] = {}
    for src, sym, dst in nfa.transitions():
        if src in keep and dst in keep:
            transitions.setdefault((src, sym), set()).add(dst)
    return NFA(nfa.alphabet, keep, transitions, nfa.initial & keep, nfa.accepting & keep)


def legacy_is_unambiguous_nfa(nfa: NFA) -> bool:
    """Self-product UFA test over Python sets of state pairs (pre-packed)."""
    trimmed = _legacy_trim_nfa(nfa)
    starts = {(p, q) for p in trimmed.initial for q in trimmed.initial}
    reached: set[tuple[State, State]] = set(starts)
    frontier = list(starts)
    edges: dict[tuple[State, State], set[tuple[State, State]]] = {}
    while frontier:
        p, q = frontier.pop()
        for s in trimmed.alphabet:
            for ps in trimmed.successors(p, s):
                for qs in trimmed.successors(q, s):
                    pair = (ps, qs)
                    edges.setdefault((p, q), set()).add(pair)
                    if pair not in reached:
                        reached.add(pair)
                        frontier.append(pair)
    reverse: dict[tuple[State, State], set[tuple[State, State]]] = {}
    for src, dsts in edges.items():
        for dst in dsts:
            reverse.setdefault(dst, set()).add(src)
    goal = {
        (p, q)
        for (p, q) in reached
        if p in trimmed.accepting and q in trimmed.accepting
    }
    coaccessible: set[tuple[State, State]] = set(goal)
    frontier = list(goal)
    while frontier:
        pair = frontier.pop()
        for pred in reverse.get(pair, ()):
            if pred not in coaccessible:
                coaccessible.add(pred)
                frontier.append(pred)
    return all(p == q for (p, q) in reached & coaccessible)


def legacy_count_dfa_words_of_length(dfa: DFA, length: int) -> int:
    """Per-state dict DP, one layer per symbol of length (pre-packed)."""
    weights: dict[State, int] = {dfa.initial: 1}
    for _ in range(length):
        nxt: dict[State, int] = {}
        for state, weight in weights.items():
            for symbol in dfa.alphabet:
                succ = dfa.successor(state, symbol)
                if succ is not None:
                    nxt[succ] = nxt.get(succ, 0) + weight
        weights = nxt
    return sum(w for q, w in weights.items() if q in dfa.accepting)


# ----------------------------------------------------------------------
# The timed operations
# ----------------------------------------------------------------------


def _timed(fn, *args) -> tuple[float, Any]:
    start = perf_counter()
    result = fn(*args)
    return perf_counter() - start, result


def _same_dfa(a: DFA, b: DFA) -> bool:
    return (
        a.states == b.states
        and a.initial == b.initial
        and a.accepting == b.accepting
        and a.transitions() == b.transitions()
    )


def _run_determinise(n: int, run_legacy: bool) -> dict[str, Any]:
    from repro.automata.packed import PackedNFA, packed_determinise
    from repro.languages.nfa_ln import ln_match_nfa

    nfa = ln_match_nfa(n)
    pnfa = PackedNFA.from_nfa(nfa)  # packing outside the timer, as in comm/bench
    packed_s, packed_dfa = _timed(packed_determinise, pnfa)
    result: dict[str, Any] = {
        "packed": {"seconds": packed_s, "value": packed_dfa.n_states},
        "agree": True,
    }
    if run_legacy:
        legacy_s, legacy_dfa = _timed(legacy_determinise, nfa)
        result["legacy"] = {"seconds": legacy_s, "value": legacy_dfa.n_states}
        result["agree"] = _same_dfa(packed_dfa.to_dfa(), legacy_dfa)
    else:
        result["legacy"] = {"skipped": True}
    return result


def _run_minimise(n: int, run_legacy: bool) -> dict[str, Any]:
    from repro.automata.packed import PackedNFA, packed_determinise, packed_minimise
    from repro.languages.nfa_ln import ln_match_nfa

    pdfa = packed_determinise(PackedNFA.from_nfa(ln_match_nfa(n)))  # shared input
    packed_s, packed_min = _timed(packed_minimise, pdfa)
    result: dict[str, Any] = {
        "packed": {"seconds": packed_s, "value": packed_min.n_states},
        "agree": True,
    }
    if run_legacy:
        dfa = pdfa.to_dfa()
        legacy_s, legacy_min = _timed(legacy_minimise, dfa)
        result["legacy"] = {"seconds": legacy_s, "value": legacy_min.n_states}
        result["agree"] = _same_dfa(packed_min.to_dfa(), legacy_min)
    else:
        result["legacy"] = {"skipped": True}
    return result


def _run_ambiguity(n: int, run_legacy: bool) -> dict[str, Any]:
    from repro.automata.packed import PackedNFA, packed_is_unambiguous
    from repro.languages.nfa_ln import ln_nfa_exact

    nfa = ln_nfa_exact(n)
    pnfa = PackedNFA.from_nfa(nfa)
    packed_s, packed_verdict = _timed(packed_is_unambiguous, pnfa)
    result: dict[str, Any] = {
        "n_states": nfa.n_states,
        "packed": {"seconds": packed_s, "value": packed_verdict},
        "agree": True,
    }
    if run_legacy:
        legacy_s, legacy_verdict = _timed(legacy_is_unambiguous_nfa, nfa)
        result["legacy"] = {"seconds": legacy_s, "value": legacy_verdict}
        result["agree"] = packed_verdict == legacy_verdict
    else:
        result["legacy"] = {"skipped": True}
    return result


#: op name -> (runner, legacy cap, packed cap): past the legacy cap only
#: the packed side runs (that difference *is* the frontier extension the
#: packed engine buys); past the packed cap the row skips the op.
OPS: dict[str, tuple[Any, int, int]] = {
    "determinise": (_run_determinise, 16, 18),
    "minimise": (_run_minimise, 12, 14),
    "ambiguity": (_run_ambiguity, 36, 48),
}


def bench_automata_row(n: int) -> dict[str, Any]:
    """Time every op pair on the ``L_n`` automata; all values cross-checked.

    ``{"skipped": True}`` on the legacy side means ``n`` is past the
    legacy feasibility cap and only the packed kernel ran; an op past
    both caps is skipped outright.
    """
    ops: dict[str, Any] = {}
    for name, (runner, legacy_cap, packed_cap) in OPS.items():
        if n > packed_cap:
            ops[name] = {"skipped": True}
            continue
        result = runner(n, run_legacy=n <= legacy_cap)
        if not result["agree"]:
            raise ValueError(f"automata bench: legacy and packed disagree on {name} at n={n}")
        for side in ("legacy", "packed"):
            if "seconds" in result[side]:
                result[side]["seconds"] = round(result[side]["seconds"], 6)
        if "seconds" in result["legacy"] and result["packed"]["seconds"] > 0:
            result["speedup"] = round(
                result["legacy"]["seconds"] / result["packed"]["seconds"], 2
            )
        ops[name] = result
    return {"n": n, "ops": ops}


#: Largest exponent the legacy linear sweep completes in reasonable time
#: (2^18 layers of the dict DP is already ~10 seconds).
COUNT_LEGACY_CAP = 18

#: Largest exponent timed on the packed side.  The transfer-matrix power
#: only needs ``exp`` squarings, so this cap is about keeping the sweep
#: short, not about feasibility.
COUNT_PACKED_CAP = 30


def bench_count_row(exp: int, n: int = 8) -> dict[str, Any]:
    """Time counting words of length ``2^exp`` in the unique-match DFA.

    The input is :func:`~repro.languages.dfa_ln.ln_unique_match_dfa`
    (``b* a b^{n-1} a b*``), which is *slender*: exactly ``2^exp - n``
    words per length, so counts stay ``O(exp)`` bits.  Here the packed
    transfer-matrix power costs ``exp`` squarings of a small matrix while
    the legacy dict DP still sweeps all ``2^exp`` layers — the
    ``O(log L)`` vs ``O(L)`` separation the kernel exists for.  (On
    *dense* DFAs such as the full match language the counts themselves
    carry ``Θ(L)`` bits, so both sides are bound by big-int arithmetic
    and the power wins only modestly; the slender family isolates the
    algorithmic gap.)  Past :data:`COUNT_LEGACY_CAP` only the packed side
    runs; counts are exact arbitrary-precision integers, cross-checked
    and recorded verbatim.
    """
    from repro.languages.dfa_ln import ln_unique_match_dfa

    dfa = ln_unique_match_dfa(n)
    length = 2**exp
    packed_s, packed_count = _timed(count_dfa_words_of_length, dfa, length)
    row: dict[str, Any] = {
        "exp": exp,
        "n": n,
        "length": length,
        "dfa_states": dfa.n_states,
        "count": packed_count,
        "packed": {"seconds": round(packed_s, 6)},
        "agree": True,
    }
    if packed_count != length - n:  # closed form for the slender family
        raise ValueError(f"automata bench: count {packed_count} != {length - n} at exp={exp}")
    if exp <= COUNT_LEGACY_CAP:
        legacy_s, legacy_count = _timed(legacy_count_dfa_words_of_length, dfa, length)
        if legacy_count != packed_count:
            raise ValueError(f"automata bench: counting disagrees at exp={exp}")
        row["legacy"] = {"seconds": round(legacy_s, 6)}
        if packed_s > 0:
            row["speedup"] = round(legacy_s / packed_s, 2)
    else:
        row["legacy"] = {"skipped": True}
    return row


def _completed(op_result: dict, side: str) -> bool:
    if op_result.get("skipped"):
        return False
    return "seconds" in op_result.get(side, {})


def summarise_automata_rows(
    rows: list[dict], count_rows: list[dict], budget_s: float
) -> dict[str, Any]:
    """Per-op frontier summary over a sweep of benchmark rows.

    * ``largest_common_n`` — largest ``n`` where *both* implementations
      ran, and the speedup measured there;
    * ``largest_n_within_budget`` — per side, largest ``n`` completed in
      at most ``budget_s`` seconds: the parameter-gain frontier of the
      packed engine (for ambiguity this is the "feasible ``L_n`` sweep"
      extension the acceptance criteria ask for).

    Counting rows are summarised the same way over ``exp`` (the length
    is ``2^exp``, so a frontier gap of ``k`` is a ``2^k``-fold longer
    word).
    """
    ops_summary: dict[str, Any] = {}
    op_names = sorted({name for row in rows for name in row["ops"]})
    for name in op_names:
        common = [
            r
            for r in rows
            if _completed(r["ops"][name], "legacy") and _completed(r["ops"][name], "packed")
        ]
        in_budget = {
            side: [
                r["n"]
                for r in rows
                if _completed(r["ops"][name], side)
                and r["ops"][name][side]["seconds"] <= budget_s
            ]
            for side in ("legacy", "packed")
        }
        summary: dict[str, Any] = {
            "largest_n_within_budget": {
                side: max(ns, default=None) for side, ns in in_budget.items()
            },
        }
        if common:
            at = max(common, key=lambda r: r["n"])
            summary["largest_common_n"] = at["n"]
            summary["speedup_at_largest_common"] = at["ops"][name].get("speedup")
        ops_summary[name] = summary
    if count_rows:
        common = [r for r in count_rows if "seconds" in r.get("legacy", {})]
        summary = {
            "largest_exp_within_budget": {
                "legacy": max(
                    (r["exp"] for r in common if r["legacy"]["seconds"] <= budget_s),
                    default=None,
                ),
                "packed": max(
                    (
                        r["exp"]
                        for r in count_rows
                        if r["packed"]["seconds"] <= budget_s
                    ),
                    default=None,
                ),
            },
        }
        if common:
            at = max(common, key=lambda r: r["exp"])
            summary["largest_common_exp"] = at["exp"]
            summary["speedup_at_largest_common"] = at.get("speedup")
        ops_summary["counting"] = summary
    return {"budget_s": budget_s, "ops": ops_summary}
