"""Exact combinatorial primitives.

These are thin, carefully specified wrappers used throughout the
reproduction: the discrepancy calculations of Section 4.2 (Lemma 18 and
Lemma 19) are sums of binomials and powers, and the rectangle machinery
iterates over subsets of small ground sets.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")

__all__ = [
    "binomial",
    "iter_subsets",
    "iter_subsets_of_size",
    "popcount",
    "powerset_size",
]


def binomial(n: int, k: int) -> int:
    """Return the binomial coefficient ``C(n, k)`` as an exact integer.

    Out-of-range ``k`` (negative or larger than ``n``) yields ``0``, which is
    the convention the alternating-sum identities of Lemma 18 rely on.

    >>> binomial(4, 2)
    6
    >>> binomial(4, 5)
    0
    """
    if n < 0:
        raise ValueError(f"binomial: n must be non-negative, got {n}")
    if k < 0 or k > n:
        return 0
    return math.comb(n, k)


def popcount(x: int) -> int:
    """Return the number of set bits of a non-negative integer.

    >>> popcount(0b1011)
    3
    """
    if x < 0:
        raise ValueError(f"popcount: x must be non-negative, got {x}")
    return x.bit_count()


def powerset_size(n: int) -> int:
    """Return ``2**n``, the number of subsets of an ``n``-element set."""
    if n < 0:
        raise ValueError(f"powerset_size: n must be non-negative, got {n}")
    return 1 << n


def iter_subsets(items: Sequence[T] | Iterable[T]) -> Iterator[frozenset[T]]:
    """Yield every subset of ``items`` as a frozenset, smallest masks first.

    The iteration order is deterministic: subsets are produced in increasing
    order of the bitmask over the input sequence order.  ``items`` must be
    duplicate-free.

    >>> sorted(len(s) for s in iter_subsets("ab"))
    [0, 1, 1, 2]
    """
    pool = list(items)
    if len(set(pool)) != len(pool):
        raise ValueError("iter_subsets: items must not contain duplicates")
    n = len(pool)
    for mask in range(1 << n):
        yield frozenset(pool[i] for i in range(n) if mask >> i & 1)


def iter_subsets_of_size(items: Sequence[T] | Iterable[T], k: int) -> Iterator[frozenset[T]]:
    """Yield every ``k``-element subset of ``items`` as a frozenset.

    >>> sorted(sorted(s) for s in iter_subsets_of_size("abc", 2))
    [['a', 'b'], ['a', 'c'], ['b', 'c']]
    """
    import itertools

    pool = list(items)
    if len(set(pool)) != len(pool):
        raise ValueError("iter_subsets_of_size: items must not contain duplicates")
    if k < 0:
        raise ValueError(f"iter_subsets_of_size: k must be non-negative, got {k}")
    for combo in itertools.combinations(pool, k):
        yield frozenset(combo)
