"""Canonical, process-stable encodings of Python values.

The :mod:`repro.engine` disk cache keys every result by *job name +
parameters + code fingerprint*.  For those keys to be stable across
processes (and across ``PYTHONHASHSEED`` values) the encoding must not
depend on dict/set iteration order or on ``id()``-derived ``repr`` output.
This module provides a tiny total encoding for the value shapes the
library actually uses:

* JSON scalars (``None``, ``bool``, ``int``, ``float``, ``str``);
* tuples and lists (encoded positionally);
* dicts (encoded sorted by encoded key);
* sets and frozensets (encoded as sorted multiset of encodings);
* any object exposing a ``to_key() -> str`` method (grammars, automata,
  certificates — see the satellite implementations in
  :meth:`repro.grammars.cfg.CFG.to_key` etc.).

The encoding is injective on the supported shapes: every composite is
length- and type-tagged, so ``("a", "b")`` and ``("a,b",)`` differ.

>>> canonical_encode({"b": 1, "a": (2, 3)})
'd2:s1:a=t2:i2,i3;s1:b=i1;'
>>> canonical_encode({"a": (2, 3), "b": 1}) == canonical_encode({"b": 1, "a": (2, 3)})
True
"""

from __future__ import annotations

import hashlib
from typing import Any

__all__ = ["canonical_encode", "canonical_digest"]


def canonical_encode(value: Any) -> str:
    """Encode ``value`` deterministically; raise TypeError on unsupported types."""
    if value is None:
        return "n"
    if isinstance(value, bool):
        return "T" if value else "F"
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        return f"f{value!r}"
    if isinstance(value, str):
        return f"s{len(value)}:{value}"
    if isinstance(value, bytes):
        return f"y{len(value)}:{value.hex()}"
    if isinstance(value, tuple):
        return f"t{len(value)}:" + ",".join(canonical_encode(v) for v in value)
    if isinstance(value, list):
        return f"l{len(value)}:" + ",".join(canonical_encode(v) for v in value)
    if isinstance(value, (set, frozenset)):
        parts = sorted(canonical_encode(v) for v in value)
        return f"e{len(parts)}:" + ",".join(parts)
    if isinstance(value, dict):
        items = sorted(
            (canonical_encode(k), canonical_encode(v)) for k, v in value.items()
        )
        return f"d{len(items)}:" + "".join(f"{k}={v};" for k, v in items)
    to_key = getattr(value, "to_key", None)
    if callable(to_key):
        key = to_key()
        if not isinstance(key, str):
            raise TypeError(f"{type(value).__name__}.to_key() must return str")
        return f"k{len(key)}:{key}"
    raise TypeError(
        f"canonical_encode: unsupported type {type(value).__name__} "
        "(give the object a to_key() -> str method)"
    )


def canonical_digest(value: Any) -> str:
    """A hex SHA-256 digest of :func:`canonical_encode`.

    >>> canonical_digest({"n": 16}) == canonical_digest({"n": 16})
    True
    >>> len(canonical_digest(0))
    64
    """
    return hashlib.sha256(canonical_encode(value).encode("utf-8")).hexdigest()
