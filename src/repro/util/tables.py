"""Plain-text table rendering for benchmark and experiment output.

The benchmark harness regenerates the paper's quantitative claims as rows
of a table (EXPERIMENTS.md records the same rows).  This module renders
those tables without any third-party dependency.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["Table", "format_int", "approx_log2"]


def format_int(value: int, max_digits: int = 12) -> str:
    """Format a (possibly huge) exact integer compactly.

    Small integers are printed verbatim with thousands separators; integers
    with more than ``max_digits`` digits are printed as ``~2^k`` with the
    exact bit length, because e.g. the Example 4 uCFG sizes overflow any
    sensible column width long before ``n = 100``.

    >>> format_int(1234)
    '1,234'
    >>> format_int(2 ** 200)
    '~2^200.0'
    """
    if not isinstance(value, int):
        raise TypeError(f"format_int expects int, got {type(value).__name__}")
    sign = "-" if value < 0 else ""
    magnitude = abs(value)
    # Avoid int->str on huge values entirely (Python caps the conversion at
    # 4300 digits by default): 10^max_digits has ~3.32·max_digits bits.
    if magnitude.bit_length() <= int(3.33 * max_digits):
        digits = len(str(magnitude))
        if digits <= max_digits:
            return f"{value:,}"
    return f"{sign}~2^{approx_log2(magnitude):.1f}"


def approx_log2(value: int) -> float:
    """Return ``log2(value)`` for a positive integer of any size.

    Uses exact integer bit manipulation so it does not overflow for
    thousand-digit integers (``math.log2`` raises on huge ints converted to
    float).

    >>> approx_log2(8)
    3.0
    """
    if value <= 0:
        raise ValueError(f"approx_log2: value must be positive, got {value}")
    bits = value.bit_length()
    if bits <= 53:
        return math.log2(value)
    # Keep 53 significant bits and account for the shift exactly.
    shift = bits - 53
    return math.log2(value >> shift) + shift


class Table:
    """A minimal aligned-text table builder.

    >>> t = Table(["n", "size"])
    >>> t.add_row([4, 16])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    n | size
    --+-----
    4 | 16
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        if not columns:
            raise ValueError("Table needs at least one column")
        self.title = title
        self._columns = [str(c) for c in columns]
        self._rows: list[list[str]] = []

    def add_row(self, values: Sequence[object]) -> None:
        """Append a row; values are stringified (ints keep separators)."""
        if len(values) != len(self._columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self._columns)} columns"
            )
        rendered = [
            format_int(v) if isinstance(v, int) and not isinstance(v, bool) else str(v)
            for v in values
        ]
        self._rows.append(rendered)

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(c) for c in self._columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self._columns, widths)).rstrip()
        separator = "-+-".join("-" * w for w in widths)
        lines = [header, separator]
        for row in self._rows:
            lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)).rstrip())
        body = "\n".join(lines)
        if self.title:
            return f"{self.title}\n{body}"
        return body

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table (title omitted)."""
        header = "| " + " | ".join(self._columns) + " |"
        separator = "|" + "|".join("---" for _ in self._columns) + "|"
        lines = [header, separator]
        for row in self._rows:
            lines.append("| " + " | ".join(cell.replace("|", "\\|") for cell in row) + " |")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table followed by a blank line."""
        print(self.render())
        print()
