"""Small exact-arithmetic and formatting helpers shared across the library.

Everything here is deliberately dependency-free and uses Python's arbitrary
precision integers: the paper's quantities (``2^{4m}``, ``12^m``,
``|A| - |B \\cap L_n|`` ...) are verified *exactly*, never with floats.
"""

from repro.util.combinatorics import (
    binomial,
    iter_subsets,
    iter_subsets_of_size,
    popcount,
    powerset_size,
)
from repro.util.binary import binary_decomposition, bit_length_of, is_power_of_two
from repro.util.canonical import canonical_digest, canonical_encode
from repro.util.tables import Table, format_int, approx_log2

__all__ = [
    "canonical_encode",
    "canonical_digest",
    "binomial",
    "iter_subsets",
    "iter_subsets_of_size",
    "popcount",
    "powerset_size",
    "binary_decomposition",
    "bit_length_of",
    "is_power_of_two",
    "Table",
    "format_int",
    "approx_log2",
]
