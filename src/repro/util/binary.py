"""Binary decompositions of integers.

Appendix A of the paper builds its ``Θ(log n)`` grammar for ``L_n`` from the
set ``I = {i_1, ..., i_l}`` with ``n - 1 = Σ_{i ∈ I} 2^i`` — i.e. from the
positions of the set bits of ``n - 1``.  This module provides exactly that
decomposition plus small related helpers.
"""

from __future__ import annotations

__all__ = ["binary_decomposition", "bit_length_of", "is_power_of_two"]


def binary_decomposition(n: int) -> list[int]:
    """Return the sorted exponents ``I`` with ``n = Σ_{i ∈ I} 2^i``.

    ``n = 0`` yields the empty list.

    >>> binary_decomposition(13)
    [0, 2, 3]
    >>> sum(2 ** i for i in binary_decomposition(1000)) == 1000
    True
    """
    if n < 0:
        raise ValueError(f"binary_decomposition: n must be non-negative, got {n}")
    return [i for i in range(n.bit_length()) if n >> i & 1]


def bit_length_of(n: int) -> int:
    """Return the number of bits needed to write ``n`` in binary (``0`` -> 0)."""
    if n < 0:
        raise ValueError(f"bit_length_of: n must be non-negative, got {n}")
    return n.bit_length()


def is_power_of_two(n: int) -> bool:
    """Return whether ``n`` is a (positive) power of two.

    >>> [k for k in range(9) if is_power_of_two(k)]
    [1, 2, 4, 8]
    """
    return n > 0 and n & (n - 1) == 0
