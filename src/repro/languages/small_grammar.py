"""The ``Θ(log n)`` CFG for ``L_n``, for every ``n`` (Appendix A).

The construction: write ``n - 1 = Σ_{i ∈ I} 2^i`` from the binary
representation of ``n - 1``, imagine a word ``w`` of length ``n - 1``
split into blocks of those power-of-two lengths, and insert a factor
``a w' a`` (with ``|w'| = n - 1``) at some position inside one block.
Doubling non-terminals ``B_i`` generate all words of length ``2^i``; a
binary tree of ``C_v``/``D_v`` non-terminals selects the block receiving
the insertion; ``A_i`` non-terminals perform the insertion inside a block
of length ``2^i``; and ``S -> B_{i_1} ... B_{i_l}`` generates ``w'``.

Note on the source: Appendix A lists the descent rule only as
``A_i -> B_{i-1} A_{i-1}``; exactly as in Example 3 both orders are needed
to reach insertion positions in the *first* half of a block, so this
implementation emits ``A_i -> B_{i-1} A_{i-1} | A_{i-1} B_{i-1}``.  Tests
verify language equality with brute-forced ``L_n`` for every ``n ≤ 9``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammars.cfg import CFG, NonTerminal, Rule
from repro.util.binary import binary_decomposition
from repro.words.alphabet import AB

__all__ = ["small_ln_grammar"]


@lru_cache(maxsize=256)
def small_ln_grammar(n: int) -> CFG:
    """Build the Appendix A grammar accepting ``L_n``; size ``Θ(log n)``.

    The construction is pure and :class:`CFG` is immutable, so results are
    memoized: repeated calls with the same ``n`` return the same object.

    >>> from repro.grammars.language import language
    >>> from repro.languages.ln import ln_words
    >>> language(small_ln_grammar(5)) == ln_words(5)
    True
    >>> small_ln_grammar(10**6).size < 400
    True
    >>> small_ln_grammar(6) is small_ln_grammar(6)
    True
    """
    if n < 1:
        raise ValueError(f"small_ln_grammar is defined for n >= 1, got {n}")
    if n == 1:
        # L_1 = {aa}: the generic construction degenerates (I = ∅).
        start: NonTerminal = ("C-root",)
        return CFG(AB, [start], [Rule(start, ("a", "a"))], start)

    exponents = binary_decomposition(n - 1)  # I = {i_1 < ... < i_l}
    max_exp = exponents[-1]

    rules: list[Rule] = []
    nts: list[NonTerminal] = []

    # B_i generates every word of length 2^i (for all 2^i < n).
    b_nt: dict[int, NonTerminal] = {}
    for i in range(max_exp + 1):
        b_nt[i] = ("B", i)
        nts.append(b_nt[i])
    rules.append(Rule(b_nt[0], ("a",)))
    rules.append(Rule(b_nt[0], ("b",)))
    for i in range(1, max_exp + 1):
        rules.append(Rule(b_nt[i], (b_nt[i - 1], b_nt[i - 1])))

    # S generates w' (all words of length n - 1) as a block concatenation.
    s_nt: NonTerminal = ("S-mid",)
    nts.append(s_nt)
    rules.append(Rule(s_nt, tuple(b_nt[i] for i in exponents)))

    # A_i inserts `a S a` at any position inside a block of length 2^i.
    a_nt: dict[int, NonTerminal] = {}
    for i in range(max_exp + 1):
        a_nt[i] = ("A", i)
        nts.append(a_nt[i])
    rules.append(Rule(a_nt[0], (b_nt[0], "a", s_nt, "a")))
    rules.append(Rule(a_nt[0], ("a", s_nt, "a", b_nt[0])))
    for i in range(1, max_exp + 1):
        rules.append(Rule(a_nt[i], (b_nt[i - 1], a_nt[i - 1])))
        rules.append(Rule(a_nt[i], (a_nt[i - 1], b_nt[i - 1])))

    # Binary selection tree over the blocks: C_v = "insertion happens in a
    # block below v", D_v = "no insertion below v".
    def build(lo: int, hi: int) -> tuple[NonTerminal, NonTerminal]:
        """Return (C_v, D_v) for the subtree over exponents[lo:hi]."""
        c_v: NonTerminal = ("C", lo, hi)
        d_v: NonTerminal = ("D", lo, hi)
        nts.append(c_v)
        nts.append(d_v)
        if hi - lo == 1:
            exponent = exponents[lo]
            rules.append(Rule(c_v, (a_nt[exponent],)))
            rules.append(Rule(d_v, (b_nt[exponent],)))
            return c_v, d_v
        mid = (lo + hi) // 2
        c_left, d_left = build(lo, mid)
        c_right, d_right = build(mid, hi)
        rules.append(Rule(c_v, (c_left, d_right)))
        rules.append(Rule(c_v, (d_left, c_right)))
        rules.append(Rule(d_v, (d_left, d_right)))
        return c_v, d_v

    c_root, _d_root = build(0, len(exponents))
    return CFG(AB, nts, rules, c_root)
