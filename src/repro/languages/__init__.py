"""The paper's concrete languages and grammar/automaton constructions.

* :mod:`~repro.languages.ln` — the separating language ``L_n``
  (Example 3 / Section 4): membership, enumeration, exact counting;
* :mod:`~repro.languages.example3` — the ``Θ(k)`` ambiguous grammar
  ``G_k`` for ``L_{2^k+1}``;
* :mod:`~repro.languages.small_grammar` — the ``Θ(log n)`` grammar for
  every ``L_n`` (Appendix A, Theorem 1(1));
* :mod:`~repro.languages.unambiguous_grammar` — the exponential uCFG of
  Example 4;
* :mod:`~repro.languages.nfa_ln` — the guess-and-verify NFA
  (Theorem 1(2)), the exact-``L_n`` automaton and the ``n²`` fooling set;
* :mod:`~repro.languages.example6` — the rectangle language ``L*_n``.
"""

from repro.languages.example3 import example3_grammar, example3_language_parameter, example3_size
from repro.languages.example6 import (
    count_lstar,
    is_in_lstar,
    iter_lstar,
    lstar_rectangle,
    lstar_words,
)
from repro.languages.ln import (
    count_ln,
    first_match_position,
    is_in_ln,
    iter_ln,
    ln_words,
    match_positions,
)
from repro.languages.dfa_ln import (
    ln_match_minimal_dfa,
    ln_minimal_dfa,
    ln_minimal_dfa_states,
)
from repro.languages.nfa_ln import exact_ln_fooling_set, ln_match_nfa, ln_nfa_exact
from repro.languages.small_grammar import small_ln_grammar
from repro.languages.unambiguous_grammar import (
    example4_size,
    example4_ucfg,
    example4_ucfg_verbatim,
    example4_verbatim_size,
    iter_nomatch_pairs,
)

__all__ = [
    # L_n
    "is_in_ln",
    "iter_ln",
    "ln_words",
    "count_ln",
    "match_positions",
    "first_match_position",
    # grammars
    "example3_grammar",
    "example3_language_parameter",
    "example3_size",
    "small_ln_grammar",
    "example4_ucfg",
    "example4_size",
    "example4_ucfg_verbatim",
    "example4_verbatim_size",
    "iter_nomatch_pairs",
    # automata
    "ln_match_nfa",
    "ln_nfa_exact",
    "exact_ln_fooling_set",
    "ln_minimal_dfa",
    "ln_match_minimal_dfa",
    "ln_minimal_dfa_states",
    # L*_n
    "is_in_lstar",
    "iter_lstar",
    "lstar_words",
    "count_lstar",
    "lstar_rectangle",
]
