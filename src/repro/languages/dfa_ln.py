"""Minimal DFAs for ``L_n``: the deterministic price of distance-``n``.

A DFA for (even the variable-length superset of) ``L_n`` must remember
which of the last ``n`` positions carried an ``a`` — ``2^n`` sliding
windows — so minimal DFAs explode exponentially.  Together with the
``Θ(n)`` NFA (Theorem 1(2)) and the ``2^Ω(n)`` uCFG bound (Theorem 12),
this completes the picture of where `L_n` is cheap and where it is not:

==================  =====================
representation      size for ``L_n``
==================  =====================
CFG                 ``Θ(log n)``
NFA (promise)       ``Θ(n)``
NFA (exact)         ``Θ(n²)``
DFA                 ``2^{Θ(n)}``
uCFG                ``2^{Θ(n)}``
==================  =====================
"""

from __future__ import annotations

from functools import lru_cache

from repro.automata.dfa import DFA, determinise, minimise
from repro.automata.ops import minimal_dfa_of_finite_language
from repro.languages.ln import ln_words
from repro.languages.nfa_ln import ln_match_nfa
from repro.words.alphabet import AB

__all__ = [
    "ln_minimal_dfa",
    "ln_match_minimal_dfa",
    "ln_minimal_dfa_states",
    "ln_unique_match_dfa",
]


def ln_minimal_dfa(n: int) -> DFA:
    """The minimal complete DFA of the exact finite language ``L_n``.

    Built through the trie of all ``4^n - 3^n`` members, so only feasible
    for small ``n`` (tests use ``n ≤ 5``).
    """
    if n < 1:
        raise ValueError(f"ln_minimal_dfa is defined for n >= 1, got {n}")
    return minimal_dfa_of_finite_language(ln_words(n), AB)


@lru_cache(maxsize=64)
def ln_match_minimal_dfa(n: int) -> DFA:
    """The minimal DFA of the *variable-length* match language
    ``Σ* a Σ^{n-1} a Σ*`` (determinised guess-and-verify NFA, minimised).

    Grows as ``2^{Θ(n)}`` — the sliding-window memory is unavoidable for
    determinism, exactly as it is for unambiguity in grammars.  Memoized:
    DFAs are immutable, and counting sweeps re-request the same ``n``.
    """
    if n < 1:
        raise ValueError(f"ln_match_minimal_dfa is defined for n >= 1, got {n}")
    return minimise(determinise(ln_match_nfa(n)))


def ln_minimal_dfa_states(n: int) -> int:
    """State count of the minimal exact-``L_n`` DFA (small ``n`` only)."""
    return ln_minimal_dfa(n).n_states


@lru_cache(maxsize=64)
def ln_unique_match_dfa(n: int) -> DFA:
    """A DFA for ``b* a b^{n-1} a b*`` — the *unique*-occurrence variant.

    Words whose only two ``a`` symbols sit at distance exactly ``n``:
    the promise restriction of the match language where the witness pair
    is forced, so the guess-and-verify NFA's ambiguity disappears and
    ``n + 3`` deterministic states suffice (progress chain plus sink).

    Unlike the full match language, this one is *slender*: it has
    ``L - n`` words of each length ``L > n``, so its word counts carry
    ``O(log L)`` bits instead of ``Θ(L)`` — the regime where the
    transfer-matrix power of :func:`repro.automata.counting.
    count_dfa_words_of_length` costs ``O(log L)`` small matrix products
    while the layer-by-layer sweep still pays all ``L`` layers.
    """
    if n < 1:
        raise ValueError(f"ln_unique_match_dfa is defined for n >= 1, got {n}")
    start, final, sink = "s", "f", "x"
    chain = [("c", i) for i in range(1, n + 1)]
    states = [start, *chain, final, sink]
    transitions: dict[tuple[object, str], object] = {
        (start, "b"): start,
        (start, "a"): chain[0],
        (final, "b"): final,
        (final, "a"): sink,
        (sink, "a"): sink,
        (sink, "b"): sink,
    }
    for i in range(n - 1):
        transitions[(chain[i], "b")] = chain[i + 1]
        transitions[(chain[i], "a")] = sink
    transitions[(chain[-1], "a")] = final
    transitions[(chain[-1], "b")] = sink
    return DFA(AB, states, transitions, start, {final})
