"""The small ambiguous grammar of Example 3 (from [20]).

``G_k`` has terminals ``{a, b}``, non-terminals ``{A_i, B_i}_{0 ≤ i ≤ k}``,
start symbol ``A_k`` and rules::

    A_i -> B_{i-1} A_{i-1} | A_{i-1} B_{i-1}    for i in [k]
    A_0 -> B_0 a B_k a | a B_k a B_0
    B_i -> B_{i-1} B_{i-1}                      for i in [k]
    B_0 -> a | b

It has size ``Θ(k)`` and accepts ``L_{2^k + 1}`` — an exponentially long
language from a linear grammar.  The grammar is ambiguous; Figure 1 of
the paper shows two parse trees of ``aaaaaa`` under ``G_1``, and
:func:`repro.grammars.ambiguity.ambiguity_witness` regenerates exactly
such a pair.
"""

from __future__ import annotations

from repro.grammars.cfg import CFG, NonTerminal, Rule
from repro.words.alphabet import AB

__all__ = ["example3_grammar", "example3_language_parameter", "example3_size"]


def example3_grammar(k: int) -> CFG:
    """Build the Example 3 grammar ``G_k`` accepting ``L_{2^k + 1}``.

    >>> g = example3_grammar(1)
    >>> from repro.grammars.language import language
    >>> from repro.languages.ln import ln_words
    >>> language(g) == ln_words(3)   # 2^1 + 1 = 3
    True
    """
    if k < 1:
        raise ValueError(f"example3_grammar is defined for k >= 1, got {k}")
    a_nt: dict[int, NonTerminal] = {i: ("A", i) for i in range(k + 1)}
    b_nt: dict[int, NonTerminal] = {i: ("B", i) for i in range(k + 1)}
    rules: list[Rule] = []
    for i in range(1, k + 1):
        rules.append(Rule(a_nt[i], (b_nt[i - 1], a_nt[i - 1])))
        rules.append(Rule(a_nt[i], (a_nt[i - 1], b_nt[i - 1])))
    rules.append(Rule(a_nt[0], (b_nt[0], "a", b_nt[k], "a")))
    rules.append(Rule(a_nt[0], ("a", b_nt[k], "a", b_nt[0])))
    for i in range(1, k + 1):
        rules.append(Rule(b_nt[i], (b_nt[i - 1], b_nt[i - 1])))
    rules.append(Rule(b_nt[0], ("a",)))
    rules.append(Rule(b_nt[0], ("b",)))
    nts = list(a_nt.values()) + list(b_nt.values())
    return CFG(AB, nts, rules, a_nt[k])


def example3_language_parameter(k: int) -> int:
    """The ``n`` with ``L(G_k) = L_n``, namely ``2^k + 1``."""
    if k < 1:
        raise ValueError(f"example3_language_parameter is defined for k >= 1, got {k}")
    return 2**k + 1


def example3_size(k: int) -> int:
    """The exact size of ``G_k`` under the paper's measure: ``Θ(k)``.

    Per construction: ``2k`` rules of size 2 for the ``A_i``, two size-4
    rules for ``A_0``, ``k`` rules of size 2 for the ``B_i``, and two
    size-1 rules for ``B_0`` — in total ``6k + 10``.

    >>> example3_size(3) == example3_grammar(3).size
    True
    """
    if k < 1:
        raise ValueError(f"example3_size is defined for k >= 1, got {k}")
    return 6 * k + 10
