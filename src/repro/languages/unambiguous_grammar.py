"""The exponential-size unambiguous grammar for ``L_n`` (Example 4).

Each derivation of a word ``w ∈ L_n`` is forced to expose the *first*
position ``i`` at which ``w`` has ``a`` symbols at distance ``n``: the
rule for ``A_i`` spells out the entire prefix ``u = w_1 ... w_{i-1}``
*and* the block ``v = w_{n+1} ... w_{n+i-1}`` opposite it, restricted to
pairs ``(u, v)`` with no earlier match (no ``j < i`` with
``u_j = v_j = a``).  This makes the grammar unambiguous but forces
``3^{i-1}`` rules per ``i`` — exponential size, which Theorem 12 shows
is unavoidable.

Correction to the source (recorded in EXPERIMENTS.md): Example 4 in the
paper writes the opposite block as the letterwise complement ``w̄`` of the
prefix.  That realises only the pairs ``(a, b)`` and ``(b, a)`` per
position, silently dropping ``(b, b)`` — already for ``n = 2`` the word
``baba ∈ L_2`` (first match at position 2, pair ``(b, b)`` at position 1)
has no derivation.  The construction implemented here enumerates all
``3^{i-1}`` non-matching pairs, which restores ``L(G) = L_n`` while
preserving both unambiguity and the ``2^{Θ(n)}`` size (indeed
``3^{i-1} ≥ 2^{i-1}``, so the grammar only gets larger).  Tests verify
language equality and unambiguity exhaustively for ``n ≤ 4`` and the
failure of the verbatim paper variant (also provided, as
:func:`example4_ucfg_verbatim`).
"""

from __future__ import annotations

from collections.abc import Iterator
from functools import lru_cache

from repro.grammars.cfg import CFG, NonTerminal, Rule, Symbol
from repro.words.alphabet import AB
from repro.words.ops import all_words, complement_word

__all__ = [
    "example4_ucfg",
    "example4_ucfg_verbatim",
    "example4_size",
    "example4_verbatim_size",
    "iter_nomatch_pairs",
]


def iter_nomatch_pairs(length: int) -> Iterator[tuple[str, str]]:
    """Yield all pairs ``(u, v) ∈ Σ^length × Σ^length`` with no position
    where both are ``a`` — ``3^length`` pairs.

    >>> sorted(iter_nomatch_pairs(1))
    [('a', 'b'), ('b', 'a'), ('b', 'b')]
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    for u in all_words(AB, length):
        # v is free where u has 'b' and forced to 'b' where u has 'a'.
        free = [j for j, ch in enumerate(u) if ch == "b"]
        for mask in range(1 << len(free)):
            v = ["b"] * length
            for bit, j in enumerate(free):
                if mask >> bit & 1:
                    v[j] = "a"
            yield u, "".join(v)


class _Builder:
    """Shared scaffolding of the two Example 4 variants."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"Example 4 is defined for n >= 1, got {n}")
        self.n = n
        self.rules: list[Rule] = []
        self.nts: list[NonTerminal] = []
        self._word_nts: dict[str, NonTerminal] = {}
        self.c_nt: dict[int, NonTerminal] = {}
        for i in range(1, n + 1):
            self.c_nt[i] = ("C", i)
            self.nts.append(self.c_nt[i])
        self.rules.append(Rule(self.c_nt[1], ("a",)))
        self.rules.append(Rule(self.c_nt[1], ("b",)))
        for i in range(2, n + 1):
            self.rules.append(Rule(self.c_nt[i], ("a", self.c_nt[i - 1])))
            self.rules.append(Rule(self.c_nt[i], ("b", self.c_nt[i - 1])))

    def fixed(self, word: str) -> tuple[Symbol, ...]:
        """A body fragment spelling out ``word`` (empty for ``ε``)."""
        if not word:
            return ()
        if word not in self._word_nts:
            nt = ("W", word)
            self._word_nts[word] = nt
            self.nts.append(nt)
            self.rules.append(Rule(nt, tuple(word)))
        return (self._word_nts[word],)

    def body(self, u: str, v: str, i: int) -> tuple[Symbol, ...]:
        """The ``A_i`` body for prefix block ``u`` and opposite block ``v``."""
        if i < self.n:
            return (
                self.fixed(u)
                + ("a", self.c_nt[self.n - i])
                + self.fixed(v)
                + ("a", self.c_nt[self.n - i])
            )
        return self.fixed(u) + ("a",) + self.fixed(v) + ("a",)

    def finish(self, pair_source) -> CFG:
        start: NonTerminal = ("S",)
        a_pos: dict[int, NonTerminal] = {}
        for i in range(1, self.n + 1):
            a_pos[i] = ("A", i)
            self.nts.append(a_pos[i])
            for u, v in pair_source(i - 1):
                self.rules.append(Rule(a_pos[i], self.body(u, v, i)))
        self.nts.append(start)
        for i in range(1, self.n + 1):
            self.rules.append(Rule(start, (a_pos[i],)))
        return CFG(AB, self.nts, self.rules, start)


def example4_ucfg(n: int) -> CFG:
    """The corrected Example 4 unambiguous grammar with ``L(G) = L_n``.

    Only feasible for small ``n`` (size ``Θ(3^n · n)``);
    :func:`example4_size` gives the exact size for any ``n`` without
    construction.

    >>> from repro.grammars.language import language
    >>> from repro.grammars.ambiguity import is_unambiguous
    >>> from repro.languages.ln import ln_words
    >>> g = example4_ucfg(3)
    >>> language(g) == ln_words(3) and is_unambiguous(g)
    True
    """
    return _Builder(n).finish(iter_nomatch_pairs)


def example4_ucfg_verbatim(n: int) -> CFG:
    """Example 4 exactly as printed in the paper (complement blocks only).

    For ``n ≥ 2`` this grammar is unambiguous but *misses* the words of
    ``L_n`` whose pre-first-match pairs include ``(b, b)`` — e.g.
    ``baba ∈ L_2``.  Kept for documentation and as a regression witness.
    """

    def pairs(length: int):
        for u in all_words(AB, length):
            yield u, complement_word(u, AB)

    return _Builder(n).finish(pairs)


@lru_cache(maxsize=1024)
def example4_size(n: int) -> int:
    """Exact size of the corrected grammar: ``2^Θ(n)``.

    Components (matching :func:`example4_ucfg` literally):

    * ``C`` rules: ``4n - 2`` (just ``2`` when ``n = 1``);
    * ``W`` rules (``A_w -> w``): every nonempty ``w ∈ Σ^{≤ n-1}`` occurs
      as some ``u`` or ``v`` → ``Σ_{j=1}^{n-1} 2^j · j``;
    * ``A_i`` rules: ``3^{i-1}`` bodies of size 6 (4 when ``i = n``; two
      fragments vanish when ``i = 1``);
    * ``S`` rules: ``n`` of size 1.

    >>> all(example4_size(n) == example4_ucfg(n).size for n in (1, 2, 3, 4))
    True
    """
    if n < 1:
        raise ValueError(f"example4_size is defined for n >= 1, got {n}")
    size = 4 * n - 2 if n > 1 else 2
    size += sum((2**j) * j for j in range(1, n))
    for i in range(1, n + 1):
        body = 6 if i < n else 4
        if i == 1:
            body -= 2
        size += (3 ** (i - 1)) * body
    size += n
    return size


def example4_verbatim_size(n: int) -> int:
    """Exact size of the verbatim (paper-printed) variant.

    Identical accounting with ``2^{i-1}`` bodies per ``i``.

    >>> all(example4_verbatim_size(n) == example4_ucfg_verbatim(n).size
    ...     for n in (1, 2, 3, 4))
    True
    """
    if n < 1:
        raise ValueError(f"example4_verbatim_size is defined for n >= 1, got {n}")
    size = 4 * n - 2 if n > 1 else 2
    size += sum((2**j) * j for j in range(1, n))
    for i in range(1, n + 1):
        body = 6 if i < n else 4
        if i == 1:
            body -= 2
        size += (2 ** (i - 1)) * body
    size += n
    return size
