"""The balanced-rectangle language ``L*_n`` of Example 6.

``L*_n := a^{n/2} (a+b)^n a^{n/2}`` — all words of length ``2n`` which
begin and end with ``n/2`` consecutive ``a`` symbols.  It is a single
balanced rectangle with parameters ``n1 = n3 = n/2``, ``n2 = n``,
``L1 = {a^n}``, ``L2 = Σ^n`` — the warm-up example showing what the
rectangle decomposition of Section 3 looks like in the simplest case.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.words.alphabet import AB
from repro.words.ops import all_words

__all__ = ["is_in_lstar", "iter_lstar", "lstar_words", "count_lstar", "lstar_rectangle"]


def _check_n(n: int) -> None:
    if n < 2 or n % 2:
        raise ValueError(f"L*_n is defined for even n >= 2, got n={n}")


def is_in_lstar(word: str, n: int) -> bool:
    """Membership in ``L*_n``.

    >>> is_in_lstar("abba", 2), is_in_lstar("babb", 2)
    (True, False)
    """
    _check_n(n)
    half = n // 2
    return (
        len(word) == 2 * n
        and all(ch in AB for ch in word)
        and word[:half] == "a" * half
        and word[-half:] == "a" * half
    )


def iter_lstar(n: int) -> Iterator[str]:
    """Yield ``L*_n`` in lexicographic order."""
    _check_n(n)
    half = n // 2
    for middle in all_words(AB, n):
        yield "a" * half + middle + "a" * half


def lstar_words(n: int) -> frozenset[str]:
    """Return ``L*_n`` as a frozenset."""
    return frozenset(iter_lstar(n))


def count_lstar(n: int) -> int:
    """``|L*_n| = 2^n`` exactly."""
    _check_n(n)
    return 2**n


def lstar_rectangle(n: int):
    """Return ``L*_n`` as a :class:`~repro.core.rectangles.Rectangle`.

    The parameters are exactly those of Example 6: ``n1 = n3 = n/2``,
    ``n2 = n``, ``L1 = {a^n}``, ``L2 = Σ^n`` — and the rectangle is
    balanced.
    """
    from repro.core.rectangles import Rectangle

    _check_n(n)
    half = n // 2
    return Rectangle(
        outer={"a" * n},
        inner=frozenset(all_words(AB, n)),
        n1=half,
        n2=n,
        n3=half,
        alphabet=AB,
    )
