"""NFAs for ``L_n`` and the ``Θ(n)`` guess-and-verify automaton (Theorem 1(2)).

The paper remarks (following [20]) that ``L_n`` "admits a nondeterministic
finite automaton of size ``Θ(n)``; the idea is that the automaton first
nondeterministically guesses the positions of the matching ``a`` symbols
and then verifies this guess."  :func:`ln_match_nfa` is that automaton:
``n + 2`` states, and it accepts the *variable-length* language
``Σ* a Σ^{n-1} a Σ*`` of all words containing two ``a`` symbols at
distance exactly ``n``.  Restricted to words of length ``2n`` this is
exactly ``L_n``.

A subtlety this reproduction surfaces (recorded in EXPERIMENTS.md): an NFA
for the *exact* finite language ``L_n`` — which must also reject words of
wrong length — cannot have ``Θ(n)`` states.  :func:`exact_ln_fooling_set`
constructs a fooling set of size ``n²`` (pairs ``b^k a b^d`` /
``b^{n-1-d} a b^{n-1-k}``), so every exact NFA needs ``≥ n²`` states;
:func:`ln_nfa_exact` builds a matching ``O(n²)``-state exact automaton as
the product of the guess-and-verify NFA with a length-``2n`` counter.
Theorem 1's separation is unaffected: ``n²`` is still exponentially
smaller than the ``2^Ω(n)`` uCFG bound.
"""

from __future__ import annotations

from functools import lru_cache

from repro.automata.nfa import NFA
from repro.words.alphabet import AB

__all__ = ["ln_match_nfa", "ln_nfa_exact", "exact_ln_fooling_set"]


@lru_cache(maxsize=256)
def ln_match_nfa(n: int) -> NFA:
    """The ``Θ(n)`` guess-and-verify NFA of Theorem 1(2).

    ``n + 2`` states, ``2n + 4`` transitions.  Accepts all words (of any
    length) with two ``a`` symbols at distance exactly ``n``; on inputs of
    length ``2n`` this is exactly membership in ``L_n``.  Memoized:
    :class:`~repro.automata.nfa.NFA` instances are immutable, so repeated
    calls return the same object.

    >>> nfa = ln_match_nfa(2)
    >>> nfa.accepts("abab"), nfa.accepts("bbbb")
    (True, False)
    >>> nfa.n_states
    4
    """
    if n < 1:
        raise ValueError(f"ln_match_nfa is defined for n >= 1, got {n}")
    start = "s"
    counters = [("p", i) for i in range(1, n + 1)]
    final = "f"
    states = [start, *counters, final]
    transitions: dict[tuple[object, str], set[object]] = {
        (start, "a"): {start, counters[0]},
        (start, "b"): {start},
        (final, "a"): {final},
        (final, "b"): {final},
    }
    for i in range(n - 1):
        transitions[(counters[i], "a")] = {counters[i + 1]}
        transitions[(counters[i], "b")] = {counters[i + 1]}
    transitions[(counters[-1], "a")] = {final}
    return NFA(AB, states, transitions, {start}, {final})


@lru_cache(maxsize=64)
def ln_nfa_exact(n: int) -> NFA:
    """An NFA accepting exactly the finite language ``L_n``.

    Product of :func:`ln_match_nfa` with a length-``2n`` counter:
    ``O(n²)`` states, which :func:`exact_ln_fooling_set` shows is optimal
    up to a constant factor.  Memoized like :func:`ln_match_nfa` — NFAs
    are immutable, and ambiguity/determinisation sweeps re-request the
    same ``n`` repeatedly.

    >>> nfa = ln_nfa_exact(2)
    >>> nfa.accepts("abab"), nfa.accepts("ababab")
    (True, False)
    """
    if n < 1:
        raise ValueError(f"ln_nfa_exact is defined for n >= 1, got {n}")
    base = ln_match_nfa(n)
    states: set[object] = set()
    transitions: dict[tuple[object, str], set[object]] = {}
    initial = {(q, 0) for q in base.initial}
    frontier = list(initial)
    states |= initial
    while frontier:
        q, t = frontier.pop()
        if t == 2 * n:
            continue
        for symbol in AB:
            for succ in base.successors(q, symbol):
                target = (succ, t + 1)
                transitions.setdefault(((q, t), symbol), set()).add(target)
                if target not in states:
                    states.add(target)
                    frontier.append(target)
    accepting = {(q, 2 * n) for q in base.accepting if (q, 2 * n) in states}
    return NFA(AB, states, transitions, initial, accepting)


def exact_ln_fooling_set(n: int) -> list[tuple[str, str]]:
    """A fooling set of size ``n²`` for the exact language ``L_n``.

    Returns pairs ``(u, v)`` with ``u·v ∈ L_n`` for every pair while every
    cross-concatenation ``u_i·v_j`` (``i ≠ j``) falls outside ``L_n`` —
    either its length differs from ``2n`` or its only two ``a`` symbols
    sit at distance ``≠ n``.  By the standard fooling-set bound, every NFA
    accepting exactly ``L_n`` has at least ``n²`` states.  (This is the
    reproduction's measured correction to the informal ``Θ(n)`` remark;
    see the module docstring.)

    >>> pairs = exact_ln_fooling_set(3)
    >>> len(pairs)
    9
    """
    if n < 1:
        raise ValueError(f"exact_ln_fooling_set is defined for n >= 1, got {n}")
    pairs: list[tuple[str, str]] = []
    for k in range(n):
        for d in range(n):
            prefix = "b" * k + "a" + "b" * d
            suffix = "b" * (n - 1 - d) + "a" + "b" * (n - 1 - k)
            pairs.append((prefix, suffix))
    return pairs
