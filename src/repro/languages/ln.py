"""The language ``L_n`` of Example 3 — the paper's separating language.

``L_n := { (a+b)^k a (a+b)^{n-1} a (a+b)^{n-1-k} | 0 ≤ k ≤ n-1 }`` — all
words of length ``2n`` over ``{a, b}`` containing two ``a`` symbols at
distance exactly ``n`` (i.e. with exactly ``n - 1`` symbols between
them).  Identifying a word with the pair of index sets of its ``a``
positions, ``L_n`` is the complement of set disjointness — "the flagship
problem of communication complexity" (Section 4.1).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.words.alphabet import AB
from repro.words.ops import all_words

__all__ = [
    "is_in_ln",
    "iter_ln",
    "ln_words",
    "count_ln",
    "first_match_position",
    "match_positions",
]


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"L_n is defined for n >= 1, got n={n}")


def is_in_ln(word: str, n: int) -> bool:
    """Membership test for ``L_n``.

    >>> is_in_ln("aaba", 2), is_in_ln("abab", 2), is_in_ln("bbbb", 2)
    (True, True, False)
    """
    _check_n(n)
    if len(word) != 2 * n:
        return False
    if any(ch not in AB for ch in word):
        return False
    return any(word[k] == "a" and word[k + n] == "a" for k in range(n))


def match_positions(word: str, n: int) -> list[int]:
    """Return all 0-based ``k`` with ``word[k] == word[k+n] == 'a'``.

    The number of matches is what makes ``L_n`` a *highly non-disjoint*
    union of the rectangles ``L_n^k`` (Example 8): a word can witness
    membership at many distances simultaneously.
    """
    _check_n(n)
    if len(word) != 2 * n:
        raise ValueError(f"expected a word of length {2 * n}, got {len(word)}")
    return [k for k in range(n) if word[k] == "a" and word[k + n] == "a"]


def first_match_position(word: str, n: int) -> int | None:
    """The smallest match position, or ``None`` for non-members.

    Example 4's unambiguous grammar keys every derivation on exactly this
    quantity.
    """
    matches = match_positions(word, n)
    return matches[0] if matches else None


def iter_ln(n: int) -> Iterator[str]:
    """Yield the words of ``L_n`` in lexicographic order (brute force).

    Enumerates ``Σ^{2n}``, so only use for small ``n`` (tests use
    ``n ≤ 10``).
    """
    _check_n(n)
    for word in all_words(AB, 2 * n):
        if any(word[k] == "a" and word[k + n] == "a" for k in range(n)):
            yield word


def ln_words(n: int) -> frozenset[str]:
    """Return ``L_n`` as a frozenset (brute force; small ``n`` only)."""
    return frozenset(iter_ln(n))


def count_ln(n: int) -> int:
    """Return ``|L_n| = 4^n - 3^n`` exactly.

    Proof: pair up positions ``k`` and ``k + n``.  A word avoids ``L_n``
    iff every pair avoids ``(a, a)``, leaving 3 of the 4 combinations per
    pair, independently — so there are ``3^n`` non-members among the
    ``4^n`` words of length ``2n``.

    >>> count_ln(2) == len(ln_words(2))
    True
    """
    _check_n(n)
    return 4**n - 3**n
