"""Run-log event streaming: per-run logs that publish to subscribers.

:class:`EventLog` is a :class:`~repro.engine.artifacts.RunLog` that, in
addition to the normal in-memory records and optional JSONL file, pushes
every record (as its JSON payload) to any number of subscribers — the
``GET /runs/<id>/events`` handlers.  Records are produced on broker
executor threads while subscribers await on the event loop, so delivery
hops through ``loop.call_soon_threadsafe``.

A stream is *terminal* once a ``run_summary`` payload (normal end) or a
``run_error`` payload (the engine raised) has been published; late
subscribers of a finished run get the full replay and no queue.
"""

from __future__ import annotations

import asyncio
import threading
import time
from pathlib import Path
from typing import Any

from repro.engine.artifacts import RunLog, RunRecord

__all__ = ["EventLog"]


class EventLog(RunLog):
    """A run log that fans records out to asyncio subscriber queues."""

    def __init__(self, loop: asyncio.AbstractEventLoop, path: Path | None = None) -> None:
        super().__init__(path=path)
        self._loop = loop
        self._elock = threading.Lock()
        self._subscribers: list[asyncio.Queue] = []
        self.events: list[dict[str, Any]] = []
        self.done = False

    # -- producer side (engine / broker threads) ------------------------

    def record(self, record: RunRecord) -> None:
        super().record(record)
        self._publish(record.to_json())

    def summarize(self, wall_ms: float, workers: int) -> dict[str, Any]:
        summary = super().summarize(wall_ms, workers)
        self._publish(summary, terminal=True)
        return summary

    def finish_error(self, error: str) -> None:
        """Publish the terminal event for a run whose engine call raised.

        The engine only writes ``run_summary`` on successful completion, so
        without this a failed run's subscribers would wait forever.
        No-op when the log already ended (e.g. a timeout under
        ``on_timeout="skip"`` summarises normally before raising).
        """
        if self.done:
            return
        self._publish(
            {
                "kind": "run_error",
                "run_id": self.run_id,
                "error": error,
                "ended_at": time.time(),
            },
            terminal=True,
        )

    def _publish(self, payload: dict[str, Any], terminal: bool = False) -> None:
        with self._elock:
            if self.done:
                return
            self.events.append(payload)
            if terminal:
                self.done = True
            subscribers = list(self._subscribers)
        for queue in subscribers:
            try:
                self._loop.call_soon_threadsafe(queue.put_nowait, payload)
            except RuntimeError:
                pass  # loop already closed during shutdown: drop the event

    # -- consumer side (event-loop handlers) ----------------------------

    def subscribe(self) -> tuple[list[dict[str, Any]], asyncio.Queue | None]:
        """``(replay, live_queue)``; the queue is ``None`` for finished runs.

        The snapshot and the registration happen under one lock, so no
        event is ever missed or duplicated across the replay/live seam.
        """
        with self._elock:
            snapshot = list(self.events)
            if self.done:
                return snapshot, None
            queue: asyncio.Queue = asyncio.Queue()
            self._subscribers.append(queue)
            return snapshot, queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        with self._elock:
            try:
                self._subscribers.remove(queue)
            except ValueError:
                pass

    @staticmethod
    def is_terminal(payload: dict[str, Any]) -> bool:
        return payload.get("kind") in ("run_summary", "run_error")
