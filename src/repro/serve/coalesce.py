"""In-flight request coalescing: identical requests join one execution.

Two requests are *identical* when they agree on ``(job name, cache key)``
— the same content-addressed key the disk cache uses, so parameter
defaulting and ordering are already normalised away.  The first request
for a key becomes the **leader** and actually executes; requests arriving
while it runs become **followers** that await the same
:class:`asyncio.Future` and receive the same outcome (result *or*
exception).

The table is only touched from the event loop, so it needs no lock.  The
future is resolved via ``call_soon_threadsafe``-scheduled callbacks from
the broker, and followers await it behind :func:`asyncio.shield` — a
follower whose client disconnects cancels only its own wait, never the
leader's execution.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Execution", "Coalescer"]


@dataclass
class Execution:
    """One in-flight (or just-finished) leader execution."""

    job: str
    key: str
    run_id: str
    future: asyncio.Future
    started: float = field(default_factory=time.monotonic)
    followers: int = 0  #: requests that coalesced onto this execution

    @property
    def coalesce_key(self) -> tuple[str, str]:
        return (self.job, self.key)


class Coalescer:
    """The ``(job, key) → Execution`` in-flight table."""

    def __init__(self) -> None:
        self._inflight: dict[tuple[str, str], Execution] = {}
        self.started = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def get(self, job: str, key: str) -> Execution | None:
        """The running execution identical requests should join, if any."""
        execution = self._inflight.get((job, key))
        if execution is not None:
            execution.followers += 1
            self.coalesced += 1
        return execution

    def begin(
        self, job: str, key: str, run_id: str, loop: asyncio.AbstractEventLoop
    ) -> Execution:
        """Install a new leader for ``(job, key)``; the caller executes it."""
        execution = Execution(job=job, key=key, run_id=run_id, future=loop.create_future())
        self._inflight[execution.coalesce_key] = execution
        self.started += 1
        return execution

    def finish(
        self,
        execution: Execution,
        result: Any = None,
        error: BaseException | None = None,
    ) -> None:
        """Resolve the shared future and retire the table entry.

        Every waiter — leader handler and all followers — observes the
        same outcome.  Must be called on the event loop.
        """
        self._inflight.pop(execution.coalesce_key, None)
        if execution.future.cancelled():
            return
        if error is not None:
            execution.future.set_exception(error)
        else:
            execution.future.set_result(result)

    def inflight(self) -> list[dict[str, Any]]:
        """A JSON-friendly snapshot for ``/stats``."""
        now = time.monotonic()
        return [
            {
                "job": ex.job,
                "run_id": ex.run_id,
                "followers": ex.followers,
                "running_s": round(now - ex.started, 3),
            }
            for ex in self._inflight.values()
        ]
