"""repro.serve — the async, multi-tenant job service over the engine.

The engine (registry + DAG scheduler + content-addressed cache) executes
one request batch per process; this subsystem turns it into a
long-running service surface:

* an **asyncio HTTP/1.1 server** with JSON request/response bodies and
  chunked-JSONL event streams (:mod:`repro.serve.server`) — stdlib only;
* a **request broker** that validates against the registry, rate-limits
  per client, coalesces identical in-flight requests into one execution,
  and drives a shared thread-safe :class:`~repro.engine.Engine`
  (:mod:`repro.serve.broker`, :mod:`repro.serve.coalesce`,
  :mod:`repro.serve.limits`);
* a **shared hot LRU** in front of the disk cache so repeat hits never
  touch disk (:mod:`repro.serve.hot`);
* **run-log event streaming** per execution (:mod:`repro.serve.events`);
* **clients** and the ``debug.storm`` / ``bench serve`` load harnesses
  (:mod:`repro.serve.client`, :mod:`repro.serve.storm`,
  :mod:`repro.serve.bench`).

Quickstart::

    from repro.serve import ReproServer, ServeConfig, ServeClient

    server = ReproServer(ServeConfig(no_cache=True)).start()
    client = ServeClient(server.config.host, server.port)
    print(client.run("certificate", {"n": 64}).data["result"]["margin"])
    server.stop()

``python -m repro serve`` and ``python -m repro bench serve`` are thin
front ends over exactly this API; see docs/SERVE.md.
"""

from repro.serve.bench import run_serve_bench
from repro.serve.broker import Broker, ServeHTTPError
from repro.serve.client import AsyncServeClient, ServeClient, ServeResult
from repro.serve.coalesce import Coalescer, Execution
from repro.serve.config import ServeConfig
from repro.serve.events import EventLog
from repro.serve.hot import HotLRU
from repro.serve.limits import RateLimiter, TokenBucket
from repro.serve.server import ReproServer
from repro.serve.storm import run_storm

__all__ = [
    "ServeConfig",
    "ReproServer",
    "Broker",
    "ServeHTTPError",
    "Coalescer",
    "Execution",
    "EventLog",
    "HotLRU",
    "RateLimiter",
    "TokenBucket",
    "ServeClient",
    "AsyncServeClient",
    "ServeResult",
    "run_storm",
    "run_serve_bench",
]
