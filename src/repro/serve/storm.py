"""``debug.storm``: a load generator replaying realistic mixed traffic.

The storm drives a live server with a seeded mixture modelled on real
engine usage: repeat lookups that should be served from the hot LRU,
cold lookups that execute, sweep-style compute (``sizes.row``),
stream-shard scans through the packed extraction scanner
(``extract.scan``), identical concurrent requests that must coalesce,
and the PR 4 fault
injectors (``debug.flaky`` retried to success, ``debug.hang`` timed out
under the server's ``on_timeout`` policy, ``debug.fail`` surfacing as
``500``).  With no target host it boots an embedded server, drains it at
the end, and reports whether the shutdown was clean — which is exactly
what the CI smoke asserts.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any

from repro.serve.client import AsyncServeClient
from repro.serve.config import ServeConfig
from repro.serve.server import ReproServer

__all__ = ["run_storm", "percentile", "STORM_MIX"]

#: kind → (weight, request factory).  Factories take (rng, sequence no.)
#: and return (job, params).  Weights are relative, not normalised.
STORM_MIX: list[tuple[str, int]] = [
    ("echo_hot", 30),  # few distinct keys: hot-LRU hits after first touch
    ("echo_cold", 15),  # unique keys: real executions
    ("sizes", 15),  # sweep-shaped compute, cached after first touch
    ("coalesce", 20),  # identical slow requests issued concurrently
    ("extract", 8),  # stream-shard scans through the packed scanner
    ("flaky", 10),  # fails once, succeeds on retry (max_retries >= 1)
    ("hang", 5),  # hangs forever; the per-job timeout must kill it
    ("fail", 5),  # raises; surfaces as HTTP 500
]


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _make_request(kind: str, rng: random.Random, seq: int) -> tuple[str, dict[str, Any]]:
    if kind == "echo_hot":
        return "debug.echo", {"value": f"hot-{seq % 4}"}
    if kind == "echo_cold":
        return "debug.echo", {"value": f"cold-{seq}"}
    if kind == "sizes":
        return "sizes.row", {"n": rng.choice((4, 8, 16))}
    if kind == "coalesce":
        return "debug.sleep", {"seconds": 0.05}
    if kind == "extract":
        # A tiny stream: the scanner compiles in milliseconds on first
        # touch, so shard scans finish well inside the embedded server's
        # 0.75 s fault-mode timeout.  Few distinct seeds → a mix of real
        # executions and cache/coalescing traffic.
        return "extract.scan", {
            "c": 2,
            "w": 1,
            "columns": [1, 2],
            "n_docs": 64,
            "seed": seq % 5,
            "match_bias": 0.3,
            "chunk_chars": 64,
        }
    if kind == "flaky":
        return "debug.flaky", {"fails": 1, "value": f"storm-{seq % 3}"}
    if kind == "hang":
        return "debug.hang", {"tag": 1000 + seq}
    if kind == "fail":
        return "debug.fail", {"message": f"storm-{seq}"}
    raise ValueError(f"unknown storm kind {kind!r}")


def _plan(requests: int, seed: int, faults: bool) -> list[tuple[str, str, dict[str, Any]]]:
    """The deterministic request schedule: ``(kind, job, params)`` per slot."""
    rng = random.Random(seed)
    kinds = [k for k, _ in STORM_MIX if faults or k not in ("hang", "fail")]
    weights = [w for k, w in STORM_MIX if faults or k not in ("hang", "fail")]
    plan = []
    for seq in range(requests):
        kind = rng.choices(kinds, weights=weights)[0]
        job, params = _make_request(kind, rng, seq)
        plan.append((kind, job, params))
    return plan


_EXPECTED_STATUS = {
    "echo_hot": {200},
    "echo_cold": {200},
    "sizes": {200},
    "coalesce": {200},
    "extract": {200},
    "flaky": {200},
    "hang": {504},
    "fail": {500},
}


async def _storm_clients(
    host: str, port: int, plan: list, concurrency: int
) -> list[dict[str, Any]]:
    """Fan the plan out over ``concurrency`` keep-alive connections."""
    queue: asyncio.Queue = asyncio.Queue()
    for item in enumerate(plan):
        queue.put_nowait(item)
    outcomes: list[dict[str, Any]] = []

    async def worker(worker_id: int) -> None:
        client = AsyncServeClient(host, port, client_id=f"storm-{worker_id}")
        try:
            while True:
                try:
                    seq, (kind, job, params) = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                try:
                    result = await client.run(job, params)
                    outcomes.append(
                        {
                            "seq": seq,
                            "kind": kind,
                            "status": result.status,
                            "latency_s": result.latency_s,
                            "coalesced": bool(
                                isinstance(result.data, dict)
                                and result.data.get("coalesced")
                            ),
                            "expected": result.status in _EXPECTED_STATUS[kind],
                        }
                    )
                except Exception as exc:
                    outcomes.append(
                        {
                            "seq": seq,
                            "kind": kind,
                            "status": -1,
                            "latency_s": 0.0,
                            "coalesced": False,
                            "expected": False,
                            "error": str(exc),
                        }
                    )
        finally:
            await client.close()

    await asyncio.gather(*(worker(i) for i in range(max(1, concurrency))))
    return outcomes


def _embedded_config(faults: bool) -> ServeConfig:
    # Memory-only cache: a load generator must not pollute the user's
    # on-disk result cache.  Faults need a parallel engine (timeouts are
    # only enforced across a process boundary) and a retry budget.
    return ServeConfig(
        no_cache=True,
        hot_entries=512,
        jobs=2 if faults else 1,
        timeout=0.75 if faults else None,
        on_timeout="skip",
        max_retries=1,
        retry_backoff=0.05,
        queue_limit=128,
        exec_workers=8,
        drain_grace_s=15.0,
    )


def run_storm(
    host: str | None = None,
    port: int = 0,
    requests: int = 60,
    concurrency: int = 8,
    seed: int = 0,
    faults: bool = True,
) -> dict[str, Any]:
    """Run the storm; returns a JSON summary (the ``debug.storm`` job body).

    With ``host=None`` an embedded server is booted on an ephemeral port
    and gracefully shut down afterwards (``clean_shutdown`` reports the
    drain outcome); against an external server no shutdown is attempted
    and ``clean_shutdown`` is ``None``.
    """
    plan = _plan(requests, seed, faults)
    server: ReproServer | None = None
    if not host:
        server = ReproServer(_embedded_config(faults)).start()
        host, port = server.config.host, server.port or 0

    started = time.perf_counter()
    outcomes = asyncio.run(_storm_clients(host, port, plan, concurrency))
    wall_s = time.perf_counter() - started

    from repro.serve.client import ServeClient

    stats = ServeClient(host, port).stats().data
    clean_shutdown: bool | None = None
    if server is not None:
        clean_shutdown = server.stop()

    by_kind: dict[str, dict[str, int]] = {}
    for outcome in outcomes:
        slot = by_kind.setdefault(
            outcome["kind"], {"sent": 0, "expected": 0, "coalesced": 0}
        )
        slot["sent"] += 1
        slot["expected"] += int(outcome["expected"])
        slot["coalesced"] += int(outcome["coalesced"])
    latencies = [o["latency_s"] for o in outcomes if o["status"] == 200]
    statuses: dict[str, int] = {}
    for outcome in outcomes:
        statuses[str(outcome["status"])] = statuses.get(str(outcome["status"]), 0) + 1

    return {
        "requests": requests,
        "concurrency": concurrency,
        "seed": seed,
        "faults": faults,
        "wall_s": round(wall_s, 4),
        "rps": round(len(outcomes) / wall_s, 2) if wall_s > 0 else None,
        "statuses": statuses,
        "by_kind": by_kind,
        "all_expected": all(o["expected"] for o in outcomes),
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
        "server_counters": (stats or {}).get("counters"),
        "hot": (stats or {}).get("hot"),
        "clean_shutdown": clean_shutdown,
    }
