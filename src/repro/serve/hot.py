"""A shared in-memory LRU in front of the disk cache.

:class:`HotLRU` speaks the same ``get``/``put``/``stats`` protocol as
:class:`~repro.engine.cache.DiskCache`, so the engine uses it as *the*
cache while every lookup is answered from memory when possible:

* ``get`` — hot hit (no disk I/O) → disk hit (promoted into memory) →
  miss;
* ``put`` — stores in memory and writes through to the disk layer;
* eviction — least-recently-used beyond ``max_entries``.

All methods are thread-safe: the serve broker shares one instance across
its executor threads.  The counters it keeps (``hot_hits``,
``disk_hits``, ``misses``, ``evictions``) feed the server's ``/stats``
endpoint, which is how "repeat hits never touch disk" stays observable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Mapping
from typing import Any

from repro.engine.cache import DiskCache

__all__ = ["HotLRU"]


class HotLRU:
    """A bounded, thread-safe LRU of cache entries over an optional disk layer.

    >>> hot = HotLRU(None, max_entries=2)
    >>> hot.put("j", "k1", {"n": 1}, "fp", 11)
    >>> hot.get("j", "k1")["result"]
    11
    >>> hot.put("j", "k2", {"n": 2}, "fp", 22)
    >>> hot.put("j", "k3", {"n": 3}, "fp", 33)  # evicts k1
    >>> hot.get("j", "k1") is None
    True
    """

    def __init__(self, inner: DiskCache | None, max_entries: int = 1024) -> None:
        self._inner = inner
        self._max = max(0, int(max_entries))
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], dict[str, Any]] = OrderedDict()
        self.hot_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def inner(self) -> DiskCache | None:
        """The wrapped disk layer (``None`` when serving memory-only)."""
        return self._inner

    def peek(self, job_name: str, key: str) -> dict[str, Any] | None:
        """Memory-only lookup: never touches the disk layer.

        The broker's event-loop fast path uses this — blocking disk I/O
        must not run on the loop, so a memory miss falls through to the
        executor (where :meth:`get` may still find the entry on disk).
        """
        ck = (job_name, key)
        with self._lock:
            entry = self._entries.get(ck)
            if entry is not None:
                self._entries.move_to_end(ck)
                self.hot_hits += 1
            return entry

    def get(self, job_name: str, key: str) -> dict[str, Any] | None:
        ck = (job_name, key)
        with self._lock:
            entry = self._entries.get(ck)
            if entry is not None:
                self._entries.move_to_end(ck)
                self.hot_hits += 1
                return entry
        if self._inner is None:
            with self._lock:
                self.misses += 1
            return None
        entry = self._inner.get(job_name, key)
        with self._lock:
            if entry is None:
                self.misses += 1
                return None
            self.disk_hits += 1
            self._admit(ck, entry)
        return entry

    def put(
        self,
        job_name: str,
        key: str,
        params: Mapping[str, Any],
        fingerprint: str,
        result: Any,
    ) -> None:
        entry = {
            "job": job_name,
            "params": dict(params),
            "fingerprint": fingerprint,
            "result": result,
        }
        with self._lock:
            self._admit((job_name, key), entry)
        if self._inner is not None:
            self._inner.put(job_name, key, params, fingerprint, result)

    def _admit(self, ck: tuple[str, str], entry: dict[str, Any]) -> None:
        """Insert/refresh under the lock, evicting the LRU tail."""
        if self._max == 0:
            return
        self._entries[ck] = entry
        self._entries.move_to_end(ck)
        while len(self._entries) > self._max:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self, count_only: bool = False) -> dict[str, Any]:
        """Counters plus the disk layer's (cheap) stats, for ``/stats``."""
        with self._lock:
            hot = {
                "entries": len(self._entries),
                "max_entries": self._max,
                "hot_hits": self.hot_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
        hot["disk"] = (
            self._inner.stats(count_only=count_only) if self._inner is not None else None
        )
        return hot

    def clear(self) -> int:
        """Drop every hot entry (the disk layer is left untouched)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        return dropped
