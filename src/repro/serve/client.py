"""Clients for the job service: a sync one for tools/tests, an async one
for load generation.

Both speak plain HTTP/1.1 with stdlib machinery only.
:class:`ServeClient` opens one :mod:`http.client` connection per call
(simple, thread-safe by construction); :class:`AsyncServeClient` holds a
keep-alive connection per instance, which is what gives the storm and
bench harnesses realistic per-connection pipelines.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
from dataclasses import dataclass
from typing import Any

__all__ = ["ServeClient", "ServeResult", "AsyncServeClient"]


@dataclass(slots=True)
class ServeResult:
    """One HTTP exchange: status code, parsed JSON body, client-side latency."""

    status: int
    data: Any
    latency_s: float
    headers: dict[str, str]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ServeClient:
    """A blocking client: one connection per request, JSON in/out."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: Any = None
    ) -> ServeResult:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        headers = {"Connection": "close"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        started = time.perf_counter()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            latency = time.perf_counter() - started
            data = json.loads(raw) if raw.strip() else None
            return ServeResult(
                status=response.status,
                data=data,
                latency_s=latency,
                headers={k.lower(): v for k, v in response.getheaders()},
            )
        finally:
            conn.close()

    def health(self) -> ServeResult:
        return self._request("GET", "/health")

    def jobs(self) -> ServeResult:
        return self._request("GET", "/jobs")

    def stats(self) -> ServeResult:
        return self._request("GET", "/stats")

    def run(self, job: str, params: dict[str, Any] | None = None) -> ServeResult:
        return self._request("POST", "/run", {"job": job, "params": params or {}})

    def shutdown(self) -> ServeResult:
        return self._request("POST", "/shutdown")

    def events(self, run_id: str, timeout: float | None = None) -> list[dict[str, Any]]:
        """Collect a run's event stream (dechunked by http.client) to its end."""
        path = f"/runs/{run_id}/events"
        if timeout is not None:
            path += f"?timeout={timeout}"
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", path, headers={"Connection": "close"})
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                data = json.loads(raw) if raw.strip() else {}
                raise RuntimeError(
                    f"events stream failed: {response.status} {data.get('error')}"
                )
            events = []
            for line in response:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
            return events
        finally:
            conn.close()


class AsyncServeClient:
    """A keep-alive asyncio client for one connection's worth of traffic."""

    def __init__(
        self, host: str, port: int, client_id: str | None = None, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure_connected(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(self, method: str, path: str, body: Any = None) -> ServeResult:
        """One exchange on the persistent connection (reconnects once)."""
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        head = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
        if self.client_id is not None:
            head.append(f"X-Client-Id: {self.client_id}")
        if payload:
            head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(payload)}")
        raw = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
        started = time.perf_counter()
        for attempt in (1, 2):
            await self._ensure_connected()
            assert self._reader is not None and self._writer is not None
            try:
                self._writer.write(raw)
                await self._writer.drain()
                result = await asyncio.wait_for(
                    self._read_response(started), timeout=self.timeout
                )
                return result
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    async def _read_response(self, started: float) -> ServeResult:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding", "").lower() == "chunked":
            body = await self._read_chunked()
            data: Any = [
                json.loads(line) for line in body.splitlines() if line.strip()
            ]
        else:
            length = int(headers.get("content-length", "0") or "0")
            body = await self._reader.readexactly(length) if length else b""
            data = json.loads(body) if body.strip() else None
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return ServeResult(
            status=status,
            data=data,
            latency_s=time.perf_counter() - started,
            headers=headers,
        )

    async def _read_chunked(self) -> bytes:
        assert self._reader is not None
        parts = []
        while True:
            size_line = await self._reader.readline()
            size = int(size_line.strip() or b"0", 16)
            if size == 0:
                await self._reader.readline()  # trailing CRLF
                return b"".join(parts)
            parts.append(await self._reader.readexactly(size))
            await self._reader.readexactly(2)  # chunk CRLF

    async def run(self, job: str, params: dict[str, Any] | None = None) -> ServeResult:
        return await self.request("POST", "/run", {"job": job, "params": params or {}})

    async def stats(self) -> ServeResult:
        return await self.request("GET", "/stats")

    async def health(self) -> ServeResult:
        return await self.request("GET", "/health")

    async def shutdown(self) -> ServeResult:
        return await self.request("POST", "/shutdown")
