"""The request broker: validate → rate-limit → coalesce → admit → execute.

The broker is the seam between the asyncio server and the synchronous
:class:`~repro.engine.Engine`.  One engine instance is shared by all
clients; executions run on a bounded thread pool (each thread calls the
engine's thread-safe entry point with its own per-run
:class:`~repro.serve.events.EventLog`), while all bookkeeping — the
in-flight coalescing table, admission counting, counters, run history —
happens on the event loop.

The request pipeline, in order:

1. **rate limit** — the per-client token bucket (``429`` + Retry-After);
2. **validate** — job name against the registry (``404``), parameters
   against the job's declaration (``400``), *before* any work is queued;
3. **hot fast path** — a memory-resident cache entry is served directly
   on the event loop (no thread hop, no disk);
4. **coalesce** — an identical in-flight request is joined as a follower;
5. **admit** — distinct executions beyond ``queue_limit`` are refused
   with ``503`` + Retry-After (the pool's queue stays bounded);
6. **execute** — leader runs ``engine.run_one`` in the pool; everyone
   awaiting the shared future gets the one outcome.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from functools import partial
from pathlib import Path
from typing import Any

from concurrent.futures import ThreadPoolExecutor

from repro.engine import DiskCache, Engine, JobRegistry, default_registry
from repro.errors import EngineError, JobTimeoutError, UnknownJobError
from repro.serve.coalesce import Coalescer, Execution
from repro.serve.config import ServeConfig
from repro.serve.events import EventLog
from repro.serve.hot import HotLRU
from repro.serve.limits import RateLimiter

__all__ = ["Broker", "ServeHTTPError"]


class ServeHTTPError(Exception):
    """An error with an HTTP status, raised by the broker, mapped by the server."""

    def __init__(self, status: int, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class Broker:
    """Shared execution pipeline behind the HTTP front end."""

    def __init__(
        self,
        config: ServeConfig,
        loop: asyncio.AbstractEventLoop,
        registry: JobRegistry | None = None,
    ) -> None:
        self.config = config
        self.loop = loop
        self.registry = registry if registry is not None else default_registry()
        disk = None if config.no_cache else DiskCache(config.cache_dir)
        self.hot: HotLRU | None = (
            HotLRU(disk, config.hot_entries) if config.hot_entries > 0 else None
        )
        engine_cache = self.hot if self.hot is not None else disk
        self.engine = Engine(
            registry=self.registry,
            cache=engine_cache,
            jobs=config.jobs,
            timeout=config.timeout,
            on_timeout=config.on_timeout,
            max_retries=config.max_retries,
            retry_backoff=config.retry_backoff,
        )
        self.limiter = RateLimiter(config.rate, config.burst, config.max_clients)
        self.coalescer = Coalescer()
        self.pool = ThreadPoolExecutor(
            max_workers=config.exec_workers, thread_name_prefix="repro-serve"
        )
        self._run_log_path = (
            Path(config.run_log_path) if config.run_log_path is not None else None
        )
        self._runs: OrderedDict[str, EventLog] = OrderedDict()
        self._exec_tasks: set[asyncio.Task] = set()
        self.started_at = time.monotonic()
        self.counters: dict[str, int] = {
            "requests": 0,
            "executed": 0,
            "coalesced": 0,
            "hot_served": 0,
            "errors": 0,
            "timeouts": 0,
            "rejected_rate": 0,
            "rejected_busy": 0,
            "bad_requests": 0,
        }

    # ------------------------------------------------------------------
    # The request pipeline
    # ------------------------------------------------------------------

    async def submit(
        self, job_name: str, params: dict[str, Any], client_id: str
    ) -> dict[str, Any]:
        """Serve one job request; returns the JSON response payload.

        Raises :class:`ServeHTTPError` for every refusal (429/503) and
        failure (400/404/500/504).
        """
        self.counters["requests"] += 1
        granted, retry_after = self.limiter.check(client_id)
        if not granted:
            self.counters["rejected_rate"] += 1
            raise ServeHTTPError(
                429, f"rate limit exceeded for client {client_id!r}", retry_after
            )
        try:
            job = self.registry.get(job_name)
            resolved = job.resolve_params(params)
        except UnknownJobError as exc:
            self.counters["bad_requests"] += 1
            raise ServeHTTPError(404, str(exc)) from exc
        except EngineError as exc:
            self.counters["bad_requests"] += 1
            raise ServeHTTPError(400, str(exc)) from exc
        key = job.key(resolved)

        if self.hot is not None:
            entry = self.hot.peek(job_name, key)
            if entry is not None:
                self.counters["hot_served"] += 1
                return {
                    "job": job_name,
                    "params": resolved,
                    "result": entry["result"],
                    "cache": "hot",
                    "coalesced": False,
                    "run_id": None,
                    "wall_ms": 0.0,
                }

        execution = self.coalescer.get(job_name, key)
        if execution is not None:
            self.counters["coalesced"] += 1
            payload = await asyncio.shield(execution.future)
            return {**payload, "coalesced": True}

        if len(self.coalescer) >= self.config.queue_limit:
            self.counters["rejected_busy"] += 1
            raise ServeHTTPError(
                503,
                f"server busy: {len(self.coalescer)} executions in flight "
                f"(queue_limit={self.config.queue_limit})",
                retry_after=1.0,
            )

        log = EventLog(self.loop, path=self._run_log_path)
        self._remember_run(log)
        execution = self.coalescer.begin(job_name, key, log.run_id, self.loop)
        task = self.loop.create_task(self._execute(execution, job_name, resolved, log))
        self._exec_tasks.add(task)
        task.add_done_callback(self._exec_tasks.discard)
        return await asyncio.shield(execution.future)

    async def _execute(
        self,
        execution: Execution,
        job_name: str,
        resolved: dict[str, Any],
        log: EventLog,
    ) -> None:
        """Leader body: one engine run on the pool, one shared outcome."""
        try:
            result = await self.loop.run_in_executor(
                self.pool,
                partial(self.engine.run_one, job_name, resolved, run_log=log),
            )
        except JobTimeoutError as exc:
            self.counters["timeouts"] += 1
            log.finish_error(str(exc))
            self.coalescer.finish(
                execution, error=ServeHTTPError(504, f"job timed out: {exc}")
            )
        except Exception as exc:  # JobFailedError and anything unforeseen
            self.counters["errors"] += 1
            log.finish_error(str(exc))
            self.coalescer.finish(
                execution, error=ServeHTTPError(500, f"job failed: {exc}")
            )
        else:
            self.counters["executed"] += 1
            self.coalescer.finish(
                execution,
                result={
                    "job": job_name,
                    "params": resolved,
                    "result": result,
                    "cache": self._root_cache_state(log, job_name),
                    "coalesced": False,
                    "run_id": log.run_id,
                    "wall_ms": self._run_wall_ms(log),
                },
            )

    @staticmethod
    def _root_cache_state(log: EventLog, job_name: str) -> str:
        """The cache state of the root request's record (hit/miss/off)."""
        for record in reversed(log.records):
            if record.job == job_name:
                return record.cache
        return "miss"

    @staticmethod
    def _run_wall_ms(log: EventLog) -> float:
        for payload in reversed(log.events):
            if payload.get("kind") == "run_summary":
                return payload["wall_ms"]
        return 0.0

    # ------------------------------------------------------------------
    # Run history and stats
    # ------------------------------------------------------------------

    def _remember_run(self, log: EventLog) -> None:
        self._runs[log.run_id] = log
        while len(self._runs) > self.config.run_history:
            self._runs.popitem(last=False)

    def get_run(self, run_id: str) -> EventLog | None:
        return self._runs.get(run_id)

    def stats(self) -> dict[str, Any]:
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "counters": dict(self.counters),
            "inflight": self.coalescer.inflight(),
            "coalescer": {
                "started": self.coalescer.started,
                "coalesced": self.coalescer.coalesced,
            },
            "hot": self.hot.stats(count_only=True) if self.hot is not None else None,
            "limits": self.limiter.stats(),
            "tracked_runs": len(self._runs),
            "engine": {
                "jobs": self.engine.jobs,
                "timeout": self.engine.timeout,
                "on_timeout": self.engine.on_timeout,
                "max_retries": self.engine.max_retries,
            },
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def drain(self, grace_s: float) -> bool:
        """Wait (up to ``grace_s``) for every in-flight execution to finish.

        Returns True on a clean drain.  Executions still running at the
        deadline are abandoned (their threads keep running until process
        exit — the engine offers no preemption for in-process jobs).
        """
        tasks = [t for t in self._exec_tasks if not t.done()]
        clean = True
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=grace_s)
            clean = not pending
        self.pool.shutdown(wait=clean, cancel_futures=True)
        return clean
