"""Configuration for the job service (:mod:`repro.serve`).

One frozen-ish dataclass carries every tunable of the server stack —
network endpoint, engine execution policy, hot-cache size, admission and
rate limits, and drain behaviour — so tests and the CLI construct servers
the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import EngineError

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig:
    """Every knob of a :class:`~repro.serve.server.ReproServer`.

    Engine policy (``jobs``/``timeout``/``on_timeout``/``max_retries``/
    ``retry_backoff``) is passed straight to the shared
    :class:`~repro.engine.Engine`.  Note the engine's documented
    limitation: per-job timeouts are enforced only in parallel mode, so a
    server that should honour ``timeout`` needs ``jobs >= 2``.

    ``rate``/``burst`` configure the per-client token bucket (``rate=None``
    disables rate limiting); ``queue_limit`` bounds concurrently admitted
    *distinct* executions (coalesced followers ride for free);
    ``exec_workers`` is the number of broker threads draining admitted
    executions into the engine.
    """

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = bind an ephemeral port (read it back after start)

    # --- engine policy -------------------------------------------------
    cache_dir: str | Path | None = None
    no_cache: bool = False
    jobs: int = 1
    timeout: float | None = None
    on_timeout: str = "raise"
    max_retries: int = 0
    retry_backoff: float = 0.1
    run_log_path: str | Path | None = None  #: JSONL sink shared by all runs

    # --- hot LRU -------------------------------------------------------
    hot_entries: int = 1024  #: 0 disables the in-memory layer

    # --- admission / rate limiting ------------------------------------
    queue_limit: int = 64
    exec_workers: int = 8
    rate: float | None = None  #: tokens/second per client (None = unlimited)
    burst: int = 20  #: token-bucket capacity per client
    max_clients: int = 1024  #: distinct client buckets kept (LRU evicted)

    # --- streaming / lifecycle ----------------------------------------
    keepalive_idle_s: float = 30.0  #: idle keep-alive connections are closed
    stream_timeout_s: float = 60.0  #: cap on one /runs/<id>/events stream
    drain_grace_s: float = 30.0  #: graceful-shutdown budget for in-flight work
    run_history: int = 256  #: finished runs kept addressable for /events
    max_body_bytes: int = 1 << 20
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise EngineError(f"port must be in [0, 65535], got {self.port}")
        if self.jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {self.jobs}")
        if self.on_timeout not in ("raise", "skip"):
            raise EngineError(
                f"on_timeout must be 'raise' or 'skip', got {self.on_timeout!r}"
            )
        if self.queue_limit < 1:
            raise EngineError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.exec_workers < 1:
            raise EngineError(f"exec_workers must be >= 1, got {self.exec_workers}")
        if self.burst < 1:
            raise EngineError(f"burst must be >= 1, got {self.burst}")
        if self.rate is not None and self.rate <= 0:
            raise EngineError(f"rate must be > 0 or None, got {self.rate}")
        if self.hot_entries < 0:
            raise EngineError(f"hot_entries must be >= 0, got {self.hot_entries}")
