"""Per-client rate limiting and admission accounting.

A classic token bucket per client: capacity ``burst`` tokens, refilled
continuously at ``rate`` tokens/second.  A request costs one token; a
client that drained its bucket gets ``429`` with a ``Retry-After``
computed from the deficit.  Buckets live in a bounded LRU so an open
server cannot be grown without bound by spoofed client ids.

Admission control proper (the bounded execution queue answered with
``503``) lives in the broker — it is a property of the shared execution
pipeline, not of one client.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from typing import Any

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """A continuous-refill token bucket.

    ``clock`` is injectable for deterministic tests.

    >>> t = [0.0]
    >>> bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: t[0])
    >>> [bucket.try_acquire()[0] for _ in range(3)]
    [True, True, False]
    >>> t[0] = 1.0  # one second refills one token
    >>> bucket.try_acquire()[0]
    True
    """

    __slots__ = ("rate", "burst", "tokens", "updated", "clock")

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.clock = clock
        self.updated = clock()

    def try_acquire(self, cost: float = 1.0) -> tuple[bool, float]:
        """``(granted, retry_after_seconds)``; ``retry_after`` is 0 on grant."""
        now = self.clock()
        if now > self.updated:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True, 0.0
        if self.rate <= 0:
            return False, float("inf")
        return False, (cost - self.tokens) / self.rate


class RateLimiter:
    """A bounded LRU of per-client :class:`TokenBucket`\\ s.

    ``rate=None`` disables limiting entirely (every check is granted).
    Thread-safe; the server calls it from the event loop only, but the
    storm/bench harnesses may poke it from test threads.
    """

    def __init__(
        self,
        rate: float | None,
        burst: int,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.max_clients = max(1, int(max_clients))
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self.granted = 0
        self.rejected = 0

    def check(self, client_id: str) -> tuple[bool, float]:
        """Charge one token to ``client_id``; ``(granted, retry_after)``."""
        if self.rate is None:
            self.granted += 1
            return True, 0.0
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[client_id] = bucket
            self._buckets.move_to_end(client_id)
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
            ok, retry_after = bucket.try_acquire()
            if ok:
                self.granted += 1
            else:
                self.rejected += 1
            return ok, retry_after

    @staticmethod
    def retry_after_header(retry_after: float) -> str:
        """``Retry-After`` wants integral seconds; always advise >= 1."""
        if not math.isfinite(retry_after):
            return "60"
        return str(max(1, math.ceil(retry_after)))

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.rate is not None,
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "granted": self.granted,
                "rejected": self.rejected,
            }
