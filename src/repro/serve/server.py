"""A hand-rolled asyncio HTTP/1.1 front end over the request broker.

No frameworks, no new dependencies: requests are parsed straight off the
stream reader, responses are JSON with ``Content-Length`` (or chunked
JSONL for event streams), and keep-alive is honoured until the server
starts draining.

Endpoints
---------

===========================  ========================================================
``GET  /health``             liveness + draining flag
``GET  /jobs``               the job registry (names, params, descriptions)
``POST /run``                ``{"job": name, "params": {...}}`` → result envelope
``GET  /stats``              broker / hot-cache / limiter / server counters
``GET  /runs/<id>/events``   chunked JSONL replay + live stream of run records
``POST /shutdown``           begin graceful shutdown (drain, then exit)
===========================  ========================================================

Graceful shutdown: stop accepting, close idle keep-alive connections,
let busy handlers finish their in-flight responses, then drain the
broker (bounded by ``drain_grace_s``).  ``SIGTERM``/``SIGINT`` trigger
the same path when the loop runs in the main thread (the CLI case).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.engine import JobRegistry
from repro.serve.broker import Broker, ServeHTTPError
from repro.serve.config import ServeConfig
from repro.serve.events import EventLog

__all__ = ["ReproServer", "HttpRequest"]

_MAX_HEADER_BYTES = 32768

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _BadRequest(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(slots=True)
class HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(400, f"invalid JSON body: {exc}") from exc

    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"

    def query_float(self, name: str, default: float) -> float:
        values = self.query.get(name)
        if not values:
            return default
        try:
            return float(values[-1])
        except ValueError as exc:
            raise _BadRequest(400, f"query parameter {name!r} must be a number") from exc


@dataclass(slots=True)
class _Conn:
    writer: asyncio.StreamWriter
    busy: bool = False
    opened: float = field(default_factory=time.monotonic)


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> HttpRequest | None:
    """Parse one request off the wire; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(400, f"malformed request line: {line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        header = await reader.readline()
        total += len(header)
        if total > _MAX_HEADER_BYTES:
            raise _BadRequest(431, "request headers too large")
        if header in (b"\r\n", b"\n", b""):
            break
        name, sep, value = header.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest(400, f"malformed header line: {header!r}")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise _BadRequest(400, f"invalid Content-Length: {raw_length!r}") from None
    if length < 0 or length > max_body:
        raise _BadRequest(413, f"request body of {length} bytes exceeds {max_body}")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    return HttpRequest(
        method=method,
        path=split.path,
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _response_head(
    status: int, content_length: int | None, extra: dict[str, str] | None = None
) -> bytes:
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"]
    if content_length is not None:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {content_length}")
    else:
        lines.append("Content-Type: application/x-ndjson")
        lines.append("Transfer-Encoding: chunked")
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    lines.append("Connection: keep-alive")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class ReproServer:
    """The long-running job service: asyncio core + optional thread wrapper.

    Two ways to run it:

    * ``run_blocking()`` — the CLI path: owns the loop in the calling
      (usually main) thread, installs signal handlers, serves until a
      signal or ``POST /shutdown``.
    * ``start()`` / ``stop()`` — the embedded path used by tests, the
      storm generator and the bench harness: the loop runs in a daemon
      thread; ``start()`` returns once the port is bound.
    """

    def __init__(self, config: ServeConfig, registry: JobRegistry | None = None):
        self.config = config
        self._registry = registry
        self.broker: Broker | None = None
        self.port: int | None = None
        self.draining = False
        self.clean_drain: bool | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._finished = threading.Event()
        self._shutdown_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._conns: dict[asyncio.Task, _Conn] = {}
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self.broker = Broker(self.config, self._loop, registry=self._registry)
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self.port = server.sockets[0].getsockname()[1]
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                break  # not the main thread (embedded mode): no signals
        self._ready.set()
        try:
            await self._shutdown_event.wait()
            # Drain: stop accepting, kick idle connections, let busy
            # handlers finish, then drain broker executions.
            self.draining = True
            server.close()
            await server.wait_closed()
            for conn in list(self._conns.values()):
                if not conn.busy:
                    conn.writer.close()
            handler_tasks = [t for t in self._conns if not t.done()]
            if handler_tasks:
                await asyncio.wait(handler_tasks, timeout=self.config.drain_grace_s)
            self.clean_drain = await self.broker.drain(self.config.drain_grace_s)
        finally:
            server.close()

    def request_shutdown(self) -> None:
        """Begin graceful shutdown; safe to call from any thread via the loop."""
        if self._shutdown_event is not None and not self._shutdown_event.is_set():
            self._shutdown_event.set()

    def run_blocking(self) -> None:
        """Serve on the current thread until shutdown (the CLI entry)."""
        try:
            asyncio.run(self._main())
        finally:
            self._finished.set()

    def start(self, timeout: float = 10.0) -> "ReproServer":
        """Boot in a daemon thread; returns once the port is bound."""

        def runner() -> None:
            try:
                asyncio.run(self._main())
            except BaseException as exc:  # surface boot failures to start()
                if self._startup_error is None:
                    self._startup_error = exc
                self._ready.set()
            finally:
                self._finished.set()

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not come up within the startup timeout")
        if self._startup_error is not None:
            raise RuntimeError(f"server failed to start: {self._startup_error}")
        return self

    def stop(self, grace: float = 15.0) -> bool:
        """Request shutdown and join the server thread; True on clean drain."""
        if self._loop is not None and not self._finished.is_set():
            try:
                self._loop.call_soon_threadsafe(self.request_shutdown)
            except RuntimeError:
                pass  # loop already gone
        self._finished.wait(grace)
        if self._thread is not None:
            self._thread.join(grace)
        return bool(self.clean_drain)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        conn = _Conn(writer=writer)
        assert task is not None
        self._conns[task] = conn
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else "local"
        try:
            while not self.draining:
                try:
                    request = await asyncio.wait_for(
                        _read_request(reader, self.config.max_body_bytes),
                        timeout=self.config.keepalive_idle_s,
                    )
                except asyncio.TimeoutError:
                    break
                except _BadRequest as exc:
                    await self._send_json(
                        writer, exc.status, {"error": exc.message, "status": exc.status}
                    )
                    break
                if request is None:
                    break
                conn.busy = True
                try:
                    keep_open = await self._dispatch(request, writer, peer_host)
                finally:
                    conn.busy = False
                if not keep_open or request.wants_close() or self.draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
            pass
        finally:
            self._conns.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        extra: dict[str, str] | None = None,
    ) -> None:
        body = _json_bytes(payload) + b"\n"
        writer.write(_response_head(status, len(body), extra) + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter, peer_host: str
    ) -> bool:
        """Handle one request; returns False when the connection must close."""
        assert self.broker is not None
        path, method = request.path, request.method
        try:
            if path == "/health" and method == "GET":
                await self._send_json(
                    writer, 200, {"status": "ok", "draining": self.draining}
                )
            elif path == "/jobs" and method == "GET":
                await self._send_json(writer, 200, self._jobs_payload())
            elif path == "/stats" and method == "GET":
                await self._send_json(writer, 200, self._stats_payload())
            elif path == "/run" and method == "POST":
                await self._handle_run(request, writer, peer_host)
            elif path.startswith("/runs/") and path.endswith("/events") and method == "GET":
                run_id = path[len("/runs/") : -len("/events")]
                return await self._handle_events(request, writer, run_id)
            elif path == "/shutdown" and method == "POST":
                await self._send_json(writer, 202, {"status": "draining"})
                self.request_shutdown()
                return False
            elif path in ("/health", "/jobs", "/stats", "/run", "/shutdown"):
                await self._send_json(
                    writer, 405, {"error": f"{method} not allowed on {path}", "status": 405}
                )
            else:
                await self._send_json(
                    writer, 404, {"error": f"no such endpoint: {path}", "status": 404}
                )
        except _BadRequest as exc:
            await self._send_json(
                writer, exc.status, {"error": exc.message, "status": exc.status}
            )
        except ServeHTTPError as exc:
            extra = None
            if exc.retry_after is not None:
                extra = {
                    "Retry-After": self.broker.limiter.retry_after_header(
                        exc.retry_after
                    )
                }
            await self._send_json(
                writer, exc.status, {"error": exc.message, "status": exc.status}, extra
            )
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # a handler bug must not kill the server
            await self._send_json(
                writer, 500, {"error": f"internal error: {exc}", "status": 500}
            )
        return True

    def _jobs_payload(self) -> dict[str, Any]:
        assert self.broker is not None
        registry = self.broker.registry
        return {
            "jobs": [
                {
                    "name": name,
                    "params": list(registry.get(name).param_names),
                    "description": registry.get(name).description,
                }
                for name in registry.names()
            ]
        }

    def _stats_payload(self) -> dict[str, Any]:
        assert self.broker is not None
        stats = self.broker.stats()
        stats["server"] = {
            "draining": self.draining,
            "connections": len(self._conns),
            "port": self.port,
        }
        return stats

    async def _handle_run(
        self, request: HttpRequest, writer: asyncio.StreamWriter, peer_host: str
    ) -> None:
        assert self.broker is not None
        body = request.json()
        if not isinstance(body, dict) or not isinstance(body.get("job"), str):
            raise _BadRequest(400, 'body must be {"job": <name>, "params": {...}}')
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise _BadRequest(400, '"params" must be a JSON object')
        client_id = request.headers.get("x-client-id", peer_host)
        payload = await self.broker.submit(body["job"], params, client_id)
        await self._send_json(writer, 200, payload)

    async def _handle_events(
        self, request: HttpRequest, writer: asyncio.StreamWriter, run_id: str
    ) -> bool:
        """Stream a run's records as chunked JSONL: replay, then live tail.

        The stream ends at the run's terminal event (``run_summary`` or
        ``run_error``), at ``stream_timeout_s``, or when the server
        drains.  Returns False: a chunked response ends its connection.
        """
        assert self.broker is not None
        log = self.broker.get_run(run_id)
        if log is None:
            raise _BadRequest(404, f"unknown run id: {run_id}")
        timeout = min(
            request.query_float("timeout", self.config.stream_timeout_s),
            self.config.stream_timeout_s,
        )
        snapshot, queue = log.subscribe()
        writer.write(_response_head(200, None))
        try:
            terminal = False
            for payload in snapshot:
                self._write_chunk(writer, payload)
                terminal = terminal or EventLog.is_terminal(payload)
            await writer.drain()
            deadline = time.monotonic() + timeout
            while queue is not None and not terminal and not self.draining:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    payload = await asyncio.wait_for(
                        queue.get(), timeout=min(remaining, 1.0)
                    )
                except asyncio.TimeoutError:
                    continue  # poll the draining flag, keep waiting
                self._write_chunk(writer, payload)
                await writer.drain()
                terminal = EventLog.is_terminal(payload)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            if queue is not None:
                log.unsubscribe(queue)
        return False

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
        line = _json_bytes(payload) + b"\n"
        writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
