"""``python -m repro bench serve``: latency/throughput at rising concurrency.

Boots an embedded server (serial engine, memory-only cache — the
configuration a latency benchmark should measure, with no process-pool
or disk noise), then drives it at each requested concurrency level with
keep-alive connections issuing a hot/cold mix of ``debug.echo`` requests.
Per level it reports client-observed p50/p99/mean latency and throughput,
plus the server-side counter deltas (hot hits, executions, coalesced)
that explain them.  The result feeds ``benchmarks/BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.config import ServeConfig
from repro.serve.server import ReproServer
from repro.serve.storm import percentile

__all__ = ["run_serve_bench"]

#: Distinct hot keys the request mix cycles through.
_HOT_KEYS = 8


def _bench_config() -> ServeConfig:
    return ServeConfig(
        no_cache=True,
        hot_entries=4096,
        jobs=1,
        queue_limit=256,
        exec_workers=8,
        drain_grace_s=10.0,
    )


async def _drive_level(
    host: str, port: int, concurrency: int, requests: int, hot_ratio: float
) -> tuple[list[float], int]:
    """Run one level; returns (latencies of OK responses, error count)."""
    per_worker = max(1, requests // concurrency)
    latencies: list[float] = []
    errors = 0

    async def worker(worker_id: int) -> None:
        nonlocal errors
        client = AsyncServeClient(host, port, client_id=f"bench-{worker_id}")
        try:
            for i in range(per_worker):
                seq = worker_id * per_worker + i
                hot = (seq % 100) < int(hot_ratio * 100)
                value = f"hot-{seq % _HOT_KEYS}" if hot else f"cold-{worker_id}-{i}"
                result = await client.run("debug.echo", {"value": value})
                if result.ok:
                    latencies.append(result.latency_s)
                else:
                    errors += 1
        finally:
            await client.close()

    await asyncio.gather(*(worker(i) for i in range(concurrency)))
    return latencies, errors


def run_serve_bench(
    concurrency_levels: tuple[int, ...] = (1, 4, 16),
    requests: int = 200,
    hot_ratio: float = 0.7,
) -> dict[str, Any]:
    """The full sweep; returns the BENCH_serve.json payload (sans metadata)."""
    server = ReproServer(_bench_config()).start()
    host, port = server.config.host, server.port or 0
    sync = ServeClient(host, port)
    rows: list[dict[str, Any]] = []
    try:
        # Warm the hot keys once so "hot" measures the steady state.
        asyncio.run(_drive_level(host, port, 1, _HOT_KEYS * 2, 1.0))
        for level in concurrency_levels:
            before = sync.stats().data["counters"]
            started = time.perf_counter()
            latencies, errors = asyncio.run(
                _drive_level(host, port, level, requests, hot_ratio)
            )
            wall_s = time.perf_counter() - started
            after = sync.stats().data["counters"]
            sent = len(latencies) + errors
            rows.append(
                {
                    "concurrency": level,
                    "requests": sent,
                    "errors": errors,
                    "wall_s": round(wall_s, 4),
                    "throughput_rps": round(sent / wall_s, 2) if wall_s > 0 else None,
                    "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
                    "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
                    "mean_ms": round(
                        sum(latencies) / len(latencies) * 1000, 3
                    )
                    if latencies
                    else None,
                    "server_delta": {
                        name: after[name] - before[name] for name in sorted(after)
                    },
                }
            )
        final_stats = sync.stats().data
    finally:
        clean = server.stop()
    return {
        "hot_ratio": hot_ratio,
        "requests_per_level": requests,
        "rows": rows,
        "hot": final_stats.get("hot"),
        "clean_shutdown": clean,
    }
