"""The information-extraction scenario from the paper's introduction.

"Consider data in a CSV file with fixed columns from which we want to
extract all pairs of lines that have identical entries in at least one
column from a column set S.  This can easily be modelled with the CFG
formalisms proposed for information extraction [...], but if the
algorithm requires unambiguous CFGs [...] then an easy reduction from
``L_n`` shows that any such grammar must be of exponential size in the
number of considered columns in S."

Model: a *document* is two rows, each with ``c`` columns of width ``w``
over ``{a, b}``, concatenated into a word of length ``2cw``.  The match
language ``M(c, w, S)`` holds the documents whose rows agree on at least
one column from ``S``.  :func:`column_match_cfg` builds a CFG of size
``O(|S| · 2^w + log(cw))`` — linear in ``|S|`` for fixed column width —
while the reduction :func:`encode_ln_word` embeds ``L_n`` into
``M(n, 2, [n])``, transferring the paper's ``2^Ω(n)`` uCFG lower bound.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import lru_cache

from repro.core.lower_bound import ucfg_cnf_size_lower_bound
from repro.errors import ReproError
from repro.grammars.cfg import CFG, NonTerminal, Rule, Symbol
from repro.util.binary import binary_decomposition
from repro.words.alphabet import AB
from repro.words.ops import all_words

__all__ = [
    "document_word",
    "split_document",
    "is_column_match",
    "is_column_related",
    "column_match_cfg",
    "column_relation_cfg",
    "column_leq_cfg",
    "encode_ln_word",
    "decode_ln_word",
    "transferred_ucfg_lower_bound",
]


def _check_scenario(c: int, w: int) -> None:
    if c < 1 or w < 1:
        raise ReproError(f"need c >= 1 columns of width w >= 1, got c={c}, w={w}")


def document_word(row1: Sequence[str], row2: Sequence[str], w: int) -> str:
    """Concatenate two rows of width-``w`` column values into a document.

    >>> document_word(["aa", "ab"], ["aa", "bb"], 2)
    'aaabaabb'
    """
    for row in (row1, row2):
        for value in row:
            if len(value) != w or any(ch not in AB for ch in value):
                raise ReproError(f"column value {value!r} is not a width-{w} word over ab")
    if len(row1) != len(row2):
        raise ReproError("rows have different numbers of columns")
    return "".join(row1) + "".join(row2)


def split_document(word: str, c: int, w: int) -> tuple[list[str], list[str]]:
    """Split a document word back into its two rows of column values."""
    _check_scenario(c, w)
    if len(word) != 2 * c * w:
        raise ReproError(f"document has length {len(word)}, expected {2 * c * w}")
    half = c * w
    row1 = [word[k : k + w] for k in range(0, half, w)]
    row2 = [word[half + k : half + k + w] for k in range(0, half, w)]
    return row1, row2


def is_column_match(word: str, c: int, w: int, columns: Iterable[int]) -> bool:
    """Membership in ``M(c, w, S)``: rows agree on some column in ``S``
    (columns are 1-based).

    >>> is_column_match("aaabaabb", 2, 2, [1, 2])
    True
    >>> is_column_match("aaabaabb", 2, 2, [2])
    False
    """
    row1, row2 = split_document(word, c, w)
    for j in columns:
        if not 1 <= j <= c:
            raise ReproError(f"column {j} out of range [1, {c}]")
        if row1[j - 1] == row2[j - 1]:
            return True
    return False


def column_relation_cfg(
    c: int,
    w: int,
    columns: Iterable[int],
    pairs: Iterable[tuple[str, str]],
) -> CFG:
    """A CFG for "some column ``j ∈ S`` has ``(row1[j], row2[j]) ∈ pairs``".

    The generalisation the paper's introduction alludes to: "This lower
    bound remains true if instead of equality we require other natural
    comparison of the columns, say lexicographic order, similarity
    measures, and so on."  ``pairs`` is any relation on width-``w``
    values; equality (:func:`column_match_cfg`) and lexicographic order
    (:func:`column_leq_cfg`) are the packaged instances.  Size
    ``O(|S| · |pairs| + log(cw))``.

    Construction is memoised per process after argument normalisation
    (the constructor-caching pattern): repeated calls with the same
    scenario — including through :func:`column_match_cfg` and
    :func:`column_leq_cfg` — return the *same* immutable CFG object.

    >>> column_relation_cfg(2, 1, [1, 2], [("a", "a")]) is column_relation_cfg(
    ...     2, 1, (2, 1), (("a", "a"), ("a", "a")))
    True
    """
    _check_scenario(c, w)
    pair_list = tuple(sorted(set(pairs)))
    for x, y in pair_list:
        for value in (x, y):
            if len(value) != w or any(ch not in AB for ch in value):
                raise ReproError(
                    f"relation value {value!r} is not a width-{w} word over ab"
                )
    if not pair_list:
        raise ReproError("the column relation must be nonempty")
    column_set = tuple(sorted(set(columns)))
    if not column_set:
        raise ReproError("the column set S must be nonempty")
    for j in column_set:
        if not 1 <= j <= c:
            raise ReproError(f"column {j} out of range [1, {c}]")
    return _column_relation_cfg_cached(c, w, column_set, pair_list)


@lru_cache(maxsize=256)
def _column_relation_cfg_cached(
    c: int,
    w: int,
    column_set: tuple[int, ...],
    pair_list: tuple[tuple[str, str], ...],
) -> CFG:
    rules: list[Rule] = []
    nts: list[NonTerminal] = []

    # Doubling generators B_i for all words of length 2^i.
    max_filler = (c - 1) * w * 2
    max_exp = max(max_filler, 1).bit_length()
    b_nt: dict[int, NonTerminal] = {}
    for i in range(max_exp + 1):
        b_nt[i] = ("B", i)
        nts.append(b_nt[i])
    rules.append(Rule(b_nt[0], ("a",)))
    rules.append(Rule(b_nt[0], ("b",)))
    for i in range(1, max_exp + 1):
        rules.append(Rule(b_nt[i], (b_nt[i - 1], b_nt[i - 1])))

    filler_cache: dict[int, NonTerminal] = {}

    def filler(k: int) -> tuple[Symbol, ...]:
        """A body fragment generating all of Σ^k (empty for k = 0)."""
        if k == 0:
            return ()
        if k not in filler_cache:
            nt = ("F", k)
            filler_cache[k] = nt
            nts.append(nt)
            rules.append(Rule(nt, tuple(b_nt[i] for i in binary_decomposition(k))))
        return (filler_cache[k],)

    value_cache: dict[str, NonTerminal] = {}

    def value_nt(x: str) -> NonTerminal:
        if x not in value_cache:
            nt = ("V", x)
            value_cache[x] = nt
            nts.append(nt)
            rules.append(Rule(nt, tuple(x)))
        return value_cache[x]

    start: NonTerminal = ("S",)
    nts.append(start)
    match_nts: list[NonTerminal] = []
    for j in column_set:
        mj: NonTerminal = ("M", j)
        nts.append(mj)
        match_nts.append(mj)
        before = (j - 1) * w
        after = (c - j) * w
        between = after + before  # rest of row 1 plus start of row 2
        for x, y in pair_list:
            body = (
                filler(before)
                + (value_nt(x),)
                + filler(between)
                + (value_nt(y),)
                + filler(after)
            )
            rules.append(Rule(mj, body))
    for mj in match_nts:
        rules.append(Rule(start, (mj,)))
    return CFG(AB, nts, rules, start)


def column_match_cfg(c: int, w: int, columns: Iterable[int]) -> CFG:
    """A CFG for ``M(c, w, S)`` of size ``O(|S| · 2^w + log(cw))``.

    The equality instance of :func:`column_relation_cfg`: for each column
    ``j ∈ S`` and each value ``x ∈ Σ^w``, one rule pins ``x`` at column
    ``j`` of both rows with free filler around it.  The grammar is
    ambiguous whenever two selected columns can match simultaneously —
    exactly the "highly non-disjoint union" phenomenon of ``L_n``.

    >>> from repro.grammars.language import language
    >>> g = column_match_cfg(2, 1, [1, 2])
    >>> all(is_column_match(word, 2, 1, [1, 2]) for word in language(g))
    True
    """
    return column_relation_cfg(
        c, w, columns, ((x, x) for x in all_words(AB, w))
    )


def column_leq_cfg(c: int, w: int, columns: Iterable[int]) -> CFG:
    """A CFG for "rows are lexicographically ordered on some column of S".

    The ``≤``-comparison variant from the introduction's closing remark;
    size ``O(|S| · 4^w + log(cw))`` — still linear in ``|S|`` for fixed
    width, and still subject to the transferred exponential uCFG bound
    (equality pairs embed into ``≤`` ∩ ``≥``).
    """
    values = list(all_words(AB, w))
    pairs = [(x, y) for x in values for y in values if x <= y]
    return column_relation_cfg(c, w, columns, pairs)


def is_column_related(
    word: str,
    c: int,
    w: int,
    columns: Iterable[int],
    pairs: Iterable[tuple[str, str]],
) -> bool:
    """Membership for the generalised relation language (brute force)."""
    relation = set(pairs)
    row1, row2 = split_document(word, c, w)
    for j in columns:
        if not 1 <= j <= c:
            raise ReproError(f"column {j} out of range [1, {c}]")
        if (row1[j - 1], row2[j - 1]) in relation:
            return True
    return False


#: Row-1 encoding of the L_n reduction: equality of blocks ⟺ both 'a'.
_ENCODE_ROW1 = {"a": "aa", "b": "ab"}
_ENCODE_ROW2 = {"a": "aa", "b": "bb"}


def encode_ln_word(word: str, n: int) -> str:
    """The reduction ``L_n → M(n, 2, [n])`` from the introduction.

    A word ``uv`` (halves of length ``n``) becomes a two-row document with
    ``n`` width-2 columns: row 1 encodes ``u`` via ``a ↦ aa, b ↦ ab``,
    row 2 encodes ``v`` via ``a ↦ aa, b ↦ bb``.  Columns are equal iff
    both original letters are ``a``, so
    ``w ∈ L_n ⟺ encode_ln_word(w) ∈ M(n, 2, [n])``.

    >>> from repro.languages.ln import is_in_ln
    >>> word = "abab"
    >>> is_in_ln(word, 2), is_column_match(encode_ln_word(word, 2), 2, 2, [1, 2])
    (True, True)
    """
    if len(word) != 2 * n:
        raise ReproError(f"expected a word of length {2 * n}, got {len(word)}")
    u, v = word[:n], word[n:]
    row1 = [_ENCODE_ROW1[ch] for ch in u]
    row2 = [_ENCODE_ROW2[ch] for ch in v]
    return document_word(row1, row2, 2)


def decode_ln_word(document: str, n: int) -> str:
    """Inverse of :func:`encode_ln_word` (raises off the encoding's image)."""
    row1, row2 = split_document(document, n, 2)
    dec1 = {v: k for k, v in _ENCODE_ROW1.items()}
    dec2 = {v: k for k, v in _ENCODE_ROW2.items()}
    try:
        u = "".join(dec1[x] for x in row1)
        v = "".join(dec2[x] for x in row2)
    except KeyError as exc:
        raise ReproError(f"document is not in the image of the encoding: {exc}") from exc
    return u + v


def transferred_ucfg_lower_bound(n: int) -> int:
    """The uCFG size bound for ``M(n, 2, [n])`` implied by Theorem 12.

    Argument (constants tracked, not optimised): take an unambiguous CNF
    grammar ``G`` for the match language.  The image of
    :func:`encode_ln_word` is cut out by per-position letter constraints,
    and in the position-indexed grammar of Lemma 10 such constraints only
    delete terminal rules — so ``L_n``'s encoded copy has an unambiguous
    grammar of size at most ``4n · |G|`` (the indexing factor for words of
    length ``4n``).  Decoding width-2 blocks back to single letters is a
    further position-local substitution that does not increase the size.
    Hence ``|G| ≥ bound(L_n) / (4n)`` where ``bound`` is the Theorem 12
    CNF lower bound.
    """
    if n < 1:
        raise ReproError(f"need n >= 1, got {n}")
    base = ucfg_cnf_size_lower_bound(n)
    return max(1, -(-base // (4 * n)))
