"""Information-extraction scenario (introduction of the paper).

Column-agreement extraction over CSV-style rows: a small ambiguous CFG,
the reduction embedding ``L_n``, and the transferred uCFG lower bound.
"""

from repro.spanners.csv_match import (
    column_leq_cfg,
    column_match_cfg,
    column_relation_cfg,
    decode_ln_word,
    document_word,
    encode_ln_word,
    is_column_match,
    is_column_related,
    split_document,
    transferred_ucfg_lower_bound,
)

__all__ = [
    "document_word",
    "split_document",
    "is_column_match",
    "is_column_related",
    "column_match_cfg",
    "column_relation_cfg",
    "column_leq_cfg",
    "encode_ln_word",
    "decode_ln_word",
    "transferred_ucfg_lower_bound",
]
