"""Command-line interface: ``python -m repro <command>``.

A thin front end over the library for quick exploration::

    python -m repro sizes --max-exp 10       # the Theorem 1 size table
    python -m repro certificate 1024         # the Theorem 12 certificate
    python -m repro grammar 12               # print the Θ(log n) grammar
    python -m repro cover 3                  # Proposition 7 on the uCFG
    python -m repro lemma18 3                # exhaustive Lemma 18 check
    python -m repro member babaab 3          # membership in L_n
    python -m repro zoo --max-n 4            # the representation zoo

and over the execution engine (parallel workers + disk cache;
see docs/ENGINE.md)::

    python -m repro run certificate -p n=1024 --jobs 2    # any declared job
    python -m repro run --list                            # list the registry
    python -m repro sweep sizes --max-exp 12 --jobs 4     # fan out + cache
    python -m repro sweep zoo --max-n 4 --jobs 4
    python -m repro cache stats                           # inspect / clear
    python -m repro serve --port 8321                     # the job service
    python -m repro bench serve                           # its latency bench
    python -m repro backends                              # kernel backends
    python -m repro bench backends                        # their timings

Every engine command takes ``--backend {auto,reference,words,numpy,cext}``
to pin the kernel backend (see docs/BACKENDS.md); the default follows
``REPRO_BACKEND`` and falls back to auto-detection.

The table-producing commands (``sizes``, ``zoo``, ``sweep``) all route
through the engine, so repeated invocations are served from the cache;
pass ``--no-cache`` to force recomputation.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.core.cover import balanced_rectangle_cover
from repro.errors import ReproError
from repro.core.discrepancy import verify_lemma18
from repro.core.lower_bound import certificate
from repro.languages.ln import is_in_ln, match_positions
from repro.languages.small_grammar import small_ln_grammar
from repro.languages.unambiguous_grammar import example4_ucfg
from repro.util.tables import Table, format_int

__all__ = ["main", "build_parser"]


def _build_engine(args: argparse.Namespace):
    """Construct an :class:`~repro.engine.Engine` from the shared CLI flags."""
    from repro.engine import DiskCache, Engine, RunLog

    cache = None if args.no_cache else DiskCache(args.cache_dir)
    log_path = cache.root / "runs.jsonl" if cache is not None else None
    return Engine(
        cache=cache,
        jobs=args.jobs,
        timeout=args.timeout,
        on_timeout=args.on_timeout,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        backend=getattr(args, "backend", None),
        run_log=RunLog(path=log_path),
    )


def _report_engine(engine) -> None:
    """Print the run summary: cache traffic on stdout, timing on stderr.

    Wall time and worker count vary run to run, so they go to stderr —
    stdout stays byte-identical between serial and parallel invocations.
    """
    summary = engine.last_summary
    if summary is None:
        return
    line = (
        f"engine: {summary['jobs']} jobs, {summary['hits']} cache hits, "
        f"{summary['misses']} misses"
    )
    if summary.get("off"):
        line += f", {summary['off']} uncached"
    for counter in ("retried", "timeouts", "skipped"):
        if summary.get(counter):
            line += f", {summary[counter]} {counter}"
    print(line)
    print(
        f"engine: wall {summary['wall_ms']:.0f} ms on {summary['workers']} worker(s)",
        file=sys.stderr,
    )


def _write_bench_artifact(
    out: str | None, kind: str, result: dict, backend: str | None = None
) -> None:
    """Persist a ``BENCH_*.json`` artifact (shared by every bench command).

    ``backend`` is the run's ``--backend`` selection (``None`` = ambient);
    the header records the backend the measured code actually ran on.
    """
    if not out:
        return
    import platform
    import time
    from pathlib import Path

    from repro.backend import backend_info

    artifact = {
        "kind": kind,
        "generated_at": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "backend": backend_info(backend),
        **result,
    }
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"bench: wrote {path}", file=sys.stderr)


def _add_bench_subparser(
    bench_sub,
    name: str,
    *,
    help: str,
    func,
    arguments: Sequence[tuple[Sequence[str], dict]] = (),
    engine_opts: bool = True,
) -> argparse.ArgumentParser:
    """Register one ``bench <name>`` subcommand with the shared flags.

    Every bench takes the same trailing boilerplate (``--out`` plus the
    engine options); only the leading measurement-specific arguments
    differ, so they come in as an ``(flags, kwargs)`` spec list.
    """
    parser = bench_sub.add_parser(name, help=help)
    for flags, kwargs in arguments:
        parser.add_argument(*flags, **kwargs)
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help=f"also write BENCH_{name}.json here",
    )
    if engine_opts:
        _add_engine_options(parser)
    parser.set_defaults(func=func)
    return parser


def _backend_choices() -> tuple[str, ...]:
    """``auto`` plus every *registered* backend name.

    Derived from the registry (not hardcoded) so a new tier — like the
    optional ``cext`` build — is selectable the moment it registers;
    an unavailable choice still fails with the backend's own reason.
    """
    from repro.backend import backend_names

    return ("auto", *backend_names())


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial, default)"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="cache directory (default ~/.cache/repro)"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="compute everything, store nothing"
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    parser.add_argument(
        "--on-timeout",
        choices=("raise", "skip"),
        default="raise",
        help="on a job timeout: abort the run (raise, default) or kill only "
        "that job and continue with the survivors (skip)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="retries per job after a failure or worker death (default 0)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        help="base of the exponential retry backoff in seconds (default 0.1)",
    )
    parser.add_argument(
        "--backend",
        choices=_backend_choices(),
        default=None,
        help="kernel backend for every job in this run (default: "
        "REPRO_BACKEND or auto; see `python -m repro backends`)",
    )


def _sizes_table(rows: list[dict]) -> Table:
    table = Table(
        ["n", "CFG size", "CFG/log2(n)", "NFA states", "uCFG constr.", "uCFG lower bd"],
        title="Theorem 1: representation sizes for L_n",
    )
    for row in rows:
        table.add_row(
            [
                row["n"],
                row["cfg_size"],
                row["cfg_per_log2"],
                row["nfa_states"],
                row["ucfg_constr"],
                row["ucfg_bound"],
            ]
        )
    return table


def _cmd_sizes(args: argparse.Namespace) -> int:
    engine = _build_engine(args)
    result = engine.run_one("sizes.table", {"max_exp": args.max_exp})
    _sizes_table(result["rows"]).print()
    _report_engine(engine)
    return 0


def _cmd_certificate(args: argparse.Namespace) -> int:
    cert = certificate(args.n)
    cert.verify()
    if args.json:
        import json

        print(json.dumps(cert.to_dict(), indent=2, default=str))
        return 0
    print(f"Lower-bound certificate for L_{args.n} (m = {cert.m}):")
    print(f"  |𝓛|            = {format_int(cert.size_script_l)}")
    print(f"  |A|            = {format_int(cert.size_a)}")
    print(f"  |B|            = {format_int(cert.size_b)}")
    print(f"  |B \\ L_n|      = {format_int(cert.size_b_minus_ln)}")
    print(f"  margin         = {format_int(cert.margin)}")
    print(f"  margin > 2^(7m/2): {cert.lemma18_threshold_holds}")
    print(f"  fixed-partition cover bound : {format_int(cert.fixed_partition_bound)}")
    print(f"  multipartition cover bound  : {format_int(cert.cover_bound)}")
    print(f"  uCFG size bound (CNF)       : {format_int(cert.ucfg_cnf_bound)}")
    print(f"  uCFG size bound (any form)  : {format_int(cert.ucfg_bound)}")
    return 0


def _cmd_grammar(args: argparse.Namespace) -> int:
    grammar = small_ln_grammar(args.n)
    print(f"# Appendix A grammar for L_{args.n}  (size {grammar.size})")
    print(grammar.pretty())
    return 0


def _cmd_cover(args: argparse.Namespace) -> int:
    if args.n > 4:
        print("cover: n > 4 is infeasible (the uCFG explodes); use n <= 4", file=sys.stderr)
        return 2
    grammar = example4_ucfg(args.n)
    cover = balanced_rectangle_cover(grammar)
    print(
        f"Proposition 7 on the Example 4 uCFG for L_{args.n}: "
        f"{cover.n_rectangles} rectangles (bound {cover.proposition7_bound}), "
        f"disjoint: {cover.disjoint}"
    )
    table = Table(["nonterminal", "n1/n2/n3", "|L1|", "|L2|", "words"])
    for step in cover.steps:
        rect = step.rectangle
        table.add_row(
            [
                str(step.nonterminal),
                f"{rect.n1}/{rect.n2}/{rect.n3}",
                len(rect.outer),
                len(rect.inner),
                rect.n_words,
            ]
        )
    table.print()
    return 0


def _cmd_lemma18(args: argparse.Namespace) -> int:
    if args.m > 5:
        print("lemma18: m > 5 enumerates over 16^m members; use m <= 5", file=sys.stderr)
        return 2
    results = verify_lemma18(args.m)
    print(f"Lemma 18 for m = {args.m} (n = {4 * args.m}), all exhaustively verified:")
    for name, (enumerated, formula) in results.items():
        print(f"  {name:12s} = {enumerated} (formula {formula})")
    return 0


def _zoo_table(rows: list[dict]) -> Table:
    table = Table(
        ["n", "|L_n|", "CFG", "NFA", "exact NFA", "min DFA", "uCFG"],
        title="Exact sizes of every representation of L_n",
    )
    for row in rows:
        table.add_row(
            [
                row["n"],
                row["count_ln"],
                row["cfg"],
                row["nfa"],
                row["exact_nfa"],
                row["min_dfa"],
                row["ucfg"],
            ]
        )
    return table


def _cmd_zoo(args: argparse.Namespace) -> int:
    engine = _build_engine(args)
    result = engine.run_one("zoo.table", {"max_n": args.max_n})
    _zoo_table(result["rows"]).print()
    _report_engine(engine)
    return 0


def _parse_param(item: str) -> tuple[str, object]:
    """Parse one ``-p name=value`` item; values try int, float, bool,
    JSON list (``columns=[1,2]``), then fall back to str."""
    name, sep, raw = item.partition("=")
    if not sep or not name:
        raise ValueError(f"parameter {item!r} is not of the form name=value")
    for caster in (int, float):
        try:
            return name, caster(raw)
        except ValueError:
            pass
    if raw.lower() in ("true", "false"):
        return name, raw.lower() == "true"
    if raw.startswith("["):
        try:
            return name, json.loads(raw)
        except json.JSONDecodeError:
            pass
    return name, raw


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.engine import default_registry

    registry = default_registry()
    if args.list or args.job is None:
        for name in registry.names():
            job = registry.get(name)
            params = ", ".join(job.param_names) or "-"
            print(f"{name:16s} ({params:14s}) {job.description}")
        return 0
    params = dict(_parse_param(item) for item in args.param)
    engine = _build_engine(args)
    result = engine.run_one(args.job, params)
    print(json.dumps(result, indent=2, sort_keys=True))
    _report_engine(engine)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    engine = _build_engine(args)
    if args.target == "sizes":
        result = engine.run_one("sizes.table", {"max_exp": args.max_exp})
        _sizes_table(result["rows"]).print()
    else:
        result = engine.run_one("zoo.table", {"max_n": args.max_n})
        _zoo_table(result["rows"]).print()
    _report_engine(engine)
    return 0


def _bench_parsing_table(rows: list[dict]) -> Table:
    table = Table(
        ["n", "|w|", "words", "members", "legacy s", "bitset s", "batched s", "speedup"],
        title="Parsing kernel: per-word counting vs. bitset vs. batched recognition",
    )
    for row in rows:
        table.add_row(
            [
                row["n"],
                row["word_length"],
                row["n_words"],
                row["n_members"],
                f"{row['legacy_s']:.4f}",
                f"{row['bitset_s']:.4f}",
                f"{row['batched_s']:.4f}",
                f"{row['speedup_batched']:.1f}x",
            ]
        )
    return table


def _cmd_bench_parsing(args: argparse.Namespace) -> int:
    # Benchmarks time code, so cached timings from an earlier run would be
    # stale; always recompute.
    args.no_cache = True
    engine = _build_engine(args)
    result = engine.run_one(
        "parsing.bench",
        {"max_n": args.max_n, "n_words": args.n_words, "seed": args.seed},
    )
    _bench_parsing_table(result["rows"]).print()
    _write_bench_artifact(args.out, "parsing_bench", result, args.backend)
    _report_engine(engine)
    return 0


def _bench_comm_table(rows: list[dict]) -> Table:
    table = Table(
        ["p", "side", "rank", "greedy cover", "min cover", "fooling"],
        title="Communication substrate: legacy (sets/Fractions) vs. packed bitmasks",
    )
    for row in rows:
        cells: list[str] = [str(row["p"]), str(row["matrix_side"])]
        for name in ("rank_q", "greedy_cover", "min_cover", "fooling"):
            op = row["ops"][name]
            if op.get("skipped"):
                cells.append("-")
            elif op["packed"]["value"] is None:
                cells.append("budget out")
            elif op["legacy"]["value"] is None:
                cells.append(f"{op['packed']['seconds']:.4f}s (legacy gave up)")
            else:
                cells.append(f"{op['packed']['seconds']:.4f}s ({op['speedup']:.1f}x)")
        table.add_row(cells)
    return table


def _bench_cover_table(rows: list[dict]) -> Table:
    table = Table(
        ["p", "side", "min cover", "certified", "nodes", "frozen B&B"],
        title="Exact cover: branch-and-price solver vs. the frozen branch-and-bound",
    )
    for row in rows:
        cell = row["solver"]["disjoint"]
        if cell["value"] is None:
            solved = "budget out"
            certified = "-"
        else:
            solved = f"{cell['value']} in {cell['seconds']:.4f}s"
            certified = "root" if cell["nodes"] == 0 else "search"
            if not cell["optimal"]:
                certified = "no"
        oracle = row["oracle"]
        if oracle.get("skipped"):
            baseline = "- (past the wall)"
        elif oracle["value"] is None:
            baseline = "budget out"
        else:
            baseline = f"{oracle['value']} in {oracle['seconds']:.4f}s"
        table.add_row(
            [
                str(row["p"]),
                str(row["matrix_side"]),
                solved,
                certified,
                str(cell["nodes"]),
                baseline,
            ]
        )
    return table


def _cmd_bench_comm(args: argparse.Namespace) -> int:
    # Benchmarks time code, so cached timings from an earlier run would be
    # stale; always recompute.
    args.no_cache = True
    engine = _build_engine(args)
    result = engine.run_one(
        "comm.bench",
        {
            "max_p": args.max_p,
            "max_cover_p": args.max_cover_p,
            "max_m": args.max_m,
            "node_budget": args.node_budget,
            "budget_s": args.budget_s,
        },
    )
    _bench_comm_table(result["rows"]).print()
    _bench_cover_table(result["cover_rows"]).print()
    cover_summary = result["cover_summary"]
    print(
        f"cover solver frontier: certified p={cover_summary['largest_certified_p']} "
        f"(frozen B&B wall: p={cover_summary['largest_oracle_p']}), "
        f"root-certified at p={cover_summary['root_certified_ps']}"
    )
    for row in result["disc_rows"]:
        print(
            f"discrepancy (split sign matrix, m={row['m']}, "
            f"{row['matrix_side']}x{row['matrix_side']}): "
            f"{row['packed']['seconds']:.4f}s ({row['speedup']:.1f}x), "
            f"max_disc={row['max_disc']}"
        )
    summary = result["summary"]["ops"]
    for name in sorted(summary):
        op = summary[name]
        frontier = op["largest_p_within_budget"]
        parts = [f"legacy reaches p={frontier['legacy']}", f"packed p={frontier['packed']}"]
        if op.get("speedup_at_largest_common") is not None:
            parts.append(
                f"{op['speedup_at_largest_common']:.1f}x at p={op['largest_common_p']}"
            )
        print(f"{name}: " + ", ".join(parts))
    _write_bench_artifact(args.out, "comm_bench", result, args.backend)
    _report_engine(engine)
    return 0


def _bench_automata_table(rows: list[dict]) -> Table:
    table = Table(
        ["n", "determinise", "minimise", "ambiguity"],
        title="Automata engine: legacy (frozensets/dicts) vs. packed bit-parallel kernels",
    )
    for row in rows:
        cells: list[str] = [str(row["n"])]
        for name in ("determinise", "minimise", "ambiguity"):
            op = row["ops"][name]
            if op.get("skipped"):
                cells.append("-")
            elif op["legacy"].get("skipped"):
                cells.append(f"{op['packed']['seconds']:.4f}s (legacy capped)")
            else:
                cells.append(f"{op['packed']['seconds']:.4f}s ({op['speedup']:.1f}x)")
        table.add_row(cells)
    return table


def _cmd_bench_automata(args: argparse.Namespace) -> int:
    # Benchmarks time code, so cached timings from an earlier run would be
    # stale; always recompute.
    args.no_cache = True
    engine = _build_engine(args)
    result = engine.run_one(
        "automata.bench",
        {
            "max_n": args.max_n,
            "max_count_exp": args.max_count_exp,
            "budget_s": args.budget_s,
        },
    )
    _bench_automata_table(result["rows"]).print()
    for row in result["count_rows"]:
        side = (
            f"({row['speedup']:.1f}x)"
            if "speedup" in row
            else "(legacy capped)"
        )
        print(
            f"counting (length 2^{row['exp']}, unique-match n={row['n']}): "
            f"{row['packed']['seconds']:.4f}s {side}"
        )
    summary = result["summary"]["ops"]
    for name in sorted(summary):
        op = summary[name]
        if name == "counting":
            frontier = op["largest_exp_within_budget"]
            parts = [
                f"legacy reaches exp={frontier['legacy']}",
                f"packed exp={frontier['packed']}",
            ]
            if op.get("speedup_at_largest_common") is not None:
                parts.append(
                    f"{op['speedup_at_largest_common']:.1f}x at exp={op['largest_common_exp']}"
                )
        else:
            frontier = op["largest_n_within_budget"]
            parts = [
                f"legacy reaches n={frontier['legacy']}",
                f"packed n={frontier['packed']}",
            ]
            if op.get("speedup_at_largest_common") is not None:
                parts.append(
                    f"{op['speedup_at_largest_common']:.1f}x at n={op['largest_common_n']}"
                )
        print(f"{name}: " + ", ".join(parts))
    _write_bench_artifact(args.out, "automata_bench", result, args.backend)
    _report_engine(engine)
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.backend import BACKEND_CLASSES, get_backend, numpy_version

    active = get_backend().name
    table = Table(
        ["backend", "available", "active", "description"],
        title="Kernel backends (select with --backend or REPRO_BACKEND)",
    )
    reasons: list[tuple[str, str]] = []
    for name, cls in BACKEND_CLASSES.items():
        available = cls.available()
        table.add_row(
            [
                name,
                "yes" if available else "no",
                "*" if name == active else "",
                cls.describe(),
            ]
        )
        if not available:
            reason = cls.unavailable_reason()
            reasons.append((name, reason or "availability probe failed"))
    table.print()
    for name, reason in reasons:
        print(f"{name}: unavailable — {reason}", file=sys.stderr)
    version = numpy_version()
    if version is not None:
        print(f"numpy: {version}", file=sys.stderr)
    return 0


def _bench_backends_table(result: dict) -> Table:
    names = result["backends"]
    table = Table(
        ["op"] + [f"{name} s" for name in names] + ["best speedup"],
        title="Kernel backends: same seeded workload, bit-exact cross-check",
    )
    for row in result["rows"]:
        cells: list[str] = [row["op"]]
        best = None
        for name in names:
            cell = row["backends"][name]
            text = f"{cell['seconds']:.4f}"
            if cell["kernel"] != name:
                text += f" (={cell['kernel']})"
            cells.append(text)
            if name != "reference" and cell["kernel"] == name:
                speedup = cell["speedup"]
                if best is None or speedup > best[0]:
                    best = (speedup, name)
        cells.append(f"{best[0]:.2f}x ({best[1]})" if best else "-")
        table.add_row(cells)
    return table


def _cmd_bench_backends(args: argparse.Namespace) -> int:
    # Benchmarks time code, so cached timings from an earlier run would be
    # stale; always recompute.
    args.no_cache = True
    engine = _build_engine(args)
    result = engine.run_one(
        "backends.bench", {"repeats": args.repeats, "seed": args.seed}
    )
    _bench_backends_table(result).print()
    _write_bench_artifact(args.out, "backends_bench", result, args.backend)
    _report_engine(engine)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ReproServer, ServeConfig

    if args.backend is not None:
        # The service executes engine runs on threads; pin the whole
        # process rather than one run scope.
        from repro.backend import set_backend

        set_backend(args.backend)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        jobs=args.jobs,
        timeout=args.timeout,
        on_timeout=args.on_timeout,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        run_log_path=args.run_log,
        hot_entries=args.hot_entries,
        queue_limit=args.queue_limit,
        exec_workers=args.exec_workers,
        rate=args.rate,
        burst=args.burst,
    )
    server = ReproServer(config)
    print(f"serve: listening on http://{config.host}:{config.port or '<ephemeral>'}",
          file=sys.stderr)
    try:
        server.run_blocking()
    except KeyboardInterrupt:
        pass
    return 0


def _bench_serve_table(rows: list[dict]) -> Table:
    table = Table(
        ["conc", "requests", "errors", "rps", "p50 ms", "p99 ms", "mean ms"],
        title="serve: latency/throughput vs. concurrency",
    )
    for row in rows:
        table.add_row(
            [
                row["concurrency"],
                row["requests"],
                row["errors"],
                row["throughput_rps"],
                row["p50_ms"],
                row["p99_ms"],
                row["mean_ms"],
            ]
        )
    return table


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_serve_bench

    try:
        levels = tuple(int(part) for part in args.concurrency.split(",") if part.strip())
    except ValueError:
        print(f"error: bad --concurrency list {args.concurrency!r}", file=sys.stderr)
        return 2
    if not levels or any(level < 1 for level in levels):
        print("error: --concurrency needs positive integers", file=sys.stderr)
        return 2
    result = run_serve_bench(
        concurrency_levels=levels,
        requests=args.requests,
        hot_ratio=args.hot_ratio,
    )
    _bench_serve_table(result["rows"]).print()
    if not result.get("clean_shutdown"):
        print("bench: server did not drain cleanly", file=sys.stderr)
    _write_bench_artifact(args.out, "serve_bench", result)
    return 0


def _bench_extract_tables(result: dict) -> tuple[Table, Table]:
    backends = Table(
        ["backend", "docs/s", "rows/s", "vs naive", "bit-exact"],
        title=(
            "extract: compiled packed scanner vs. the naive per-document "
            "CFG recogniser (single process)"
        ),
    )
    for row in result["backends"]:
        backends.add_row(
            [
                row["backend"],
                f"{row['docs_per_sec']:,.0f}",
                f"{row['rows_per_sec']:,.0f}",
                f"{row['speedup_vs_naive']:,.1f}x",
                "yes" if row["bit_exact"] else "NO",
            ]
        )
    scaling = Table(
        ["workers", "wall s", "docs/s (wall)", "busy s", "docs/s per core"],
        title="extract: scaling vs. engine workers "
        f"({result['cores']} core(s) on this host)",
    )
    for row in result["scaling"]["rows"]:
        scaling.add_row(
            [
                row["workers"],
                f"{row['wall_s']:.3f}",
                f"{row['docs_per_sec']:,.0f}",
                f"{row['busy_s']:.3f}",
                f"{row['docs_per_busy_sec']:,.0f}",
            ]
        )
    return backends, scaling


def _cmd_bench_extract(args: argparse.Namespace) -> int:
    from repro.extract.bench import run_extract_bench

    try:
        workers = tuple(int(part) for part in args.workers.split(",") if part.strip())
        columns = tuple(int(part) for part in args.columns.split(",") if part.strip())
    except ValueError:
        print("error: --workers and --columns need integer lists", file=sys.stderr)
        return 2
    if not workers or any(level < 1 for level in workers):
        print("error: --workers needs positive integers", file=sys.stderr)
        return 2
    result = run_extract_bench(
        c=args.c,
        w=args.w,
        columns=columns,
        relation=args.relation,
        docs=args.docs,
        chunk_chars=args.chunk_chars,
        seed=args.seed,
        match_bias=args.match_bias,
        workers=workers,
        shards=args.shards,
        naive_docs=args.naive_docs,
        verify_docs=args.verify_docs,
        backend=args.backend,
    )
    backends, scaling = _bench_extract_tables(result)
    backends.print()
    scaling.print()
    criteria = result["criteria"]
    print(
        "criteria: "
        + ", ".join(f"{name}={'ok' if ok else 'FAIL'}" for name, ok in criteria.items()),
        file=sys.stderr,
    )
    _write_bench_artifact(args.out, "extract_bench", result, args.backend)
    # Correctness criteria gate the exit code; perf criteria are recorded
    # in the artifact but must not flake a smoke run on a noisy host.
    correct = criteria["bit_exact_all_backends"] and criteria["checksums_agree"]
    return 0 if correct else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine import DiskCache

    cache = DiskCache(args.cache_dir)
    if args.action == "path":
        print(cache.root)
    elif args.action == "clear":
        removed = cache.clear()
        print(f"cache: removed {removed} entries from {cache.root}")
    else:
        stats = cache.stats()
        del stats["session_hits"], stats["session_misses"]
        print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _cmd_member(args: argparse.Namespace) -> int:
    word, n = args.word, args.n
    if len(word) != 2 * n:
        print(f"member: word has length {len(word)}, L_{n} needs {2 * n}", file=sys.stderr)
        return 2
    member = is_in_ln(word, n)
    print(f"{word!r} ∈ L_{n}: {member}")
    if member:
        positions = match_positions(word, n)
        print(f"matching positions (0-based k with w[k] = w[k+n] = 'a'): {positions}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Explore the uCFG lower-bound reproduction from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sizes = sub.add_parser("sizes", help="the Theorem 1 size table")
    sizes.add_argument("--max-exp", type=int, default=10, help="largest n = 2^k (default 10)")
    _add_engine_options(sizes)
    sizes.set_defaults(func=_cmd_sizes)

    cert = sub.add_parser("certificate", help="the Theorem 12 certificate for one n")
    cert.add_argument("n", type=int)
    cert.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    cert.set_defaults(func=_cmd_certificate)

    grammar = sub.add_parser("grammar", help="print the Θ(log n) CFG for L_n")
    grammar.add_argument("n", type=int)
    grammar.set_defaults(func=_cmd_grammar)

    cover = sub.add_parser("cover", help="run Proposition 7 on the Example 4 uCFG")
    cover.add_argument("n", type=int)
    cover.set_defaults(func=_cmd_cover)

    lemma = sub.add_parser("lemma18", help="exhaustively verify Lemma 18 for one m")
    lemma.add_argument("m", type=int)
    lemma.set_defaults(func=_cmd_lemma18)

    zoo = sub.add_parser("zoo", help="every representation of L_n, exact sizes")
    zoo.add_argument("--max-n", type=int, default=4, help="largest n (2..5)")
    _add_engine_options(zoo)
    zoo.set_defaults(func=_cmd_zoo)

    member = sub.add_parser("member", help="test membership of a word in L_n")
    member.add_argument("word")
    member.add_argument("n", type=int)
    member.set_defaults(func=_cmd_member)

    backends = sub.add_parser(
        "backends", help="list the kernel backends and which one is active"
    )
    backends.set_defaults(func=_cmd_backends)

    run = sub.add_parser("run", help="run any declared engine job (see --list)")
    run.add_argument("job", nargs="?", help="job name, e.g. certificate or sizes.row")
    run.add_argument(
        "-p",
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="job parameter (repeatable)",
    )
    run.add_argument("--list", action="store_true", help="list all declared jobs")
    _add_engine_options(run)
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="fan a parameter sweep out across workers, cached"
    )
    sweep_sub = sweep.add_subparsers(dest="target", required=True)
    sweep_sizes = sweep_sub.add_parser("sizes", help="the Theorem 1 size table")
    sweep_sizes.add_argument(
        "--max-exp", type=int, default=10, help="largest n = 2^k (default 10)"
    )
    _add_engine_options(sweep_sizes)
    sweep_sizes.set_defaults(func=_cmd_sweep, target="sizes")
    sweep_zoo = sweep_sub.add_parser("zoo", help="the representation zoo")
    sweep_zoo.add_argument("--max-n", type=int, default=4, help="largest n (2..5)")
    _add_engine_options(sweep_zoo)
    sweep_zoo.set_defaults(func=_cmd_sweep, target="zoo")

    bench = sub.add_parser("bench", help="benchmark a subsystem against its baseline")
    bench_sub = bench.add_subparsers(dest="target", required=True)
    _add_bench_subparser(
        bench_sub,
        "parsing",
        help="cold vs. bitset vs. batched chart fill over L_n sweeps",
        func=_cmd_bench_parsing,
        arguments=(
            (
                ("--max-n",),
                dict(type=int, default=12, help="largest n in the sweep (default 12)"),
            ),
            (
                ("--n-words",),
                dict(type=int, default=24, help="words sampled per n (default 24)"),
            ),
            (("--seed",), dict(type=int, default=0, help="sampling seed")),
        ),
    )
    _add_bench_subparser(
        bench_sub,
        "comm",
        help="legacy vs. packed communication substrate over INTERSECT_p",
        func=_cmd_bench_comm,
        arguments=(
            (
                ("--max-p",),
                dict(type=int, default=6, help="largest p in the sweep (default 6)"),
            ),
            (
                ("--max-cover-p",),
                dict(
                    type=int,
                    default=6,
                    help="largest p for the exact cover-solver rows (default 6)",
                ),
            ),
            (
                ("--max-m",),
                dict(
                    type=int,
                    default=2,
                    help="largest m for the sign-matrix discrepancy rows (<= 2, default 2)",
                ),
            ),
            (
                ("--node-budget",),
                dict(
                    type=int,
                    default=2_000_000,
                    help="branch-and-bound node cap for the exact cover (default 2000000)",
                ),
            ),
            (
                ("--budget-s",),
                dict(
                    type=float,
                    default=5.0,
                    help="per-op time budget defining the reachability frontier (default 5.0)",
                ),
            ),
        ),
    )
    _add_bench_subparser(
        bench_sub,
        "automata",
        help="legacy vs. packed automata kernels over the L_n family",
        func=_cmd_bench_automata,
        arguments=(
            (
                ("--max-n",),
                dict(type=int, default=48, help="largest n in the sweep (default 48)"),
            ),
            (
                ("--max-count-exp",),
                dict(
                    type=int,
                    default=24,
                    help="largest exponent for counting words of length 2^exp (default 24)",
                ),
            ),
            (
                ("--budget-s",),
                dict(
                    type=float,
                    default=5.0,
                    help="per-op time budget defining the reachability frontier (default 5.0)",
                ),
            ),
        ),
    )
    _add_bench_subparser(
        bench_sub,
        "backends",
        help="time every kernel backend on each primitive family, bit-exact",
        func=_cmd_bench_backends,
        arguments=(
            (
                ("--repeats",),
                dict(type=int, default=5, help="timing runs per cell, min kept (default 5)"),
            ),
            (("--seed",), dict(type=int, default=0, help="workload seed")),
        ),
    )
    _add_bench_subparser(
        bench_sub,
        "serve",
        help="job-service latency/throughput at rising concurrency",
        func=_cmd_bench_serve,
        engine_opts=False,
        arguments=(
            (
                ("--concurrency",),
                dict(
                    default="1,4,16",
                    metavar="N,N,...",
                    help="comma-separated concurrency levels (default 1,4,16)",
                ),
            ),
            (
                ("--requests",),
                dict(type=int, default=200, help="requests per level (default 200)"),
            ),
            (
                ("--hot-ratio",),
                dict(
                    type=float,
                    default=0.7,
                    help="fraction of requests hitting the hot key set (default 0.7)",
                ),
            ),
        ),
    )

    _add_bench_subparser(
        bench_sub,
        "extract",
        help="streaming spanner extraction: rows/sec per backend + worker scaling",
        func=_cmd_bench_extract,
        engine_opts=False,
        arguments=(
            (("--c",), dict(type=int, default=8, help="columns per row (default 8)")),
            (("--w",), dict(type=int, default=2, help="column width (default 2)")),
            (
                ("--columns",),
                dict(
                    default="1,2,3,4",
                    metavar="J,J,...",
                    help="selected column set S (default 1,2,3,4)",
                ),
            ),
            (
                ("--relation",),
                dict(
                    choices=("match", "leq"),
                    default="match",
                    help="column relation (default match)",
                ),
            ),
            (
                ("--docs",),
                dict(type=int, default=40_000, help="documents per stream (default 40000)"),
            ),
            (
                ("--chunk-chars",),
                dict(type=int, default=1 << 16, help="chunk size in chars (default 65536)"),
            ),
            (("--seed",), dict(type=int, default=0, help="stream seed")),
            (
                ("--match-bias",),
                dict(
                    type=float,
                    default=0.25,
                    help="probability of planting a related column (default 0.25)",
                ),
            ),
            (
                ("--workers",),
                dict(
                    default="1,2,4,8",
                    metavar="N,N,...",
                    help="engine worker counts for the scaling curve (default 1,2,4,8)",
                ),
            ),
            (
                ("--shards",),
                dict(type=int, default=8, help="scan shards per scaling run (default 8)"),
            ),
            (
                ("--naive-docs",),
                dict(
                    type=int,
                    default=300,
                    help="documents timed through the naive CFG baseline (default 300)",
                ),
            ),
            (
                ("--verify-docs",),
                dict(
                    type=int,
                    default=1500,
                    help="documents cross-checked against both oracles per backend "
                    "(default 1500)",
                ),
            ),
            (
                ("--backend",),
                dict(
                    choices=_backend_choices(),
                    default=None,
                    help="pin the kernel backend for the scaling runs",
                ),
            ),
        ),
    )

    serve = sub.add_parser(
        "serve", help="run the async multi-tenant job service (see docs/SERVE.md)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8321, help="listen port, 0 = ephemeral (default 8321)"
    )
    serve.add_argument(
        "--hot-entries",
        type=int,
        default=1024,
        help="in-memory hot-LRU capacity, 0 disables (default 1024)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="per-client sustained requests/second (default: unlimited)",
    )
    serve.add_argument(
        "--burst", type=float, default=20, help="per-client burst allowance (default 20)"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max distinct in-flight executions before 503 (default 64)",
    )
    serve.add_argument(
        "--exec-workers",
        type=int,
        default=8,
        help="threads driving engine runs (default 8)",
    )
    serve.add_argument(
        "--run-log", default=None, metavar="PATH", help="append run records here (JSONL)"
    )
    _add_engine_options(serve)
    serve.set_defaults(func=_cmd_serve)

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument(
        "action",
        nargs="?",
        default="stats",
        choices=("stats", "clear", "path"),
        help="what to do (default: stats)",
    )
    cache.add_argument(
        "--cache-dir", default=None, help="cache directory (default ~/.cache/repro)"
    )
    cache.set_defaults(func=_cmd_cache)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
