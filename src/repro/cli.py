"""Command-line interface: ``python -m repro <command>``.

A thin front end over the library for quick exploration::

    python -m repro sizes --max-exp 10       # the Theorem 1 size table
    python -m repro certificate 1024         # the Theorem 12 certificate
    python -m repro grammar 12               # print the Θ(log n) grammar
    python -m repro cover 3                  # Proposition 7 on the uCFG
    python -m repro lemma18 3                # exhaustive Lemma 18 check
    python -m repro member babaab 3          # membership in L_n
    python -m repro zoo --max-n 4            # the representation zoo
"""

from __future__ import annotations

import argparse
import math
import sys
from collections.abc import Sequence

from repro.core.cover import balanced_rectangle_cover
from repro.core.discrepancy import verify_lemma18
from repro.core.lower_bound import certificate
from repro.languages.ln import is_in_ln, match_positions
from repro.languages.nfa_ln import ln_match_nfa
from repro.languages.small_grammar import small_ln_grammar
from repro.languages.unambiguous_grammar import example4_size, example4_ucfg
from repro.util.tables import Table, format_int

__all__ = ["main", "build_parser"]


def _cmd_sizes(args: argparse.Namespace) -> int:
    table = Table(
        ["n", "CFG size", "CFG/log2(n)", "NFA states", "uCFG constr.", "uCFG lower bd"],
        title="Theorem 1: representation sizes for L_n",
    )
    for exponent in range(2, args.max_exp + 1):
        n = 2**exponent
        cfg_size = small_ln_grammar(n).size
        cert = certificate(n)
        table.add_row(
            [
                n,
                cfg_size,
                f"{cfg_size / math.log2(n):.1f}",
                ln_match_nfa(n).n_states,
                format_int(example4_size(n)),
                format_int(cert.ucfg_bound),
            ]
        )
    table.print()
    return 0


def _cmd_certificate(args: argparse.Namespace) -> int:
    cert = certificate(args.n)
    cert.verify()
    if args.json:
        import json

        print(json.dumps(cert.to_dict(), indent=2, default=str))
        return 0
    print(f"Lower-bound certificate for L_{args.n} (m = {cert.m}):")
    print(f"  |𝓛|            = {format_int(cert.size_script_l)}")
    print(f"  |A|            = {format_int(cert.size_a)}")
    print(f"  |B|            = {format_int(cert.size_b)}")
    print(f"  |B \\ L_n|      = {format_int(cert.size_b_minus_ln)}")
    print(f"  margin         = {format_int(cert.margin)}")
    print(f"  margin > 2^(7m/2): {cert.lemma18_threshold_holds}")
    print(f"  fixed-partition cover bound : {format_int(cert.fixed_partition_bound)}")
    print(f"  multipartition cover bound  : {format_int(cert.cover_bound)}")
    print(f"  uCFG size bound (CNF)       : {format_int(cert.ucfg_cnf_bound)}")
    print(f"  uCFG size bound (any form)  : {format_int(cert.ucfg_bound)}")
    return 0


def _cmd_grammar(args: argparse.Namespace) -> int:
    grammar = small_ln_grammar(args.n)
    print(f"# Appendix A grammar for L_{args.n}  (size {grammar.size})")
    print(grammar.pretty())
    return 0


def _cmd_cover(args: argparse.Namespace) -> int:
    if args.n > 4:
        print("cover: n > 4 is infeasible (the uCFG explodes); use n <= 4", file=sys.stderr)
        return 2
    grammar = example4_ucfg(args.n)
    cover = balanced_rectangle_cover(grammar)
    print(
        f"Proposition 7 on the Example 4 uCFG for L_{args.n}: "
        f"{cover.n_rectangles} rectangles (bound {cover.proposition7_bound}), "
        f"disjoint: {cover.disjoint}"
    )
    table = Table(["nonterminal", "n1/n2/n3", "|L1|", "|L2|", "words"])
    for step in cover.steps:
        rect = step.rectangle
        table.add_row(
            [
                str(step.nonterminal),
                f"{rect.n1}/{rect.n2}/{rect.n3}",
                len(rect.outer),
                len(rect.inner),
                rect.n_words,
            ]
        )
    table.print()
    return 0


def _cmd_lemma18(args: argparse.Namespace) -> int:
    if args.m > 5:
        print("lemma18: m > 5 enumerates over 16^m members; use m <= 5", file=sys.stderr)
        return 2
    results = verify_lemma18(args.m)
    print(f"Lemma 18 for m = {args.m} (n = {4 * args.m}), all exhaustively verified:")
    for name, (enumerated, formula) in results.items():
        print(f"  {name:12s} = {enumerated} (formula {formula})")
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.grammars.disambiguate import disambiguate
    from repro.languages.dfa_ln import ln_minimal_dfa
    from repro.languages.ln import count_ln
    from repro.languages.nfa_ln import ln_nfa_exact

    table = Table(
        ["n", "|L_n|", "CFG", "NFA", "exact NFA", "min DFA", "uCFG"],
        title="Exact sizes of every representation of L_n",
    )
    top = min(max(args.max_n, 2), 5)
    for n in range(2, top + 1):
        grammar = small_ln_grammar(n)
        ucfg, _ = disambiguate(grammar, verify=False)
        table.add_row(
            [
                n,
                count_ln(n),
                grammar.size,
                ln_match_nfa(n).n_states,
                ln_nfa_exact(n).n_states,
                ln_minimal_dfa(n).n_states,
                ucfg.size,
            ]
        )
    table.print()
    return 0


def _cmd_member(args: argparse.Namespace) -> int:
    word, n = args.word, args.n
    if len(word) != 2 * n:
        print(f"member: word has length {len(word)}, L_{n} needs {2 * n}", file=sys.stderr)
        return 2
    member = is_in_ln(word, n)
    print(f"{word!r} ∈ L_{n}: {member}")
    if member:
        positions = match_positions(word, n)
        print(f"matching positions (0-based k with w[k] = w[k+n] = 'a'): {positions}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Explore the uCFG lower-bound reproduction from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sizes = sub.add_parser("sizes", help="the Theorem 1 size table")
    sizes.add_argument("--max-exp", type=int, default=10, help="largest n = 2^k (default 10)")
    sizes.set_defaults(func=_cmd_sizes)

    cert = sub.add_parser("certificate", help="the Theorem 12 certificate for one n")
    cert.add_argument("n", type=int)
    cert.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    cert.set_defaults(func=_cmd_certificate)

    grammar = sub.add_parser("grammar", help="print the Θ(log n) CFG for L_n")
    grammar.add_argument("n", type=int)
    grammar.set_defaults(func=_cmd_grammar)

    cover = sub.add_parser("cover", help="run Proposition 7 on the Example 4 uCFG")
    cover.add_argument("n", type=int)
    cover.set_defaults(func=_cmd_cover)

    lemma = sub.add_parser("lemma18", help="exhaustively verify Lemma 18 for one m")
    lemma.add_argument("m", type=int)
    lemma.set_defaults(func=_cmd_lemma18)

    zoo = sub.add_parser("zoo", help="every representation of L_n, exact sizes")
    zoo.add_argument("--max-n", type=int, default=4, help="largest n (2..5)")
    zoo.set_defaults(func=_cmd_zoo)

    member = sub.add_parser("member", help="test membership of a word in L_n")
    member.add_argument("word")
    member.add_argument("n", type=int)
    member.set_defaults(func=_cmd_member)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
