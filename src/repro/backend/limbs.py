"""Shared limb conversions: masks <-> little-endian u64-limb byte buffers.

Every backend that leaves pure big-int arithmetic — the ``words``
``array('Q')`` views, the numpy ``uint8``/``uint64`` views, and the C
extension — crosses the boundary through the same interchange format:
``int.to_bytes(width, "little")`` buffers whose width is negotiated as a
whole number of 64-bit limbs.  This module is that negotiation, in one
place, so the round-trips are written (and tested) once instead of being
hand-rolled at every call site.

The ABI, such as it is:

* a mask of ``n_bits`` bits travels as ``limbs_for_bits(n_bits)`` little
  endian 64-bit limbs (``limb_width_bytes(n_bits)`` bytes) — always at
  least one limb, so the zero mask is representable;
* a *batch* of masks travels as the concatenation of equal-width rows
  (:func:`masks_to_limbs`), which is exactly the layout the C kernels
  index as ``row * n_limbs + limb``;
* masks whose exact width is irrelevant (popcounts, bit enumeration)
  travel at their minimal byte width (:func:`mask_to_bytes`).

``repro._cext.kernels`` pins the limb side of this contract with its
``LIMB_BYTES`` constant; :func:`repro.backend.cext.CextBackend` checks it
at probe time so a stale artifact can never be half-compatible.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "LIMB_BITS",
    "LIMB_BYTES",
    "limbs_for_bits",
    "limb_width_bytes",
    "mask_to_bytes",
    "mask_to_limbs",
    "limbs_to_mask",
    "masks_to_limbs",
]

#: One limb = one 64-bit little-endian word.
LIMB_BITS = 64
LIMB_BYTES = LIMB_BITS // 8


def limbs_for_bits(n_bits: int) -> int:
    """How many 64-bit limbs hold ``n_bits`` bits (at least one).

    >>> [limbs_for_bits(b) for b in (0, 1, 64, 65, 128)]
    [1, 1, 1, 2, 2]
    """
    return max(1, (n_bits + LIMB_BITS - 1) // LIMB_BITS)


def limb_width_bytes(n_bits: int) -> int:
    """The byte width of a limb-aligned buffer holding ``n_bits`` bits."""
    return limbs_for_bits(n_bits) * LIMB_BYTES


def mask_to_bytes(mask: int) -> bytes:
    """A mask at its minimal little-endian byte width (b"" for zero).

    For kernels that only enumerate set bits the exact width is
    irrelevant; shipping the minimal buffer skips the width negotiation.

    >>> mask_to_bytes(0), mask_to_bytes(0x1FF)
    (b'', b'\\xff\\x01')
    """
    return mask.to_bytes((mask.bit_length() + 7) >> 3, "little")


def mask_to_limbs(mask: int, n_bits: int) -> bytes:
    """A mask as ``limbs_for_bits(n_bits)`` little-endian u64 limbs.

    Raises ``OverflowError`` when ``mask`` does not fit the negotiated
    width — a caller passing stray bits past ``n_bits`` (beyond the limb
    round-up) is a contract violation, not data to truncate silently.

    >>> mask_to_limbs(5, 3)
    b'\\x05\\x00\\x00\\x00\\x00\\x00\\x00\\x00'
    """
    return mask.to_bytes(limb_width_bytes(n_bits), "little")


def limbs_to_mask(buf: bytes | bytearray | memoryview) -> int:
    """Rebuild a mask from its little-endian limb buffer.

    >>> limbs_to_mask(mask_to_limbs(12345, 14))
    12345
    """
    return int.from_bytes(buf, "little")


def masks_to_limbs(masks: Iterable[int] | Sequence[int], n_bits: int) -> bytes:
    """Concatenate equal-width limb buffers — the batch/matrix layout.

    Row ``i`` of the result is ``mask_to_limbs(masks[i], n_bits)``; the C
    kernels index the joined buffer as ``row * limbs_for_bits(n_bits)``.
    """
    width = limb_width_bytes(n_bits)
    return b"".join(mask.to_bytes(width, "little") for mask in masks)
