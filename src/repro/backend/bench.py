"""Differential micro-benchmark of the kernel backends.

Times the same seeded workload on every *available* backend — one row
per primitive family (rank, cover, determinise, count, discrepancy,
indices, transpose, rect, split) — and cross-checks that all backends
return bit-identical results before any timing is trusted.  ``python -m
repro bench backends`` drives this module and writes
``BENCH_backends.json``.

Honesty rules:

* every backend runs the *same* inputs, built once from the seed;
* timings are the minimum over ``repeats`` full runs (min-of-k is the
  standard way to suppress scheduler noise in CPython micro-timings);
* a backend that *inherits* a primitive rather than overriding it is
  reported with the ``kernel`` of the class that actually defines the
  method (:func:`repro.backend.delegates_to`), so a delegated row reads
  as "same kernel" instead of a fabricated speedup.
"""

from __future__ import annotations

import random
from time import perf_counter
from typing import Any, Callable

from repro.backend import (
    Backend,
    available_backends,
    backend_info,
    delegates_to,
    get_backend,
)

__all__ = ["bench_backends"]


def _time_min(run: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """``(min seconds, value)`` over ``repeats`` runs of ``run``."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = perf_counter()
        value = run()
        best = min(best, perf_counter() - start)
    return best, value


def _random_masks(rng: random.Random, count: int, bits: int) -> list[int]:
    return [rng.getrandbits(bits) for _ in range(count)]


# ----------------------------------------------------------------------
# One workload per primitive family
# ----------------------------------------------------------------------


def _op_rank(rng: random.Random):
    """GF(2) rank of a dense random bit matrix (the ``rank_over_gf2`` path)."""
    side = 256
    bitrows = _random_masks(rng, side, side)

    def run(backend: Backend) -> int:
        return backend.gf2_rank(bitrows, side)

    return "gf2_rank", f"rank of a random {side}x{side} GF(2) matrix", run


def _op_cover(rng: random.Random):
    """Rectangle growing: superset scans + column AND-folds over one matrix."""
    n = 160
    # Biased-dense rows so supersets actually occur (as in cover growth).
    allow = [rng.getrandbits(n) | rng.getrandbits(n) for _ in range(n)]
    seeds = [1 << rng.randrange(n) for _ in range(48)]

    def run(backend: Backend) -> int:
        acc = 0
        for cols in seeds:
            rows = backend.superset_rows(allow, cols)
            acc ^= rows ^ backend.and_reduce(allow, rows | 1)
        return acc

    return "superset_rows", f"{len(seeds)} rectangle growths over a {n}x{n} matrix", run


def _op_determinise(rng: random.Random):
    """Subset-construction stepping: build one step closure, apply it a lot."""
    n_states = 64
    table = _random_masks(rng, n_states, n_states)
    masks = _random_masks(rng, 2048, n_states)

    def run(backend: Backend) -> int:
        step = backend.make_step_fn(table, n_states)
        acc = 0
        for mask in masks:
            acc ^= step(mask)
        return acc

    return "make_step_fn", f"{len(masks)} subset steps over {n_states} states", run


def _op_count(rng: random.Random):
    """Transfer-matrix sweeps over a DFA-like adjacency (2-letter alphabet).

    Every row has two multiplicity-1 successors — the exact shape
    ``count_dfa_words_of_length`` sweeps — so the counts grow one bit per
    step and the multiply-free unit path gets a realistic workout.
    """
    n = 48
    steps = 1024
    adjacency: list[list[tuple[int, int]]] = [
        [(rng.randrange(n), 1), (rng.randrange(n), 1)] for _ in range(n)
    ]

    def run(backend: Backend) -> int:
        sweep = backend.make_sweep_fn(adjacency, n)
        vector = [1] * n
        for _ in range(steps):
            vector = sweep(vector)
        return sum(vector)

    return "make_sweep_fn", f"{steps} sweeps over {n} states", run


def _op_discrepancy(rng: random.Random):
    """Exact bilinear maximisation over a random sign matrix."""
    dim, width = 12, 128
    base = [[rng.choice((-1, 1)) for _ in range(width)] for _ in range(dim)]

    def run(backend: Backend) -> int:
        return backend.max_bilinear(base)

    return "max_bilinear", f"exact max |x^T M y| on a {dim}x{width} sign matrix", run


def _op_indices(rng: random.Random):
    """Set-bit enumeration on wide masks (extraction accept masks)."""
    bits = 5000
    masks = _random_masks(rng, 24, bits)

    def run(backend: Backend) -> int:
        acc = 0
        for mask in masks:
            acc += sum(backend.bit_indices(mask))
        return acc

    return "bit_indices", f"{len(masks)} set-bit expansions of {bits}-bit masks", run


def _op_transpose(rng: random.Random):
    """Row masks -> column masks of a dense rectangular 0/1 matrix."""
    n_rows, n_cols = 160, 200
    rows = _random_masks(rng, n_rows, n_cols)

    def run(backend: Backend) -> int:
        acc = 0
        for col in backend.transpose_masks(rows, n_cols):
            acc ^= col
        return acc

    return "transpose_masks", f"transpose of a {n_rows}x{n_cols} matrix", run


def _op_rect(rng: random.Random):
    """Rectangle cell masks (the cover-solver bounding primitive)."""
    n_rows, n_cols = 96, 64
    pairs = [
        (rng.getrandbits(n_rows), rng.getrandbits(n_cols)) for _ in range(96)
    ]

    def run(backend: Backend) -> int:
        acc = 0
        for rows_mask, cols_mask in pairs:
            acc ^= backend.cells_of_rect(rows_mask, cols_mask, n_cols)
        return acc

    return "cells_of_rect", f"{len(pairs)} cell masks on a {n_rows}x{n_cols} grid", run


def _op_split(rng: random.Random):
    """Hopcroft preimage splits over a partitioned state set."""
    n = 400
    block_of = [rng.randrange(6) for _ in range(n)]
    preimages = _random_masks(rng, 32, n)

    def run(backend: Backend) -> int:
        acc = 0
        for preimage in preimages:
            for block_id, inside in backend.hopcroft_split(preimage, block_of).items():
                acc ^= inside + block_id
        return acc

    return "hopcroft_split", f"{len(preimages)} preimage splits over {n} states", run


_OPS = (
    ("rank", _op_rank),
    ("cover", _op_cover),
    ("determinise", _op_determinise),
    ("count", _op_count),
    ("discrepancy", _op_discrepancy),
    ("indices", _op_indices),
    ("transpose", _op_transpose),
    ("rect", _op_rect),
    ("split", _op_split),
)


def bench_backends(repeats: int = 5, seed: int = 0) -> dict[str, Any]:
    """Time every available backend on every primitive-family workload.

    Returns rows shaped for ``BENCH_backends.json``: per op, the value
    (identical across backends or the bench raises), per-backend minimum
    seconds, speedup relative to the reference backend, and the name of
    the class whose kernel actually ran (``kernel``).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    names = available_backends()
    rows: list[dict[str, Any]] = []
    for op_name, build in _OPS:
        method, workload, run = build(random.Random(seed))
        timings: dict[str, dict[str, Any]] = {}
        reference_seconds = None
        reference_value = None
        for name in names:
            backend = get_backend(name)
            seconds, value = _time_min(lambda b=backend: run(b), repeats)
            if name == "reference":
                reference_seconds, reference_value = seconds, value
            elif value != reference_value:
                raise ValueError(
                    f"bench backends: {name}.{method} disagrees with reference "
                    f"on op {op_name!r} ({value!r} != {reference_value!r})"
                )
            timings[name] = {
                "seconds": round(seconds, 6),
                "kernel": delegates_to(backend, method),
            }
        for name, cell in timings.items():
            cell["speedup"] = (
                round(reference_seconds / timings[name]["seconds"], 2)
                if timings[name]["seconds"]
                else None
            )
        rows.append(
            {
                "op": op_name,
                "method": method,
                "workload": workload,
                "value_checksum": str(reference_value),
                "backends": timings,
            }
        )
    return {
        "seed": seed,
        "repeats": repeats,
        "backends": names,
        "active": backend_info(),
        "rows": rows,
    }
