"""Selectable kernel backends under the packed substrates.

The hot algorithms of this repository — rectangle covers, rank,
discrepancy, subset construction, Hopcroft minimisation, transfer-matrix
counting, CNF bitset recognition — all bottom out in a small set of
mask/matrix primitives.  This package defines that set as the
:class:`Backend` protocol and ships three interchangeable
implementations:

``reference``
    The pure-python big-int kernels, extracted verbatim from their call
    sites (:mod:`repro.backend.reference`).  Always available; the
    correctness baseline every other backend is differentially tested
    against.
``words``
    Word-at-a-time restructurings of the same loops — chunked 8-bit step
    tables, an xor-basis GF(2) eliminator, multiplicity-split counting
    sweeps (:mod:`repro.backend.words`).  Always available; the default.
``numpy``
    Vectorised kernels where numpy measurably wins, auto-detected and
    never a hard dependency (:mod:`repro.backend.numpy_backend`).
``cext``
    Compiled u64-limb kernels (:mod:`repro.backend.cext` over
    :mod:`repro._cext.kernels`), present only when the optional C
    extension was built — ``python setup.py build_ext --inplace`` —
    and never a hard dependency either.

Every backend produces **bit-exact** results: same integers, same
structures, for every input.  Backends subclass ``reference`` and
override only kernels they beat, so an un-overridden primitive is the
same function object as the reference one — inspectable via
:func:`delegates_to`, which ``bench backends`` uses to report delegation
instead of fake speedups.

Selection order (first match wins):

1. a :func:`use_backend` context (per-call override, contextvar-scoped —
   safe under the threaded ``repro.serve`` executor);
2. a process-wide :func:`set_backend`;
3. the ``REPRO_BACKEND`` environment variable;
4. the default, ``auto`` — resolves to ``cext`` when the compiled
   artifact is built, else ``numpy`` when importable, else ``words``.

See ``docs/BACKENDS.md`` for the protocol reference and how to register
a new backend (the seam the ROADMAP's optional C extension plugs into).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Protocol, runtime_checkable

from repro.backend.cext import CextBackend
from repro.backend.numpy_backend import NumpyBackend, numpy_version
from repro.backend.reference import ReferenceBackend
from repro.backend.words import WordsBackend

__all__ = [
    "Backend",
    "ReferenceBackend",
    "WordsBackend",
    "NumpyBackend",
    "CextBackend",
    "BACKEND_CLASSES",
    "backend_names",
    "available_backends",
    "backend_info",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
    "delegates_to",
    "numpy_version",
]

#: The default selection when nothing else is configured.
AUTO = "auto"


@runtime_checkable
class Backend(Protocol):
    """The kernel primitive set every backend implements, bit-exactly.

    Masks are Python ints (bit ``i`` = element ``i``); matrices are
    lists of int lists; all results are exact arbitrary-precision
    integers.  See :class:`~repro.backend.reference.ReferenceBackend`
    for the semantics of each primitive — it is the executable
    specification.
    """

    name: str

    # mask primitives
    def popcount(self, mask: int) -> int: ...
    def popcount_rows(self, masks: Sequence[int]) -> int: ...
    def bit_indices(self, mask: int) -> list[int]: ...
    def transpose_masks(self, row_masks: Sequence[int], n_cols: int) -> list[int]: ...
    def fold_rows(self, table: Sequence[int], mask: int) -> int: ...
    def make_step_fn(self, table: Sequence[int], n_states: int) -> Callable[[int], int]: ...
    def superset_rows(self, allow: Sequence[int], cols: int) -> int: ...
    def and_reduce(self, table: Sequence[int], mask: int) -> int: ...
    def cells_of_rect(self, rows_mask: int, cols_mask: int, n_cols: int) -> int: ...
    def hopcroft_split(self, preimage: int, block_of: Sequence[int]) -> dict[int, int]: ...

    # exact linear algebra
    def bareiss_rank(self, work: list[list[int]]) -> int: ...
    def gf2_rank(self, bitrows: Sequence[int], n_cols: int) -> int: ...
    def mat_mul(self, a: list[list[int]], b: list[list[int]]) -> list[list[int]]: ...
    def vec_mat(self, vector: list[int], matrix: list[list[int]]) -> list[int]: ...
    def make_sweep_fn(
        self, adjacency: Sequence[Sequence[tuple[int, int]]], n: int
    ) -> Callable[[list[int]], list[int]]: ...

    # Gray-code SWAR bilinear maximisation
    def max_bilinear(self, base: list[list[int]]) -> int: ...

    # CNF bitset recognition
    def make_binary_step(
        self, binary: Sequence[tuple[int, int, int]]
    ) -> Callable[[int, int], int]: ...


#: Registered backend classes, in definition order.  To add a backend,
#: subclass ReferenceBackend (or WordsBackend), give it a unique ``name``
#: and an ``available()`` probe, and insert it here.
BACKEND_CLASSES: dict[str, type[ReferenceBackend]] = {
    ReferenceBackend.name: ReferenceBackend,
    WordsBackend.name: WordsBackend,
    NumpyBackend.name: NumpyBackend,
    CextBackend.name: CextBackend,
}

_instances: dict[str, ReferenceBackend] = {}

#: Per-context override installed by :func:`use_backend` (thread/task safe).
_context_backend: ContextVar[str | None] = ContextVar("repro_backend", default=None)

#: Process-wide override installed by :func:`set_backend`.
_process_backend: str | None = None


def backend_names() -> list[str]:
    """All registered backend names, available or not."""
    return list(BACKEND_CLASSES)


def available_backends() -> list[str]:
    """The names whose availability probe passes, in registry order."""
    return [name for name, cls in BACKEND_CLASSES.items() if cls.available()]


def resolve_backend(name: str | None) -> str:
    """Normalise a requested name to a concrete, available backend name.

    ``None`` and ``"auto"`` resolve to the fastest available tier:
    ``cext`` when the compiled artifact is built, else ``numpy`` when
    importable, else ``words``.  Unknown or unavailable names raise
    ``ValueError`` (the CLI surfaces this as a friendly error).
    """
    if name is None or name == AUTO:
        if CextBackend.available():
            return CextBackend.name
        return NumpyBackend.name if NumpyBackend.available() else WordsBackend.name
    cls = BACKEND_CLASSES.get(name)
    if cls is None:
        known = ", ".join([AUTO, *BACKEND_CLASSES])
        raise ValueError(f"unknown backend {name!r} (known: {known})")
    if not cls.available():
        raise ValueError(f"backend {name!r} is not available: {cls.describe()}")
    return name


def get_backend(name: str | None = None) -> Backend:
    """The active backend, or the named one when ``name`` is given.

    Instances are stateless singletons — cheap to look up from hot-path
    entry points on every call, so ``REPRO_BACKEND`` changes and
    :func:`use_backend` scopes take effect immediately.
    """
    if name is None:
        name = _context_backend.get()
    if name is None:
        name = _process_backend
    if name is None:
        name = os.environ.get("REPRO_BACKEND") or AUTO
    resolved = resolve_backend(name)
    instance = _instances.get(resolved)
    if instance is None:
        instance = _instances[resolved] = BACKEND_CLASSES[resolved]()
    return instance


def set_backend(name: str | None) -> None:
    """Install a process-wide backend (``None`` restores env/auto selection)."""
    global _process_backend
    _process_backend = None if name is None else resolve_backend(name)


def _clear_context_backend() -> None:
    """Drop an inherited :func:`use_backend` override in *this* context.

    For pool-worker initializers: the ``fork`` start method copies the
    parent's context, so a worker forked inside a ``use_backend`` scope
    inherits the parent's pin at the highest-priority selection level.
    A worker that had to downgrade an unavailable pin must clear that
    override or every subsequent :func:`get_backend` would re-resolve
    the unavailable name and fail.  Not for application code — inside a
    process, exiting the ``with`` block is the way out of a scope.
    """
    _context_backend.set(None)


@contextmanager
def use_backend(name: str | None) -> Iterator[Backend]:
    """Scope the active backend to a ``with`` block (contextvar-isolated).

    ``None`` is a no-op scope, so adapters can accept an optional
    ``backend=`` parameter and wrap unconditionally:

    >>> with use_backend("reference") as b:
    ...     b.name
    'reference'
    """
    if name is None:
        yield get_backend()
        return
    token = _context_backend.set(resolve_backend(name))
    try:
        yield get_backend()
    finally:
        _context_backend.reset(token)


def backend_info(name: str | None = None) -> dict[str, str | None]:
    """Provenance of the active (or named) backend, for artifact headers.

    ``{"name": ..., "numpy": <version or None>}`` — recorded in every
    ``RunRecord`` and ``BENCH_*.json`` so the perf trajectory is
    attributable per machine and backend.
    """
    backend = get_backend(name)
    return {
        "name": backend.name,
        "numpy": numpy_version() if backend.name == NumpyBackend.name else None,
    }


def delegates_to(backend: Backend, method: str) -> str:
    """The name of the backend class that actually defines ``method``.

    A backend that does not override a primitive inherits the exact
    function object of its parent, so the result is definitionally the
    backend whose kernel runs.  ``bench backends`` uses this to mark
    delegated rows instead of reporting noise as speedup.
    """
    for cls in type(backend).__mro__:
        if method in vars(cls):
            return getattr(cls, "name", backend.name)
    raise AttributeError(f"{type(backend).__name__} has no kernel {method!r}")
