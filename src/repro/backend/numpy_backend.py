"""The ``numpy`` backend: vectorised kernels, auto-detected, never required.

numpy is imported lazily and probed once; when it is missing the backend
reports itself unavailable and the registry never instantiates it — no
module in this repository hard-depends on numpy.

Only kernels where vectorisation *measurably* beats both the reference
big-int loops and the ``words`` variants are overridden.  That set is
deliberately small: most of this repository's inner loops run on Python
big-int masks whose C-level bitwise ops already process 30-bit digits
per interpreter step, and round-tripping every call through uint64
arrays costs more than it saves (the packed GF(2) elimination, for
example, measured *slower* under numpy than the words xor basis at every
size tried — so it is inherited, not vectorised).  What survives:

* :meth:`NumpyBackend.max_bilinear` — the exact discrepancy
  maximisation enumerates all ``2^dim`` row subsets; the subset→column
  sums table is built by int64 doubling (``sums[S ∪ {i}] = sums[S] +
  row_i``) and reduced with vectorised clamps, ~2–7x over the Gray-code
  SWAR sweep within the guards below.  Inputs that could overflow int64
  or blow the memory cap fall back to the inherited SWAR kernel, so
  results stay bit-exact for every input.

Everything else — chunked step tables, xor-basis GF(2), word-at-a-time
scans, and the inherited reference kernels — comes from
:class:`~repro.backend.words.WordsBackend`.
"""

from __future__ import annotations

from repro.backend.limbs import mask_to_bytes
from repro.backend.words import WordsBackend

__all__ = ["NumpyBackend", "numpy_version"]

try:  # pragma: no cover - exercised implicitly by availability tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def numpy_version() -> str | None:
    """The detected numpy version, or ``None`` when numpy is absent."""
    return None if _np is None else str(_np.__version__)


#: Cap on the subset-sums table (cells); 2^22 int64 cells ≈ 32 MiB.
_BILINEAR_CELL_CAP = 1 << 22


class NumpyBackend(WordsBackend):
    """Vectorised kernels where they win; words/reference elsewhere."""

    name = "numpy"

    @staticmethod
    def available() -> bool:
        return _np is not None

    @staticmethod
    def describe() -> str:
        if _np is None:
            return "unavailable (numpy not importable)"
        return f"vectorised bilinear enumeration (numpy {_np.__version__})"

    @staticmethod
    def unavailable_reason() -> str | None:
        if _np is not None:
            return None
        return "numpy is not importable in this environment (pip install numpy)"

    def bit_indices(self, mask: int) -> list[int]:
        if not mask:
            return []
        data = mask_to_bytes(mask)
        if len(data) < 64:
            # Vectorisation overhead beats the byte-table loop only on
            # wide masks (many-document chunks); delegate below that.
            return super().bit_indices(mask)
        bits = _np.unpackbits(
            _np.frombuffer(data, dtype=_np.uint8), bitorder="little"
        )
        return _np.flatnonzero(bits).tolist()

    def max_bilinear(self, base: list[list[int]]) -> int:
        dim = len(base)
        width = len(base[0])
        max_abs = max(abs(v) for row in base for v in row)
        if max_abs == 0:
            return 0
        # Guards: the subset-sums table must fit the memory cap, and every
        # intermediate (|s_j| ≤ dim·max_abs, Σ_j max(s_j, 0) ≤ width·dim·max_abs)
        # must fit int64.  Outside the guards, the SWAR kernel is exact at
        # any size — delegate.
        if (1 << dim) * width > _BILINEAR_CELL_CAP or width * dim * max_abs >= 1 << 62:
            return super().max_bilinear(base)
        rows = _np.array(base, dtype=_np.int64)
        sums = _np.empty((1 << dim, width), dtype=_np.int64)
        sums[0] = 0
        size = 1
        for i in range(dim):
            # sums[S ∪ {i}] = sums[S] + row_i for every subset S of rows < i.
            _np.add(sums[:size], rows[i], out=sums[size : 2 * size])
            size *= 2
        positive = _np.where(sums > 0, sums, 0).sum(axis=1)
        totals = sums.sum(axis=1)
        return int(max(positive.max(), (positive - totals).max()))
