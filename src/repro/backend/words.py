"""The ``words`` backend: word-at-a-time loops and chunked step tables.

Same big-int masks in, same exact integers out — but the inner loops are
restructured around machine-word-sized pieces:

* the subset-construction step folds a mask with one 256-entry table
  lookup per *byte* instead of one row OR per *bit*
  (:func:`chunked_step_tables`, 10–15x on the determinise kernel);
* GF(2) rank keeps an *xor basis* keyed by top bit instead of rebuilding
  the row list per pivot column (~2.5x);
* row scans (``superset_rows``, ``and_reduce``, ``hopcroft_split``)
  iterate mask words directly with shift/AND arithmetic instead of
  index lookups or generator frames;
* transfer-matrix sweeps split each adjacency row into its
  multiplicity-1 part (pure adds — no ``value * 1`` big-int multiply)
  and the rest (~1.5x on counting sweeps);
* :func:`to_words` / :func:`from_words` round-trip masks through
  ``array('Q')`` 64-bit chunks — views over the shared limb buffers of
  :mod:`repro.backend.limbs`, the interchange format the numpy and C
  backends build their uint64 views from.

Kernels with no measured word-level win (Bareiss elimination, the
repeated-squaring matrix products, the Gray-code SWAR bilinear sweep —
all already dominated by CPython's C big-int arithmetic) are inherited
from :class:`~repro.backend.reference.ReferenceBackend` unchanged, which
``bench backends`` reports as delegation rather than claiming a fake
speedup.
"""

from __future__ import annotations

from array import array
from collections.abc import Callable, Sequence

from repro.backend.limbs import limbs_for_bits, limbs_to_mask, mask_to_bytes, mask_to_limbs
from repro.backend.reference import ReferenceBackend

__all__ = [
    "WordsBackend",
    "chunked_step_tables",
    "fold_chunked",
    "chunked_step_fn",
    "to_words",
    "from_words",
]

_CHUNK_BITS = 8
_CHUNK_SIZE = 1 << _CHUNK_BITS

# bit_indices lookup: positions of the set bits of each byte value.
_BYTE_BITS = tuple(
    tuple(b for b in range(8) if (value >> b) & 1) for value in range(256)
)


def to_words(mask: int, n_bits: int) -> array:
    """Split a mask into little-endian 64-bit words as an ``array('Q')``.

    A typed view over the shared limb-buffer format of
    :mod:`repro.backend.limbs` (same width negotiation, same layout).

    >>> list(to_words((1 << 64) | 5, 65))
    [5, 1]
    """
    return array("Q", mask_to_limbs(mask, n_bits))


def from_words(words: array | Sequence[int]) -> int:
    """Rebuild a mask from its little-endian 64-bit words.

    >>> from_words(to_words(12345, 14))
    12345
    """
    chunks = array("Q", words)
    return limbs_to_mask(chunks.tobytes())


def chunked_step_tables(table: Sequence[int], n_states: int) -> list[list[int]]:
    """Per 8-bit chunk of a state mask, the OR of that chunk's rows.

    ``out[c][v]`` is the OR of ``table[c·8 + b]`` over the set bits ``b``
    of the byte ``v`` — so a macro-step folds a whole mask with one table
    lookup per *byte* instead of one row OR per *bit*:

    ``step(mask) = OR_c out[c][(mask >> 8c) & 255]``.

    Each 256-entry table is built with one OR per entry (entry ``v``
    extends entry ``v`` minus its lowest bit), so precomputation is
    ``O(256 · ⌈n/8⌉)`` — paid once per automaton, repaid on every one of
    the ``2^Θ(n)`` macro-states of a subset construction.
    """
    n_chunks = (n_states + _CHUNK_BITS - 1) // _CHUNK_BITS
    chunks: list[list[int]] = []
    for c in range(n_chunks):
        base = c * _CHUNK_BITS
        width = min(_CHUNK_BITS, n_states - base)
        entries = [0] * (1 << width)
        for value in range(1, 1 << width):
            low = value & -value
            entries[value] = entries[value ^ low] | table[base + low.bit_length() - 1]
        chunks.append(entries)
    return chunks


def fold_chunked(chunks: list[list[int]], mask: int) -> int:
    """OR-fold a mask through :func:`chunked_step_tables` output."""
    out = 0
    c = 0
    while mask:
        byte = mask & (_CHUNK_SIZE - 1)
        if byte:
            out |= chunks[c][byte]
        mask >>= _CHUNK_BITS
        c += 1
    return out


def chunked_step_fn(table: Sequence[int], n_states: int) -> Callable[[int], int]:
    """A ``mask -> successor-mask`` closure over the chunked tables.

    The fold is unrolled for up to three chunks (automata of ≤ 24
    states, which covers every ``L_n`` NFA the benchmarks sweep): the
    closure body is then a couple of index-and-OR operations with the
    chunk tables pre-bound — this is the hot call of the subset
    construction, executed once per (macro-state, symbol).
    """
    chunks = chunked_step_tables(table, n_states)
    if len(chunks) == 1:
        t0 = chunks[0]
        return lambda mask: t0[mask]
    if len(chunks) == 2:
        t0, t1 = chunks
        return lambda mask: t0[mask & 255] | t1[mask >> 8]
    if len(chunks) == 3:
        t0, t1, t2 = chunks
        return lambda mask: t0[mask & 255] | t1[mask >> 8 & 255] | t2[mask >> 16]
    return lambda mask: fold_chunked(chunks, mask)


class WordsBackend(ReferenceBackend):
    """Word-at-a-time kernels; inherits reference for everything else."""

    name = "words"

    @staticmethod
    def describe() -> str:
        return "chunked step tables, xor-basis GF(2), word-at-a-time scans"

    # -- mask primitives ----------------------------------------------

    def make_step_fn(self, table: Sequence[int], n_states: int) -> Callable[[int], int]:
        return chunked_step_fn(table, n_states)

    def superset_rows(self, allow: Sequence[int], cols: int) -> int:
        # One shifted bit walks the rows; no index arithmetic, no range().
        rows = 0
        bit = 1
        for mask in allow:
            if mask & cols == cols:
                rows |= bit
            bit <<= 1
        return rows

    def and_reduce(self, table: Sequence[int], mask: int) -> int:
        # Inline bit extraction: no generator frame per element.
        inter = -1
        while mask:
            low = mask & -mask
            inter &= table[low.bit_length() - 1]
            mask ^= low
        return inter

    def bit_indices(self, mask: int) -> list[int]:
        # Byte-at-a-time: one little-endian export, then a table lookup
        # per non-zero byte instead of a shift per set bit.
        if not mask:
            return []
        data = mask_to_bytes(mask)
        out: list[int] = []
        extend = out.extend
        table = _BYTE_BITS
        for i, byte in enumerate(data):
            if byte:
                base = i << 3
                extend(base + b for b in table[byte])
        return out

    def cells_of_rect(self, rows_mask: int, cols_mask: int, n_cols: int) -> int:
        # Runs of consecutive member rows are filled by doubling: a run of
        # length r costs O(log r) big-int shifts instead of r, and cover
        # search states are dominated by exactly such contiguous row runs.
        cells = 0
        while rows_mask:
            start = (rows_mask & -rows_mask).bit_length() - 1
            tail = rows_mask >> start
            run = ((tail + 1) & -(tail + 1)).bit_length() - 1  # trailing ones
            block = cols_mask
            length = 1
            while length < run:
                step = min(length, run - length)
                block |= block << (step * n_cols)
                length += step
            cells |= block << (start * n_cols)
            rows_mask &= rows_mask + (1 << start)  # clear the run
        return cells

    def hopcroft_split(self, preimage: int, block_of: Sequence[int]) -> dict[int, int]:
        inside_of: dict[int, int] = {}
        get = inside_of.get
        while preimage:
            low = preimage & -preimage
            block_id = block_of[low.bit_length() - 1]
            inside_of[block_id] = get(block_id, 0) | low
            preimage ^= low
        return inside_of

    # -- exact linear algebra -----------------------------------------

    def gf2_rank(self, bitrows: Sequence[int], n_cols: int) -> int:
        # Xor basis keyed by top bit: each row is reduced against the
        # basis until it vanishes or claims a fresh pivot position — two
        # cheap ops per reduction, no per-pivot list rebuild.  The rank
        # (basis size) is representation-independent, so this agrees
        # exactly with the reference column sweep.
        basis: dict[int, int] = {}
        get = basis.get
        for row in bitrows:
            while row:
                top = row.bit_length() - 1
                pivot = get(top)
                if pivot is None:
                    basis[top] = row
                    break
                row ^= pivot
        return len(basis)

    def make_sweep_fn(
        self, adjacency: Sequence[Sequence[tuple[int, int]]], n: int
    ) -> Callable[[list[int]], list[int]]:
        # Multiplicity-1 edges (the common case for transfer matrices of
        # automata over small alphabets) take a pure add — no `value * 1`
        # big-int multiply, which dominates once counts grow wide.
        split = [
            (
                [j for j, count in row if count == 1],
                [(j, count) for j, count in row if count != 1],
            )
            for row in adjacency
        ]

        def sweep(vector: list[int]) -> list[int]:
            out = [0] * n
            for value, (unit, weighted) in zip(vector, split):
                if value:
                    for j in unit:
                        out[j] += value
                    for j, count in weighted:
                        out[j] += value * count
            return out

        return sweep
