"""The ``cext`` backend: compiled u64-limb kernels, build-time optional.

The fourth rung of the backend ladder.  A small CPython extension
(:mod:`repro._cext.kernels`, one ``.c`` file) implements the primitives
where flat ``uint64_t`` arrays beat both the big-int loops and the
``words`` restructurings; this class converts masks across the boundary
as ``int.to_bytes`` limb buffers (:mod:`repro.backend.limbs` is the
width negotiation) and inherits everything else from
:class:`~repro.backend.words.WordsBackend`.

Availability is a *build* question, not an install question: the class
probes the compiled artifact (``available()``), checks its limb ABI, and
simply does not register as available when the artifact is missing —
exactly like ``numpy`` when numpy is not importable.  No compiler, no
``cext``; nothing else changes.

What is overridden, and why:

* ``popcount_rows`` / ``bit_indices`` — loop hoisting and direct list
  construction over limb buffers (the 5000-bit accept masks of the
  extraction scanner are the target workload);
* ``transpose_masks`` — one pass over set bits into per-column limb
  buffers instead of nested Python loops;
* ``fold_rows`` / ``make_step_fn`` — the chunked 256-entry step tables
  built and folded entirely in C (the subset-construction hot call);
* ``gf2_rank`` — xor-basis elimination on flat limb arrays: no big-int
  allocation per reduction (the Theorem 17 rank bound path);
* ``hopcroft_split`` / ``cells_of_rect`` — per-bit accumulation into C
  buffers for Hopcroft refinement and rectangle-cover cell masks.

What is deliberately **not** here: every kernel whose exact-integer
semantics cannot live in fixed-width limbs.  ``bareiss_rank`` minors,
``mat_mul``/``vec_mat``/``make_sweep_fn`` transfer-matrix counts and the
``max_bilinear`` SWAR state all grow beyond 64 bits on real workloads,
so they stay delegated to the inherited reference/words kernels and
results remain bit-exact everywhere.  ``popcount`` on a single mask is
``int.bit_count`` — already a C primitive — so wrapping it would only
add a boundary crossing.  ``delegates_to`` reports all of this, and
``bench backends`` prints delegated rows as such.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro import _cext
from repro.backend.limbs import (
    limb_width_bytes,
    limbs_to_mask,
    mask_to_bytes,
    mask_to_limbs,
    masks_to_limbs,
)
from repro.backend.words import WordsBackend

__all__ = ["CextBackend"]

#: Below this many states the ``words`` unrolled step lambdas win (one
#: list index per byte, no boundary crossing); measured, not guessed.
_STEP_C_MIN_STATES = 25

#: Below this many bits the ``words`` byte-table ``bit_indices`` is
#: already within noise of the C kernel; skip the buffer export.
_INDICES_C_MIN_BITS = 64


class CextBackend(WordsBackend):
    """Compiled u64-limb kernels; words/reference for everything else."""

    name = "cext"

    def __init__(self) -> None:
        kernels = _cext.load()
        if kernels is None:  # pragma: no cover - registry never does this
            raise RuntimeError(f"cext backend unavailable: {_cext.unavailable_reason()}")
        self._kernels = kernels

    @staticmethod
    def available() -> bool:
        return _cext.load() is not None

    @staticmethod
    def describe() -> str:
        reason = _cext.unavailable_reason()
        if reason is not None:
            return "unavailable (compiled artifact not built)"
        return "compiled u64-limb kernels (repro._cext.kernels)"

    @staticmethod
    def unavailable_reason() -> str | None:
        return _cext.unavailable_reason()

    # -- mask primitives ----------------------------------------------

    def popcount_rows(self, masks: Sequence[int]) -> int:
        return self._kernels.popcount_rows(masks)

    def bit_indices(self, mask: int) -> list[int]:
        if mask.bit_length() < _INDICES_C_MIN_BITS:
            return super().bit_indices(mask)
        return self._kernels.bit_indices(mask_to_bytes(mask))

    def transpose_masks(self, row_masks: Sequence[int], n_cols: int) -> list[int]:
        if n_cols <= 0:
            return []
        n_rows = len(row_masks)
        joined = self._kernels.transpose(
            masks_to_limbs(row_masks, n_cols), n_rows, n_cols
        )
        stride = limb_width_bytes(n_rows)
        return [
            limbs_to_mask(joined[k * stride : (k + 1) * stride]) for k in range(n_cols)
        ]

    def fold_rows(self, table: Sequence[int], mask: int) -> int:
        return self._kernels.fold_rows(table, mask_to_bytes(mask))

    def make_step_fn(self, table: Sequence[int], n_states: int) -> Callable[[int], int]:
        if n_states < _STEP_C_MIN_STATES:
            return super().make_step_fn(table, n_states)
        step_table = self._kernels.StepTable(
            masks_to_limbs(table, n_states), n_states
        )
        width = limb_width_bytes(n_states)

        def step(mask: int, _table=step_table, _width=width) -> int:
            return _table(mask.to_bytes(_width, "little"))

        return step

    def cells_of_rect(self, rows_mask: int, cols_mask: int, n_cols: int) -> int:
        if not rows_mask or n_cols <= 0:
            return 0
        return self._kernels.cells_of_rect(
            mask_to_bytes(rows_mask), mask_to_limbs(cols_mask, n_cols), n_cols
        )

    def hopcroft_split(self, preimage: int, block_of: Sequence[int]) -> dict[int, int]:
        return self._kernels.hopcroft_split(mask_to_bytes(preimage), block_of)

    # -- exact linear algebra -----------------------------------------

    def gf2_rank(self, bitrows: Sequence[int], n_cols: int) -> int:
        n_limbs = limb_width_bytes(n_cols) // 8
        return self._kernels.gf2_rank(
            masks_to_limbs(bitrows, n_cols), len(bitrows), n_limbs
        )
