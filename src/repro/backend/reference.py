"""The always-available reference backend: the frozen big-int kernels.

Every method of :class:`ReferenceBackend` is the pure-python big-int
kernel that previously lived inline in its call site — extracted
verbatim, byte-for-byte in behaviour:

* :meth:`~ReferenceBackend.fold_rows` / :meth:`~ReferenceBackend.make_step_fn`
  — the subset-construction OR-fold of :mod:`repro.automata.packed`;
* :meth:`~ReferenceBackend.superset_rows` / :meth:`~ReferenceBackend.and_reduce`
  — the rectangle-growth row scans of :mod:`repro.comm.covers`;
* :meth:`~ReferenceBackend.bareiss_rank` / :meth:`~ReferenceBackend.gf2_rank`
  — the elimination loops of :mod:`repro.comm.rank`;
* :meth:`~ReferenceBackend.max_bilinear` — the Gray-code SWAR sweep of
  :mod:`repro.core.discrepancy`;
* :meth:`~ReferenceBackend.hopcroft_split` — the preimage grouping of
  ``packed_minimise``;
* :meth:`~ReferenceBackend.mat_mul` / :meth:`~ReferenceBackend.vec_mat` /
  :meth:`~ReferenceBackend.make_sweep_fn` — the transfer-matrix counting
  arithmetic;
* :meth:`~ReferenceBackend.make_binary_step` — the CNF bitset
  binary-rule step of :mod:`repro.kernel.chart`.

Other backends subclass this one and override only the kernels they can
genuinely beat; an inherited method is *definitionally* bit-exact (it is
the same function object), which the differential tests and the
``bench backends`` delegation probe both rely on.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

__all__ = ["ReferenceBackend", "fold_rows", "iter_bits"]


def iter_bits(mask: int):
    """Yield the indices of the set bits of ``mask``, ascending.

    Local copy of :func:`repro.comm.packed.iter_bits` — the backend tier
    sits *below* the packed substrates and must not import them.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def fold_rows(table: Sequence[int], mask: int) -> int:
    """OR together ``table[i]`` for every set bit ``i`` of ``mask``.

    The workhorse of every mask kernel: one macro-step of an NFA, one
    preimage in Hopcroft refinement, one frontier expansion of a
    reachability fixpoint — all are folds of mask rows over a mask.

    >>> fold_rows([0b01, 0b10, 0b11], 0b101)
    3
    """
    out = 0
    while mask:
        low = mask & -mask
        out |= table[low.bit_length() - 1]
        mask ^= low
    return out


class ReferenceBackend:
    """Pure-python big-int kernels; the correctness baseline for all others."""

    name = "reference"

    @staticmethod
    def available() -> bool:
        return True

    @staticmethod
    def describe() -> str:
        return "pure-python big-int loops (always available)"

    @staticmethod
    def unavailable_reason() -> str | None:
        """Why this backend is unavailable; ``None`` when it is available.

        Always-available tiers inherit this; optional tiers (numpy, cext)
        override it with the concrete failure — ``python -m repro
        backends`` prints the reason instead of a bare "no".
        """
        return None

    # -- mask primitives ----------------------------------------------

    def popcount(self, mask: int) -> int:
        """The number of set bits of one mask."""
        return mask.bit_count()

    def popcount_rows(self, masks: Sequence[int]) -> int:
        """The total popcount over a sequence of masks."""
        return sum(mask.bit_count() for mask in masks)

    def bit_indices(self, mask: int) -> list[int]:
        """The positions of set bits, ascending — one shift per bit."""
        return list(iter_bits(mask))

    def transpose_masks(self, row_masks: Sequence[int], n_cols: int) -> list[int]:
        """Column masks of a 0/1 matrix given as row masks."""
        cols = [0] * n_cols
        for i, mask in enumerate(row_masks):
            bit = 1 << i
            for j in iter_bits(mask):
                cols[j] |= bit
        return cols

    def fold_rows(self, table: Sequence[int], mask: int) -> int:
        """OR-fold ``table`` over the set bits of ``mask``."""
        return fold_rows(table, mask)

    def make_step_fn(self, table: Sequence[int], n_states: int) -> Callable[[int], int]:
        """A ``mask -> successor-mask`` closure for the subset construction.

        The reference step is the plain per-bit OR-fold; the ``words``
        backend replaces it with chunked byte tables.
        """
        def step(mask: int, _table: Sequence[int] = table) -> int:
            return fold_rows(_table, mask)

        return step

    def superset_rows(self, allow: Sequence[int], cols: int) -> int:
        """The mask of rows ``i`` with ``allow[i] & cols == cols``."""
        rows = 0
        for i in range(len(allow)):
            if allow[i] & cols == cols:
                rows |= 1 << i
        return rows

    def and_reduce(self, table: Sequence[int], mask: int) -> int:
        """AND together ``table[i]`` over the set bits of ``mask`` (empty: -1)."""
        inter = -1
        for i in iter_bits(mask):
            inter &= table[i]
        return inter

    def cells_of_rect(self, rows_mask: int, cols_mask: int, n_cols: int) -> int:
        """The row-major cell mask of the rectangle ``rows × cols``.

        Bit ``i * n_cols + j`` is set iff ``i`` is a set bit of
        ``rows_mask`` and ``j`` a set bit of ``cols_mask`` — one shifted
        OR of the column pattern per member row.
        """
        cells = 0
        for i in iter_bits(rows_mask):
            cells |= cols_mask << (i * n_cols)
        return cells

    def hopcroft_split(self, preimage: int, block_of: Sequence[int]) -> dict[int, int]:
        """Group the set bits of ``preimage`` by their block id.

        Returns ``{block_id: mask of preimage bits inside that block}`` —
        the "touch only affected blocks" step of Hopcroft refinement.
        """
        inside_of: dict[int, int] = {}
        for q in iter_bits(preimage):
            block_id = block_of[q]
            inside_of[block_id] = inside_of.get(block_id, 0) | 1 << q
        return inside_of

    # -- exact linear algebra -----------------------------------------

    def bareiss_rank(self, work: list[list[int]]) -> int:
        """Rank over ℚ by fraction-free Bareiss elimination.

        ``work`` is consumed (mutated in place).  After eliminating with
        pivot ``p_k``, each entry equals a ``(k+1) × (k+1)`` minor of the
        input, and dividing the update ``(a·p - b·c)`` by the *previous*
        pivot is exact by Sylvester's identity.
        """
        if not work:
            return 0
        n_rows, n_cols = len(work), len(work[0])
        rank = 0
        pivot_row = 0
        previous_pivot = 1
        for col in range(n_cols):
            pivot = next((r for r in range(pivot_row, n_rows) if work[r][col]), None)
            if pivot is None:
                continue
            work[pivot_row], work[pivot] = work[pivot], work[pivot_row]
            head_row = work[pivot_row]
            head = head_row[col]
            for r in range(pivot_row + 1, n_rows):
                row_r = work[r]
                factor = row_r[col]
                if factor:
                    for c in range(col + 1, n_cols):
                        row_r[c] = (row_r[c] * head - factor * head_row[c]) // previous_pivot
                    row_r[col] = 0
                elif previous_pivot != head:
                    # Rows untouched by this pivot still need rescaling to
                    # stay minors of the current order (exact by the same
                    # identity).
                    for c in range(col + 1, n_cols):
                        row_r[c] = row_r[c] * head // previous_pivot
            previous_pivot = head
            pivot_row += 1
            rank += 1
            if pivot_row == n_rows:
                break
        return rank

    def gf2_rank(self, bitrows: Sequence[int], n_cols: int) -> int:
        """Rank of a 0/1 matrix over GF(2), by column-sweep bitset elimination."""
        bitrows = list(bitrows)
        rank = 0
        for col in range(n_cols):
            mask = 1 << col
            pivot = next((i for i, r in enumerate(bitrows) if r & mask), None)
            if pivot is None:
                continue
            pivot_value = bitrows.pop(pivot)
            bitrows = [r ^ pivot_value if r & mask else r for r in bitrows]
            rank += 1
        return rank

    def mat_mul(self, a: list[list[int]], b: list[list[int]]) -> list[list[int]]:
        """Exact integer matrix product (sparse-aware row loops)."""
        n = len(b[0])
        out = []
        for row in a:
            acc = [0] * n
            for k, value in enumerate(row):
                if value:
                    b_row = b[k]
                    for j, other in enumerate(b_row):
                        if other:
                            acc[j] += value * other
            out.append(acc)
        return out

    def vec_mat(self, vector: list[int], matrix: list[list[int]]) -> list[int]:
        """Exact integer vector–matrix product."""
        n = len(matrix[0])
        out = [0] * n
        for i, value in enumerate(vector):
            if value:
                row = matrix[i]
                for j, other in enumerate(row):
                    if other:
                        out[j] += value * other
        return out

    def make_sweep_fn(
        self, adjacency: Sequence[Sequence[tuple[int, int]]], n: int
    ) -> Callable[[list[int]], list[int]]:
        """A ``vector -> next-vector`` closure for transfer-matrix sweeps.

        ``adjacency[i]`` lists ``(j, count)`` pairs; one sweep advances
        the count vector by one symbol.
        """
        def sweep(vector: list[int]) -> list[int]:
            out = [0] * n
            for i, value in enumerate(vector):
                if value:
                    for j, count in adjacency[i]:
                        out[j] += value * count
            return out

        return sweep

    # -- Gray-code SWAR bilinear maximisation -------------------------

    def max_bilinear(self, base: list[list[int]]) -> int:
        """Exact ``max |x^T M y|`` over 0/1 vectors, SWAR over big-int words.

        All row subsets are enumerated in Gray-code order, but the
        per-step state is a *single* Python int holding every column sum
        in its own fixed-width field, so a step is one big-int add plus a
        constant number of big-int bit operations.  See
        :func:`repro.core.discrepancy.max_bilinear_form` for the field
        layout (biased entries, guard-bit sign flags, horizontal-sum
        multiply).  ``base`` must be non-empty.
        """
        dim = len(base)
        width = len(base[0])
        max_abs = max(abs(v) for row in base for v in row)
        if max_abs == 0:
            return 0
        # Field width: the guard bit needs 2^{W-1} > dim·max_abs ≥ |s_j|, and
        # the horizontal-sum multiply needs 2^W > width·dim·max_abs ≥ Σ max(s_j, 0).
        field_bits = (2 * width * dim * max_abs).bit_length() + 2
        selector = 0  # 1 in the lowest bit of every field
        for j in range(width):
            selector |= 1 << (j * field_bits)
        guards = selector << (field_bits - 1)
        field_mask = (1 << field_bits) - 1
        top_shift = (width - 1) * field_bits
        bias = max(0, -min(v for row in base for v in row))
        bias_fields = bias * selector
        packed_rows: list[int] = []
        row_totals: list[int] = []
        for row in base:
            acc = 0
            for j, v in enumerate(row):
                acc |= (v + bias) << (j * field_bits)
            packed_rows.append(acc)
            row_totals.append(sum(row))

        packed_sums = 0  # fields: s_j + k·bias (all non-negative)
        excess = 0  # k·bias replicated into every field
        total = 0  # S = Σ_j s_j for the current selection
        in_set = [False] * dim
        best = 0  # the empty selection
        for step in range(1, 1 << dim):
            # Gray code: flip the row at the lowest set bit of `step`.
            flip = (step & -step).bit_length() - 1
            if in_set[flip]:
                in_set[flip] = False
                packed_sums -= packed_rows[flip]
                excess -= bias_fields
                total -= row_totals[flip]
            else:
                in_set[flip] = True
                packed_sums += packed_rows[flip]
                excess += bias_fields
                total += row_totals[flip]
            biased = (packed_sums | guards) - excess  # fields: 2^{W-1} + s_j
            sign_flags = biased & guards
            # Per-field mask of all ones exactly where s_j ≥ 0.
            keep = (sign_flags - (sign_flags >> (field_bits - 1))) | sign_flags
            positive_fields = (biased ^ sign_flags) & keep  # fields: max(s_j, 0)
            positive = ((positive_fields * selector) >> top_shift) & field_mask
            if positive > best:
                best = positive
            if positive - total > best:  # -Σ_j min(s_j, 0)
                best = positive - total
        return best

    # -- CNF bitset recognition ---------------------------------------

    def make_binary_step(
        self, binary: Sequence[tuple[int, int, int]]
    ) -> Callable[[int, int], int]:
        """A ``(left-cell, right-cell) -> lhs-mask`` closure over binary rules.

        ``binary`` lists ``(lhs_mask, rhs1_mask, rhs2_mask)`` triples; the
        step ORs the left-hand sides of every rule whose children appear
        in the given cells.
        """
        rules = list(binary)

        def step(left: int, right: int) -> int:
            mask = 0
            for lhs_mask, b_mask, c_mask in rules:
                if left & b_mask and right & c_mask:
                    mask |= lhs_mask
            return mask

        return step
