"""Combinatorial rectangles over words — Definition 5 of the paper.

A language ``L`` of words of length ``n`` is a *rectangle* with
parameters ``(L1, L2, n1, n2, n3)`` when

``L = ⋃_{w1 w3 ∈ L1} {w1} × L2 × {w3}``  (``|w1| = n1``, ``|w3| = n3``),

i.e. membership factors into an "outer" part (the concatenated prefix and
suffix, drawn from ``L1 ⊆ Σ^{n1+n3}``) and an "inner" part (the middle
factor, drawn from ``L2 ⊆ Σ^{n2}``), chosen independently.  A rectangle
is *balanced* iff ``n/3 ≤ n2 ≤ 2n/3`` where ``n = n1 + n2 + n3``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from fractions import Fraction

from repro.errors import RectangleError
from repro.words.alphabet import Alphabet

__all__ = ["Rectangle", "is_rectangle_decomposition", "singleton_rectangle"]


class Rectangle:
    """A word-view rectangle with explicit parameters (Definition 5).

    ``outer`` is ``L1`` (each element the concatenation ``w1 w3``) and
    ``inner`` is ``L2``.  Construction validates the length disciplines.

    >>> from repro.words import AB
    >>> r = Rectangle(outer={"ab"}, inner={"aa", "bb"}, n1=1, n2=2, n3=1, alphabet=AB)
    >>> sorted(r.words())
    ['aaab', 'abbb']
    >>> r.is_balanced
    True
    """

    __slots__ = ("outer", "inner", "n1", "n2", "n3", "alphabet")

    def __init__(
        self,
        outer: Iterable[str],
        inner: Iterable[str],
        n1: int,
        n2: int,
        n3: int,
        alphabet: Alphabet,
    ) -> None:
        if min(n1, n2, n3) < 0:
            raise RectangleError(f"negative part lengths: ({n1}, {n2}, {n3})")
        outer_set = frozenset(outer)
        inner_set = frozenset(inner)
        for w in outer_set:
            if len(w) != n1 + n3:
                raise RectangleError(
                    f"outer word {w!r} has length {len(w)}, expected n1+n3={n1 + n3}"
                )
        for w in inner_set:
            if len(w) != n2:
                raise RectangleError(f"inner word {w!r} has length {len(w)}, expected n2={n2}")
        self.outer = outer_set
        self.inner = inner_set
        self.n1 = n1
        self.n2 = n2
        self.n3 = n3
        self.alphabet = alphabet

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def word_length(self) -> int:
        """``n = n1 + n2 + n3``."""
        return self.n1 + self.n2 + self.n3

    @property
    def middle_interval(self) -> tuple[int, int]:
        """The 1-based position interval ``[n1+1, n1+n2]`` of the inner part."""
        return (self.n1 + 1, self.n1 + self.n2)

    @property
    def is_balanced(self) -> bool:
        """Whether ``n/3 ≤ n2 ≤ 2n/3`` (exact rational comparison)."""
        n = Fraction(self.word_length)
        return n / 3 <= self.n2 <= 2 * n / 3

    @property
    def n_words(self) -> int:
        """``|L1| · |L2|`` — rectangles multiply sizes by construction."""
        return len(self.outer) * len(self.inner)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def words(self) -> Iterator[str]:
        """Yield all words of the rectangle (``|L1| · |L2|`` of them)."""
        for outer_word in self.outer:
            w1, w3 = outer_word[: self.n1], outer_word[self.n1 :]
            for w2 in self.inner:
                yield w1 + w2 + w3

    def word_set(self) -> frozenset[str]:
        """The rectangle's language as a frozenset."""
        return frozenset(self.words())

    def __contains__(self, word: object) -> bool:
        if not isinstance(word, str) or len(word) != self.word_length:
            return False
        w1 = word[: self.n1]
        w2 = word[self.n1 : self.n1 + self.n2]
        w3 = word[self.n1 + self.n2 :]
        return (w1 + w3) in self.outer and w2 in self.inner

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rectangle):
            return NotImplemented
        return (
            (self.n1, self.n2, self.n3) == (other.n1, other.n2, other.n3)
            and self.outer == other.outer
            and self.inner == other.inner
        )

    def __hash__(self) -> int:
        return hash((self.n1, self.n2, self.n3, self.outer, self.inner))

    def __repr__(self) -> str:
        return (
            f"Rectangle(n1={self.n1}, n2={self.n2}, n3={self.n3}, "
            f"|L1|={len(self.outer)}, |L2|={len(self.inner)}, "
            f"balanced={self.is_balanced})"
        )


def singleton_rectangle(word: str, alphabet: Alphabet) -> Rectangle:
    """The one-word balanced rectangle ``{w}``.

    "Any language containing a single word is a balanced rectangle"
    (Section 3) — split the word so the middle third lands in
    ``[n/3, 2n/3]``.
    """
    n = len(word)
    n2 = max(1, (n + 2) // 3) if n else 0
    n1 = (n - n2) // 2
    n3 = n - n1 - n2
    rect = Rectangle(
        outer={word[:n1] + word[n1 + n2 :]},
        inner={word[n1 : n1 + n2]},
        n1=n1,
        n2=n2,
        n3=n3,
        alphabet=alphabet,
    )
    if n >= 2 and not rect.is_balanced:  # pragma: no cover - arithmetic guarantee
        raise RectangleError(f"singleton split of {word!r} is unbalanced")
    return rect


def is_rectangle_decomposition(
    rectangles: Iterable[Rectangle],
    target: frozenset[str] | set[str],
    require_disjoint: bool = False,
    require_balanced: bool = False,
) -> bool:
    """Check that the rectangles cover ``target`` exactly.

    With ``require_disjoint`` the rectangles must be pairwise disjoint
    (the condition Proposition 7 guarantees for unambiguous grammars);
    with ``require_balanced`` each rectangle must be balanced.
    """
    union: set[str] = set()
    total = 0
    for rect in rectangles:
        if require_balanced and not rect.is_balanced:
            return False
        rect_words = rect.word_set()
        total += len(rect_words)
        union |= rect_words
    if union != frozenset(target):
        return False
    if require_disjoint and total != len(union):
        return False
    return True
