"""Proposition 7: from a CFG to a cover by balanced rectangles.

Given a grammar ``G`` for a language of uniform word length ``n``, the
construction produces balanced rectangles ``L_1, ..., L_ℓ`` with
``⋃ L_i = L(G)`` and ``ℓ ≤ n·|G|`` — and, crucially, the union is
*disjoint* whenever ``G`` is unambiguous.  The pipeline follows the paper
literally:

1. convert to Chomsky normal form and trim;
2. apply the Lemma 10 position-indexing transform;
3. repeatedly pick a word of the remaining language, take a parse tree,
   descend from the root towards the child with more leaves until the
   subtree first has fewer than ``2n/3`` leaves (then it has at least
   ``n/3``), and cut out the rectangle of Observation 11 at that
   non-terminal;
4. delete the non-terminal, re-trim, repeat until the language empties.

Everything is exact and enumerative, so this is only feasible for small
languages — which is all the lower-bound argument ever needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.rectangles import Rectangle, is_rectangle_decomposition
from repro.errors import RectangleError
from repro.grammars.ambiguity import is_unambiguous
from repro.grammars.analysis import trim
from repro.grammars.cfg import CFG, NonTerminal
from repro.grammars.cnf import to_cnf
from repro.grammars.cyk import one_parse_tree
from repro.grammars.indexing import index_by_position, indexed_position
from repro.grammars.language import _topological_nonterminals, language, languages_by_nonterminal
from repro.grammars.trees import ParseTree

__all__ = ["ExtractionStep", "RectangleCover", "balanced_rectangle_cover", "context_pairs"]


@dataclass(frozen=True, slots=True)
class ExtractionStep:
    """One iteration of the Proposition 7 loop."""

    nonterminal: NonTerminal
    witness_word: str
    rectangle: Rectangle


@dataclass(frozen=True, slots=True)
class RectangleCover:
    """The output of :func:`balanced_rectangle_cover`.

    ``rectangles`` is the cover; ``steps`` records which indexed
    non-terminal produced each rectangle; ``cnf_size`` is ``|G|`` for the
    CNF grammar, so Proposition 7 promises ``len(rectangles) ≤
    word_length * cnf_size`` (exposed as :attr:`proposition7_bound`).
    ``disjoint`` reports whether the produced union is in fact disjoint
    (always true when the source grammar is unambiguous).
    """

    rectangles: tuple[Rectangle, ...]
    steps: tuple[ExtractionStep, ...]
    word_length: int
    cnf_size: int
    indexed_size: int
    disjoint: bool

    @property
    def n_rectangles(self) -> int:
        return len(self.rectangles)

    @property
    def proposition7_bound(self) -> int:
        """``n · |G|`` — the upper bound on the cover size from Prop. 7."""
        return self.word_length * self.cnf_size

    def covered_words(self) -> frozenset[str]:
        """The union of all rectangles."""
        words: set[str] = set()
        for rect in self.rectangles:
            words |= rect.word_set()
        return frozenset(words)


def context_pairs(
    indexed_grammar: CFG,
    langs: dict[NonTerminal, frozenset[str]],
) -> dict[NonTerminal, frozenset[tuple[str, str]]]:
    """All ``(prefix, suffix)`` pairs with ``S ⇒* prefix · A · suffix``.

    Computed top-down over the (acyclic) trimmed indexed grammar: a binary
    rule ``P -> Q R`` extends ``Q``'s suffixes with words of ``R`` and
    ``R``'s prefixes with words of ``Q``.
    """
    contexts: dict[NonTerminal, set[tuple[str, str]]] = {
        nt: set() for nt in indexed_grammar.nonterminals
    }
    contexts[indexed_grammar.start].add(("", ""))
    for nt in reversed(_topological_nonterminals(indexed_grammar)):
        own = contexts[nt]
        if not own:
            continue
        for rule in indexed_grammar.rules_for(nt):
            if len(rule.rhs) != 2:
                continue
            left, right = rule.rhs
            for prefix, suffix in own:
                for right_word in langs[right]:
                    contexts[left].add((prefix, right_word + suffix))
                for left_word in langs[left]:
                    contexts[right].add((prefix + left_word, suffix))
    return {nt: frozenset(pairs) for nt, pairs in contexts.items()}


def _descend_to_balanced(tree: ParseTree, word_length: int) -> ParseTree:
    """The standard descent: follow the heavier child until the subtree
    first has fewer than ``2n/3`` leaves; the stopping node then has
    between ``n/3`` and ``2n/3`` leaves (Section 3)."""
    threshold = Fraction(2 * word_length, 3)
    node = tree
    while Fraction(node.n_leaves) >= threshold:
        if node.children is None or not node.children:
            raise RectangleError(
                "descent reached a leaf before finding a balanced subtree; "
                "this cannot happen for word length >= 2"
            )
        node = max(node.children, key=lambda child: child.n_leaves)
    return node


def balanced_rectangle_cover(grammar: CFG, verify: bool = True) -> RectangleCover:
    """Run the Proposition 7 construction on a uniform-length CFG.

    Returns a :class:`RectangleCover`; with ``verify=True`` (default) the
    cover is checked to union exactly to ``L(G)``, to be balanced, to
    respect the ``ℓ ≤ n·|G|`` bound, and — when the source grammar is
    unambiguous — to be disjoint (raising
    :class:`~repro.errors.RectangleError` otherwise).

    >>> from repro.languages.example3 import example3_grammar
    >>> cover = balanced_rectangle_cover(example3_grammar(1))
    >>> cover.n_rectangles <= cover.proposition7_bound
    True
    """
    target = language(grammar)
    cnf = to_cnf(grammar)
    if not target:
        return RectangleCover((), (), 0, cnf.size, 0, True)
    lengths = {len(w) for w in target}
    if len(lengths) != 1:
        raise RectangleError("Proposition 7 requires a uniform-length language")
    word_length = next(iter(lengths))
    if word_length < 2:
        raise RectangleError("Proposition 7 needs word length >= 2 for balancedness")

    indexed = index_by_position(cnf)
    current = indexed.grammar
    indexed_size = current.size

    rectangles: list[Rectangle] = []
    steps: list[ExtractionStep] = []
    while True:
        remaining = language(current)
        if not remaining:
            break
        witness = min(remaining)
        tree = one_parse_tree(current, witness)
        balanced_node = _descend_to_balanced(tree, word_length)
        nonterminal = balanced_node.symbol

        langs = languages_by_nonterminal(current)
        contexts = context_pairs(current, langs)
        position = indexed_position(nonterminal)
        inner = langs[nonterminal]
        n2 = len(next(iter(inner)))
        n1 = position - 1
        n3 = word_length - n1 - n2
        outer = {prefix + suffix for prefix, suffix in contexts[nonterminal]}
        rectangle = Rectangle(
            outer=outer, inner=inner, n1=n1, n2=n2, n3=n3, alphabet=grammar.alphabet
        )
        rectangles.append(rectangle)
        steps.append(ExtractionStep(nonterminal, witness, rectangle))

        keep = [nt for nt in current.nonterminals if nt != nonterminal]
        current = trim(current.restricted_to(keep))

    total_members = sum(r.n_words for r in rectangles)
    union: set[str] = set()
    for rect in rectangles:
        union |= rect.word_set()
    disjoint = total_members == len(union)

    cover = RectangleCover(
        rectangles=tuple(rectangles),
        steps=tuple(steps),
        word_length=word_length,
        cnf_size=cnf.size,
        indexed_size=indexed_size,
        disjoint=disjoint,
    )
    if verify:
        if not is_rectangle_decomposition(cover.rectangles, target, require_balanced=True):
            raise RectangleError("extracted rectangles do not cover the language exactly")
        if cover.n_rectangles > cover.proposition7_bound:
            raise RectangleError(
                f"cover size {cover.n_rectangles} exceeds the Proposition 7 bound "
                f"{cover.proposition7_bound}"
            )
        if not cover.disjoint and is_unambiguous(grammar):
            raise RectangleError(
                "the grammar is unambiguous but the extracted cover is not disjoint"
            )
    return cover
