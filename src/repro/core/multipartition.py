"""Exact minimum disjoint covers in the multi-partition model.

Proposition 16 lower-bounds the size of any disjoint cover of ``L_n`` by
balanced *ordered* rectangles where every rectangle may pick its own
partition — the multi-partition communication model [14] the paper
emphasises is "far less studied".  For machine-sized ``n`` this module
computes the quantity *exactly* by branch and bound: branch on the
smallest uncovered member of ``L_n``, over all inclusion-maximal balanced
rectangles (of every ordered balanced partition) that contain it and stay
inside the remaining target.

This is doubly exponential and meant for ``n ≤ 3``; it gives the ground
truth that the Theorem 12 certificate and the Proposition 7 extractions
are sandwiched against in benchmark E13.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.partitions import iter_ordered_balanced_partitions
from repro.core.setview import OrderedPartition, SetRectangle, word_to_zset, ZSet
from repro.errors import RectangleError
from repro.languages.ln import ln_words

__all__ = [
    "maximal_rectangles_within",
    "minimum_balanced_cover",
    "minimum_balanced_cover_of_ln",
    "verify_balanced_cover",
]


def _closure(
    members_by_s: dict[ZSet, set[ZSet]],
    members_by_t: dict[ZSet, set[ZSet]],
    seed_s: ZSet,
    seed_t: ZSet,
) -> tuple[frozenset[ZSet], frozenset[ZSet]] | None:
    """Grow (seed_s, seed_t) to the maximal rectangle S×T inside the target.

    Alternates closure: all t-projections compatible with every chosen s,
    then all s-projections compatible with every chosen t, until stable.
    Returns None when even the seed pair is not inside the target.
    """
    if seed_t not in members_by_s.get(seed_s, set()):
        return None
    s_set = {seed_s}
    t_set = set(members_by_s[seed_s])
    changed = True
    while changed:
        changed = False
        new_s = {
            s for s, ts in members_by_s.items() if t_set <= ts
        }
        if new_s != s_set:
            s_set = new_s
            changed = True
        common: set[ZSet] | None = None
        for s in s_set:
            ts = members_by_s[s]
            common = set(ts) if common is None else common & ts
        assert common is not None
        if common != t_set:
            t_set = common
            changed = True
    if seed_s not in s_set or seed_t not in t_set:
        # The closure dropped the seed; fall back to the seed row only.
        s_set = {seed_s}
        t_set = set(members_by_s[seed_s])
    return frozenset(s_set), frozenset(t_set)


def maximal_rectangles_within(
    target: frozenset[ZSet],
    n: int,
    containing: ZSet,
    partitions: Iterable[OrderedPartition] | None = None,
) -> list[SetRectangle]:
    """All maximal balanced ordered rectangles inside ``target`` through
    a given member, over every (or the given) balanced ordered partition.

    "Maximal" is per seed column: for each partition and each member the
    rectangle is grown by alternating row/column closure.  The list is
    deduplicated by member set.
    """
    partitions = (
        list(partitions)
        if partitions is not None
        else list(iter_ordered_balanced_partitions(n))
    )
    results: list[SetRectangle] = []
    seen: set[frozenset[ZSet]] = set()
    for partition in partitions:
        pi0, _pi1 = partition.parts
        members_by_s: dict[ZSet, set[ZSet]] = {}
        members_by_t: dict[ZSet, set[ZSet]] = {}
        for member in target:
            s_part, t_part = member & pi0, member - pi0
            members_by_s.setdefault(s_part, set()).add(t_part)
            members_by_t.setdefault(t_part, set()).add(s_part)
        seed_s, seed_t = containing & pi0, containing - pi0
        for t_seed in members_by_s.get(seed_s, set()):
            closure = _closure(members_by_s, members_by_t, seed_s, seed_t)
            if closure is None:
                continue
            s_set, t_set = closure
            rect = SetRectangle(partition, s_set, t_set)
            member_set = rect.member_set()
            if containing not in member_set or not member_set <= target:
                continue
            if member_set not in seen:
                seen.add(member_set)
                results.append(rect)
            break  # the closure is seed-column independent; one suffices
    # Also try per-column sub-rectangles: the seed row with each single
    # column and its closure — covers maximal rectangles the row-first
    # closure misses.
    for partition in partitions:
        pi0, _pi1 = partition.parts
        by_s: dict[ZSet, set[ZSet]] = {}
        for member in target:
            by_s.setdefault(member & pi0, set()).add(member - pi0)
        seed_s, seed_t = containing & pi0, containing - pi0
        if seed_t not in by_s.get(seed_s, set()):
            continue
        for t_subset_size in (1,):
            t_set = frozenset({seed_t})
            s_set = frozenset(s for s, ts in by_s.items() if t_set <= ts)
            rect = SetRectangle(partition, s_set, t_set)
            member_set = rect.member_set()
            if member_set <= target and member_set not in seen:
                seen.add(member_set)
                results.append(rect)
    return results


def minimum_balanced_cover(
    target: frozenset[ZSet], n: int, node_budget: int = 500_000
) -> list[SetRectangle]:
    """A smallest-found disjoint cover of ``target`` by balanced ordered
    rectangles (each free to choose its own partition).

    Branch and bound seeded with a greedy upper bound.  The branching is
    over closure-maximal rectangles through the seed member, which is a
    *restricted* candidate family: the result is always a valid disjoint
    cover and therefore an upper bound on the true minimum; it is
    certified optimal whenever it coincides with
    :func:`exhaustive_minimum_balanced_cover` (complete, tiny ``n`` only)
    or with a lower bound such as
    :func:`repro.core.lower_bound.multipartition_cover_lower_bound`.
    Raises ``RuntimeError`` when the node budget is exhausted (instead of
    returning a possibly wrong answer).
    """
    if not target:
        return []
    partitions = list(iter_ordered_balanced_partitions(n))

    def candidates(remaining: frozenset[ZSet], member: ZSet) -> list[SetRectangle]:
        rects = maximal_rectangles_within(remaining, n, member, partitions)
        if not rects:
            raise RectangleError(
                f"no balanced rectangle inside the target contains {sorted(member)}"
            )
        return sorted(rects, key=lambda r: -len(r.member_set()))

    # Greedy upper bound.
    greedy: list[SetRectangle] = []
    remaining = target
    while remaining:
        member = min(remaining, key=sorted)
        rect = candidates(remaining, member)[0]
        greedy.append(rect)
        remaining = remaining - rect.member_set()
    best = greedy
    nodes = 0

    def search(remaining: frozenset[ZSet], chosen: list[SetRectangle]) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > node_budget:
            raise RuntimeError("minimum_balanced_cover: node budget exhausted")
        if not remaining:
            if len(chosen) < len(best):
                best = list(chosen)
            return
        if len(chosen) + 1 >= len(best):
            return
        member = min(remaining, key=sorted)
        for rect in candidates(remaining, member):
            chosen.append(rect)
            search(remaining - rect.member_set(), chosen)
            chosen.pop()

    search(target, [])
    return best


def minimum_balanced_cover_of_ln(n: int, node_budget: int = 500_000) -> list[SetRectangle]:
    """The exact multi-partition disjoint cover number of ``L_n`` (tiny n).

    >>> cover = minimum_balanced_cover_of_ln(1)
    >>> len(cover)
    1
    """
    target = frozenset(word_to_zset(w) for w in ln_words(n))
    return minimum_balanced_cover(target, n, node_budget)


def all_rectangles_within(target: frozenset[ZSet], n: int) -> list[SetRectangle]:
    """*Every* balanced ordered rectangle fully inside ``target``.

    Complete enumeration: per partition, all row-subset × column-subset
    combinations of the member projections are tried.  Cost is
    ``2^{rows} · 2^{cols}`` per partition, so this is guarded to tiny
    instances (raises ``ValueError`` beyond 2^24 combinations).
    """
    results: list[SetRectangle] = []
    seen: set[frozenset[ZSet]] = set()
    for partition in iter_ordered_balanced_partitions(n):
        pi0, _pi1 = partition.parts
        by_row: dict[ZSet, set[ZSet]] = {}
        for member in target:
            by_row.setdefault(member & pi0, set()).add(member - pi0)
        rows = sorted(by_row, key=sorted)
        cols = sorted({c for cs in by_row.values() for c in cs}, key=sorted)
        if (1 << len(rows)) * (1 << len(cols)) > 1 << 24:
            raise ValueError(
                "all_rectangles_within: instance too large for complete enumeration"
            )
        for row_mask in range(1, 1 << len(rows)):
            row_sel = [rows[i] for i in range(len(rows)) if row_mask >> i & 1]
            # Columns must be compatible with every selected row.
            common = set(cols)
            for r in row_sel:
                common &= by_row[r]
            if not common:
                continue
            common_list = sorted(common, key=sorted)
            for col_mask in range(1, 1 << len(common_list)):
                col_sel = [
                    common_list[i]
                    for i in range(len(common_list))
                    if col_mask >> i & 1
                ]
                rect = SetRectangle(partition, row_sel, col_sel)
                members = rect.member_set()
                if members not in seen:
                    seen.add(members)
                    results.append(rect)
    return results


def exhaustive_minimum_balanced_cover(
    target: frozenset[ZSet], n: int
) -> list[SetRectangle]:
    """The *true* minimum disjoint balanced-rectangle cover, by complete
    search over :func:`all_rectangles_within` — tiny instances only.

    This certifies the restricted branch-and-bound of
    :func:`minimum_balanced_cover`; for ``L_2`` both give 3.
    """
    if not target:
        return []
    rectangles = all_rectangles_within(target, n)
    by_member: dict[ZSet, list[int]] = {member: [] for member in target}
    member_sets = [rect.member_set() for rect in rectangles]
    for index, members in enumerate(member_sets):
        for member in members:
            by_member[member].append(index)
    best: list[int] | None = None

    def search(remaining: frozenset[ZSet], chosen: list[int]) -> None:
        nonlocal best
        if not remaining:
            if best is None or len(chosen) < len(best):
                best = list(chosen)
            return
        if best is not None and len(chosen) + 1 >= len(best):
            return
        seed = min(remaining, key=sorted)
        for index in by_member[seed]:
            members = member_sets[index]
            if members <= remaining:
                chosen.append(index)
                search(remaining - members, chosen)
                chosen.pop()

    search(target, [])
    assert best is not None  # every singleton member is itself a rectangle
    return [rectangles[i] for i in best]


def verify_balanced_cover(
    cover: Iterable[SetRectangle], target: frozenset[ZSet]
) -> bool:
    """Check that ``cover`` is a disjoint, balanced, exact cover of target."""
    union: set[ZSet] = set()
    total = 0
    for rect in cover:
        if not rect.is_balanced:
            return False
        members = rect.member_set()
        total += len(members)
        union |= members
    return union == set(target) and total == len(union)
