"""The paper's primary contribution (Sections 3–4).

* :mod:`~repro.core.rectangles` — word-view rectangles (Definition 5);
* :mod:`~repro.core.setview` — the set perspective, ordered partitions
  and set rectangles (Definitions 13–14, Lemma 15);
* :mod:`~repro.core.cover` — the Proposition 7 extraction of a balanced
  rectangle cover from a CFG (disjoint for uCFGs);
* :mod:`~repro.core.discrepancy` — the sets ``𝓛``, ``A``, ``B``, the
  Lemma 18 identities and the Lemma 19/23 discrepancy bounds;
* :mod:`~repro.core.partitions` — neat partitions (Lemmas 21–22);
* :mod:`~repro.core.lower_bound` — the assembled Theorem 12/17 bounds and
  the exact-integer certificate.
"""

from repro.core.cover import (
    ExtractionStep,
    RectangleCover,
    balanced_rectangle_cover,
    context_pairs,
)
from repro.core.discrepancy import (
    Blocks,
    choice_to_zset,
    discrepancy,
    in_a,
    iter_script_l,
    lemma18_margin,
    lemma19_bound,
    lemma23_bound,
    max_bilinear_form,
    max_discrepancy_any_partition,
    max_discrepancy_over_partition,
    n_matches,
    projection_matrix_for_partition,
    random_set_rectangle,
    sign_matrix_for_partition,
    size_a,
    size_b,
    size_b_cap_ln,
    size_b_minus_ln,
    size_script_l,
    split_partition,
    verify_lemma18,
    zset_to_choice,
)
from repro.core.lower_bound import (
    LowerBoundCertificate,
    certificate,
    fixed_partition_cover_lower_bound,
    multipartition_cover_lower_bound,
    ucfg_cnf_size_lower_bound,
    ucfg_size_lower_bound,
)
from repro.core.matrix_bridge import (
    ln_cover_to_matrix_cover,
    matrix_rectangle_to_set_rectangle,
    rank_bound_for_split_covers,
    set_rectangle_to_matrix_rectangle,
)
from repro.core.multipartition import (
    all_rectangles_within,
    exhaustive_minimum_balanced_cover,
    maximal_rectangles_within,
    minimum_balanced_cover,
    minimum_balanced_cover_of_ln,
    verify_balanced_cover,
)
from repro.core.partitions import (
    iter_neat_balanced_partitions,
    iter_ordered_balanced_partitions,
    lemma21_neat_split,
    lemma22_properties,
)
from repro.core.rectangles import Rectangle, is_rectangle_decomposition, singleton_rectangle
from repro.core.setview import (
    OrderedPartition,
    SetRectangle,
    rectangle_to_set_rectangle,
    set_rectangle_to_rectangle,
    word_to_zset,
    zset_in_ln,
    zset_to_word,
)

__all__ = [
    # rectangles
    "Rectangle",
    "singleton_rectangle",
    "is_rectangle_decomposition",
    # set view
    "word_to_zset",
    "zset_to_word",
    "zset_in_ln",
    "OrderedPartition",
    "SetRectangle",
    "rectangle_to_set_rectangle",
    "set_rectangle_to_rectangle",
    # cover extraction
    "balanced_rectangle_cover",
    "RectangleCover",
    "ExtractionStep",
    "context_pairs",
    # discrepancy
    "Blocks",
    "iter_script_l",
    "choice_to_zset",
    "zset_to_choice",
    "n_matches",
    "in_a",
    "size_script_l",
    "size_a",
    "size_b",
    "size_b_minus_ln",
    "size_b_cap_ln",
    "lemma18_margin",
    "verify_lemma18",
    "discrepancy",
    "lemma19_bound",
    "lemma23_bound",
    "sign_matrix_for_partition",
    "max_bilinear_form",
    "max_discrepancy_over_partition",
    "max_discrepancy_any_partition",
    "projection_matrix_for_partition",
    "random_set_rectangle",
    "split_partition",
    # partitions
    "iter_ordered_balanced_partitions",
    "iter_neat_balanced_partitions",
    "lemma21_neat_split",
    "lemma22_properties",
    # multipartition covers
    "all_rectangles_within",
    "exhaustive_minimum_balanced_cover",
    "maximal_rectangles_within",
    "minimum_balanced_cover",
    "minimum_balanced_cover_of_ln",
    "verify_balanced_cover",
    # matrix bridge (Theorem 17 <-> rank)
    "set_rectangle_to_matrix_rectangle",
    "matrix_rectangle_to_set_rectangle",
    "ln_cover_to_matrix_cover",
    "rank_bound_for_split_covers",
    # lower bounds
    "LowerBoundCertificate",
    "certificate",
    "fixed_partition_cover_lower_bound",
    "multipartition_cover_lower_bound",
    "ucfg_cnf_size_lower_bound",
    "ucfg_size_lower_bound",
]
