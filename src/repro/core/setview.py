"""The set perspective of Section 4.1: words as subsets of ``Z``.

A word ``w = w_1 ... w_{2n}`` over ``{a, b}`` is identified with the pair
``(X_w, Y_w)``: ``X_w`` holds ``x_i`` for every ``w_i = a`` with
``i ≤ n``, and ``Y_w`` holds ``y_i`` for every ``w_{i+n} = a``.  With the
unified naming ``z_i = x_i`` (``i ≤ n``) and ``z_i = y_{i-n}``
(``i > n``), a word is simply the subset of ``Z = {z_1, ..., z_{2n}}`` of
its ``a`` positions — represented here as a ``frozenset`` of 1-based
integer indices.

Ordered partitions (Definition 13) and set rectangles (Definition 14) are
defined on top, along with the two directions of Lemma 15 translating
between word rectangles and set rectangles.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from fractions import Fraction

from repro.core.rectangles import Rectangle
from repro.errors import PartitionError, RectangleError
from repro.words.alphabet import AB

__all__ = [
    "word_to_zset",
    "zset_to_word",
    "zset_in_ln",
    "OrderedPartition",
    "SetRectangle",
    "rectangle_to_set_rectangle",
    "set_rectangle_to_rectangle",
]

ZSet = frozenset[int]


def word_to_zset(word: str) -> ZSet:
    """Map a word over ``{a, b}`` to its set of 1-based ``a`` positions.

    >>> sorted(word_to_zset("abba"))
    [1, 4]
    """
    for ch in word:
        if ch not in AB:
            raise ValueError(f"word {word!r} is not over {{a, b}}")
    return frozenset(i + 1 for i, ch in enumerate(word) if ch == "a")


def zset_to_word(zset: Iterable[int], length: int) -> str:
    """Inverse of :func:`word_to_zset` for a word of the given length.

    >>> zset_to_word({1, 4}, 4)
    'abba'
    """
    indices = set(zset)
    if indices and (min(indices) < 1 or max(indices) > length):
        raise ValueError(f"indices {sorted(indices)} out of range [1, {length}]")
    return "".join("a" if i + 1 in indices else "b" for i in range(length))


def zset_in_ln(zset: ZSet, n: int) -> bool:
    """Membership of a z-set in ``L_n``: some ``i`` with ``z_i, z_{i+n}`` both in.

    This is the "intersecting pairs of sets" reading of Section 4.1:
    ``L_n`` is essentially the complement of set disjointness.
    """
    return any(i in zset and i + n in zset for i in range(1, n + 1))


@dataclass(frozen=True, slots=True)
class OrderedPartition:
    """An ordered partition ``(Π₀, Π₁)`` of ``Z = {1..2n}`` (Definition 13).

    The partition is *induced by the interval* ``[i, j]``: one part is
    ``Z[i, j]``, the other its complement.  ``interval_part`` records
    which of the two parts (0 or 1) is the interval ``Z[i, j]``.
    """

    n: int
    lo: int
    hi: int
    interval_part: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise PartitionError(f"need n >= 1, got {self.n}")
        if not (1 <= self.lo <= self.hi <= 2 * self.n):
            raise PartitionError(
                f"interval [{self.lo}, {self.hi}] out of range for Z = [1, {2 * self.n}]"
            )
        if self.interval_part not in (0, 1):
            raise PartitionError("interval_part must be 0 or 1")

    @property
    def universe(self) -> ZSet:
        """``Z = {1, ..., 2n}``."""
        return frozenset(range(1, 2 * self.n + 1))

    @property
    def interval(self) -> ZSet:
        """``Z[lo, hi]``."""
        return frozenset(range(self.lo, self.hi + 1))

    def part(self, index: int) -> ZSet:
        """``Π_index``; part ``interval_part`` is the interval."""
        if index not in (0, 1):
            raise PartitionError("part index must be 0 or 1")
        interval = self.interval
        if index == self.interval_part:
            return interval
        return self.universe - interval

    @property
    def parts(self) -> tuple[ZSet, ZSet]:
        """``(Π₀, Π₁)``."""
        return self.part(0), self.part(1)

    @property
    def is_balanced(self) -> bool:
        """``2n/3 ≤ |Π₀|, |Π₁| ≤ 4n/3`` (Definition 13, exact rationals)."""
        bound_lo = Fraction(2 * self.n, 3)
        bound_hi = Fraction(4 * self.n, 3)
        size = self.hi - self.lo + 1
        other = 2 * self.n - size
        return bound_lo <= size <= bound_hi and bound_lo <= other <= bound_hi

    def side_of(self, element: int) -> int:
        """Return 0 or 1: the part containing ``z_element``."""
        if not 1 <= element <= 2 * self.n:
            raise PartitionError(f"element {element} outside Z = [1, {2 * self.n}]")
        inside = self.lo <= element <= self.hi
        return self.interval_part if inside else 1 - self.interval_part

    def split_pairs(self) -> frozenset[int]:
        """The set ``G``: indices ``i ∈ [n]`` with ``x_i``, ``y_i`` on
        different sides of the partition (Section 4.3)."""
        return frozenset(
            i for i in range(1, self.n + 1) if self.side_of(i) != self.side_of(i + self.n)
        )


class SetRectangle:
    """An ordered ``(Π₀, Π₁)``-set rectangle ``R = S × T`` (Definition 14).

    ``S ⊆ 𝒫(Π₀)`` and ``T ⊆ 𝒫(Π₁)``; following the paper's convention,
    ``S × T`` denotes ``{U ∪ V | U ∈ S, V ∈ T}`` (the parts are disjoint,
    so the union is a faithful pairing).

    >>> p = OrderedPartition(n=2, lo=1, hi=2)
    >>> r = SetRectangle(p, s={frozenset(), frozenset({1})}, t={frozenset({3})})
    >>> sorted(sorted(m) for m in r.members())
    [[1, 3], [3]]
    """

    __slots__ = ("partition", "s", "t")

    def __init__(
        self,
        partition: OrderedPartition,
        s: Iterable[ZSet],
        t: Iterable[ZSet],
    ) -> None:
        pi0, pi1 = partition.parts
        s_set = frozenset(frozenset(u) for u in s)
        t_set = frozenset(frozenset(v) for v in t)
        for u in s_set:
            if not u <= pi0:
                raise RectangleError(f"S member {sorted(u)} is not a subset of Π₀")
        for v in t_set:
            if not v <= pi1:
                raise RectangleError(f"T member {sorted(v)} is not a subset of Π₁")
        self.partition = partition
        self.s = s_set
        self.t = t_set

    @property
    def is_balanced(self) -> bool:
        """Whether the underlying partition is balanced."""
        return self.partition.is_balanced

    @property
    def n_members(self) -> int:
        """``|S| · |T|``."""
        return len(self.s) * len(self.t)

    def members(self) -> Iterator[ZSet]:
        """Yield all members ``U ∪ V``."""
        for u in self.s:
            for v in self.t:
                yield u | v

    def member_set(self) -> frozenset[ZSet]:
        """All members as a frozenset."""
        return frozenset(self.members())

    def __contains__(self, zset: object) -> bool:
        if not isinstance(zset, frozenset):
            return False
        pi0, _pi1 = self.partition.parts
        return (zset & pi0) in self.s and (zset - pi0) in self.t

    def __repr__(self) -> str:
        return (
            f"SetRectangle(n={self.partition.n}, interval=[{self.partition.lo}, "
            f"{self.partition.hi}], |S|={len(self.s)}, |T|={len(self.t)})"
        )


def rectangle_to_set_rectangle(rect: Rectangle) -> SetRectangle:
    """Lemma 15, forward direction: a word rectangle of length ``2n`` is a
    ``[n1+1, n1+n2]``-set rectangle.

    ``S`` collects the ``a``-positions contributed by ``L1`` (prefix and
    suffix zones), ``T`` those contributed by ``L2`` (shifted into the
    middle zone).
    """
    total = rect.word_length
    if total % 2:
        raise RectangleError("the set view needs even word length 2n")
    n = total // 2
    lo, hi = rect.middle_interval
    partition = OrderedPartition(n=n, lo=lo, hi=hi, interval_part=1)
    s: set[ZSet] = set()
    for outer_word in rect.outer:
        w1, w3 = outer_word[: rect.n1], outer_word[rect.n1 :]
        padded = w1 + "b" * rect.n2 + w3
        s.add(word_to_zset(padded))
    t: set[ZSet] = set()
    for inner_word in rect.inner:
        padded = "b" * rect.n1 + inner_word + "b" * rect.n3
        t.add(word_to_zset(padded))
    # Π₀ is the outer zone, Π₁ the middle interval: S ⊆ 𝒫(Π₀), T ⊆ 𝒫(Π₁).
    return SetRectangle(partition, s, t)


def set_rectangle_to_rectangle(set_rect: SetRectangle) -> Rectangle:
    """Lemma 15, converse direction: an ``[i, j]``-set rectangle over
    ``Z = [1, 2n]`` is a word rectangle with ``n1 = i-1``, ``n2 = j-i+1``,
    ``n3 = 2n - j``.
    """
    partition = set_rect.partition
    total = 2 * partition.n
    n1 = partition.lo - 1
    n2 = partition.hi - partition.lo + 1
    n3 = total - partition.hi
    # Whichever of S/T lives on the interval part supplies the inner words.
    if partition.interval_part == 1:
        middle_family, outer_family = set_rect.t, set_rect.s
    else:
        middle_family, outer_family = set_rect.s, set_rect.t
    inner: set[str] = set()
    for v in middle_family:
        shifted = frozenset(e - n1 for e in v)
        inner.add(zset_to_word(shifted, n2))
    outer: set[str] = set()
    for u in outer_family:
        word = zset_to_word(u, total)
        outer.add(word[:n1] + word[n1 + n2 :])
    return Rectangle(outer=outer, inner=inner, n1=n1, n2=n2, n3=n3, alphabet=AB)
