"""The discrepancy machinery of Section 4.2: the sets ``𝓛``, ``A``, ``B``.

For ``n = 4m`` the ground set ``Z = [1, 2n]`` is split into ``2m``
*intervals* (blocks) of four consecutive elements; ``𝓛`` consists of the
sets picking exactly one element from every block.  A member of ``𝓛`` is
represented canonically as a *choice vector* ``c ∈ {0,1,2,3}^{2m}``
(``c_j`` = offset chosen in block ``j``; blocks ``1..m`` live on the
``X`` side, blocks ``m+1..2m`` on the ``Y`` side).  The number of
*matches* of ``c`` is ``#{j ≤ m : c_j = c_{j+m}}`` — exactly the number
of ``i`` with ``x_i ∈ U`` and ``y_i ∈ V`` — and

* ``A`` = members with an odd number of matches (``A ⊆ L_n``),
* ``B`` = the rest.

Lemma 18 computes ``|𝓛| = 2^{4m}``, ``|B \\ L_n| = 12^m`` and
``|B| - |A| = 2^{3m}``; Lemmas 19 and 23 bound the discrepancy
``||R∩A| - |R∩B||`` of every balanced ordered rectangle.  All of this is
verified exhaustively here for machine-sized ``m``.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Iterator

from repro.backend import get_backend
from repro.core.setview import OrderedPartition, SetRectangle, ZSet
from repro.errors import PartitionError

__all__ = [
    "Blocks",
    "choice_to_zset",
    "zset_to_choice",
    "iter_script_l",
    "n_matches",
    "in_a",
    "size_script_l",
    "size_a",
    "size_b",
    "size_b_minus_ln",
    "size_b_cap_ln",
    "lemma18_margin",
    "verify_lemma18",
    "discrepancy",
    "sign_matrix_for_partition",
    "max_bilinear_form",
    "max_discrepancy_over_partition",
    "max_discrepancy_any_partition",
    "projection_matrix_for_partition",
    "random_set_rectangle",
    "lemma19_bound",
    "lemma23_bound",
]


class Blocks:
    """The interval structure of Section 4.2 for ``n = 4m``.

    Block ``j`` (1-based, ``j ∈ [2m]``) covers z-indices
    ``[4(j-1)+1, 4j]``; blocks ``1..m`` are the ``I_i^X``, blocks
    ``m+1..2m`` the ``I_i^Y``.
    """

    __slots__ = ("m", "n")

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError(f"Blocks needs m >= 1, got {m}")
        self.m = m
        self.n = 4 * m

    @property
    def n_blocks(self) -> int:
        return 2 * self.m

    def block_elements(self, j: int) -> frozenset[int]:
        """Z-indices of block ``j`` (1-based)."""
        if not 1 <= j <= 2 * self.m:
            raise ValueError(f"block index {j} out of range [1, {2 * self.m}]")
        return frozenset(range(4 * (j - 1) + 1, 4 * j + 1))

    def block_of(self, element: int) -> int:
        """The block containing z-index ``element``."""
        if not 1 <= element <= 2 * self.n:
            raise ValueError(f"element {element} out of range [1, {2 * self.n}]")
        return (element - 1) // 4 + 1

    def is_neat(self, partition: OrderedPartition) -> bool:
        """Whether every block lies wholly inside one part (Section 4.3)."""
        if partition.n != self.n:
            raise PartitionError(
                f"partition over n={partition.n} does not match blocks with n={self.n}"
            )
        pi0, _ = partition.parts
        for j in range(1, 2 * self.m + 1):
            block = self.block_elements(j)
            inside = len(block & pi0)
            if inside not in (0, 4):
                return False
        return True

    def sides_of_blocks(self, partition: OrderedPartition) -> list[int]:
        """For a neat partition: the part (0/1) of each block, 1-indexed list."""
        if not self.is_neat(partition):
            raise PartitionError("sides_of_blocks requires a neat partition")
        sides = [0] * (2 * self.m + 1)
        for j in range(1, 2 * self.m + 1):
            first = 4 * (j - 1) + 1
            sides[j] = partition.side_of(first)
        return sides


def choice_to_zset(choice: tuple[int, ...], m: int) -> ZSet:
    """Convert a choice vector ``c ∈ {0..3}^{2m}`` to its z-set."""
    if len(choice) != 2 * m:
        raise ValueError(f"choice vector has length {len(choice)}, expected {2 * m}")
    if any(not 0 <= c <= 3 for c in choice):
        raise ValueError("choice entries must lie in {0, 1, 2, 3}")
    return frozenset(4 * j + c + 1 for j, c in enumerate(choice))


def zset_to_choice(zset: ZSet, m: int) -> tuple[int, ...]:
    """Inverse of :func:`choice_to_zset`; raises if ``zset ∉ 𝓛``."""
    choice = [-1] * (2 * m)
    for element in zset:
        block = (element - 1) // 4
        if not 0 <= block < 2 * m:
            raise ValueError(f"element {element} outside Z = [1, {8 * m}]")
        if choice[block] != -1:
            raise ValueError("zset picks two elements from one block; not in 𝓛")
        choice[block] = (element - 1) % 4
    if -1 in choice:
        raise ValueError("zset misses a block; not in 𝓛")
    return tuple(choice)


def iter_script_l(m: int) -> Iterator[tuple[int, ...]]:
    """Yield every member of ``𝓛`` as a choice vector (``16^m`` of them)."""
    yield from itertools.product(range(4), repeat=2 * m)


def n_matches(choice: tuple[int, ...], m: int) -> int:
    """``#{j ≤ m : c_j = c_{j+m}}`` — the intersection count of Section 4.2."""
    return sum(1 for j in range(m) if choice[j] == choice[j + m])


def in_a(choice: tuple[int, ...], m: int) -> bool:
    """Membership in ``A``: an odd number of matches."""
    return n_matches(choice, m) % 2 == 1


# ----------------------------------------------------------------------
# Lemma 18: exact cardinalities
# ----------------------------------------------------------------------


def size_script_l(m: int) -> int:
    """``|𝓛| = 2^{4m}`` (Lemma 18(1))."""
    return 2 ** (4 * m)


def size_a(m: int) -> int:
    """``|A| = (16^m - 8^m) / 2``.

    Derivation: the match indicator per block pair is 1 with probability
    1/4, so ``Σ (-1)^{matches} = ((3) + (-1))^m·...``; concretely
    ``|B| - |A| = (12 - 4)^m = 8^m`` (the paper's binomial identity) and
    ``|A| + |B| = 16^m``.
    """
    return (16**m - 8**m) // 2


def size_b(m: int) -> int:
    """``|B| = (16^m + 8^m) / 2``."""
    return (16**m + 8**m) // 2


def size_b_minus_ln(m: int) -> int:
    """``|B \\ L_n| = 12^m`` (Lemma 18: per block pair, 12 of 16 choices
    avoid a match, and zero matches is even)."""
    return 12**m


def size_b_cap_ln(m: int) -> int:
    """``|B ∩ L_n| = |B| - 12^m``."""
    return size_b(m) - size_b_minus_ln(m)


def lemma18_margin(m: int) -> int:
    """``|A ∩ L_n| - |B ∩ L_n| = |A| - |B ∩ L_n| = 12^m - 2^{3m}``.

    Lemma 18(2) states this exceeds ``2^{7m/2}`` for sufficiently big
    ``m``; exact computation shows the threshold is ``m ≥ 4``.
    """
    return 12**m - 8**m


def verify_lemma18(m: int) -> dict[str, tuple[int, int]]:
    """Exhaustively verify every Lemma 18 quantity for a small ``m``.

    Returns ``{name: (enumerated, formula)}``; every pair is equal (the
    function raises ``AssertionError`` otherwise, making it usable
    directly in tests and benchmarks).
    """
    count_a = count_b = count_b_out = 0
    for choice in iter_script_l(m):
        matches = n_matches(choice, m)
        if matches % 2 == 1:
            count_a += 1
        else:
            count_b += 1
            if matches == 0:
                count_b_out += 1
    results = {
        "|L|": (count_a + count_b, size_script_l(m)),
        "|A|": (count_a, size_a(m)),
        "|B|": (count_b, size_b(m)),
        "|B \\ L_n|": (count_b_out, size_b_minus_ln(m)),
        "|B|-|A|": (count_b - count_a, 2 ** (3 * m)),
        "margin": (count_a - (count_b - count_b_out), lemma18_margin(m)),
    }
    for name, (enumerated, formula) in results.items():
        if enumerated != formula:
            raise AssertionError(f"Lemma 18 mismatch for {name}: {enumerated} != {formula}")
    return results


# ----------------------------------------------------------------------
# Rectangle discrepancy
# ----------------------------------------------------------------------


def discrepancy(rect: SetRectangle, m: int) -> int:
    """``|R ∩ A| - |R ∩ B|`` for a set rectangle, by exhaustive count.

    Only the members of ``𝓛`` matter (``A ∪ B = 𝓛``), so the sum runs
    over the ``16^m`` choice vectors.
    """
    total = 0
    for choice in iter_script_l(m):
        zset = choice_to_zset(choice, m)
        if zset in rect:
            total += -1 if n_matches(choice, m) % 2 == 0 else 1
    return total


def lemma19_bound(m: int) -> int:
    """The Lemma 19 bound ``2^{3m}`` for ``[1, n]``-rectangles."""
    return 2 ** (3 * m)


def lemma23_bound(m: int) -> int:
    """An integer upper bound for the Lemma 23 value ``2^{10m/3}``.

    Returned as ``2^{⌈10m/3⌉}`` so the comparison stays in exact integer
    arithmetic (the true bound is at most this).
    """
    return 2 ** (-(-10 * m // 3))


def sign_matrix_for_partition(partition: OrderedPartition, m: int) -> tuple[
    list[list[int]], list[int], list[int]
]:
    """The ±1 matrix of the discrepancy bilinear form for a neat partition.

    Rows are indexed by the joint choices of the blocks on side 0, columns
    by side 1; the entry is ``(-1)^{matches}`` of the combined member.
    Returns ``(matrix, side0_blocks, side1_blocks)`` with blocks 1-based.
    """
    blocks = Blocks(m)
    sides = blocks.sides_of_blocks(partition)
    side0 = [j for j in range(1, 2 * m + 1) if sides[j] == 0]
    side1 = [j for j in range(1, 2 * m + 1) if sides[j] == 1]
    rows = list(itertools.product(range(4), repeat=len(side0)))
    cols = list(itertools.product(range(4), repeat=len(side1)))
    matrix: list[list[int]] = []
    for row in rows:
        matrix_row: list[int] = []
        for col in cols:
            choice = [0] * (2 * m)
            for j, value in zip(side0, row):
                choice[j - 1] = value
            for j, value in zip(side1, col):
                choice[j - 1] = value
            sign = -1 if n_matches(tuple(choice), m) % 2 == 0 else 1
            matrix_row.append(sign)
        matrix.append(matrix_row)
    return matrix, side0, side1


def _packed_exact_max_bilinear(base: list[list[int]]) -> int:
    """Exact ``max |x^T M y|`` over 0/1 vectors, via the active backend.

    The ``reference`` kernel
    (:meth:`repro.backend.reference.ReferenceBackend.max_bilinear`)
    enumerates all row subsets in Gray-code order with the per-step state
    a *single* Python int holding every column sum in its own fixed-width
    field — one big-int add plus a constant number of big-int bit
    operations per step, CPython processing 30-bit digits per interpreter
    op instead of one Python object per column.

    Entries may be arbitrary integers (the projection matrices of
    non-neat partitions are not ±1), so each field stores the *biased*
    entry ``M[i][j] + bias`` with ``bias = max(0, -min entry)``; the
    accumulated per-field excess ``k·bias`` (``k`` = selected rows) is
    subtracted on readout.  For a selection with column sums ``s_j``:

    * ``X`` has fields ``2^{W-1} + s_j`` (the guard bit doubles as a
      per-field sign flag: set iff ``s_j ≥ 0``);
    * masking with the sign flags extracts ``max(s_j, 0)`` per field, and
      one multiply by the field-selector pattern horizontally sums them
      into ``positive = Σ_j max(s_j, 0)``;
    * the optimal column response is ``max(positive, -negative)`` with
      ``negative = S - positive`` for ``S = Σ_j s_j``, tracked as a plain
      running total — no second extraction needed.

    The ``numpy`` backend instead tabulates every subset's column sums by
    int64 doubling and reduces with vectorised clamps (guarded so results
    stay bit-exact; oversize inputs fall back to the SWAR sweep).
    """
    return get_backend().max_bilinear(base)


def max_bilinear_form(
    matrix: list[list[int]],
    exact_limit: int = 16,
    restarts: int = 64,
    rng: random.Random | None = None,
) -> tuple[int, bool]:
    """Maximise ``|x^T M y|`` over 0/1 vectors ``x, y``.

    Exact when the smaller dimension is at most ``exact_limit``: all row
    subsets of the smaller side are enumerated in Gray-code order with
    the column sums packed into one big int per step
    (:func:`_packed_exact_max_bilinear`; the pre-SWAR list-of-sums sweep
    survives as a test oracle in ``tests/legacy_comm.py``).  Above the
    limit, a randomised alternating-maximisation heuristic reports a
    lower bound on the maximum.  Returns ``(value, exact_flag)``.

    >>> max_bilinear_form([[1, -1], [-1, 1]])
    (1, True)
    >>> max_bilinear_form([[2, -3]])
    (3, True)
    """
    if not matrix or not matrix[0]:
        return 0, True
    n_rows, n_cols = len(matrix), len(matrix[0])
    if min(n_rows, n_cols) <= exact_limit:
        base = (
            matrix
            if n_rows <= n_cols
            else [[matrix[i][j] for i in range(n_rows)] for j in range(n_cols)]
        )
        return _packed_exact_max_bilinear(base), True

    rng = rng if rng is not None else random.Random(0)
    best = 0
    for _ in range(restarts):
        rows = {i for i in range(n_rows) if rng.random() < 0.5}
        for _round in range(8):
            column_sums = [sum(matrix[i][j] for i in rows) for j in range(n_cols)]
            improved = False
            for sign in (1, -1):
                cols = [j for j in range(n_cols) if sign * column_sums[j] > 0]
                row_sums = [sum(matrix[i][j] for j in cols) for i in range(n_rows)]
                new_rows = {i for i in range(n_rows) if sign * row_sums[i] > 0}
                value = abs(sum(row_sums[i] for i in new_rows))
                if value > best:
                    best = value
                    rows = new_rows
                    improved = True
            if not improved:
                break
    return best, False


def max_discrepancy_over_partition(
    partition: OrderedPartition,
    m: int,
    exact_limit: int = 20,
    rng: random.Random | None = None,
) -> tuple[int, bool]:
    """Maximum ``||R∩A| - |R∩B||`` over all ``(Π₀, Π₁)``-rectangles.

    The partition must be neat; restricting rectangles to members of
    ``𝓛`` is lossless because ``A ∪ B = 𝓛``.  Returns
    ``(value, exact_flag)``.
    """
    matrix, _side0, _side1 = sign_matrix_for_partition(partition, m)
    return max_bilinear_form(matrix, exact_limit=exact_limit, rng=rng)


def split_partition(m: int) -> OrderedPartition:
    """The ``[1, n]`` partition separating the X side from the Y side."""
    return OrderedPartition(n=4 * m, lo=1, hi=4 * m, interval_part=0)


def random_set_rectangle(
    partition: OrderedPartition,
    m: int,
    rng: random.Random,
    density: float = 0.5,
) -> SetRectangle:
    """A random rectangle over the 𝓛-projections of a partition.

    Each distinct projection of an 𝓛-member onto a part is kept with
    probability ``density`` (at least one per side is always kept, so the
    rectangle is nonempty).  The workhorse of the randomised bound checks
    in tests and benchmarks.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    pi0, _pi1 = partition.parts
    s_pool: set[ZSet] = set()
    t_pool: set[ZSet] = set()
    for choice in iter_script_l(m):
        zset = choice_to_zset(choice, m)
        s_pool.add(zset & pi0)
        t_pool.add(zset - pi0)
    s_sorted = sorted(s_pool, key=sorted)
    t_sorted = sorted(t_pool, key=sorted)
    s = {x for x in s_sorted if rng.random() < density}
    t = {y for y in t_sorted if rng.random() < density}
    if not s:
        s = {rng.choice(s_sorted)}
    if not t:
        t = {rng.choice(t_sorted)}
    return SetRectangle(partition, s, t)


def projection_matrix_for_partition(
    partition: OrderedPartition, m: int
) -> tuple[list[list[int]], list[ZSet], list[ZSet]]:
    """The discrepancy bilinear form for an *arbitrary* ordered partition.

    Rows (columns) are the distinct projections of 𝓛-members onto ``Π₀``
    (``Π₁``); the entry for a projection pair is the summed sign of the
    members realising it (each member realises exactly one pair, so for
    neat partitions this coincides with
    :func:`sign_matrix_for_partition` up to indexing).  Works for
    non-neat partitions too — the tool behind the Corollary 20 checks on
    shifted intervals.
    """
    if partition.n != 4 * m:
        raise PartitionError(
            f"partition over n={partition.n} does not match m={m} (n must be 4m)"
        )
    pi0, _pi1 = partition.parts
    row_index: dict[ZSet, int] = {}
    col_index: dict[ZSet, int] = {}
    entries: dict[tuple[int, int], int] = {}
    for choice in iter_script_l(m):
        zset = choice_to_zset(choice, m)
        row_key, col_key = zset & pi0, zset - pi0
        i = row_index.setdefault(row_key, len(row_index))
        j = col_index.setdefault(col_key, len(col_index))
        sign = 1 if n_matches(choice, m) % 2 else -1
        entries[(i, j)] = entries.get((i, j), 0) + sign
    matrix = [[0] * len(col_index) for _ in range(len(row_index))]
    for (i, j), value in entries.items():
        matrix[i][j] = value
    rows = sorted(row_index, key=lambda k: row_index[k])
    cols = sorted(col_index, key=lambda k: col_index[k])
    return matrix, rows, cols


def max_discrepancy_any_partition(
    partition: OrderedPartition,
    m: int,
    exact_limit: int = 16,
    rng: random.Random | None = None,
) -> tuple[int, bool]:
    """Maximum ``||R∩A| - |R∩B||`` over rectangles of *any* ordered partition.

    Generalises :func:`max_discrepancy_over_partition` beyond neat
    partitions via the projection matrix.
    """
    matrix, _rows, _cols = projection_matrix_for_partition(partition, m)
    return max_bilinear_form(matrix, exact_limit=exact_limit, rng=rng)
