"""Balanced, ordered and *neat* partitions — Lemmas 21 and 22.

A partition is *neat* when every size-four interval ``I_ℓ`` of the
Section 4.2 block structure lies wholly inside one part.  Lemma 21 shows
every ordered balanced rectangle splits into at most ``2^8 = 256``
disjoint rectangles over a neat ordered balanced partition; Lemma 22
pins down the geometry of neat partitions: the smaller part is entirely
made of *split pairs* (``x_ℓ`` and ``y_ℓ`` on different sides) and its
size equals ``|G|``, the number of split pairs.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.discrepancy import Blocks
from repro.core.setview import OrderedPartition, SetRectangle, ZSet
from repro.errors import PartitionError, RectangleError

__all__ = [
    "iter_ordered_balanced_partitions",
    "iter_neat_balanced_partitions",
    "lemma21_neat_split",
    "lemma22_properties",
    "lemma22_balance_counterexample",
]


def iter_ordered_balanced_partitions(n: int) -> Iterator[OrderedPartition]:
    """Yield every ordered balanced partition of ``Z = [1, 2n]``.

    Partitions are yielded once each (``interval_part = 0``); the swap of
    part labels does not change which rectangles exist.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    for lo in range(1, 2 * n + 1):
        for hi in range(lo, 2 * n + 1):
            partition = OrderedPartition(n=n, lo=lo, hi=hi, interval_part=0)
            if partition.is_balanced:
                yield partition


def iter_neat_balanced_partitions(m: int) -> Iterator[OrderedPartition]:
    """Yield the *neat* ordered balanced partitions for ``n = 4m``.

    Neatness forces the interval endpoints onto block boundaries, so the
    enumeration ranges over block-aligned intervals only.
    """
    blocks = Blocks(m)
    n = blocks.n
    for first_block in range(1, 2 * m + 1):
        for last_block in range(first_block, 2 * m + 1):
            lo = 4 * (first_block - 1) + 1
            hi = 4 * last_block
            partition = OrderedPartition(n=n, lo=lo, hi=hi, interval_part=0)
            if partition.is_balanced:
                yield partition


def lemma21_neat_split(
    rect: SetRectangle, m: int
) -> tuple[OrderedPartition, list[SetRectangle]]:
    """Split an ordered balanced rectangle over a neat partition (Lemma 21).

    Returns ``(neat_partition, pieces)`` where the pieces are pairwise
    disjoint rectangles over the neat partition whose union is ``rect``;
    ``len(pieces) ≤ 256``.  A rectangle whose partition is already neat is
    returned unchanged.  Pieces are verified to be genuine rectangles of
    the neat partition (enumeratively — this module is exact, not fast).
    """
    blocks = Blocks(m)
    partition = rect.partition
    if partition.n != blocks.n:
        raise PartitionError(f"rectangle is over n={partition.n}, blocks over n={blocks.n}")
    if not partition.is_balanced:
        raise PartitionError("Lemma 21 applies to balanced partitions only")
    if blocks.is_neat(partition):
        return partition, [rect]

    pi0, pi1 = partition.parts
    # The (at most two) violating blocks contain the interval endpoints.
    violating = [
        j
        for j in range(1, 2 * m + 1)
        if len(blocks.block_elements(j) & pi0) not in (0, 4)
    ]
    region: ZSet = frozenset().union(*(blocks.block_elements(j) for j in violating))

    # Move the violating blocks wholly into the smaller part, keeping the
    # interval structure (grow the interval if the smaller part is the
    # interval, shrink it otherwise).
    interval_is_smaller = len(partition.interval) <= 2 * partition.n - len(partition.interval)
    if interval_is_smaller:
        new_lo = 4 * ((partition.lo - 1) // 4) + 1
        new_hi = 4 * (-(-partition.hi // 4))
    else:
        new_lo = 4 * (-(-(partition.lo - 1) // 4)) + 1
        new_hi = 4 * (partition.hi // 4)
        if new_lo > new_hi:
            raise PartitionError(
                "shrinking the interval to block boundaries emptied it; "
                "n is too small for the Lemma 21 constant"
            )
    neat = OrderedPartition(
        n=partition.n, lo=new_lo, hi=new_hi, interval_part=partition.interval_part
    )
    if not neat.is_balanced:
        raise PartitionError(
            "the neat partition is unbalanced; Lemma 21 needs n large enough "
            "that moving 8 elements preserves balance (n >= 24)"
        )

    members = rect.member_set()
    groups: dict[ZSet, set[ZSet]] = {}
    for member in members:
        groups.setdefault(member & region, set()).add(member)
    neat_pi0, _neat_pi1 = neat.parts
    pieces: list[SetRectangle] = []
    for group in groups.values():
        s = {member & neat_pi0 for member in group}
        t = {member - neat_pi0 for member in group}
        piece = SetRectangle(neat, s, t)
        if piece.member_set() != frozenset(group):
            raise RectangleError(
                "a Lemma 21 piece is not a rectangle of the neat partition; "
                "the input was not a genuine rectangle of its partition"
            )
        pieces.append(piece)
    if len(pieces) > 256:
        raise RectangleError(
            f"Lemma 21 produced {len(pieces)} pieces, exceeding the 2^8 bound"
        )
    return neat, pieces


def lemma22_properties(partition: OrderedPartition, m: int) -> dict[str, int | bool]:
    """Check the two Lemma 22 properties of a neat ordered balanced partition.

    With ``Π₀`` the smaller part and ``G`` the split-pair indices:
    (1) ``Π₀ ⊆ V_G`` and (2) ``|Π₀| = |G|``.  Returns the measured
    quantities; raises ``AssertionError`` on violation so it can be used
    directly as a verifier.
    """
    blocks = Blocks(m)
    if not blocks.is_neat(partition):
        raise PartitionError("Lemma 22 applies to neat partitions")
    if not partition.is_balanced:
        raise PartitionError("Lemma 22 applies to balanced partitions")
    pi0, pi1 = partition.parts
    smaller = pi0 if len(pi0) <= len(pi1) else pi1
    split = partition.split_pairs()
    v_g = frozenset(
        element
        for i in split
        for element in (i, i + partition.n)
    )
    if not smaller <= v_g:
        raise AssertionError("Lemma 22(1) violated: the smaller part leaves V_G")
    if len(smaller) != len(split):
        raise AssertionError(
            f"Lemma 22(2) violated: |Π₀| = {len(smaller)} but |G| = {len(split)}"
        )
    return {
        "smaller_part_size": len(smaller),
        "split_pairs": len(split),
        "subset_of_vg": True,
    }


def lemma22_balance_counterexample(m: int) -> OrderedPartition:
    """Why balancedness matters: an unbalanced partition with ``G = ∅``.

    Interestingly, the two *identities* of Lemma 22 hold for every
    ordered partition (the smaller part, having at most ``n`` elements,
    can never contain a full pair — this is tested exhaustively).  What
    balance actually buys is the *size* of ``G``: Lemma 23's final bound
    ``2^{n - |G|/4}`` is only sub-trivial when ``|G| = |Π₀| ≥ 2n/3``, and
    that inequality is exactly the balance condition.  This function
    returns the degenerate witness — the partition whose interval is all
    of ``Z`` — which is neat, wildly unbalanced, and has ``G = ∅``: the
    discrepancy cap ``2^{n - |G|/4}`` collapses to the vacuous ``2^n``
    (indeed the all-of-``𝓛`` rectangle over it has discrepancy
    ``2^{3m}``, but nothing in the Lemma 23 route *proves* any cap here).
    """
    blocks = Blocks(m)
    n = blocks.n
    partition = OrderedPartition(n=n, lo=1, hi=2 * n, interval_part=0)
    if not blocks.is_neat(partition):  # pragma: no cover - by construction
        raise PartitionError("counterexample construction produced a non-neat partition")
    if partition.is_balanced:  # pragma: no cover - sizes 2n and 0
        raise PartitionError("the full-interval partition is unexpectedly balanced")
    if partition.split_pairs():  # pragma: no cover - both halves inside
        raise PartitionError("expected G = ∅ for the full-interval partition")
    return partition
