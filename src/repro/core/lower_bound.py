"""The assembled lower bounds: Theorem 17, Proposition 16, Theorem 12.

Everything is exact integer arithmetic.  The certificate for a given
``n`` carries every quantity the proof chain touches:

* ``margin = |A ∩ L_n| - |B ∩ L_n| = 12^m - 2^{3m}`` (Lemma 18),
* per-rectangle discrepancy caps ``2^{3m}`` (Lemma 19, fixed ``[1, n]``
  partition) and ``2^{10m/3}`` (Lemma 23, any neat balanced partition),
* the Lemma 21 neat-split factor ``2^8`` and the spare-element factor
  ``2^6`` for ``n`` not divisible by four (proof of Proposition 16),
* the cover-size lower bound ``ℓ ≥ margin / (256 · 2^{10m/3})``,
* the resulting uCFG size bounds via Proposition 7
  (``ℓ ≤ 2n · |G_CNF|``) and the CNF conversion (``|G_CNF| ≤ |G|²``).

Comparisons involving the irrational ``2^{10m/3}`` are done by cubing,
never by floating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.core.discrepancy import lemma18_margin, lemma19_bound
from repro.errors import CertificateError

__all__ = [
    "LowerBoundCertificate",
    "fixed_partition_cover_lower_bound",
    "multipartition_cover_lower_bound",
    "ucfg_cnf_size_lower_bound",
    "ucfg_size_lower_bound",
    "certificate",
    "verify_discrepancy_caps",
]

#: Lemma 21: each balanced ordered rectangle splits into at most 2^8 neat ones.
NEAT_SPLIT_FACTOR = 256
#: Proposition 16's reduction for n not divisible by 4 costs a factor 2^6.
SPARE_ELEMENT_FACTOR = 64


def _ceil_div(numerator: int, denominator: int) -> int:
    """Exact ceiling division for non-negative integers."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)


def _min_ell_against_cube_bound(margin: int, factor: int, m: int) -> int:
    """The least ``ℓ ≥ 0`` with ``factor · ℓ · 2^{10m/3} ≥ margin``.

    Obtained by cubing: ``(factor · ℓ)³ · 2^{10m} ≥ margin³``.
    """
    if margin <= 0:
        return 0
    target = margin**3
    power = 2 ** (10 * m)
    low, high = 0, 1
    while (factor * high) ** 3 * power < target:
        high *= 2
    while low < high:
        mid = (low + high) // 2
        if (factor * mid) ** 3 * power >= target:
            high = mid
        else:
            low = mid + 1
    return low


def fixed_partition_cover_lower_bound(n: int) -> int:
    """Theorem 17: every disjoint cover of ``L_n`` by ``[1, n]``-rectangles
    has at least this many rectangles (``n`` divisible by 4 required).

    The bound is ``⌈(12^m - 2^{3m}) / 2^{3m}⌉`` with ``m = n/4``, i.e.
    ``⌈1.5^m⌉ - 1``-ish — exponential in ``n``.
    """
    if n % 4:
        raise ValueError("Theorem 17 as computed here needs n divisible by 4")
    m = n // 4
    margin = lemma18_margin(m)
    if margin <= 0:
        return 1  # a cover always needs at least one rectangle
    return max(1, _ceil_div(margin, lemma19_bound(m)))


def multipartition_cover_lower_bound(n: int) -> int:
    """Proposition 16: every disjoint cover of ``L_n`` by balanced ordered
    rectangles (arbitrary, per-rectangle partitions) has at least this size.

    For ``n = 4m``: ``ℓ ≥ (12^m - 2^{3m}) / (2^8 · 2^{10m/3})``.
    For other ``n``: the spare-element reduction to ``L_{4⌊n/4⌋}`` costs a
    further factor ``2^6``.  Always returns at least 1 (a nonempty language
    needs a rectangle); the bound becomes non-trivial once the exponential
    ``2^{m(log₂12 - 10/3)} ≈ 2^{0.252m}`` overtakes the constant ``2^8``.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    t, remainder = divmod(n, 4)
    if t == 0:
        return 1
    margin = lemma18_margin(t)
    ell = _min_ell_against_cube_bound(margin, NEAT_SPLIT_FACTOR, t)
    if remainder:
        ell = _ceil_div(ell, SPARE_ELEMENT_FACTOR)
    return max(1, ell)


def ucfg_cnf_size_lower_bound(n: int) -> int:
    """Theorem 12 for CNF grammars: ``|G| ≥ ℓ_min / (2n)`` via Prop. 7."""
    ell = multipartition_cover_lower_bound(n)
    return max(1, _ceil_div(ell, 2 * n))


def _lemma18_threshold(margin: int, m: int) -> bool:
    """Exact check of ``margin > 2^{7m/2}`` (squared when ``7m`` is odd)."""
    if margin <= 0:
        return False
    if (7 * m) % 2 == 0:
        return margin > 2 ** (7 * m // 2)
    return margin**2 > 2 ** (7 * m)


def ucfg_size_lower_bound(n: int) -> int:
    """Theorem 12 for arbitrary uCFGs.

    An arbitrary grammar first passes through CNF conversion with
    ``|G_CNF| ≤ |G|²`` (Section 2), so the final bound is the ceiling of
    the square root of :func:`ucfg_cnf_size_lower_bound`.
    """
    cnf_bound = ucfg_cnf_size_lower_bound(n)
    root = math.isqrt(cnf_bound)
    return root if root * root == cnf_bound else root + 1


@dataclass(frozen=True, slots=True)
class LowerBoundCertificate:
    """Every exact quantity in the Theorem 12 proof chain for one ``n``."""

    n: int
    m: int
    remainder: int
    size_script_l: int
    size_a: int
    size_b: int
    size_b_minus_ln: int
    margin: int
    lemma18_threshold_holds: bool
    fixed_partition_bound: int
    cover_bound: int
    ucfg_cnf_bound: int
    ucfg_bound: int

    def to_dict(self) -> dict[str, int | bool | str]:
        """A JSON-ready view; huge integers become exact decimal strings."""
        from dataclasses import asdict

        def encode(value):
            if isinstance(value, bool) or not isinstance(value, int):
                return value
            if value.bit_length() > 64:
                import sys

                digits = sys.get_int_max_str_digits()
                if value.bit_length() > 3.3 * digits:
                    from repro.util.tables import approx_log2

                    return f"~2^{approx_log2(value):.1f}"
            return value

        return {key: encode(value) for key, value in asdict(self).items()}

    def to_key(self) -> str:
        """A canonical, process-stable serialization (for engine cache keys).

        >>> certificate(16).to_key() == certificate(16).to_key()
        True
        """
        from dataclasses import asdict

        from repro.util.canonical import canonical_encode

        return canonical_encode(("LowerBoundCertificate", asdict(self)))

    def verify(self) -> None:
        """Re-check the internal identities; raise CertificateError if broken."""
        if self.size_a + self.size_b != self.size_script_l:
            raise CertificateError("|A| + |B| != |L|")
        if self.size_b - self.size_a != 2 ** (3 * self.m):
            raise CertificateError("|B| - |A| != 2^{3m}")
        if self.margin != self.size_a - (self.size_b - self.size_b_minus_ln):
            raise CertificateError("margin != |A| - |B ∩ L_n|")
        if self.lemma18_threshold_holds != _lemma18_threshold(self.margin, self.m):
            raise CertificateError("Lemma 18 threshold flag inconsistent")


def verify_discrepancy_caps(m: int, *, engine=None) -> dict:
    """Check the Lemma 19/23 discrepancy caps against the exact maxima.

    Dispatches the per-partition sweep as parallel, disk-cacheable
    ``discrepancy.partition`` jobs through :mod:`repro.engine` (one job
    per neat balanced partition, so re-runs and sibling sweeps share
    results), then verifies

    * every neat balanced partition's exact maximum is at most the
      Lemma 23 cap ``2^{10m/3}``, and
    * the split partition ``[1, n] | [n+1, 2n]`` is at most the sharper
      Lemma 19 cap ``2^{3m}``.

    Returns the combined ``discrepancy``-job payload augmented with the
    per-partition margins; raises :class:`CertificateError` on any
    violation.  Feasible for ``m ≤ 2`` (the sweep is exact).
    """
    # Imported lazily: repro.core must stay importable without the engine.
    from repro.core.discrepancy import lemma19_bound, lemma23_bound
    from repro.engine import Engine, Request

    own_engine = engine is None
    if own_engine:
        engine = Engine()
    result = engine.run_one("discrepancy", {"m": m})
    cap19, cap23 = lemma19_bound(m), lemma23_bound(m)
    n = 4 * m
    for row in result["partitions"]:
        if not row["exact"]:
            raise CertificateError(
                f"discrepancy sweep for m={m} returned a non-exact maximum"
            )
        if row["max_disc"] > cap23:
            raise CertificateError(
                f"Lemma 23 violated at partition [{row['lo']}, {row['hi']}]: "
                f"{row['max_disc']} > {cap23}"
            )
        if row["lo"] == 1 and row["hi"] == n and row["max_disc"] > cap19:
            raise CertificateError(
                f"Lemma 19 violated at the split partition: "
                f"{row['max_disc']} > {cap19}"
            )
    return {
        **result,
        "partitions": [
            {**row, "lemma23_margin": cap23 - row["max_disc"]}
            for row in result["partitions"]
        ],
    }


@lru_cache(maxsize=256)
def certificate(n: int) -> LowerBoundCertificate:
    """Assemble and verify the full lower-bound certificate for ``L_n``.

    >>> cert = certificate(16)
    >>> cert.m, cert.margin
    (4, 16640)
    >>> cert.lemma18_threshold_holds
    True
    """
    from repro.core.discrepancy import size_a, size_b, size_b_minus_ln, size_script_l

    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    m, remainder = divmod(n, 4)
    if m == 0:
        m_eff = 1  # degenerate; quantities reported for m = 1
    else:
        m_eff = m
    margin = lemma18_margin(m_eff)
    threshold = _lemma18_threshold(margin, m_eff)
    cert = LowerBoundCertificate(
        n=n,
        m=m_eff,
        remainder=remainder,
        size_script_l=size_script_l(m_eff),
        size_a=size_a(m_eff),
        size_b=size_b(m_eff),
        size_b_minus_ln=size_b_minus_ln(m_eff),
        margin=margin,
        lemma18_threshold_holds=threshold,
        fixed_partition_bound=(
            fixed_partition_cover_lower_bound(4 * m_eff) if n >= 4 else 1
        ),
        cover_bound=multipartition_cover_lower_bound(n),
        ucfg_cnf_bound=ucfg_cnf_size_lower_bound(n),
        ucfg_bound=ucfg_size_lower_bound(n),
    )
    cert.verify()
    return cert
