"""The bridge from `[1, n]`-rectangle covers of ``L_n`` to matrix covers.

"Theorem 17 is an immediate consequence of the so-called rank bound" —
this module makes the reduction executable.  Under the ``[1, n]``
partition, a set rectangle ``S × T`` is a set of pairs
``(U, V) ∈ 𝒫(X) × 𝒫(Y)``, and ``L_n`` is exactly the 1-set of the
*intersection matrix* ``M[U][V] = [U ∩ V ≠ ∅]`` over index sets.  So a
disjoint cover of ``L_n`` by ``[1, n]``-rectangles *is* a disjoint cover
of the 1-entries of ``M`` by all-ones combinatorial rectangles, and the
exact rank bound ``rank_ℚ(M) = 2^n - 1`` transfers verbatim — a much
stronger fixed-partition bound than the discrepancy route (``1.5^{n/4}``),
which exists only because rank does not survive per-rectangle partitions.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.comm.covers import Rect, verify_disjoint_cover
from repro.comm.matrix import CommMatrix, intersection_matrix
from repro.comm.rank import rank_over_q
from repro.core.setview import OrderedPartition, SetRectangle, ZSet
from repro.errors import PartitionError

__all__ = [
    "set_rectangle_to_matrix_rectangle",
    "matrix_rectangle_to_set_rectangle",
    "ln_cover_to_matrix_cover",
    "rank_bound_for_split_covers",
]


def _split_partition(n: int) -> OrderedPartition:
    return OrderedPartition(n=n, lo=1, hi=n, interval_part=0)


def _x_index_set(part: ZSet) -> frozenset[int]:
    """Z-indices on the X side map to index sets over [n] directly."""
    return frozenset(part)


def _y_index_set(part: ZSet, n: int) -> frozenset[int]:
    """Z-indices ``n+1..2n`` map to indices ``1..n``."""
    return frozenset(e - n for e in part)


def set_rectangle_to_matrix_rectangle(
    rect: SetRectangle, matrix: CommMatrix
) -> Rect:
    """Translate a ``[1, n]``-set rectangle into row/column index sets of
    the intersection matrix.

    Requires the rectangle's partition to be the ``[1, n]`` split.
    """
    partition = rect.partition
    n = partition.n
    if (partition.lo, partition.hi) != (1, n):
        raise PartitionError("the bridge applies to [1, n]-rectangles only")
    row_of = {label: i for i, label in enumerate(matrix.row_labels)}
    col_of = {label: j for j, label in enumerate(matrix.col_labels)}
    # Part 0 is the interval [1, n] = the X side.
    rows = frozenset(row_of[_x_index_set(u)] for u in rect.s)
    cols = frozenset(col_of[_y_index_set(v, n)] for v in rect.t)
    return rows, cols


def matrix_rectangle_to_set_rectangle(
    rect: Rect, matrix: CommMatrix, n: int
) -> SetRectangle:
    """The inverse translation: matrix index sets back to a set rectangle."""
    rows, cols = rect
    partition = _split_partition(n)
    s = {frozenset(matrix.row_labels[i]) for i in rows}
    t = {frozenset(e + n for e in matrix.col_labels[j]) for j in cols}
    return SetRectangle(partition, s, t)


def ln_cover_to_matrix_cover(
    rectangles: Iterable[SetRectangle], n: int, verify: bool = True
) -> tuple[CommMatrix, list[Rect]]:
    """Map a disjoint ``[1, n]``-rectangle cover of ``L_n`` onto a disjoint
    1-cover of ``intersection_matrix(n)``; with ``verify`` the image is
    checked with the matrix-side verifier.
    """
    matrix = intersection_matrix(n)
    cover = [set_rectangle_to_matrix_rectangle(rect, matrix) for rect in rectangles]
    if verify and not verify_disjoint_cover(matrix, cover):
        raise PartitionError(
            "the translated cover is not a disjoint 1-cover of the "
            "intersection matrix — the input was not a disjoint "
            "[1, n]-rectangle cover of L_n"
        )
    return matrix, cover


def rank_bound_for_split_covers(n: int) -> int:
    """``rank_ℚ(INTERSECT_n) = 2^n - 1``: the Theorem 17 bound via rank.

    Computed exactly (so only for small ``n``); the closed form is
    asserted against the computation.

    >>> rank_bound_for_split_covers(3)
    7
    """
    value = rank_over_q(intersection_matrix(n))
    if value != 2**n - 1:  # pragma: no cover - mathematical identity
        raise AssertionError(f"rank of INTERSECT_{n} computed as {value} != 2^n - 1")
    return value
