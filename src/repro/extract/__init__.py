"""Streaming spanner extraction at document scale.

The paper's motivating scenario (CSV information extraction via
spanner-style CFGs) is executed here as a throughput workload: the
match/relation constraint from :mod:`repro.spanners` is compiled once
into a minimal packed DFA (:mod:`repro.extract.compile`), then streamed
over arbitrarily large synthetic document streams in constant memory
(:mod:`repro.extract.scan`) with chunked, bit-parallel scanning.  The
inner mask/popcount loops route through the active :mod:`repro.backend`
tier, and shards fan out across the engine pool via the ``extract.*``
job family.  See ``docs/EXTRACT.md``.
"""

from repro.extract.compile import (
    CompiledScanner,
    column_relation_nfa,
    compile_scanner,
    scanner_for_spec,
)
from repro.extract.scan import (
    ScanState,
    StreamScanner,
    batched_oracle_scan,
    fold_checksum,
    naive_cfg_scan,
    scan_stream,
    semantic_scan,
)
from repro.extract.spec import StreamSpec, relation_pairs

__all__ = [
    "StreamSpec",
    "relation_pairs",
    "CompiledScanner",
    "column_relation_nfa",
    "compile_scanner",
    "scanner_for_spec",
    "ScanState",
    "StreamScanner",
    "scan_stream",
    "fold_checksum",
    "naive_cfg_scan",
    "batched_oracle_scan",
    "semantic_scan",
]
