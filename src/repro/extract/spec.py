"""Seeded stream specifications for the extraction pipeline.

A :class:`StreamSpec` describes a synthetic document stream *by
construction*, never by content: a scenario shape ``(c, w)``, a column
set, a relation, a document count, a seed, and a bias knob.  Documents
are derived from the seed with a per-document mixer, so any shard
``[lo, hi)`` can be regenerated independently by any worker process —
that is what makes specs safe to put in engine job parameters and
content-addressed cache keys (`to_params()` is plain JSON, no raw
documents ever cross a process boundary or land in the cache).
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import ReproError
from repro.words.alphabet import AB
from repro.words.ops import all_words

__all__ = ["StreamSpec", "relation_pairs"]

_RELATIONS = ("match", "leq")

# Odd 64-bit multiplier (splitmix64's golden-ratio constant): the map
# ``i -> (seed + 1) * _MIX + i  (mod 2^64)`` is injective per stream, so
# every document gets a distinct, shard-independent RNG seed.
_MIX = 0x9E3779B97F4A7C15
_U64 = (1 << 64) - 1


def relation_pairs(relation: str, w: int) -> tuple[tuple[str, str], ...]:
    """The pair set defining a named relation over width-``w`` values.

    >>> relation_pairs("match", 1)
    (('a', 'a'), ('b', 'b'))
    >>> len(relation_pairs("leq", 1))
    3
    """
    if relation == "match":
        return tuple((x, x) for x in all_words(AB, w))
    if relation == "leq":
        words = list(all_words(AB, w))
        return tuple((x, y) for x in words for y in words if x <= y)
    raise ReproError(f"unknown relation {relation!r}; expected one of {_RELATIONS}")


@dataclass(frozen=True)
class StreamSpec:
    """A reproducible synthetic document stream.

    >>> spec = StreamSpec(c=2, w=1, columns=(1, 2), n_docs=3, seed=7)
    >>> spec.doc_len
    4
    >>> spec.document(1) == spec.document(1)
    True
    >>> "".join(spec.iter_chunks(5)) == spec.text()
    True
    """

    c: int
    w: int
    columns: tuple[int, ...]
    relation: str = "match"
    n_docs: int = 1000
    seed: int = 0
    match_bias: float = 0.25

    def __post_init__(self) -> None:
        if self.c < 1 or self.w < 1:
            raise ReproError("c and w must be positive")
        cols = tuple(sorted(set(int(j) for j in self.columns)))
        if not cols:
            raise ReproError("columns must be non-empty")
        if cols[0] < 1 or cols[-1] > self.c:
            raise ReproError(f"columns must lie in [1, {self.c}], got {cols}")
        object.__setattr__(self, "columns", cols)
        if self.relation not in _RELATIONS:
            raise ReproError(
                f"unknown relation {self.relation!r}; expected one of {_RELATIONS}"
            )
        if self.n_docs < 0:
            raise ReproError("n_docs must be >= 0")
        if not 0.0 <= self.match_bias <= 1.0:
            raise ReproError("match_bias must lie in [0, 1]")

    @property
    def doc_len(self) -> int:
        return 2 * self.c * self.w

    @property
    def total_chars(self) -> int:
        return self.n_docs * self.doc_len

    def pairs(self) -> tuple[tuple[str, str], ...]:
        return relation_pairs(self.relation, self.w)

    def document(self, index: int) -> str:
        """The ``index``-th document, independent of any other index."""
        if not 0 <= index < self.n_docs:
            raise ReproError(f"document index {index} out of range [0, {self.n_docs})")
        rng = random.Random(((self.seed + 1) * _MIX + index) & _U64)
        c, w = self.c, self.w
        row1 = [rng.choice("ab") for _ in range(c * w)]
        row2 = [rng.choice("ab") for _ in range(c * w)]
        if rng.random() < self.match_bias:
            # Plant a related column so streams are not all-negative at
            # large w (a random pair rarely lands in the relation).
            j = rng.choice(self.columns)
            x, y = rng.choice(self.pairs())
            lo = (j - 1) * w
            row1[lo : lo + w] = x
            row2[lo : lo + w] = y
        return "".join(row1) + "".join(row2)

    def resolve_range(self, lo: int = 0, hi: int | None = None) -> tuple[int, int]:
        """Clamp-and-validate a document shard ``[lo, hi)``."""
        if hi is None or hi < 0:
            hi = self.n_docs
        if not (0 <= lo <= hi <= self.n_docs):
            raise ReproError(f"bad shard [{lo}, {hi}) for n_docs={self.n_docs}")
        return lo, hi

    def iter_documents(self, lo: int = 0, hi: int | None = None) -> Iterator[str]:
        lo, hi = self.resolve_range(lo, hi)
        for index in range(lo, hi):
            yield self.document(index)

    def text(self, lo: int = 0, hi: int | None = None) -> str:
        """The shard's documents concatenated (tests / small shards only)."""
        return "".join(self.iter_documents(lo, hi))

    def iter_chunks(
        self, chunk_chars: int, lo: int = 0, hi: int | None = None
    ) -> Iterator[str]:
        """Stream the shard as chunks of ``chunk_chars`` characters.

        Memory stays bounded by ``chunk_chars + doc_len`` regardless of
        the shard size; chunk boundaries fall at arbitrary offsets, so
        documents routinely straddle them.
        """
        if chunk_chars < 1:
            raise ReproError("chunk_chars must be positive")
        lo, hi = self.resolve_range(lo, hi)
        buffer: list[str] = []
        buffered = 0
        for index in range(lo, hi):
            buffer.append(self.document(index))
            buffered += self.doc_len
            while buffered >= chunk_chars:
                whole = "".join(buffer)
                yield whole[:chunk_chars]
                rest = whole[chunk_chars:]
                buffer = [rest] if rest else []
                buffered = len(rest)
        if buffered:
            yield "".join(buffer)

    def to_params(self) -> dict[str, object]:
        """Plain-JSON parameters for the ``extract.*`` job family."""
        return {
            "c": self.c,
            "w": self.w,
            "columns": list(self.columns),
            "relation": self.relation,
            "n_docs": self.n_docs,
            "seed": self.seed,
            "match_bias": self.match_bias,
        }

    @classmethod
    def from_params(cls, params: dict[str, object]) -> StreamSpec:
        return cls(
            c=int(params["c"]),  # type: ignore[arg-type]
            w=int(params["w"]),  # type: ignore[arg-type]
            columns=tuple(params["columns"]),  # type: ignore[arg-type]
            relation=str(params.get("relation", "match")),
            n_docs=int(params.get("n_docs", 1000)),  # type: ignore[arg-type]
            seed=int(params.get("seed", 0)),  # type: ignore[arg-type]
            match_bias=float(params.get("match_bias", 0.25)),  # type: ignore[arg-type]
        )

    def to_key(self) -> tuple:
        return (
            "stream",
            self.c,
            self.w,
            self.columns,
            self.relation,
            self.n_docs,
            self.seed,
            self.match_bias,
        )

    def shard_ranges(self, shards: int) -> list[tuple[int, int]]:
        """Split ``[0, n_docs)`` into ``shards`` near-equal ranges."""
        if shards < 1:
            raise ReproError("shards must be positive")
        shards = min(shards, max(self.n_docs, 1))
        bounds = [round(i * self.n_docs / shards) for i in range(shards + 1)]
        return [(bounds[i], bounds[i + 1]) for i in range(shards)]
