"""Constant-memory chunked scanning with document-parallel bit kernels.

The scanner consumes a stream of chunks whose boundaries fall anywhere.
Per chunk it splits the text into three parts:

1. **head** — the tail of a document begun in an earlier chunk.  The
   carried frontier (:class:`ScanState`: current DFA state + phase)
   advances by a scalar walk over the *same* minimal DFA, so a match
   straddling a boundary is found exactly.
2. **body** — the whole documents fully inside the chunk.  These are
   scanned *in parallel across documents*: the body is transposed into
   one bit-column per phase (``a``→0, ``b``→1, document ``d`` at bit
   ``d``), and a per-state occupancy mask walks the phase layers of the
   compiled DFA.  Documents that fall into the sink drop out of the
   masks; after ``doc_len`` phases the accepting occupancy *is* the
   match mask.  Counting and match-id extraction route through the
   active :mod:`repro.backend` (``popcount`` / ``bit_indices``).
3. **tail** — the prefix of a document that will finish in a later
   chunk; it becomes the next carried frontier.

Chunking invariant: for any chunk decomposition of the same stream, the
final ``(docs, matches, checksum, match_ids)`` are identical — the
boundary walk and the bit-parallel body run the same DFA.

Three oracles live here too: :func:`semantic_scan` (per-document brute
force), :func:`batched_oracle_scan` (grammar-side verification through
:class:`~repro.kernel.batch.BatchedRecognizer` prefix sharing), and
:func:`naive_cfg_scan` — the frozen per-document CFG-chart baseline the
benchmark measures against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.backend import get_backend
from repro.grammars.cnf import to_cnf
from repro.kernel.batch import BatchedRecognizer
from repro.kernel.chart import recognise_cnf
from repro.spanners.csv_match import column_relation_cfg, is_column_related

from repro.extract.compile import CompiledScanner, scanner_for_spec
from repro.extract.spec import StreamSpec

__all__ = [
    "ScanState",
    "StreamScanner",
    "scan_stream",
    "fold_checksum",
    "semantic_scan",
    "batched_oracle_scan",
    "naive_cfg_scan",
]

_TO_BITS = str.maketrans("ab", "01")
_U64 = (1 << 64) - 1


def fold_checksum(checksum: int, doc_id: int) -> int:
    """Fold one matching document id into an order-sensitive checksum.

    Matching ids are always folded in ascending order, so equal
    checksums certify equal match *sets* without storing documents.
    """
    return (checksum * 1000003 + doc_id + 1) & _U64


@dataclass
class ScanState:
    """The frontier carried across chunk boundaries, plus accumulators."""

    state: int
    phase: int = 0
    docs_done: int = 0
    matches: int = 0
    checksum: int = 0
    match_ids: list[int] | None = None

    def result(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "docs": self.docs_done,
            "matches": self.matches,
            "checksum": self.checksum,
        }
        if self.match_ids is not None:
            out["match_ids"] = list(self.match_ids)
        return out


class StreamScanner:
    """Feed chunks of a document stream through a compiled scanner."""

    def __init__(self, compiled: CompiledScanner, *, collect_ids: bool = False):
        self.compiled = compiled
        self.doc_len = compiled.doc_len
        self.collect_ids = collect_ids
        dfa = compiled.dfa
        self._table_a = dfa.tables[0]
        self._table_b = dfa.tables[1]
        self._initial = dfa.initial
        self._accepting_mask = dfa.accepting_mask
        self._accept_states = compiled.accepting
        self._sink = compiled.sink

    def new_state(self) -> ScanState:
        return ScanState(
            state=self._initial,
            match_ids=[] if self.collect_ids else None,
        )

    def feed(self, state: ScanState, chunk: str) -> ScanState:
        """Consume one chunk (possibly empty) and return the new state."""
        pos = 0
        length = self.doc_len
        if state.phase:
            take = min(length - state.phase, len(chunk))
            self._scalar(state, chunk, 0, take)
            pos = take
        n_full = (len(chunk) - pos) // length
        if n_full:
            self._bulk(state, chunk[pos : pos + n_full * length], n_full)
            pos += n_full * length
        if pos < len(chunk):
            self._scalar(state, chunk, pos, len(chunk) - pos)
        return state

    def finish(self, state: ScanState) -> dict[str, Any]:
        """Validate end-of-stream (no dangling partial document)."""
        if state.phase:
            raise ValueError(
                f"stream ended mid-document: {state.phase}/{self.doc_len} chars"
            )
        return state.result()

    def scan_chunks(self, chunks) -> dict[str, Any]:
        state = self.new_state()
        for chunk in chunks:
            self.feed(state, chunk)
        return self.finish(state)

    # -- scalar boundary walk -------------------------------------------

    def _scalar(self, state: ScanState, chunk: str, pos: int, count: int) -> None:
        table_a, table_b = self._table_a, self._table_b
        q, phase, length = state.state, state.phase, self.doc_len
        for ch in chunk[pos : pos + count]:
            q = table_b[q] if ch == "b" else table_a[q]
            phase += 1
            if phase == length:
                if (self._accepting_mask >> q) & 1:
                    doc_id = state.docs_done
                    state.matches += 1
                    state.checksum = fold_checksum(state.checksum, doc_id)
                    if state.match_ids is not None:
                        state.match_ids.append(doc_id)
                state.docs_done += 1
                q, phase = self._initial, 0
        state.state, state.phase = q, phase

    # -- document-parallel body kernel ----------------------------------

    def _bulk(self, state: ScanState, body: str, n_docs: int) -> None:
        backend = get_backend()
        length = self.doc_len
        table_a, table_b, sink = self._table_a, self._table_b, self._sink
        bits = body.translate(_TO_BITS)
        # Occupancy: DFA state -> mask of documents currently in it.
        occupancy = {self._initial: (1 << n_docs) - 1}
        for t in range(length):
            # Bit-column for phase t: document d contributes bit d.
            column = bits[t::length]
            col_bits = int(column[::-1], 2) if "1" in column else 0
            advanced: dict[int, int] = {}
            for q, mask in occupancy.items():
                on_b = mask & col_bits
                on_a = mask ^ on_b
                if on_a:
                    successor = table_a[q]
                    if successor != sink:
                        advanced[successor] = advanced.get(successor, 0) | on_a
                if on_b:
                    successor = table_b[q]
                    if successor != sink:
                        advanced[successor] = advanced.get(successor, 0) | on_b
            occupancy = advanced
            if not occupancy:
                break
        accept_mask = 0
        for q in self._accept_states:
            accept_mask |= occupancy.get(q, 0)
        count = backend.popcount(accept_mask)
        if count:
            base = state.docs_done
            state.matches += count
            for offset in backend.bit_indices(accept_mask):
                state.checksum = fold_checksum(state.checksum, base + offset)
                if state.match_ids is not None:
                    state.match_ids.append(base + offset)
        state.docs_done += n_docs


def scan_stream(
    spec: StreamSpec,
    *,
    chunk_chars: int = 1 << 16,
    lo: int = 0,
    hi: int | None = None,
    collect_ids: bool = False,
    scanner: StreamScanner | None = None,
) -> dict[str, Any]:
    """Scan a shard of a stream; constant memory in the shard size.

    Document ids in the result are *relative to the shard* (the caller
    re-bases when aggregating shards, see ``extract.aggregate``).
    """
    if scanner is None:
        scanner = StreamScanner(scanner_for_spec(spec), collect_ids=collect_ids)
    lo, hi = spec.resolve_range(lo, hi)
    result = scanner.scan_chunks(spec.iter_chunks(chunk_chars, lo, hi))
    result["lo"], result["hi"] = lo, hi
    result["chars"] = (hi - lo) * spec.doc_len
    return result


# -- oracles -------------------------------------------------------------


def _oracle_result(spec: StreamSpec, lo: int, hi: int, flags) -> dict[str, Any]:
    matches = 0
    checksum = 0
    match_ids: list[int] = []
    for offset, matched in enumerate(flags):
        if matched:
            matches += 1
            checksum = fold_checksum(checksum, offset)
            match_ids.append(offset)
    return {
        "docs": hi - lo,
        "matches": matches,
        "checksum": checksum,
        "match_ids": match_ids,
        "lo": lo,
        "hi": hi,
        "chars": (hi - lo) * spec.doc_len,
    }


def semantic_scan(spec: StreamSpec, lo: int = 0, hi: int | None = None) -> dict[str, Any]:
    """Per-document brute-force oracle (:func:`is_column_related`)."""
    lo, hi = spec.resolve_range(lo, hi)
    pairs = spec.pairs()
    flags = (
        is_column_related(doc, spec.c, spec.w, spec.columns, pairs)
        for doc in spec.iter_documents(lo, hi)
    )
    return _oracle_result(spec, lo, hi, flags)


def batched_oracle_scan(
    spec: StreamSpec, lo: int = 0, hi: int | None = None
) -> dict[str, Any]:
    """Grammar-side oracle: CNF of the relation CFG via prefix-sharing
    :class:`BatchedRecognizer` — the verification path of the pipeline."""
    lo, hi = spec.resolve_range(lo, hi)
    grammar = to_cnf(column_relation_cfg(spec.c, spec.w, spec.columns, spec.pairs()))
    recognizer = BatchedRecognizer(grammar)
    docs = list(spec.iter_documents(lo, hi))
    verdicts = recognizer.recognise_many(docs)
    return _oracle_result(spec, lo, hi, (verdicts[doc] for doc in docs))


def naive_cfg_scan(spec: StreamSpec, lo: int = 0, hi: int | None = None) -> dict[str, Any]:
    """The frozen baseline: an independent CFG chart per document.

    This is exactly what ``repro.spanners`` offered before this module
    existed — the benchmark's ≥8x claim is measured against it.
    """
    lo, hi = spec.resolve_range(lo, hi)
    grammar = to_cnf(column_relation_cfg(spec.c, spec.w, spec.columns, spec.pairs()))
    flags = (recognise_cnf(grammar, doc) for doc in spec.iter_documents(lo, hi))
    return _oracle_result(spec, lo, hi, flags)
