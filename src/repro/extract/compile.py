"""Compile a spanner constraint into a phase-layered packed scanner.

The match language ``M(c, w, S)`` (and its relation generalisation) is a
finite language of fixed word length ``L = 2cw``.  We build one small
NFA per ``(column, value-pair)`` witness — a chain of ``L + 1`` states
that pins the two column occurrences to the pair and accepts anything
elsewhere — take their union, and push the result through the packed
substrate: :class:`~repro.automata.packed.PackedNFA` →
``packed_determinise`` → ``packed_minimise``.  The output is the minimal
*complete* DFA for the constraint, compiled **once** per process
(``lru_cache``) and reused for every chunk of every stream.

Because every word of the language has the same length, the minimal DFA
is *phase-layered*: each non-sink state is reachable at exactly one
input offset ``t`` (two residuals at different offsets contain words of
different lengths, so only the empty-residual sink can recur).
:func:`compile_scanner` verifies this invariant at compile time and
records the layer decomposition — it is what licenses the document-
parallel scan in :mod:`repro.extract.scan`, where a chunk's documents
advance in lock-step through phase ``t`` and dead documents simply fall
out of the occupancy masks at the sink.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from functools import lru_cache

from repro.automata.nfa import NFA
from repro.automata.packed import PackedDFA, PackedNFA, packed_determinise, packed_minimise
from repro.errors import ReproError
from repro.spanners.csv_match import _check_scenario
from repro.words.alphabet import AB

from repro.extract.spec import StreamSpec, relation_pairs

__all__ = [
    "column_relation_nfa",
    "CompiledScanner",
    "compile_scanner",
    "scanner_for_spec",
]


def column_relation_nfa(
    c: int,
    w: int,
    columns: Iterable[int],
    pairs: Iterable[tuple[str, str]],
) -> NFA:
    """An NFA for the relation language: union of per-witness chains.

    States are ``("m", j, x, y, t)`` — "the document read so far is
    consistent with columns ``j`` of both rows carrying the pair
    ``(x, y)``, and ``t`` characters have been consumed".  Positions
    inside row 1's column ``j`` must spell ``x``, positions inside row
    2's column ``j`` must spell ``y``; every other position accepts both
    symbols.  Size is ``|S| · |pairs| · (2cw + 1)`` states.
    """
    _check_scenario(c, w)
    cols = tuple(sorted(set(int(j) for j in columns)))
    pair_list = tuple((str(x), str(y)) for x, y in pairs)
    if not cols or cols[0] < 1 or cols[-1] > c:
        raise ReproError(f"columns must be a non-empty subset of [1, {c}]")
    if not pair_list:
        raise ReproError("pairs must be non-empty")
    for x, y in pair_list:
        if len(x) != w or len(y) != w:
            raise ReproError(f"pair ({x!r}, {y!r}) is not width {w}")
    length = 2 * c * w
    states: list[tuple] = []
    transitions: dict[tuple, list[tuple]] = {}
    initial: list[tuple] = []
    accepting: list[tuple] = []
    for j in cols:
        row1_lo = (j - 1) * w
        row2_lo = c * w + (j - 1) * w
        for x, y in pair_list:
            chain = [("m", j, x, y, t) for t in range(length + 1)]
            states.extend(chain)
            initial.append(chain[0])
            accepting.append(chain[-1])
            for t in range(length):
                if row1_lo <= t < row1_lo + w:
                    allowed = x[t - row1_lo]
                elif row2_lo <= t < row2_lo + w:
                    allowed = y[t - row2_lo]
                else:
                    allowed = "ab"
                for symbol in allowed:
                    transitions[(chain[t], symbol)] = [chain[t + 1]]
    return NFA(
        alphabet=AB,
        states=states,
        transitions=transitions,
        initial=initial,
        accepting=accepting,
    )


@dataclass(frozen=True)
class CompiledScanner:
    """A minimal complete packed DFA plus its phase-layer decomposition.

    ``dfa.tables[s][q]`` gives the successor of state ``q`` on symbol
    index ``s`` (``AB`` order: 0 = ``a``, 1 = ``b``); the DFA is
    complete, so the only dead end is ``sink`` (the unique non-co-
    reachable state, or ``None`` when the constraint matches every
    document).  ``layers[t]`` lists the non-sink states reachable after
    exactly ``t`` characters; accepting states appear only in
    ``layers[doc_len]``.
    """

    c: int
    w: int
    columns: tuple[int, ...]
    pairs: tuple[tuple[str, str], ...]
    dfa: PackedDFA
    sink: int | None
    layers: tuple[tuple[int, ...], ...]
    nfa_states: int
    det_states: int

    @property
    def doc_len(self) -> int:
        return 2 * self.c * self.w

    @property
    def n_states(self) -> int:
        return self.dfa.n_states

    @property
    def accepting(self) -> tuple[int, ...]:
        mask = self.dfa.accepting_mask
        return tuple(q for q in range(self.dfa.n_states) if (mask >> q) & 1)

    @property
    def max_live_states(self) -> int:
        """The widest phase layer — the scan's per-phase working set."""
        return max(len(layer) for layer in self.layers)

    def accepts(self, document: str) -> bool:
        return self.dfa.accepts(document)

    def to_key(self) -> tuple:
        return ("scanner", self.c, self.w, self.columns, self.pairs)


def _co_reachable(dfa: PackedDFA) -> set[int]:
    """States from which some accepting state is reachable."""
    reverse: dict[int, set[int]] = {q: set() for q in range(dfa.n_states)}
    for table in dfa.tables:
        for q, successor in enumerate(table):
            if successor >= 0:
                reverse[successor].add(q)
    frontier = [q for q in range(dfa.n_states) if (dfa.accepting_mask >> q) & 1]
    seen = set(frontier)
    while frontier:
        state = frontier.pop()
        for prev in reverse[state]:
            if prev not in seen:
                seen.add(prev)
                frontier.append(prev)
    return seen


def _phase_layers(dfa: PackedDFA, sink: int | None, length: int) -> tuple[tuple[int, ...], ...]:
    """BFS the DFA by input offset, asserting the one-phase-per-state law."""
    phase_of: dict[int, int] = {}
    layers: list[tuple[int, ...]] = []
    frontier = {dfa.initial} - {sink}
    for t in range(length + 1):
        for state in frontier:
            if phase_of.setdefault(state, t) != t:
                raise ReproError(
                    f"state {state} reachable at phases {phase_of[state]} and {t}; "
                    "finite fixed-length language should be phase-layered"
                )
        layers.append(tuple(sorted(frontier)))
        if t == length:
            break
        successors = set()
        for state in frontier:
            for table in dfa.tables:
                successors.add(table[state])
        frontier = successors - {sink}
    for t, layer in enumerate(layers[:-1]):
        for state in layer:
            if (dfa.accepting_mask >> state) & 1:
                raise ReproError(f"accepting state {state} at interior phase {t}")
    return tuple(layers)


@lru_cache(maxsize=64)
def _compile_scanner_cached(
    c: int,
    w: int,
    columns: tuple[int, ...],
    pairs: tuple[tuple[str, str], ...],
) -> CompiledScanner:
    nfa = column_relation_nfa(c, w, columns, pairs)
    pnfa = PackedNFA.from_nfa(nfa)
    det = packed_determinise(pnfa)
    dfa = packed_minimise(det)
    if not dfa.is_complete():
        raise ReproError("packed_minimise should return a complete DFA")
    alive = _co_reachable(dfa)
    dead = [q for q in range(dfa.n_states) if q not in alive]
    if len(dead) > 1:
        raise ReproError(f"minimal DFA has {len(dead)} dead states, expected <= 1")
    sink = dead[0] if dead else None
    layers = _phase_layers(dfa, sink, 2 * c * w)
    return CompiledScanner(
        c=c,
        w=w,
        columns=columns,
        pairs=pairs,
        dfa=dfa,
        sink=sink,
        layers=layers,
        nfa_states=nfa.n_states,
        det_states=det.n_states,
    )


def compile_scanner(
    c: int,
    w: int,
    columns: Iterable[int],
    pairs: Iterable[tuple[str, str]],
) -> CompiledScanner:
    """Compile (and memoise per process) the scanner for a constraint.

    >>> s = compile_scanner(2, 1, [1, 2], [("a", "a"), ("b", "b")])
    >>> s.accepts("abab"), s.accepts("abba")
    (True, False)
    >>> s is compile_scanner(2, 1, (2, 1), (("a", "a"), ("b", "b")))
    True
    """
    cols = tuple(sorted(set(int(j) for j in columns)))
    pair_list = tuple(sorted((str(x), str(y)) for x, y in pairs))
    return _compile_scanner_cached(c, w, cols, pair_list)


def scanner_for_spec(spec: StreamSpec) -> CompiledScanner:
    """The compiled scanner for a stream's constraint."""
    return compile_scanner(spec.c, spec.w, spec.columns, relation_pairs(spec.relation, spec.w))
