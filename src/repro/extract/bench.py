"""The extraction benchmark: rows/sec on user-shaped data.

Unlike every earlier ``BENCH_*`` artifact (construction sizes, service
latency), this one measures *throughput*: documents and CSV rows per
second through the compiled packed scanner, per backend, against the
frozen naive per-document CFG-chart baseline, plus a scaling-vs-workers
curve through the engine's process pool.

Two throughput readings per scaling point keep the curve honest on any
host:

* ``docs_per_sec`` — wall-clock, end to end.  This is the number that
  scales with real cores.
* ``docs_per_busy_sec`` — total documents over summed *in-worker* scan
  seconds (``extract.scan``'s ``timing=True`` accounting, compile
  excluded).  This is per-core throughput; on a single-core host it is
  the meaningful monotone metric, because wall-clock parallel speedup
  is physically unavailable there.

The artifact records ``cores`` and which metric the monotonicity
verdict used.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Any

from repro.backend import available_backends, use_backend
from repro.engine.artifacts import RunLog
from repro.engine.jobs import default_registry
from repro.engine.scheduler import Engine

from repro.extract.compile import _compile_scanner_cached, scanner_for_spec
from repro.extract.scan import StreamScanner, naive_cfg_scan, scan_stream, semantic_scan
from repro.extract.spec import StreamSpec

__all__ = ["run_extract_bench"]

#: A point must keep at least this fraction of its predecessor's
#: throughput to count as "monotone" (absorbs timer noise on shard-sized
#: runs without hiding a real regression).
_MONOTONE_TOLERANCE = 0.85


def _monotone(values: list[float], tolerance: float = _MONOTONE_TOLERANCE) -> bool:
    return all(b >= a * tolerance for a, b in zip(values, values[1:]))


def run_extract_bench(
    *,
    c: int = 8,
    w: int = 2,
    columns: tuple[int, ...] = (1, 2, 3, 4),
    relation: str = "match",
    docs: int = 40_000,
    chunk_chars: int = 1 << 16,
    seed: int = 0,
    match_bias: float = 0.25,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    shards: int = 8,
    naive_docs: int = 300,
    verify_docs: int = 1500,
    backend: str | None = None,
) -> dict[str, Any]:
    """Run the full extraction benchmark and return the artifact body."""
    spec = StreamSpec(
        c=c,
        w=w,
        columns=tuple(columns),
        relation=relation,
        n_docs=docs,
        seed=seed,
        match_bias=match_bias,
    )
    naive_docs = min(naive_docs, docs)
    verify_docs = min(verify_docs, docs)

    # -- one-off compile (cold) ----------------------------------------
    _compile_scanner_cached.cache_clear()
    start = perf_counter()
    compiled = scanner_for_spec(spec)
    compile_s = perf_counter() - start

    # -- frozen oracle baseline: per-document CFG charts ----------------
    start = perf_counter()
    naive = naive_cfg_scan(spec, 0, naive_docs)
    naive_s = perf_counter() - start
    naive_docs_per_sec = naive_docs / naive_s
    semantic = semantic_scan(spec, 0, verify_docs)

    # -- single-process throughput + bit-exactness, per backend ---------
    backend_rows: list[dict[str, Any]] = []
    for name in available_backends():
        with use_backend(name):
            checked = scan_stream(
                spec, chunk_chars=chunk_chars, hi=verify_docs, collect_ids=True
            )
            agree_naive = (
                [i for i in checked["match_ids"] if i < naive_docs] == naive["match_ids"]
            )
            agree_semantic = checked["match_ids"] == semantic["match_ids"]
            scanner = StreamScanner(compiled)
            start = perf_counter()
            result = scan_stream(spec, chunk_chars=chunk_chars, scanner=scanner)
            seconds = perf_counter() - start
        docs_per_sec = docs / seconds
        backend_rows.append(
            {
                "backend": name,
                "seconds": round(seconds, 4),
                "docs_per_sec": round(docs_per_sec, 1),
                # A document is two CSV rows — the paper's scenario.
                "rows_per_sec": round(2 * docs_per_sec, 1),
                "speedup_vs_naive": round(docs_per_sec / naive_docs_per_sec, 1),
                "oracle_agree_cfg": agree_naive,
                "oracle_agree_semantic": agree_semantic,
                "bit_exact": agree_naive and agree_semantic,
                "matches": result["matches"],
                "checksum": result["checksum"],
            }
        )
    checksums = {row["checksum"] for row in backend_rows}

    # -- scaling vs. workers through the engine pool --------------------
    shard_params = [
        {
            **spec.to_params(),
            "lo": lo,
            "hi": hi,
            "chunk_chars": chunk_chars,
            "timing": True,
        }
        for lo, hi in spec.shard_ranges(shards)
    ]
    scaling_rows: list[dict[str, Any]] = []
    for n_workers in workers:
        engine = Engine(
            registry=default_registry(), cache=None, jobs=n_workers, backend=backend
        )
        log = RunLog(path=None)
        start = perf_counter()
        shard_results = engine.map("extract.scan", shard_params, run_log=log)
        wall_s = perf_counter() - start
        shard_results = [row for row in shard_results if row]
        if len(shard_results) != len(shard_params):
            raise RuntimeError("extract bench: a scan shard went missing")
        total_matches = sum(row["matches"] for row in shard_results)
        busy_s = sum(row["scan_s"] for row in shard_results)
        scaling_rows.append(
            {
                "workers": n_workers,
                "shards": shards,
                "docs": docs,
                "matches": total_matches,
                "wall_s": round(wall_s, 4),
                "docs_per_sec": round(docs / wall_s, 1),
                "rows_per_sec": round(2 * docs / wall_s, 1),
                "busy_s": round(busy_s, 4),
                "docs_per_busy_sec": round(docs / busy_s, 1),
                "rows_per_busy_sec": round(2 * docs / busy_s, 1),
                "compile_s_total": round(sum(row["compile_s"] for row in shard_results), 4),
            }
        )
    match_totals = {row["matches"] for row in scaling_rows}

    # Monotonicity through 4 workers: wall-clock when real cores back the
    # pool, per-core (busy) throughput on a starved host.
    cores = os.cpu_count() or 1
    metric = "docs_per_sec" if cores >= 4 else "docs_per_busy_sec"
    through_4 = [row[metric] for row in scaling_rows if row["workers"] <= 4]
    monotone = _monotone(through_4)

    speedups = [row["speedup_vs_naive"] for row in backend_rows]
    bit_exact_all = all(row["bit_exact"] for row in backend_rows)
    return {
        "config": {
            **spec.to_params(),
            "chunk_chars": chunk_chars,
            "shards": shards,
            "workers": list(workers),
            "naive_docs": naive_docs,
            "verify_docs": verify_docs,
        },
        "cores": cores,
        "compile": {
            "seconds": round(compile_s, 4),
            "nfa_states": compiled.nfa_states,
            "det_states": compiled.det_states,
            "min_states": compiled.n_states,
            "max_live_states": compiled.max_live_states,
            "doc_len": compiled.doc_len,
        },
        "naive": {
            "docs": naive_docs,
            "seconds": round(naive_s, 4),
            "docs_per_sec": round(naive_docs_per_sec, 1),
            "rows_per_sec": round(2 * naive_docs_per_sec, 1),
        },
        "backends": backend_rows,
        "scaling": {
            "metric": metric,
            "tolerance": _MONOTONE_TOLERANCE,
            "monotone_through_4_workers": monotone,
            "rows": scaling_rows,
        },
        "criteria": {
            "speedup_8x": bool(speedups) and min(speedups) >= 8.0,
            "monotone_through_4_workers": monotone,
            "bit_exact_all_backends": bit_exact_all,
            "checksums_agree": len(checksums) == 1 and len(match_totals) == 1,
        },
    }
