"""The generic chart filler: any rule shape, any semiring.

The paper's concrete grammars (Example 3, Example 4, Appendix A) are not
in Chomsky normal form; this filler evaluates the chart recursion
directly on the original rules with a memoised span recursion, pruned by
per-symbol minimum derivable lengths.  It is the engine under
:class:`repro.grammars.generic.GenericParser` and — restricted to the
spans an Earley run completes — under the Earley-style semiring chart of
:mod:`repro.kernel.earley`.
"""

from __future__ import annotations

from collections.abc import Callable, Container

from repro.errors import InfiniteAmbiguityError
from repro.grammars.cfg import CFG, NonTerminal, Symbol
from repro.kernel.semiring import Semiring

__all__ = ["GenericChart", "symbol_min_lengths"]


def symbol_min_lengths(grammar: CFG) -> dict[NonTerminal, int | None]:
    """Shortest derivable word length per non-terminal (None = unproductive).

    This is the pruning table of every generic chart: a span can only be
    derived by a sentential suffix whose minimum length fits inside it,
    which is also what keeps same-span recursion on the acyclic
    nullable-unit graph.
    """
    best: dict[NonTerminal, int | None] = {nt: None for nt in grammar.nonterminals}
    changed = True
    while changed:
        changed = False
        for rule in grammar.rules:
            total = 0
            feasible = True
            for sym in rule.rhs:
                if grammar.is_terminal(sym):
                    total += 1
                else:
                    sub = best[sym]
                    if sub is None:
                        feasible = False
                        break
                    total += sub
            if not feasible:
                continue
            current = best[rule.lhs]
            if current is None or total < current:
                best[rule.lhs] = total
                changed = True
    return best


class GenericChart:
    """A memoised semiring chart for one grammar/word pair, any rule shape.

    ``value(A, (i, j))`` is the ``⊕``-sum over all derivations of
    ``word[i:j]`` from ``A`` of the semiring value of the derivation.
    The memo is per chart, so repeated queries against the same word
    share all work — callers that ask several questions about one word
    should build one chart and reuse it.

    ``allowed_spans`` optionally restricts which ``(A, i, j)`` triples may
    be explored (anything outside is ``0̄``); the Earley bridge uses this
    to evaluate only spans its item sets completed.  The caller is
    responsible for ruling out derivation cycles ``A ⇒+ A`` (see
    :func:`repro.grammars.analysis.has_unit_or_epsilon_cycle`); the chart
    guards against them defensively.
    """

    __slots__ = ("grammar", "word", "semiring", "_min_len", "_allowed", "_memo_sym", "_memo_seq", "_in_progress")

    def __init__(
        self,
        grammar: CFG,
        word: str,
        semiring: Semiring,
        *,
        min_lengths: dict[NonTerminal, int | None] | None = None,
        allowed_spans: Container[tuple[NonTerminal, int, int]] | None = None,
    ) -> None:
        self.grammar = grammar
        self.word = word
        self.semiring = semiring
        self._min_len = min_lengths if min_lengths is not None else symbol_min_lengths(grammar)
        self._allowed = allowed_spans
        self._memo_sym: dict[tuple[NonTerminal, int, int], object] = {}
        self._memo_seq: dict[tuple[tuple[Symbol, ...], int, int], object] = {}
        self._in_progress: set[tuple[NonTerminal, int, int]] = set()

    def _sym_min(self, symbol: Symbol) -> int | None:
        if self.grammar.is_terminal(symbol):
            return 1
        return self._min_len[symbol]

    def _seq_min(self, seq: tuple[Symbol, ...]) -> int | None:
        total = 0
        for sym in seq:
            minimum = self._sym_min(sym)
            if minimum is None:
                return None
            total += minimum
        return total

    def value(self, symbol: NonTerminal | None = None, span: tuple[int, int] | None = None):
        """The chart value for ``symbol`` over ``word[span]`` (defaults: whole word)."""
        symbol = symbol if symbol is not None else self.grammar.start
        span = span if span is not None else (0, len(self.word))
        return self._value_sym(symbol, span[0], span[1])

    def _value_sym(self, nt: NonTerminal, i: int, j: int):
        sr = self.semiring
        key = (nt, i, j)
        memo = self._memo_sym
        if key in memo:
            return memo[key]
        if self._allowed is not None and key not in self._allowed:
            memo[key] = sr.zero
            return sr.zero
        if key in self._in_progress:
            raise InfiniteAmbiguityError(
                f"derivation cycle at {key!r}: some word has infinitely many parse trees"
            )
        self._in_progress.add(key)
        total = sr.zero
        for rule in self.grammar.rules_for(nt):
            body = self._value_seq(rule.rhs, i, j)
            if sr.is_zero(body):
                continue
            total = sr.add(total, sr.finish(rule, body))
        self._in_progress.discard(key)
        memo[key] = total
        return total

    def _value_seq(self, seq: tuple[Symbol, ...], i: int, j: int):
        sr = self.semiring
        if not seq:
            return sr.one if i == j else sr.zero
        key = (seq, i, j)
        memo = self._memo_seq
        if key in memo:
            return memo[key]
        head, rest = seq[0], seq[1:]
        rest_min = self._seq_min(rest)
        total = sr.zero
        if rest_min is not None:
            if self.grammar.is_terminal(head):
                if i < j and self.word[i] == head:
                    tail = self._value_seq(rest, i + 1, j)
                    if not sr.is_zero(tail):
                        total = sr.mul(sr.terminal(head), tail)
            else:
                head_min = self._sym_min(head)
                if head_min is not None:
                    # head derives word[i:k]; only feasible k are explored.
                    for k in range(i + head_min, j - rest_min + 1):
                        head_value = self._value_sym(head, i, k)
                        if sr.is_zero(head_value):
                            continue
                        tail = self._value_seq(rest, k, j)
                        if sr.is_zero(tail):
                            continue
                        total = sr.add(total, sr.mul(head_value, tail))
                        if sr.is_absorbing(total):
                            break
        memo[key] = total
        return total
