"""The CNF chart filler: one bottom-up loop, any semiring.

This is the single CYK-style inner loop of the repository.  Filled over
the counting semiring it is exact parse-tree counting; over the forest
semiring, a packed parse forest; over a :class:`MinLengthSemiring`, the
shortest derivation; over the boolean semiring, recognition — for which
:func:`recognise_cnf` provides a bitset-packed fast path that represents
a whole chart cell as one machine integer and exits as soon as the
queried symbol is known to cover the queried span.
"""

from __future__ import annotations

from functools import lru_cache

from repro.backend import get_backend
from repro.errors import NotInChomskyNormalFormError
from repro.grammars.cfg import CFG, NonTerminal, Rule
from repro.kernel.semiring import Semiring

__all__ = ["CNFChart", "require_cnf", "recognise_cnf", "cnf_bitset_tables"]


def require_cnf(grammar: CFG) -> None:
    """Raise unless ``grammar`` is in Chomsky normal form."""
    if not grammar.is_in_cnf():
        raise NotInChomskyNormalFormError(
            "the CNF chart kernel requires a grammar in Chomsky normal form; "
            "use repro.grammars.cnf.to_cnf"
        )


class CNFChart:
    """The chart ``cell(i, j) = {A: ⊕ over derivations of word[i:j]}``.

    One fill, shared by every query: :meth:`value` answers for any symbol
    and span, :meth:`cell` exposes a whole span's accumulator.  Cells
    store only non-zero values, so sparsity is preserved across semirings
    exactly as in the hand-rolled predecessors.
    """

    __slots__ = ("grammar", "word", "semiring", "_cells")

    def __init__(self, grammar: CFG, word: str, semiring: Semiring) -> None:
        require_cnf(grammar)
        self.grammar = grammar
        self.word = word
        self.semiring = semiring
        sr = semiring
        n = len(word)
        cells: dict[tuple[int, int], dict[NonTerminal, object]] = {}
        binary_rules = [r for r in grammar.rules if len(r.rhs) == 2]
        unary_rules = [r for r in grammar.rules if len(r.rhs) == 1]
        for i in range(n):
            cell: dict[NonTerminal, object] = {}
            for rule in unary_rules:
                if rule.rhs[0] == word[i]:
                    value = sr.finish(rule, sr.terminal(word[i]))
                    prior = cell.get(rule.lhs)
                    cell[rule.lhs] = value if prior is None else sr.add(prior, value)
            cells[(i, i + 1)] = cell
        for width in range(2, n + 1):
            for i in range(0, n - width + 1):
                j = i + width
                cell = {}
                for split in range(i + 1, j):
                    left = cells[(i, split)]
                    right = cells[(split, j)]
                    if not left or not right:
                        continue
                    for rule in binary_rules:
                        prior = cell.get(rule.lhs)
                        if prior is not None and sr.is_absorbing(prior):
                            continue
                        b, c = rule.rhs
                        lb = left.get(b)
                        if lb is None:
                            continue
                        rc = right.get(c)
                        if rc is None:
                            continue
                        value = sr.finish(rule, sr.mul(lb, rc))
                        if sr.is_zero(value):
                            continue
                        cell[rule.lhs] = value if prior is None else sr.add(prior, value)
                cells[(i, j)] = cell
        self._cells = cells

    def value(self, symbol: NonTerminal | None = None, span: tuple[int, int] | None = None):
        """The accumulated value for ``symbol`` over ``word[span]``.

        Defaults to the start symbol over the whole word.  The empty span
        is derivable only through a CNF-relaxed ``S -> ε`` rule, handled
        here so adapters agree on the empty word.
        """
        sr = self.semiring
        symbol = symbol if symbol is not None else self.grammar.start
        span = span if span is not None else (0, len(self.word))
        if span[0] == span[1]:
            total = sr.zero
            for rule in self.grammar.rules_for(symbol):
                if len(rule.rhs) == 0:
                    total = sr.add(total, sr.finish(rule, sr.one))
            return total
        value = self._cells[span].get(symbol)
        return sr.zero if value is None else value

    def cell(self, span: tuple[int, int]) -> dict[NonTerminal, object]:
        """The (non-zero) accumulators of one span, keyed by non-terminal."""
        return dict(self._cells[span])

    def symbols_at(self, span: tuple[int, int]) -> frozenset[NonTerminal]:
        """The non-terminals with a non-zero value over ``word[span]``."""
        return frozenset(self._cells[span])


# ----------------------------------------------------------------------
# The boolean bitset fast path
# ----------------------------------------------------------------------


@lru_cache(maxsize=512)
def cnf_bitset_tables(grammar: CFG):
    """Per-grammar tables for the bitset recogniser (memoised).

    Returns ``(index, unary, binary, epsilon_mask)`` where ``index`` maps
    non-terminals to bit positions, ``unary`` maps each terminal to the
    mask of non-terminals deriving it, ``binary`` lists
    ``(lhs_mask, rhs1_mask, rhs2_mask)`` triples, and ``epsilon_mask`` is
    the mask of non-terminals with an ε-rule.
    """
    require_cnf(grammar)
    index = {nt: position for position, nt in enumerate(grammar.nonterminals)}
    unary: dict[str, int] = {}
    binary: list[tuple[int, int, int]] = []
    epsilon_mask = 0
    for rule in grammar.rules:
        if len(rule.rhs) == 1:
            ch = rule.rhs[0]
            unary[ch] = unary.get(ch, 0) | (1 << index[rule.lhs])
        elif len(rule.rhs) == 2:
            b, c = rule.rhs
            binary.append((1 << index[rule.lhs], 1 << index[b], 1 << index[c]))
        else:
            epsilon_mask |= 1 << index[rule.lhs]
    return index, unary, binary, epsilon_mask


def recognise_cnf(grammar: CFG, word: str, symbol: NonTerminal | None = None) -> bool:
    """Boolean-semiring membership with bitset cells and early exit.

    Each chart cell is a single integer whose bits are the non-terminals
    covering the span — the boolean semiring vectorised across all
    non-terminals.  The final (target) cell stops accumulating as soon as
    the queried symbol's bit appears, and inner cells stop once every
    possible left-hand side is present (the absorbing element of the
    vectorised semiring).
    """
    index, unary, binary, epsilon_mask = cnf_bitset_tables(grammar)
    symbol = symbol if symbol is not None else grammar.start
    target_bit = 1 << index[symbol]
    n = len(word)
    if n == 0:
        return bool(epsilon_mask & target_bit)
    all_lhs = 0
    for lhs_mask, _, _ in binary:
        all_lhs |= lhs_mask
    binary_step = get_backend().make_binary_step(binary)
    cells: dict[tuple[int, int], int] = {}
    for i in range(n):
        cells[(i, i + 1)] = unary.get(word[i], 0)
    for width in range(2, n + 1):
        for i in range(0, n - width + 1):
            j = i + width
            is_target = (i, j) == (0, n)
            mask = 0
            for split in range(i + 1, j):
                left = cells[(i, split)]
                if not left:
                    continue
                right = cells[(split, j)]
                if not right:
                    continue
                mask |= binary_step(left, right)
                if is_target and mask & target_bit:
                    return True  # early exit: the query is answered
                if mask == all_lhs:
                    break  # absorbing: no split can add a new bit
            cells[(i, j)] = mask
    return bool(cells[(0, n)] & target_bit)
