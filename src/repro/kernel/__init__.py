"""The semiring-generic chart-parsing kernel.

Every dynamic program in the repository — CYK recognition and counting,
generic-grammar parsing, Earley recognition, ambiguity detection, ranked
access, automaton path counting — is one of three loop shapes (CNF chart,
generic chart, layered path DP) instantiated over a semiring.  This
package holds those loops exactly once; the historical modules under
:mod:`repro.grammars` and :mod:`repro.automata` are thin adapters.

See ``docs/KERNEL.md`` for the semiring ↔ paper-lemma correspondence.
"""

from repro.kernel.batch import BatchedRecognizer
from repro.kernel.chart import CNFChart, cnf_bitset_tables, recognise_cnf, require_cnf
from repro.kernel.earley import EarleyChart, EarleyItem, EarleySemiringChart
from repro.kernel.fold import fold_grammar, topological_nonterminals, uniform_symbol_lengths
from repro.kernel.forest import EMPTY_FOREST, EPSILON_FOREST, FOREST, Forest, ForestSemiring
from repro.kernel.generic import GenericChart, symbol_min_lengths
from repro.kernel.paths import path_value, path_values_up_to, step_layer
from repro.kernel.prefix import PrefixDP
from repro.kernel.semiring import (
    BOOLEAN,
    COUNTING,
    SPECTRUM,
    BooleanSemiring,
    CountingSemiring,
    LengthSpectrumSemiring,
    MinLengthSemiring,
    Semiring,
)

__all__ = [
    # semirings
    "Semiring",
    "BooleanSemiring",
    "CountingSemiring",
    "MinLengthSemiring",
    "LengthSpectrumSemiring",
    "ForestSemiring",
    "BOOLEAN",
    "COUNTING",
    "SPECTRUM",
    "FOREST",
    # forests
    "Forest",
    "EMPTY_FOREST",
    "EPSILON_FOREST",
    # CNF chart
    "CNFChart",
    "require_cnf",
    "recognise_cnf",
    "cnf_bitset_tables",
    "BatchedRecognizer",
    # generic + Earley charts
    "GenericChart",
    "symbol_min_lengths",
    "EarleyItem",
    "EarleyChart",
    "EarleySemiringChart",
    # folds and path DPs
    "fold_grammar",
    "topological_nonterminals",
    "uniform_symbol_lengths",
    "PrefixDP",
    "path_value",
    "path_values_up_to",
    "step_layer",
]
