"""Earley item sets and the Earley-style semiring chart.

The item-set machinery (``O(|G|² · n³)`` recognition on grammars in any
form, ε-rules handled by the Aycock–Horspool nullable-advance) lives here
so all chart-style loops share one home.  On top of it,
:class:`EarleySemiringChart` turns the item sets into a *weighted* chart:
the boolean Earley run first narrows the chart to the spans it completed
— a superset of every span of every actual parse — and the generic
semiring filler then evaluates values only on those spans.  This is the
classic "Earley forest" construction phrased semiring-generically: for
the boolean semiring it degenerates to plain recognition; for counting,
forest, or min-length semirings it inherits Earley's top-down filtering,
which is what makes long words of the ``Θ(log n)`` Appendix A grammars
tractable without a CNF conversion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grammars.analysis import nullable_nonterminals
from repro.grammars.cfg import CFG, NonTerminal, Rule
from repro.kernel.generic import GenericChart
from repro.kernel.semiring import BOOLEAN, Semiring

__all__ = ["EarleyItem", "EarleyChart", "EarleySemiringChart"]


@dataclass(frozen=True, slots=True)
class EarleyItem:
    """A dotted rule ``A -> α • β`` started at input position ``origin``."""

    rule: Rule
    dot: int
    origin: int

    @property
    def is_complete(self) -> bool:
        return self.dot == len(self.rule.rhs)

    @property
    def next_symbol(self):
        if self.is_complete:
            return None
        return self.rule.rhs[self.dot]

    def advanced(self) -> "EarleyItem":
        return EarleyItem(self.rule, self.dot + 1, self.origin)

    def __str__(self) -> str:
        body = list(map(str, self.rule.rhs))
        body.insert(self.dot, "•")
        return f"[{self.rule.lhs} -> {' '.join(body)}, {self.origin}]"


class EarleyChart:
    """The item sets ``S_0 ... S_n`` for one grammar/word pair."""

    def __init__(self, grammar: CFG, word: str) -> None:
        self.grammar = grammar
        self.word = word
        self.nullable = nullable_nonterminals(grammar)
        n = len(word)
        self.sets: list[set[EarleyItem]] = [set() for _ in range(n + 1)]
        self._run()

    def _predict(self, position: int, symbol: NonTerminal, agenda: list[EarleyItem]) -> None:
        for rule in self.grammar.rules_for(symbol):
            item = EarleyItem(rule, 0, position)
            if item not in self.sets[position]:
                self.sets[position].add(item)
                agenda.append(item)

    def _run(self) -> None:
        n = len(self.word)
        agenda: list[EarleyItem] = []
        self._predict(0, self.grammar.start, agenda)
        for position in range(n + 1):
            if position > 0:
                # Scan from the previous set.
                ch = self.word[position - 1]
                for item in self.sets[position - 1]:
                    if item.next_symbol == ch:
                        advanced = item.advanced()
                        if advanced not in self.sets[position]:
                            self.sets[position].add(advanced)
                            agenda.append(advanced)
            # Exhaust predictions/completions at this position.
            agenda = [i for i in self.sets[position]]
            while agenda:
                item = agenda.pop()
                symbol = item.next_symbol
                if symbol is None:
                    # Complete: advance everything waiting on item.rule.lhs.
                    for waiting in list(self.sets[item.origin]):
                        if waiting.next_symbol == item.rule.lhs:
                            advanced = waiting.advanced()
                            if advanced not in self.sets[position]:
                                self.sets[position].add(advanced)
                                agenda.append(advanced)
                elif self.grammar.is_nonterminal(symbol):
                    self._predict(position, symbol, agenda)
                    # Nullable advance (Aycock-Horspool): skip over ε.
                    if symbol in self.nullable:
                        advanced = item.advanced()
                        if advanced not in self.sets[position]:
                            self.sets[position].add(advanced)
                            agenda.append(advanced)
                # Terminals are handled by the scan of the next set.

    def accepts(self) -> bool:
        """Whether the full word derives from the start symbol."""
        return any(
            item.is_complete
            and item.rule.lhs == self.grammar.start
            and item.origin == 0
            for item in self.sets[len(self.word)]
        )

    def completed_spans(self) -> set[tuple[NonTerminal, int, int]]:
        """All ``(A, i, j)`` with ``A ⇒* word[i:j]`` recognised by the run.

        (Earley only materialises spans reachable in context, so this is a
        subset of the CYK table's content but always contains every span
        of every actual parse.)
        """
        spans: set[tuple[NonTerminal, int, int]] = set()
        for j, items in enumerate(self.sets):
            for item in items:
                if item.is_complete:
                    spans.add((item.rule.lhs, item.origin, j))
        return spans


class EarleySemiringChart:
    """Semiring-valued Earley: item sets narrow, the generic filler weighs.

    Construction runs the boolean item-set pass; :meth:`value` evaluates
    the requested semiring only over completed spans, so the weighted pass
    never touches a span Earley's top-down filtering ruled out.  Both
    passes are memoised per chart — build one chart per word and reuse it
    across queries.
    """

    __slots__ = ("grammar", "word", "semiring", "items", "_spans", "_chart")

    def __init__(self, grammar: CFG, word: str, semiring: Semiring = BOOLEAN) -> None:
        self.grammar = grammar
        self.word = word
        self.semiring = semiring
        self.items = EarleyChart(grammar, word)
        self._spans = self.items.completed_spans()
        self._chart = GenericChart(grammar, word, semiring, allowed_spans=self._spans)

    def accepts(self) -> bool:
        """Boolean acceptance, straight from the item sets (no second pass)."""
        return self.items.accepts()

    def completed_spans(self) -> set[tuple[NonTerminal, int, int]]:
        return set(self._spans)

    def value(self, symbol: NonTerminal | None = None, span: tuple[int, int] | None = None):
        """The semiring value for ``symbol`` over ``word[span]``."""
        return self._chart.value(symbol, span)
