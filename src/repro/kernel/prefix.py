"""The sentential-form prefix DP, semiring-parameterized.

Length-lexicographic ranked access (the database-style direct access of
[4]/[24] on unambiguous grammars) reduces to one question: how many
length-``ℓ`` words derivable from a sentential form start with a given
prefix?  That is a chart-style DP over (form, prefix, length) triples,
and — like every other DP in the repository — it is semiring-generic:
the counting semiring gives exact ranks, the boolean semiring gives a
cheap "does any word continue this prefix" pruning test.

Only *unlabelled* semirings (``finish`` = identity) are supported: rule
bodies are spliced into the sentential form rather than evaluated in
isolation, so there is no completed body to wrap.
"""

from __future__ import annotations

from repro.grammars.cfg import CFG, Symbol
from repro.kernel.semiring import COUNTING, Semiring

__all__ = ["PrefixDP"]


class PrefixDP:
    """Memoised prefix-constrained derivation values for one grammar.

    ``value(form, prefix, length)`` is the ``⊕``-sum over derivations of
    length-``length`` words from ``form`` that start with ``prefix``
    (with the counting semiring: the number of such derivations, which
    equals the word count for unambiguous grammars).  The memo is held by
    the instance and shared across queries — one ``PrefixDP`` per ranked
    language, reused by every rank/unrank call.
    """

    __slots__ = ("grammar", "semiring", "_memo")

    def __init__(self, grammar: CFG, semiring: Semiring = COUNTING) -> None:
        self.grammar = grammar
        self.semiring = semiring
        self._memo: dict[tuple[tuple[Symbol, ...], str, int], object] = {}

    def value(self, form: tuple[Symbol, ...], prefix: str, length: int):
        sr = self.semiring
        if length < len(prefix):
            return sr.zero
        key = (form, prefix, length)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if not form:
            result = sr.one if (not prefix and length == 0) else sr.zero
        else:
            head, rest = form[0], form[1:]
            if self.grammar.is_terminal(head):
                if not prefix:
                    result = sr.mul(sr.terminal(head), self.value(rest, "", length - 1))
                elif prefix[0] == head:
                    result = sr.mul(sr.terminal(head), self.value(rest, prefix[1:], length - 1))
                else:
                    result = sr.zero
            else:
                result = sr.zero
                for rule in self.grammar.rules_for(head):
                    result = sr.add(result, self.value(rule.rhs + rest, prefix, length))
                    if sr.is_absorbing(result):
                        break
        self._memo[key] = result
        return result
