"""Layered path values in automata: the transfer-matrix DP, any semiring.

Counting accepted words with a DFA, counting accepting runs of an NFA
(which over-counts words exactly by run ambiguity — the UFA story of
Theorem 1, one level below grammars), and plain reachability are all the
same forward dynamic program over states; the semiring decides which.
The automaton is presented abstractly as a ``successors`` callable so
DFAs (one successor per defined symbol) and NFAs (a set per symbol) share
the loop.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

from repro.kernel.semiring import COUNTING, Semiring

__all__ = ["step_layer", "path_value", "path_values_up_to"]

State = Hashable


def step_layer(
    weights: dict[State, object],
    successors: Callable[[State], Iterable[State]],
    semiring: Semiring,
) -> dict[State, object]:
    """Push one layer of weights across the transition relation.

    ``successors(state)`` yields successor states *with multiplicity*
    (one occurrence per transition), which is what makes the counting
    semiring count runs rather than reachable states.
    """
    sr = semiring
    nxt: dict[State, object] = {}
    for state, weight in weights.items():
        for succ in successors(state):
            prior = nxt.get(succ)
            nxt[succ] = weight if prior is None else sr.add(prior, weight)
    return nxt


def _accepting_total(weights: dict[State, object], accepting, semiring: Semiring):
    total = semiring.zero
    for state, weight in weights.items():
        if state in accepting:
            total = semiring.add(total, weight)
    return total


def path_value(
    successors: Callable[[State], Iterable[State]],
    initial: Iterable[State],
    accepting,
    length: int,
    semiring: Semiring = COUNTING,
):
    """The ``⊕``-sum over all length-``length`` initial→accepting paths.

    With the counting semiring this is the number of such paths; with the
    boolean semiring, whether one exists.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    sr = semiring
    weights: dict[State, object] = {state: sr.one for state in initial}
    for _ in range(length):
        weights = step_layer(weights, successors, sr)
    return _accepting_total(weights, accepting, sr)


def path_values_up_to(
    successors: Callable[[State], Iterable[State]],
    initial: Iterable[State],
    accepting,
    max_length: int,
    semiring: Semiring = COUNTING,
) -> dict[int, object]:
    """``{length: path value}`` for every length up to the bound."""
    if max_length < 0:
        raise ValueError(f"max_length must be non-negative, got {max_length}")
    sr = semiring
    weights: dict[State, object] = {state: sr.one for state in initial}
    values = {0: _accepting_total(weights, accepting, sr)}
    for length in range(1, max_length + 1):
        weights = step_layer(weights, successors, sr)
        values[length] = _accepting_total(weights, accepting, sr)
    return values
