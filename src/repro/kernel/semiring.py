"""The semiring protocol: one algebra, every chart computation.

Every quantitative check in the reproduction — recognition, exact
parse-tree counting, ambiguity detection, shortest-derivation extraction,
tree enumeration, automaton path counting — is the *same* dynamic program
instantiated over a different semiring.  The paper exploits exactly this
coincidence: unambiguity is what makes the counting semiring agree with
the word count (Section 2), determinism is what makes it agree for
automata (the UFA story of Theorem 1), and the boolean projection is
plain membership.

A :class:`Semiring` supplies the classic ``(⊕, ⊗, 0̄, 1̄)`` structure plus
two chart-specific hooks:

* ``terminal(symbol)`` — the value contributed by consuming one terminal
  occurrence (``1̄`` for scalar semirings, a leaf for forests);
* ``finish(rule, value)`` — wraps the finished product of a rule's body
  values into the value of the rule's left-hand side occurrence (the
  identity for scalar semirings; tree-node construction for forests,
  cost-and-trace accounting for shortest derivations).

The value of a derivation is then ``finish(rule, ⊗ child values)``
applied recursively, and a chart cell holds the ``⊕``-sum over all
derivations of its span.  ``is_absorbing`` enables early exit: once a
cell's accumulator hits an absorbing element (``True`` in the boolean
semiring), no further derivation can change it.
"""

from __future__ import annotations

from typing import Any

from repro.grammars.cfg import Rule

__all__ = [
    "Semiring",
    "BooleanSemiring",
    "CountingSemiring",
    "MinLengthSemiring",
    "LengthSpectrumSemiring",
    "BOOLEAN",
    "COUNTING",
    "SPECTRUM",
]


class Semiring:
    """Base class for chart semirings; subclasses set ``zero``/``one``.

    The default hooks make any plain ``(⊕, ⊗)`` pair usable by the chart
    fillers: ``terminal`` returns ``one``, ``finish`` is the identity, and
    nothing is absorbing.  ``is_zero`` is how the fillers decide not to
    store a cell entry — the default structural comparison with ``zero``
    is right for every built-in instance.
    """

    zero: Any = None
    one: Any = None

    def add(self, a: Any, b: Any) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def mul(self, a: Any, b: Any) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def terminal(self, symbol: str) -> Any:
        """The value of consuming one occurrence of ``symbol``."""
        return self.one

    def finish(self, rule: Rule, value: Any) -> Any:
        """Wrap the finished body product of ``rule`` into an lhs value."""
        return value

    def is_zero(self, value: Any) -> bool:
        """Whether ``value`` is the additive identity (cells skip it)."""
        return value == self.zero

    def is_absorbing(self, value: Any) -> bool:
        """Whether ``value ⊕ x = value`` for every ``x`` (early exit)."""
        return False


class BooleanSemiring(Semiring):
    """``({False, True}, or, and)`` — recognition.

    ``True`` is absorbing, so chart cells stop accumulating as soon as a
    span is known derivable; the bitset fast path in
    :mod:`repro.kernel.chart` is this semiring vectorised over all
    non-terminals at once.
    """

    zero = False
    one = True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def mul(self, a: bool, b: bool) -> bool:
        return a and b

    def is_absorbing(self, value: bool) -> bool:
        return value


class CountingSemiring(Semiring):
    """``(ℕ, +, ×)`` over exact Python big ints — parse-tree counting.

    Never floats: grammar ambiguity makes counts astronomically large
    (the Example 4 uCFG counts explode doubly exponentially) and every
    downstream consumer — unambiguity checks, ranked access, the
    Theorem 1 table — needs them exact.
    """

    zero = 0
    one = 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b


class MinLengthSemiring(Semiring):
    """Shortest (then lexicographically least) derivation extraction.

    Values are ``None`` (no derivation) or ``(cost, trace)`` where
    ``cost`` counts rule applications and ``trace`` is the preorder tuple
    of rule indices (in grammar declaration order).  ``⊕`` is ``min`` by
    tuple comparison — derivations with fewer rule applications win, ties
    break to the lexicographically least trace — and ``⊗`` concatenates
    traces, so ``finish`` prepending the applied rule's index yields the
    preorder encoding.  :meth:`tree` decodes a value back into the unique
    :class:`~repro.grammars.trees.ParseTree` it denotes.

    The semiring is grammar-specific (it needs the rule numbering), hence
    constructed per grammar rather than exposed as a singleton.
    """

    zero = None

    def __init__(self, grammar) -> None:
        self._grammar = grammar
        self._index = {rule: i for i, rule in enumerate(grammar.rules)}
        self._rules = grammar.rules
        self.one = (0, ())

    def add(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a if a <= b else b

    def mul(self, a, b):
        if a is None or b is None:
            return None
        return (a[0] + b[0], a[1] + b[1])

    def finish(self, rule: Rule, value):
        if value is None:
            return None
        return (value[0] + 1, (self._index[rule],) + value[1])

    def cost(self, value) -> int | None:
        """The number of rule applications of the encoded derivation."""
        return None if value is None else value[0]

    def tree(self, value):
        """Decode a chart value into the parse tree it encodes."""
        from repro.grammars.trees import leaf, node

        if value is None:
            raise ValueError("cannot decode a tree from the zero value")
        trace = value[1]
        position = 0

        def build():
            nonlocal position
            rule = self._rules[trace[position]]
            position += 1
            children = []
            for sym in rule.rhs:
                if self._grammar.is_terminal(sym):
                    children.append(leaf(sym))
                else:
                    children.append(build())
            return node(rule.lhs, tuple(children))

        tree = build()
        if position != len(trace):
            raise ValueError(f"trace {trace!r} not fully consumed")
        return tree


class LengthSpectrumSemiring(Semiring):
    """Length-indexed counting: values are ``{length: #derivations}``.

    ``⊗`` is polynomial convolution and ``⊕`` pointwise addition, so the
    grammar fold over this semiring computes the full derivation spectrum
    in one pass — for unambiguous grammars, the exact word-count spectrum
    of the language (the quantity behind the Theorem 1 table rows).
    Values are treated as immutable: ``add``/``mul`` always build fresh
    dicts.
    """

    zero: dict[int, int] = {}
    one: dict[int, int] = {0: 1}

    def add(self, a: dict[int, int], b: dict[int, int]) -> dict[int, int]:
        out = dict(a)
        for length, count in b.items():
            out[length] = out.get(length, 0) + count
        return out

    def mul(self, a: dict[int, int], b: dict[int, int]) -> dict[int, int]:
        out: dict[int, int] = {}
        for l1, c1 in a.items():
            for l2, c2 in b.items():
                out[l1 + l2] = out.get(l1 + l2, 0) + c1 * c2
        return out

    def terminal(self, symbol: str) -> dict[int, int]:
        return {1: 1}


#: Shared stateless instances (grammar-specific semirings are per-grammar).
BOOLEAN = BooleanSemiring()
COUNTING = CountingSemiring()
SPECTRUM = LengthSpectrumSemiring()
