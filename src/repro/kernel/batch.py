"""Batched boolean chart fill: one chart, many words, shared prefixes.

The hot path of every ``L_n`` sweep is membership of *many* words under
one grammar.  Filling a fresh chart per word repeats all work below the
longest common prefix of consecutive words; this filler processes words
in sorted order and keeps every chart cell ``(i, j)`` whose span lies
inside the shared prefix, so only the suffix of the chart is refilled.
Cells are bitset-packed (one machine integer per cell, as in
:func:`repro.kernel.chart.recognise_cnf`), which combined with prefix
sharing is what makes the batched path beat per-word recognition on the
``parsing.bench`` trajectory.
"""

from __future__ import annotations

from repro.grammars.cfg import CFG, NonTerminal
from repro.kernel.chart import cnf_bitset_tables

__all__ = ["BatchedRecognizer"]


class BatchedRecognizer:
    """Bitset membership for many words under one CNF grammar.

    The per-grammar rule tables are computed once at construction; the
    chart state persists between :meth:`recognises` calls, keyed by the
    word prefix it was filled for.  Feed words in sorted order (or use
    :meth:`recognise_many`, which sorts internally) to maximise reuse.
    """

    __slots__ = ("grammar", "_index", "_unary", "_binary", "_epsilon", "_all_lhs", "_word", "_cells")

    def __init__(self, grammar: CFG) -> None:
        self.grammar = grammar
        index, unary, binary, epsilon = cnf_bitset_tables(grammar)
        self._index = index
        self._unary = unary
        self._binary = binary
        self._epsilon = epsilon
        all_lhs = 0
        for lhs_mask, _, _ in binary:
            all_lhs |= lhs_mask
        self._all_lhs = all_lhs
        self._word = ""
        self._cells: dict[tuple[int, int], int] = {}

    def recognises(self, word: str, symbol: NonTerminal | None = None) -> bool:
        """Membership of one word, reusing cells shared with the last word.

        A cell ``(i, j)`` only depends on ``word[i:j]``, so every cell
        with ``j`` at most the longest common prefix with the previous
        word is still valid and is kept.
        """
        symbol = symbol if symbol is not None else self.grammar.start
        target_bit = 1 << self._index[symbol]
        n = len(word)
        if n == 0:
            return bool(self._epsilon & target_bit)
        previous = self._word
        lcp = 0
        limit = min(len(previous), n)
        while lcp < limit and previous[lcp] == word[lcp]:
            lcp += 1
        cells = self._cells
        if lcp < len(previous):
            stale = [span for span in cells if span[1] > lcp]
            for span in stale:
                del cells[span]
        self._word = word
        unary = self._unary
        binary = self._binary
        all_lhs = self._all_lhs
        # Fill by end position: cell (i, j) needs (i, k) with k < j (older
        # end positions, cached or just built) and (k, j) with k > i (same
        # end position, built first by the descending-i inner loop).
        for j in range(lcp + 1, n + 1):
            cells[(j - 1, j)] = unary.get(word[j - 1], 0)
            for i in range(j - 2, -1, -1):
                mask = 0
                for split in range(i + 1, j):
                    left = cells[(i, split)]
                    if not left:
                        continue
                    right = cells[(split, j)]
                    if not right:
                        continue
                    for lhs_mask, b_mask, c_mask in binary:
                        if left & b_mask and right & c_mask:
                            mask |= lhs_mask
                    if mask == all_lhs:
                        break
                cells[(i, j)] = mask
        return bool(cells[(0, n)] & target_bit)

    def recognise_many(self, words) -> dict[str, bool]:
        """Membership for a batch of words, sorted internally for sharing."""
        return {word: self.recognises(word) for word in sorted(set(words))}
