"""Packed derivation forests: the semiring of "all parse trees at once".

A chart cell over this semiring holds a *shared-packed parse forest* — a
DAG whose alternatives mirror the ``⊕`` structure of the chart and whose
concatenations mirror ``⊗``.  Sub-forests are shared between cells, so
the forest is polynomial-sized even when it encodes exponentially many
trees (the situation Figure 1 of the paper illustrates: an ambiguous
grammar whose words have many parse trees).

Forests support exact counting (agreeing with the counting semiring by
construction) and lazy, deterministic enumeration of the encoded trees —
which is how ``count ≥ 2`` is turned into a two-tree ambiguity witness
without re-parsing.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.grammars.cfg import Rule
from repro.grammars.trees import ParseTree, leaf, node
from repro.kernel.semiring import Semiring

__all__ = ["Forest", "ForestSemiring", "FOREST", "EMPTY_FOREST", "EPSILON_FOREST"]


class Forest:
    """A node of a packed forest; iterates as tuples of parse trees.

    Each enumeration element is a *sequence* of trees (the children built
    so far for some rule body); a completed non-terminal occurrence is a
    one-element sequence.  Enumeration order is deterministic: alternative
    insertion order, concatenations left-major.
    """

    __slots__ = ("_count",)

    def __init__(self) -> None:
        self._count: int | None = None

    def count(self) -> int:
        """The exact number of encoded sequences (memoised, big-int)."""
        if self._count is None:
            self._count = self._compute_count()
        return self._count

    def _compute_count(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __iter__(self) -> Iterator[tuple[ParseTree, ...]]:  # pragma: no cover - abstract
        raise NotImplementedError

    def trees(self) -> Iterator[ParseTree]:
        """Yield the encoded parse trees (one-element sequences unpacked)."""
        for sequence in self:
            (tree,) = sequence
            yield tree


class _Empty(Forest):
    """The zero forest: no sequences at all."""

    __slots__ = ()

    def _compute_count(self) -> int:
        return 0

    def __iter__(self) -> Iterator[tuple[ParseTree, ...]]:
        return iter(())


class _Epsilon(Forest):
    """The unit forest: exactly the empty sequence."""

    __slots__ = ()

    def _compute_count(self) -> int:
        return 1

    def __iter__(self) -> Iterator[tuple[ParseTree, ...]]:
        yield ()


class _Leaf(Forest):
    """One terminal leaf."""

    __slots__ = ("symbol",)

    def __init__(self, symbol: str) -> None:
        super().__init__()
        self.symbol = symbol

    def _compute_count(self) -> int:
        return 1

    def __iter__(self) -> Iterator[tuple[ParseTree, ...]]:
        yield (leaf(self.symbol),)


class _Apply(Forest):
    """A rule application: every body sequence becomes one rooted tree."""

    __slots__ = ("rule", "body")

    def __init__(self, rule: Rule, body: Forest) -> None:
        super().__init__()
        self.rule = rule
        self.body = body

    def _compute_count(self) -> int:
        return self.body.count()

    def __iter__(self) -> Iterator[tuple[ParseTree, ...]]:
        for sequence in self.body:
            yield (node(self.rule.lhs, sequence),)


class _Cat(Forest):
    """Concatenation of two forests (left-major enumeration order)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Forest, right: Forest) -> None:
        super().__init__()
        self.left = left
        self.right = right

    def _compute_count(self) -> int:
        return self.left.count() * self.right.count()

    def __iter__(self) -> Iterator[tuple[ParseTree, ...]]:
        for head in self.left:
            for tail in self.right:
                yield head + tail


class _Alt(Forest):
    """Union of alternatives, enumerated in insertion order."""

    __slots__ = ("parts",)

    def __init__(self, parts: tuple[Forest, ...]) -> None:
        super().__init__()
        self.parts = parts

    def _compute_count(self) -> int:
        return sum(part.count() for part in self.parts)

    def __iter__(self) -> Iterator[tuple[ParseTree, ...]]:
        for part in self.parts:
            yield from part


#: The two structural constants, shared across all charts.
EMPTY_FOREST = _Empty()
EPSILON_FOREST = _Epsilon()


class ForestSemiring(Semiring):
    """The chart semiring whose values are packed derivation forests.

    ``⊕`` unions alternatives (flattening nested unions so enumeration
    order matches chart accumulation order), ``⊗`` concatenates child
    sequences, and ``finish`` roots a completed body in a tree node.  All
    identity cases short-circuit, so forests contain no degenerate nodes
    and sharing is maximal: a chart cell's forest references the child
    cells' forests directly.
    """

    zero = EMPTY_FOREST
    one = EPSILON_FOREST

    def add(self, a: Forest, b: Forest) -> Forest:
        if a is EMPTY_FOREST:
            return b
        if b is EMPTY_FOREST:
            return a
        left = a.parts if isinstance(a, _Alt) else (a,)
        right = b.parts if isinstance(b, _Alt) else (b,)
        return _Alt(left + right)

    def mul(self, a: Forest, b: Forest) -> Forest:
        if a is EMPTY_FOREST or b is EMPTY_FOREST:
            return EMPTY_FOREST
        if a is EPSILON_FOREST:
            return b
        if b is EPSILON_FOREST:
            return a
        return _Cat(a, b)

    def terminal(self, symbol: str) -> Forest:
        return _Leaf(symbol)

    def finish(self, rule: Rule, value: Forest) -> Forest:
        if value is EMPTY_FOREST:
            return EMPTY_FOREST
        return _Apply(rule, value)

    def is_zero(self, value: Forest) -> bool:
        return value is EMPTY_FOREST


FOREST = ForestSemiring()
