"""Probe/loader for the optional compiled kernels (``repro._cext.kernels``).

The extension is an *optional artifact*: it exists only when someone ran
``python setup.py build_ext --inplace`` (or ``pip install -e .``) on a
machine with a C compiler.  Nothing in this repository hard-depends on
it — :func:`load` returns ``None`` when the artifact is absent, and
:func:`unavailable_reason` says why, which ``python -m repro backends``
surfaces verbatim.

The probe also enforces the limb ABI: a stale ``.so`` built against a
different buffer contract (``ABI_VERSION``/``LIMB_BYTES`` mismatch) is
treated as unavailable rather than half-used.
"""

from __future__ import annotations

from types import ModuleType

__all__ = ["EXPECTED_ABI_VERSION", "load", "unavailable_reason"]

#: The buffer contract this Python tier speaks; must match the compiled
#: module's ``ABI_VERSION`` (see the header comment of ``kernels.c``).
EXPECTED_ABI_VERSION = 1

_BUILD_HINT = (
    "build it with `python setup.py build_ext --inplace` (or `pip install -e .`) "
    "on a machine with a C compiler"
)

_kernels: ModuleType | None = None
_reason: str | None = None
_probed = False


def _probe() -> None:
    global _kernels, _reason, _probed
    _probed = True
    try:
        from repro._cext import kernels
    except ImportError as exc:
        _reason = f"compiled artifact not importable ({exc}); {_BUILD_HINT}"
        return
    abi = getattr(kernels, "ABI_VERSION", None)
    limb = getattr(kernels, "LIMB_BYTES", None)
    if abi != EXPECTED_ABI_VERSION or limb != 8:
        _reason = (
            f"stale artifact: ABI_VERSION={abi!r} LIMB_BYTES={limb!r}, expected "
            f"{EXPECTED_ABI_VERSION}/8; rebuild it ({_BUILD_HINT})"
        )
        return
    _kernels = kernels


def load() -> ModuleType | None:
    """The compiled kernels module, or ``None`` (probe once, cache)."""
    if not _probed:
        _probe()
    return _kernels


def unavailable_reason() -> str | None:
    """Why :func:`load` returns ``None`` (``None`` when it doesn't)."""
    if not _probed:
        _probe()
    return _reason
