/* repro._cext.kernels — fixed-width u64-limb kernels for the cext backend.
 *
 * The Python side (repro/backend/cext.py) converts big-int masks into
 * little-endian u64-limb byte buffers via repro.backend.limbs and calls
 * down into this module; results travel back either as machine ints or
 * as freshly built Python ints.  The contract, pinned by LIMB_BYTES and
 * ABI_VERSION below and re-checked by the probe at import time:
 *
 *   - every mask buffer is little-endian, a whole number of 8-byte
 *     limbs wide (mask_to_limbs), except where a kernel documents that
 *     it accepts the minimal byte width (mask_to_bytes);
 *   - a batch of masks is the concatenation of equal-width rows
 *     (masks_to_limbs), indexed here as row * n_limbs + limb;
 *   - kernels never allocate Python objects inside their inner loops —
 *     work happens on flat uint64_t arrays, and results are converted
 *     once at the end.
 *
 * Only kernels whose exact-integer semantics survive fixed-width limbs
 * live here: popcounts, bit enumeration, transposes, chunked
 * subset-construction step tables, GF(2) elimination, Hopcroft splits,
 * rectangle cell masks.  Anything needing unbounded integers (Bareiss,
 * transfer-matrix products, the SWAR bilinear sweep) stays in Python,
 * delegated to the inherited reference/words kernels.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

#define LIMB_BYTES 8
#define LIMB_BITS 64
/* Bump when the buffer contract above changes; cext.py refuses to use a
 * stale artifact whose ABI_VERSION it does not expect. */
#define ABI_VERSION 1

/* Interned "bit_count" for popcount_rows; set once at module init. */
static PyObject *state_str_bit_count = NULL;

#if defined(__GNUC__) || defined(__clang__)
#define POPCOUNT64(x) ((int)__builtin_popcountll(x))
#define CTZ64(x) ((int)__builtin_ctzll(x))
#define CLZ64(x) ((int)__builtin_clzll(x))
#else
static int POPCOUNT64(uint64_t x) {
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
    return (int)((x * 0x0101010101010101ULL) >> 56);
}
static int CTZ64(uint64_t x) {
    int n = 0;
    while (!(x & 1)) { x >>= 1; n++; }
    return n;
}
static int CLZ64(uint64_t x) {
    int n = 0;
    while (!(x >> 63)) { x <<= 1; n++; }
    return n;
}
#endif

/* ------------------------------------------------------------------ */
/* Buffer plumbing                                                     */
/* ------------------------------------------------------------------ */

/* Read a uint64 limb from a byte buffer that may not be limb-aligned at
 * its tail (minimal-width mask_to_bytes buffers). */
static uint64_t
read_limb(const unsigned char *buf, Py_ssize_t len, Py_ssize_t limb)
{
    Py_ssize_t base = limb * LIMB_BYTES;
    Py_ssize_t avail = len - base;
    if (avail >= LIMB_BYTES) {
        uint64_t value;
        memcpy(&value, buf + base, LIMB_BYTES);
#if PY_BIG_ENDIAN
        value = __builtin_bswap64(value);
#endif
        return value;
    }
    uint64_t value = 0;
    for (Py_ssize_t i = 0; i < avail; i++)
        value |= (uint64_t)buf[base + i] << (8 * i);
    return value;
}

static PyObject *
int_from_limbs(const unsigned char *buf, size_t n_bytes)
{
#if PY_VERSION_HEX >= 0x030D0000
    return PyLong_FromNativeBytes(
        buf, n_bytes,
        Py_ASNATIVEBYTES_LITTLE_ENDIAN | Py_ASNATIVEBYTES_UNSIGNED_BUFFER);
#else
    return _PyLong_FromByteArray(buf, n_bytes, /*little_endian=*/1, /*is_signed=*/0);
#endif
}

#if PY_BIG_ENDIAN
/* Little-endian store of limbs into an output byte buffer. */
static void
store_limbs(unsigned char *out, const uint64_t *limbs, Py_ssize_t n_limbs)
{
    for (Py_ssize_t i = 0; i < n_limbs; i++) {
        uint64_t value = __builtin_bswap64(limbs[i]);
        memcpy(out + i * LIMB_BYTES, &value, LIMB_BYTES);
    }
}
#endif

static PyObject *
int_from_u64(const uint64_t *limbs, Py_ssize_t n_limbs)
{
#if PY_BIG_ENDIAN
    PyObject *result;
    unsigned char *tmp = PyMem_Malloc((size_t)n_limbs * LIMB_BYTES);
    if (tmp == NULL)
        return PyErr_NoMemory();
    store_limbs(tmp, limbs, n_limbs);
    result = int_from_limbs(tmp, (size_t)n_limbs * LIMB_BYTES);
    PyMem_Free(tmp);
    return result;
#else
    return int_from_limbs((const unsigned char *)limbs, (size_t)n_limbs * LIMB_BYTES);
#endif
}

static Py_ssize_t
limb_count(Py_ssize_t n_bytes)
{
    return (n_bytes + LIMB_BYTES - 1) / LIMB_BYTES;
}

/* ------------------------------------------------------------------ */
/* popcount / bit enumeration                                          */
/* ------------------------------------------------------------------ */

static PyObject *
kernels_popcount(PyObject *Py_UNUSED(self), PyObject *arg)
{
    Py_buffer view;
    if (PyObject_GetBuffer(arg, &view, PyBUF_SIMPLE) < 0)
        return NULL;
    const unsigned char *buf = view.buf;
    Py_ssize_t n_limbs = limb_count(view.len);
    unsigned long long total = 0;
    for (Py_ssize_t i = 0; i < n_limbs; i++)
        total += (unsigned long long)POPCOUNT64(read_limb(buf, view.len, i));
    PyBuffer_Release(&view);
    return PyLong_FromUnsignedLongLong(total);
}

static PyObject *
kernels_popcount_rows(PyObject *Py_UNUSED(self), PyObject *arg)
{
    /* Sum of int.bit_count over a sequence of Python ints.  The win is
     * hoisting the loop (no generator frame, no boxed running sum); the
     * per-element popcount is CPython's own C implementation. */
    PyObject *seq = PySequence_Fast(arg, "popcount_rows expects a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    unsigned long long total = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *count = PyObject_CallMethodNoArgs(items[i], state_str_bit_count);
        if (count == NULL) {
            Py_DECREF(seq);
            return NULL;
        }
        unsigned long long value = PyLong_AsUnsignedLongLong(count);
        Py_DECREF(count);
        if (value == (unsigned long long)-1 && PyErr_Occurred()) {
            Py_DECREF(seq);
            return NULL;
        }
        total += value;
    }
    Py_DECREF(seq);
    return PyLong_FromUnsignedLongLong(total);
}

static PyObject *
kernels_bit_indices(PyObject *Py_UNUSED(self), PyObject *arg)
{
    Py_buffer view;
    if (PyObject_GetBuffer(arg, &view, PyBUF_SIMPLE) < 0)
        return NULL;
    const unsigned char *buf = view.buf;
    Py_ssize_t n_limbs = limb_count(view.len);

    /* First pass: size the list exactly, so appends never reallocate. */
    Py_ssize_t total = 0;
    for (Py_ssize_t i = 0; i < n_limbs; i++)
        total += POPCOUNT64(read_limb(buf, view.len, i));
    PyObject *list = PyList_New(total);
    if (list == NULL) {
        PyBuffer_Release(&view);
        return NULL;
    }
    Py_ssize_t out = 0;
    for (Py_ssize_t i = 0; i < n_limbs; i++) {
        uint64_t limb = read_limb(buf, view.len, i);
        long long base = (long long)i * LIMB_BITS;
        while (limb) {
            int bit = CTZ64(limb);
            PyObject *index = PyLong_FromLongLong(base + bit);
            if (index == NULL) {
                Py_DECREF(list);
                PyBuffer_Release(&view);
                return NULL;
            }
            PyList_SET_ITEM(list, out++, index);
            limb &= limb - 1;
        }
    }
    PyBuffer_Release(&view);
    return list;
}

/* ------------------------------------------------------------------ */
/* transpose_masks                                                     */
/* ------------------------------------------------------------------ */

static PyObject *
kernels_transpose(PyObject *Py_UNUSED(self), PyObject *args)
{
    Py_buffer rows;
    Py_ssize_t n_rows, n_cols;
    if (!PyArg_ParseTuple(args, "y*nn:transpose", &rows, &n_rows, &n_cols))
        return NULL;
    Py_ssize_t row_limbs = n_cols > 0 ? (n_cols + LIMB_BITS - 1) / LIMB_BITS : 1;
    if (rows.len != n_rows * row_limbs * LIMB_BYTES) {
        PyBuffer_Release(&rows);
        return PyErr_Format(PyExc_ValueError,
                            "transpose: buffer holds %zd bytes, expected %zd",
                            rows.len, n_rows * row_limbs * LIMB_BYTES);
    }
    Py_ssize_t col_stride = ((n_rows + LIMB_BITS - 1) / LIMB_BITS) * LIMB_BYTES;
    if (n_rows == 0)
        col_stride = LIMB_BYTES;
    PyObject *out_bytes = PyBytes_FromStringAndSize(NULL, n_cols * col_stride);
    if (out_bytes == NULL) {
        PyBuffer_Release(&rows);
        return NULL;
    }
    unsigned char *out = (unsigned char *)PyBytes_AS_STRING(out_bytes);
    memset(out, 0, (size_t)(n_cols * col_stride));
    const unsigned char *buf = rows.buf;
    for (Py_ssize_t i = 0; i < n_rows; i++) {
        const unsigned char *row = buf + i * row_limbs * LIMB_BYTES;
        Py_ssize_t row_len = row_limbs * LIMB_BYTES;
        unsigned char row_bit = (unsigned char)(1u << (i & 7));
        Py_ssize_t row_byte = i >> 3;
        for (Py_ssize_t w = 0; w < row_limbs; w++) {
            uint64_t limb = read_limb(row, row_len, w);
            long long base = (long long)w * LIMB_BITS;
            while (limb) {
                long long j = base + CTZ64(limb);
                limb &= limb - 1;
                if (j >= n_cols)  /* contract violation; stay memory-safe */
                    continue;
                out[j * col_stride + row_byte] |= row_bit;
            }
        }
    }
    PyBuffer_Release(&rows);
    return out_bytes;
}

/* ------------------------------------------------------------------ */
/* fold_rows (one-shot OR-fold over Python int rows)                   */
/* ------------------------------------------------------------------ */

static PyObject *
kernels_fold_rows(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *table;
    Py_buffer mask;
    if (!PyArg_ParseTuple(args, "Oy*:fold_rows", &table, &mask))
        return NULL;
    PyObject *seq = PySequence_Fast(table, "fold_rows expects a sequence");
    if (seq == NULL) {
        PyBuffer_Release(&mask);
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    const unsigned char *buf = mask.buf;
    Py_ssize_t n_limbs = limb_count(mask.len);
    PyObject *acc = PyLong_FromLong(0);
    if (acc == NULL)
        goto fail;
    for (Py_ssize_t w = 0; w < n_limbs; w++) {
        uint64_t limb = read_limb(buf, mask.len, w);
        long long base = (long long)w * LIMB_BITS;
        while (limb) {
            long long i = base + CTZ64(limb);
            limb &= limb - 1;
            if (i >= n) {
                PyErr_Format(PyExc_IndexError,
                             "fold_rows: bit %lld out of range for table of %zd",
                             i, n);
                Py_DECREF(acc);
                goto fail;
            }
            PyObject *merged = PyNumber_InPlaceOr(acc, items[i]);
            Py_DECREF(acc);
            if (merged == NULL)
                goto fail;
            acc = merged;
        }
    }
    Py_DECREF(seq);
    PyBuffer_Release(&mask);
    return acc;
fail:
    Py_DECREF(seq);
    PyBuffer_Release(&mask);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* StepTable: chunked subset-construction step tables                  */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    /* entries[(chunk * 256 + byte) * n_limbs + w]: the OR of the rows
     * selected by `byte` within 8-row chunk `chunk`, as u64 limbs. */
    uint64_t *entries;
    Py_ssize_t n_chunks;
    Py_ssize_t n_limbs;     /* limbs per successor mask */
    Py_ssize_t mask_bytes;  /* expected input buffer width */
} StepTable;

static void
StepTable_dealloc(StepTable *self)
{
    PyMem_Free(self->entries);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
StepTable_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    Py_buffer table;
    Py_ssize_t n_states;
    static char *keywords[] = {"table", "n_states", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "y*n:StepTable", keywords,
                                     &table, &n_states))
        return NULL;
    if (n_states <= 0) {
        PyBuffer_Release(&table);
        return PyErr_Format(PyExc_ValueError, "StepTable: n_states must be positive");
    }
    Py_ssize_t n_limbs = (n_states + LIMB_BITS - 1) / LIMB_BITS;
    Py_ssize_t row_bytes = n_limbs * LIMB_BYTES;
    if (table.len != n_states * row_bytes) {
        Py_ssize_t got = table.len;
        PyBuffer_Release(&table);
        return PyErr_Format(PyExc_ValueError,
                            "StepTable: buffer holds %zd bytes, expected %zd",
                            got, n_states * row_bytes);
    }
    Py_ssize_t n_chunks = (n_states + 7) / 8;
    StepTable *self = (StepTable *)type->tp_alloc(type, 0);
    if (self == NULL) {
        PyBuffer_Release(&table);
        return NULL;
    }
    self->n_chunks = n_chunks;
    self->n_limbs = n_limbs;
    self->mask_bytes = row_bytes;
    self->entries = PyMem_Calloc((size_t)(n_chunks * 256 * n_limbs), LIMB_BYTES);
    if (self->entries == NULL) {
        PyBuffer_Release(&table);
        Py_DECREF(self);
        return PyErr_NoMemory();
    }
    const unsigned char *rows = table.buf;
    /* entry[v] = entry[v ^ lowbit(v)] | row[chunk*8 + ctz(v)] — one OR
     * per entry, the same doubling the words backend uses. */
    for (Py_ssize_t c = 0; c < n_chunks; c++) {
        int width = (int)(n_states - c * 8 < 8 ? n_states - c * 8 : 8);
        uint64_t *chunk = self->entries + c * 256 * n_limbs;
        for (int v = 1; v < (1 << width); v++) {
            int low = v & -v;
            int bit = CTZ64((uint64_t)low);
            const unsigned char *row = rows + (c * 8 + bit) * row_bytes;
            const uint64_t *prev = chunk + (Py_ssize_t)(v ^ low) * n_limbs;
            uint64_t *dst = chunk + (Py_ssize_t)v * n_limbs;
            for (Py_ssize_t w = 0; w < n_limbs; w++)
                dst[w] = prev[w] | read_limb(row, row_bytes, w);
        }
    }
    PyBuffer_Release(&table);
    return (PyObject *)self;
}

static PyObject *
StepTable_call(StepTable *self, PyObject *args, PyObject *kwds)
{
    Py_buffer mask;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0)
        return PyErr_Format(PyExc_TypeError, "StepTable takes no keyword arguments");
    if (!PyArg_ParseTuple(args, "y*:StepTable.__call__", &mask))
        return NULL;
    if (mask.len != self->mask_bytes) {
        Py_ssize_t got = mask.len;
        PyBuffer_Release(&mask);
        return PyErr_Format(PyExc_ValueError,
                            "StepTable: mask buffer holds %zd bytes, expected %zd",
                            got, self->mask_bytes);
    }
    Py_ssize_t n_limbs = self->n_limbs;
    uint64_t stack_out[32];
    uint64_t *out = stack_out;
    if (n_limbs > 32) {
        out = PyMem_Calloc((size_t)n_limbs, LIMB_BYTES);
        if (out == NULL) {
            PyBuffer_Release(&mask);
            return PyErr_NoMemory();
        }
    } else {
        memset(out, 0, (size_t)n_limbs * LIMB_BYTES);
    }
    const unsigned char *bytes = mask.buf;
    Py_ssize_t n_bytes = self->n_chunks < mask.len ? self->n_chunks : mask.len;
    for (Py_ssize_t c = 0; c < n_bytes; c++) {
        unsigned char byte = bytes[c];
        if (byte) {
            const uint64_t *entry = self->entries + (c * 256 + byte) * n_limbs;
            for (Py_ssize_t w = 0; w < n_limbs; w++)
                out[w] |= entry[w];
        }
    }
    PyObject *result = int_from_u64(out, n_limbs);
    if (out != stack_out)
        PyMem_Free(out);
    PyBuffer_Release(&mask);
    return result;
}

static PyTypeObject StepTableType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._cext.kernels.StepTable",
    .tp_basicsize = sizeof(StepTable),
    .tp_dealloc = (destructor)StepTable_dealloc,
    .tp_call = (ternaryfunc)StepTable_call,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_new = StepTable_new,
    .tp_doc = "Chunked subset-construction step table over u64 limbs.",
};

/* ------------------------------------------------------------------ */
/* GF(2) rank                                                          */
/* ------------------------------------------------------------------ */

static PyObject *
kernels_gf2_rank(PyObject *Py_UNUSED(self), PyObject *args)
{
    Py_buffer rows;
    Py_ssize_t n_rows, n_limbs;
    if (!PyArg_ParseTuple(args, "y*nn:gf2_rank", &rows, &n_rows, &n_limbs))
        return NULL;
    if (n_limbs <= 0 || rows.len != n_rows * n_limbs * LIMB_BYTES) {
        PyBuffer_Release(&rows);
        return PyErr_Format(PyExc_ValueError,
                            "gf2_rank: buffer holds %zd bytes, expected %zd",
                            rows.len, n_rows * n_limbs * LIMB_BYTES);
    }
    /* Xor basis keyed by top bit (same algorithm as the words backend,
     * so the two agree on any input): basis slot p holds a row whose
     * highest set bit is p. */
    Py_ssize_t n_slots = n_limbs * LIMB_BITS;
    uint64_t *basis = PyMem_Calloc((size_t)(n_slots * n_limbs), LIMB_BYTES);
    unsigned char *occupied = PyMem_Calloc((size_t)n_slots, 1);
    uint64_t *work = PyMem_Malloc((size_t)n_limbs * LIMB_BYTES);
    if (basis == NULL || occupied == NULL || work == NULL) {
        PyMem_Free(basis);
        PyMem_Free(occupied);
        PyMem_Free(work);
        PyBuffer_Release(&rows);
        return PyErr_NoMemory();
    }
    const unsigned char *buf = rows.buf;
    long rank = 0;
    for (Py_ssize_t r = 0; r < n_rows; r++) {
        const unsigned char *row = buf + r * n_limbs * LIMB_BYTES;
        for (Py_ssize_t w = 0; w < n_limbs; w++)
            work[w] = read_limb(row, n_limbs * LIMB_BYTES, w);
        for (;;) {
            Py_ssize_t top = -1;
            for (Py_ssize_t w = n_limbs - 1; w >= 0; w--) {
                if (work[w]) {
                    top = w * LIMB_BITS + (LIMB_BITS - 1 - CLZ64(work[w]));
                    break;
                }
            }
            if (top < 0)
                break;  /* row vanished: dependent */
            uint64_t *slot = basis + top * n_limbs;
            if (!occupied[top]) {
                memcpy(slot, work, (size_t)n_limbs * LIMB_BYTES);
                occupied[top] = 1;
                rank++;
                break;
            }
            for (Py_ssize_t w = 0; w < n_limbs; w++)
                work[w] ^= slot[w];
        }
    }
    PyMem_Free(basis);
    PyMem_Free(occupied);
    PyMem_Free(work);
    PyBuffer_Release(&rows);
    return PyLong_FromLong(rank);
}

/* ------------------------------------------------------------------ */
/* cells_of_rect                                                       */
/* ------------------------------------------------------------------ */

static PyObject *
kernels_cells_of_rect(PyObject *Py_UNUSED(self), PyObject *args)
{
    Py_buffer rows_buf, cols_buf;
    Py_ssize_t n_cols;
    if (!PyArg_ParseTuple(args, "y*y*n:cells_of_rect", &rows_buf, &cols_buf, &n_cols))
        return NULL;
    if (n_cols <= 0) {
        PyBuffer_Release(&rows_buf);
        PyBuffer_Release(&cols_buf);
        return PyErr_Format(PyExc_ValueError, "cells_of_rect: n_cols must be positive");
    }
    const unsigned char *rows = rows_buf.buf;
    Py_ssize_t rows_limbs = limb_count(rows_buf.len);
    /* Highest set row decides the output width. */
    long long top_row = -1;
    for (Py_ssize_t w = rows_limbs - 1; w >= 0; w--) {
        uint64_t limb = read_limb(rows, rows_buf.len, w);
        if (limb) {
            top_row = (long long)w * LIMB_BITS + (LIMB_BITS - 1 - CLZ64(limb));
            break;
        }
    }
    if (top_row < 0) {
        PyBuffer_Release(&rows_buf);
        PyBuffer_Release(&cols_buf);
        return PyLong_FromLong(0);
    }
    Py_ssize_t out_bits = (Py_ssize_t)(top_row + 1) * n_cols;
    Py_ssize_t out_limbs = (out_bits + LIMB_BITS - 1) / LIMB_BITS;
    uint64_t *out = PyMem_Calloc((size_t)out_limbs, LIMB_BYTES);
    Py_ssize_t col_limbs = limb_count(cols_buf.len);
    uint64_t *cols = PyMem_Malloc((size_t)(col_limbs + 1) * LIMB_BYTES);
    if (out == NULL || cols == NULL) {
        PyMem_Free(out);
        PyMem_Free(cols);
        PyBuffer_Release(&rows_buf);
        PyBuffer_Release(&cols_buf);
        return PyErr_NoMemory();
    }
    for (Py_ssize_t w = 0; w < col_limbs; w++)
        cols[w] = read_limb(cols_buf.buf, cols_buf.len, w);
    cols[col_limbs] = 0;  /* shift slop */
    /* Only limbs that can intersect the n_cols-bit pattern matter. */
    Py_ssize_t pattern_limbs = (n_cols + LIMB_BITS - 1) / LIMB_BITS;
    if (pattern_limbs > col_limbs)
        pattern_limbs = col_limbs;
    for (Py_ssize_t w = 0; w < rows_limbs; w++) {
        uint64_t limb = read_limb(rows, rows_buf.len, w);
        long long base = (long long)w * LIMB_BITS;
        while (limb) {
            long long i = base + CTZ64(limb);
            limb &= limb - 1;
            long long offset = i * n_cols;
            Py_ssize_t word = (Py_ssize_t)(offset / LIMB_BITS);
            int shift = (int)(offset % LIMB_BITS);
            if (shift == 0) {
                for (Py_ssize_t k = 0; k < pattern_limbs; k++)
                    out[word + k] |= cols[k];
            } else {
                for (Py_ssize_t k = 0; k < pattern_limbs; k++) {
                    out[word + k] |= cols[k] << shift;
                    if (word + k + 1 < out_limbs)
                        out[word + k + 1] |= cols[k] >> (LIMB_BITS - shift);
                }
            }
        }
    }
    PyObject *result = int_from_u64(out, out_limbs);
    PyMem_Free(out);
    PyMem_Free(cols);
    PyBuffer_Release(&rows_buf);
    PyBuffer_Release(&cols_buf);
    return result;
}

/* ------------------------------------------------------------------ */
/* hopcroft_split                                                      */
/* ------------------------------------------------------------------ */

static PyObject *
kernels_hopcroft_split(PyObject *Py_UNUSED(self), PyObject *args)
{
    Py_buffer preimage;
    PyObject *block_of;
    if (!PyArg_ParseTuple(args, "y*O:hopcroft_split", &preimage, &block_of))
        return NULL;
    PyObject *seq = PySequence_Fast(block_of, "hopcroft_split expects a sequence");
    if (seq == NULL) {
        PyBuffer_Release(&preimage);
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    Py_ssize_t mask_limbs = limb_count(preimage.len);
    const unsigned char *buf = preimage.buf;

    /* Accumulate per-block masks in C limb buffers; block id -> buffer
     * index via a scratch dict (touched blocks are few, bits are many). */
    PyObject *slots = PyDict_New();       /* block id (int) -> index (int) */
    PyObject *result = PyDict_New();
    uint64_t *buffers = NULL;
    Py_ssize_t n_buffers = 0, cap_buffers = 0;
    if (slots == NULL || result == NULL)
        goto fail;
    for (Py_ssize_t w = 0; w < mask_limbs; w++) {
        uint64_t limb = read_limb(buf, preimage.len, w);
        long long base = (long long)w * LIMB_BITS;
        while (limb) {
            long long q = base + CTZ64(limb);
            limb &= limb - 1;
            if (q >= n) {
                PyErr_Format(PyExc_IndexError,
                             "hopcroft_split: state %lld out of range for %zd blocks",
                             q, n);
                goto fail;
            }
            PyObject *block = items[q];
            PyObject *slot = PyDict_GetItemWithError(slots, block);
            Py_ssize_t index;
            if (slot != NULL) {
                index = PyLong_AsSsize_t(slot);
            } else {
                if (PyErr_Occurred())
                    goto fail;
                index = n_buffers;
                if (n_buffers == cap_buffers) {
                    Py_ssize_t cap = cap_buffers ? cap_buffers * 2 : 8;
                    uint64_t *grown = PyMem_Realloc(
                        buffers, (size_t)(cap * mask_limbs) * LIMB_BYTES);
                    if (grown == NULL) {
                        PyErr_NoMemory();
                        goto fail;
                    }
                    buffers = grown;
                    cap_buffers = cap;
                }
                memset(buffers + index * mask_limbs, 0,
                       (size_t)mask_limbs * LIMB_BYTES);
                n_buffers++;
                PyObject *boxed = PyLong_FromSsize_t(index);
                if (boxed == NULL)
                    goto fail;
                int rc = PyDict_SetItem(slots, block, boxed);
                Py_DECREF(boxed);
                if (rc < 0)
                    goto fail;
            }
            buffers[index * mask_limbs + q / LIMB_BITS] |=
                (uint64_t)1 << (q % LIMB_BITS);
        }
    }
    /* Convert each accumulated buffer to a Python int, keyed by block. */
    {
        Py_ssize_t pos = 0;
        PyObject *block, *slot;
        while (PyDict_Next(slots, &pos, &block, &slot)) {
            Py_ssize_t index = PyLong_AsSsize_t(slot);
            PyObject *mask = int_from_u64(buffers + index * mask_limbs, mask_limbs);
            if (mask == NULL)
                goto fail;
            int rc = PyDict_SetItem(result, block, mask);
            Py_DECREF(mask);
            if (rc < 0)
                goto fail;
        }
    }
    PyMem_Free(buffers);
    Py_DECREF(slots);
    Py_DECREF(seq);
    PyBuffer_Release(&preimage);
    return result;
fail:
    PyMem_Free(buffers);
    Py_XDECREF(slots);
    Py_XDECREF(result);
    Py_DECREF(seq);
    PyBuffer_Release(&preimage);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef kernels_methods[] = {
    {"popcount", kernels_popcount, METH_O,
     "popcount(buf) -> int: set bits of a little-endian limb buffer."},
    {"popcount_rows", kernels_popcount_rows, METH_O,
     "popcount_rows(masks) -> int: total bit_count over a sequence of ints."},
    {"bit_indices", kernels_bit_indices, METH_O,
     "bit_indices(buf) -> list[int]: ascending set-bit positions."},
    {"transpose", kernels_transpose, METH_VARARGS,
     "transpose(rows_buf, n_rows, n_cols) -> bytes: column limb buffers."},
    {"fold_rows", kernels_fold_rows, METH_VARARGS,
     "fold_rows(table, mask_buf) -> int: OR of table[i] over set bits i."},
    {"gf2_rank", kernels_gf2_rank, METH_VARARGS,
     "gf2_rank(rows_buf, n_rows, n_limbs) -> int: GF(2) rank by xor basis."},
    {"cells_of_rect", kernels_cells_of_rect, METH_VARARGS,
     "cells_of_rect(rows_buf, cols_buf, n_cols) -> int: row-major cell mask."},
    {"hopcroft_split", kernels_hopcroft_split, METH_VARARGS,
     "hopcroft_split(preimage_buf, block_of) -> dict[int, int]."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._cext.kernels",
    .m_doc = "Fixed-width u64-limb kernels for the cext backend tier.",
    .m_size = -1,
    .m_methods = kernels_methods,
};

PyMODINIT_FUNC
PyInit_kernels(void)
{
    state_str_bit_count = PyUnicode_InternFromString("bit_count");
    if (state_str_bit_count == NULL)
        return NULL;
    if (PyType_Ready(&StepTableType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&kernels_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddIntConstant(module, "ABI_VERSION", ABI_VERSION) < 0 ||
        PyModule_AddIntConstant(module, "LIMB_BYTES", LIMB_BYTES) < 0 ||
        PyModule_AddObjectRef(module, "StepTable", (PyObject *)&StepTableType) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
