"""Tests for repro.languages.ln: the separating language L_n."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.languages.ln import (
    count_ln,
    first_match_position,
    is_in_ln,
    iter_ln,
    ln_words,
    match_positions,
)


class TestMembership:
    def test_smallest_case(self):
        assert ln_words(1) == {"aa"}

    def test_examples_n2(self):
        assert is_in_ln("aaaa", 2)
        assert is_in_ln("abab", 2)   # match at k=0
        assert is_in_ln("baba", 2)   # match at k=1
        assert not is_in_ln("abba", 2)
        assert not is_in_ln("bbbb", 2)

    def test_wrong_length_rejected(self):
        assert not is_in_ln("aa", 2)
        assert not is_in_ln("aaaaaa", 2)

    def test_foreign_symbols_rejected(self):
        assert not is_in_ln("acac", 2)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            is_in_ln("aa", 0)

    @given(st.integers(1, 6), st.data())
    @settings(max_examples=100, deadline=None)
    def test_membership_is_exists_match(self, n, data):
        word = data.draw(st.text(alphabet="ab", min_size=2 * n, max_size=2 * n))
        expected = any(word[k] == "a" and word[k + n] == "a" for k in range(n))
        assert is_in_ln(word, n) == expected


class TestCounting:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7])
    def test_formula_matches_bruteforce(self, n):
        assert count_ln(n) == len(ln_words(n))

    def test_formula_values(self):
        assert count_ln(1) == 1
        assert count_ln(2) == 7
        assert count_ln(3) == 37

    def test_fraction_tends_to_one_complement(self):
        # |L_n| / 4^n = 1 - (3/4)^n grows towards 1.
        assert count_ln(10) / 4**10 == pytest.approx(1 - (3 / 4) ** 10)

    def test_iter_sorted(self):
        words = list(iter_ln(3))
        assert words == sorted(words)


class TestMatches:
    def test_match_positions(self):
        assert match_positions("aaaa", 2) == [0, 1]
        assert match_positions("abab", 2) == [0]
        assert match_positions("bbbb", 2) == []

    def test_match_positions_length_checked(self):
        with pytest.raises(ValueError):
            match_positions("aaa", 2)

    def test_first_match(self):
        assert first_match_position("baba", 2) == 1
        assert first_match_position("bbbb", 2) is None

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=60, deadline=None)
    def test_first_match_consistent(self, n, data):
        word = data.draw(st.text(alphabet="ab", min_size=2 * n, max_size=2 * n))
        first = first_match_position(word, n)
        assert (first is not None) == is_in_ln(word, n)
        if first is not None:
            assert word[first] == "a" and word[first + n] == "a"
            assert all(
                not (word[k] == "a" and word[k + n] == "a") for k in range(first)
            )

    def test_high_multiplicity_word(self):
        # a^{2n} matches at every position: the non-disjointness of Example 8.
        assert match_positions("a" * 8, 4) == [0, 1, 2, 3]
