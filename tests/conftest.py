"""Shared fixtures: a corpus of small finite-language grammars.

The corpus mixes unambiguous and ambiguous grammars, uniform-length and
mixed-length languages, and the paper's own constructions at small
parameters; cross-module tests (CNF, d-reps, covers, ...) iterate over
it so every transformation is exercised on every shape.
"""

from __future__ import annotations

import pytest

from repro.grammars.cfg import CFG, grammar_from_mapping
from repro.languages.example3 import example3_grammar
from repro.languages.small_grammar import small_ln_grammar
from repro.languages.unambiguous_grammar import example4_ucfg


def corpus() -> dict[str, CFG]:
    """Name → grammar.  All finite languages, all over {a, b}."""
    return {
        "two-words": grammar_from_mapping("ab", {"S": ["ab", "ba"]}, "S"),
        "single-word": grammar_from_mapping("ab", {"S": ["abba"]}, "S"),
        "epsilon": grammar_from_mapping("ab", {"S": ["", "a"]}, "S"),
        "nested": grammar_from_mapping(
            "ab", {"S": ["aXb"], "X": ["ab", "ba", ""]}, "S"
        ),
        "ambiguous-unit": grammar_from_mapping(
            "ab", {"S": ["ab", "aX"], "X": ["b"]}, "S"
        ),
        "uniform-ucfg": grammar_from_mapping(
            "ab", {"S": ["aX", "bY"], "X": ["ab", "bb"], "Y": ["aa", "ba"]}, "S"
        ),
        "uniform-ambiguous": grammar_from_mapping(
            "ab", {"S": ["aX", "Ya"], "X": ["aa", "ab"], "Y": ["aa", "ba"]}, "S"
        ),
        "deep-chain": grammar_from_mapping(
            "ab",
            {"S": ["AB"], "A": ["aa", "ab"], "B": ["CD"], "C": ["a", "b"], "D": ["b"]},
            "S",
        ),
        "example3-k1": example3_grammar(1),
        "smallgrammar-n3": small_ln_grammar(3),
        "smallgrammar-n4": small_ln_grammar(4),
        "example4-n2": example4_ucfg(2),
    }


@pytest.fixture(params=sorted(corpus()), ids=sorted(corpus()))
def corpus_grammar(request) -> CFG:
    """Parametrised fixture yielding every corpus grammar."""
    return corpus()[request.param]


@pytest.fixture
def uniform_corpus() -> dict[str, CFG]:
    """The sub-corpus whose languages are uniform-length and ε-free."""
    names = [
        "two-words",
        "single-word",
        "uniform-ucfg",
        "uniform-ambiguous",
        "deep-chain",
        "example3-k1",
        "smallgrammar-n3",
        "smallgrammar-n4",
        "example4-n2",
    ]
    full = corpus()
    return {name: full[name] for name in names}
