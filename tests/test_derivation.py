"""Tests for repro.grammars.derivation: leftmost derivations."""

from __future__ import annotations

import pytest

from repro.errors import GrammarError
from repro.grammars.cfg import grammar_from_mapping
from repro.grammars.derivation import (
    derivation_steps,
    format_derivation,
    leftmost_derivation,
    replay_derivation,
)
from repro.grammars.generic import GenericParser
from repro.grammars.language import language
from repro.grammars.trees import leaf, node
from repro.languages.example3 import example3_grammar


class TestLeftmostDerivation:
    def test_simple(self):
        tree = node("S", (leaf("a"), node("X", (leaf("b"),))))
        assert leftmost_derivation(tree) == [("S",), ("a", "X"), ("a", "b")]

    def test_epsilon_rule(self):
        tree = node("S", (leaf("a"), node("X", ())))
        assert leftmost_derivation(tree) == [("S",), ("a", "X"), ("a",)]

    def test_final_form_is_word(self):
        g = example3_grammar(1)
        parser = GenericParser(g)
        tree = parser.one_tree("aaaaaa")
        forms = leftmost_derivation(tree)
        assert "".join(forms[-1]) == "aaaaaa"

    def test_step_count_equals_inner_nodes(self):
        g = example3_grammar(1)
        tree = GenericParser(g).one_tree("abaaba")
        forms = leftmost_derivation(tree)
        inner = sum(1 for r in derivation_steps(tree))
        assert len(forms) == inner + 1

    def test_leaf_rejected(self):
        with pytest.raises(GrammarError):
            leftmost_derivation(leaf("a"))


class TestReplay:
    def test_valid_derivation_replays(self, corpus_grammar):
        words = sorted(language(corpus_grammar))[:5]
        parser = GenericParser(corpus_grammar)
        for word in words:
            tree = parser.one_tree(word)
            forms = leftmost_derivation(tree)
            assert replay_derivation(corpus_grammar, forms), word

    def test_forged_derivation_rejected(self):
        g = grammar_from_mapping("ab", {"S": ["ab"]}, "S")
        assert not replay_derivation(g, [("S",), ("b", "a")])

    def test_incomplete_derivation_rejected(self):
        g = grammar_from_mapping("ab", {"S": ["aX"], "X": ["b"]}, "S")
        assert not replay_derivation(g, [("S",), ("a", "X")])

    def test_empty_rejected(self):
        g = grammar_from_mapping("ab", {"S": ["ab"]}, "S")
        assert not replay_derivation(g, [])

    def test_unambiguous_has_unique_derivation(self):
        # "every word in L(G) has a unique derivation" (Section 2):
        # the leftmost derivations of distinct trees differ.
        g = grammar_from_mapping("ab", {"S": ["ab", "X"], "X": ["ab"]}, "S")
        parser = GenericParser(g)
        trees = list(parser.iter_trees("ab"))
        assert len(trees) == 2
        d1, d2 = (leftmost_derivation(t) for t in trees)
        assert d1 != d2


class TestFormatting:
    def test_format(self):
        forms = [("S",), ("a", "X"), ("a", "b")]
        assert format_derivation(forms) == "S ⇒ aX ⇒ ab"

    def test_format_epsilon(self):
        assert format_derivation([()]) == "ε"

    def test_format_tuple_nonterminal(self):
        rendered = format_derivation([(("A", 1),)])
        assert "A" in rendered
